//! # neurofi
//!
//! Facade crate for the `neurofi` workspace: a full Rust reproduction of
//! *"Analysis of Power-Oriented Fault Injection Attacks on Spiking Neural
//! Networks"* (DATE 2022).
//!
//! This crate re-exports the workspace members under stable paths:
//!
//! * [`spice`] — transient analog circuit simulator (MNA + Newton + EKV).
//! * [`analog`] — the paper's neuron circuits (Axon Hillock, voltage-amplifier
//!   I&F), current drivers, defense circuits and their characterisation.
//! * [`snn`] — behavioural spiking-neural-network library (Diehl&Cook
//!   network, Poisson encoding, STDP).
//! * [`data`] — synthetic digit dataset (MNIST stand-in) and IDX loader.
//! * [`core`] — the paper's contribution: threat models, the five
//!   power-oriented attacks, defenses, the dummy-neuron detector, and the
//!   parallel grid-sweep engine (work-stealing cell pool + memoised
//!   per-seed baselines; serial and parallel sweeps are bit-identical —
//!   see [`core::sweep`]).
//!
//! ## Quickstart
//!
//! ```no_run
//! use neurofi::core::{Attack, ThresholdAttack};
//! use neurofi::core::attacks::ExperimentSetup;
//!
//! // Train the paper's Diehl&Cook SNN on synthetic digits and measure the
//! // accuracy impact of a -20% inhibitory-layer threshold fault (Attack 3).
//! let setup = ExperimentSetup::quick(42);
//! let outcome = ThresholdAttack::inhibitory(-0.20, 1.0).run(&setup).unwrap();
//! println!("baseline {:.1}%  attacked {:.1}%  (relative change {:+.1}%)",
//!          100.0 * outcome.baseline_accuracy,
//!          100.0 * outcome.attacked_accuracy,
//!          outcome.relative_change_percent());
//! ```

pub use neurofi_analog as analog;
pub use neurofi_core as core;
pub use neurofi_data as data;
pub use neurofi_snn as snn;
pub use neurofi_spice as spice;
