//! Differential no-op test for the v6 countermeasure axes: writing
//! `defense = none` / `detector = none` into a spec must change
//! *nothing measurable* — the serial sweep's cells are bit-identical
//! and every store key matches the committed pre-v6 golden digest
//! vectors, so stores written before the axes existed keep deduping
//! cells submitted with them.

use std::path::Path;

use neurofi_core::scenario::{Axis, DefenseSel, DetectorSel};
use neurofi_core::{PowerTransferTable, ScenarioSpec};
use neurofi_dist::{CampaignSpec, SetupSpec};

/// The committed "vdd" golden campaign (tests/golden/digests.txt).
fn legacy_spec() -> CampaignSpec {
    CampaignSpec {
        setup: SetupSpec::bench(42),
        scenario: ScenarioSpec::vdd(&[0.8, 1.0], &PowerTransferTable::paper_nominal(), &[42]),
    }
}

/// The same campaign with the countermeasure axes spelled out as
/// all-`none`.
fn annotated_spec() -> CampaignSpec {
    let mut spec = legacy_spec();
    spec.scenario
        .axes
        .push(Axis::defenses(vec![DefenseSel::None]));
    spec.scenario
        .axes
        .push(Axis::detectors(vec![DetectorSel::None]));
    spec.validate()
        .expect("all-none countermeasure axes are valid");
    spec
}

/// The committed golden cell digests of the "vdd" campaign, parsed from
/// the vector file itself so this test can never drift from what the
/// golden test pins.
fn committed_vdd_cell_digests() -> Vec<u64> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/digests.txt");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {} ({e})", path.display()));
    let mut digests = Vec::new();
    for line in text.lines() {
        let mut fields = line.split_whitespace();
        if fields.next() == Some("cell") && fields.next() == Some("vdd") {
            let _index = fields.next().expect("cell lines carry an index");
            let hex = fields.next().expect("cell lines carry a digest");
            digests.push(u64::from_str_radix(hex, 16).expect("digests are hex"));
        }
    }
    assert!(!digests.is_empty(), "the vector file pins the vdd campaign");
    digests
}

#[test]
fn all_none_axes_keep_the_committed_store_keys() {
    let legacy = legacy_spec();
    let annotated = annotated_spec();
    let committed = committed_vdd_cell_digests();
    let legacy_plan = legacy.plan();
    let annotated_plan = annotated.plan();
    assert_eq!(
        legacy_plan.jobs.len(),
        annotated_plan.jobs.len(),
        "a single-value none axis must not change the grid size"
    );
    assert_eq!(legacy_plan.jobs.len(), committed.len());
    for (i, (a, b)) in legacy_plan
        .jobs
        .iter()
        .zip(&annotated_plan.jobs)
        .enumerate()
    {
        assert_eq!(
            annotated.cell_digest(&b.attack),
            committed[i],
            "cell {i} of the annotated spec must keep its pre-v6 store key"
        );
        assert_eq!(legacy.cell_digest(&a.attack), committed[i]);
    }
    assert_eq!(legacy.baseline_digest(), annotated.baseline_digest());
}

#[test]
fn all_none_axes_sweep_bit_identically() {
    let legacy = legacy_spec().run_serial().expect("legacy sweep runs");
    let annotated = annotated_spec().run_serial().expect("annotated sweep runs");
    assert_eq!(legacy.cells.len(), annotated.cells.len());
    assert_eq!(
        legacy.baseline_accuracy.to_bits(),
        annotated.baseline_accuracy.to_bits(),
        "baselines must be bit-identical, not merely close"
    );
    for (i, (a, b)) in legacy.cells.iter().zip(&annotated.cells).enumerate() {
        assert_eq!(a.rel_change.to_bits(), b.rel_change.to_bits(), "cell {i}");
        assert_eq!(a.fraction.to_bits(), b.fraction.to_bits(), "cell {i}");
        assert_eq!(a.accuracy.to_bits(), b.accuracy.to_bits(), "cell {i}");
        assert_eq!(
            a.relative_change_percent.to_bits(),
            b.relative_change_percent.to_bits(),
            "cell {i}"
        );
    }
}
