//! Acceptance for cross-campaign dedup through the content-addressed
//! result store:
//!
//! 1. a cold campaign is computed entirely by workers and recorded;
//! 2. resubmitting the *same resolved spec under a different campaign
//!    name* completes with **zero cells executed** — every cell a store
//!    hit, proven by the workers' claim counts;
//! 3. a partially-overlapping superset grid executes only its missing
//!    cells;
//! 4. every merge, hits included, is bit-identical to a cold serial
//!    run of its spec.

use std::path::PathBuf;

use neurofi_core::sweep::{SweepConfig, SweepResult};
use neurofi_core::{ScenarioSpec, TargetLayer};
use neurofi_dist::{
    named_campaign, run_local_cluster, CampaignSpec, LocalClusterConfig, NamedCampaign, SetupSpec,
};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("neurofi-dedup-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn assert_bit_identical(distributed: &SweepResult, serial: &SweepResult) {
    assert_eq!(
        distributed.baseline_accuracy.to_bits(),
        serial.baseline_accuracy.to_bits(),
        "baseline accuracy diverged"
    );
    assert_eq!(distributed.cells.len(), serial.cells.len());
    for (i, (d, s)) in distributed.cells.iter().zip(&serial.cells).enumerate() {
        assert_eq!(d.rel_change.to_bits(), s.rel_change.to_bits(), "cell {i}");
        assert_eq!(d.fraction.to_bits(), s.fraction.to_bits(), "cell {i}");
        assert_eq!(d.accuracy.to_bits(), s.accuracy.to_bits(), "cell {i}");
        assert_eq!(
            d.relative_change_percent.to_bits(),
            s.relative_change_percent.to_bits(),
            "cell {i}"
        );
    }
}

/// Cells the fleet actually executed, summed over workers that
/// completed their session. A worker whose connection was reset because
/// the campaign settled before its handshake finished reports nothing —
/// and executed nothing.
fn cells_executed(report: &neurofi_dist::LocalClusterReport) -> usize {
    report
        .workers
        .iter()
        .map(|w| w.as_ref().map(|s| s.cells_executed).unwrap_or(0))
        .sum()
}

/// The `tiny` grid widened by one fraction column: 8 cells of which 6
/// are digest-identical to `tiny`'s (cell keys ignore grid shape).
fn superset_spec() -> CampaignSpec {
    CampaignSpec {
        setup: SetupSpec::bench(42),
        scenario: ScenarioSpec::threshold(
            Some(TargetLayer::Inhibitory),
            &SweepConfig {
                rel_changes: vec![-0.20, 0.20],
                fractions: vec![0.0, 0.5, 0.75, 0.90],
                seeds: vec![42],
            },
        ),
    }
}

#[test]
fn overlapping_campaigns_dedupe_to_store_hits() {
    let dir = temp_dir("acceptance");
    let store = dir.join("results.store");
    let tiny = named_campaign("tiny").unwrap();
    let serial = tiny.run_serial().unwrap();

    // Cold pass: nothing in the store, every cell computed by workers.
    let cold_campaign = NamedCampaign::new("cold".to_string(), tiny.clone());
    let mut config = LocalClusterConfig::multi(vec![cold_campaign], 2);
    config.store = Some(store.clone());
    let cold = run_local_cluster(&config).unwrap();
    let sweep = &cold.run.campaigns[0];
    assert_eq!(sweep.total_cells, 6);
    assert_eq!(sweep.store_hit_cells, 0);
    assert_eq!(sweep.computed_cells, 6);
    assert_eq!(cells_executed(&cold), 6, "cold cells come from workers");
    assert_bit_identical(&sweep.result, &serial);

    // Warm pass: the same resolved spec under a different campaign name
    // fills entirely from the store — zero cells reach a worker.
    let warm_campaign = NamedCampaign::new("warm".to_string(), tiny.clone());
    let mut config = LocalClusterConfig::multi(vec![warm_campaign], 2);
    config.store = Some(store.clone());
    let warm = run_local_cluster(&config).unwrap();
    let sweep = &warm.run.campaigns[0];
    assert_eq!(sweep.total_cells, 6);
    assert_eq!(sweep.store_hit_cells, 6, "all-in-store scenario");
    assert_eq!(sweep.computed_cells, 0);
    assert_eq!(
        cells_executed(&warm),
        0,
        "an all-in-store campaign must execute zero cells"
    );
    assert_bit_identical(&sweep.result, &serial);

    // Partial overlap: a superset grid executes only its 2 missing
    // cells and still merges bit-identically to its own serial run.
    let superset = superset_spec();
    let superset_serial = superset.run_serial().unwrap();
    let super_campaign = NamedCampaign::new("superset".to_string(), superset);
    let mut config = LocalClusterConfig::multi(vec![super_campaign], 2);
    config.store = Some(store);
    let partial = run_local_cluster(&config).unwrap();
    let sweep = &partial.run.campaigns[0];
    assert_eq!(sweep.total_cells, 8);
    assert_eq!(sweep.store_hit_cells, 6, "shared cells dedupe across grids");
    assert_eq!(sweep.computed_cells, 2);
    assert_eq!(
        cells_executed(&partial),
        2,
        "only the missing cells reach workers"
    );
    assert_bit_identical(&sweep.result, &superset_serial);
}
