//! Torn-write recovery coverage for the checkpoint journal.
//!
//! PR 2's unit tests exercised exactly one truncation point; this suite
//! truncates a journal at *every byte offset* — from the end of the
//! header to the full file — and asserts that replay recovers exactly
//! the longest valid prefix of durable records, truncates the torn
//! bytes, and accepts post-recovery appends on a clean boundary. This
//! is the property the coordinator's crash-resume guarantee rests on: a
//! crash mid-append may cost at most the record being written.

use std::path::PathBuf;

use neurofi_core::sweep::{CellResult, SweepCell};
use neurofi_dist::Journal;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("neurofi-dist-ckpt-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn cell(index: usize, accuracy: f64) -> CellResult {
    CellResult {
        index,
        cell: SweepCell {
            rel_change: -0.2,
            fraction: 0.5,
            accuracy,
            relative_change_percent: accuracy * -10.0,
        },
    }
}

const DIGEST: u64 = 0xfeed_beef;
const N_CELLS: usize = 8;

/// Writes a reference journal (baseline + 3 cells with awkward float
/// bits) and returns its bytes plus the byte offset where each durable
/// record — header included — *ends*.
fn reference_journal(dir: &std::path::Path) -> (Vec<u8>, Vec<usize>) {
    let path = dir.join("reference.journal");
    let (mut journal, _) = Journal::open(&path, DIGEST, N_CELLS).unwrap();
    journal.record_baseline(0.5625f64.next_up()).unwrap();
    journal.record_cell(&cell(2, 0.1f64.next_up())).unwrap();
    journal
        .record_cell(&cell(0, f64::from_bits(0x3fe0_0000_0000_0001)))
        .unwrap();
    journal.record_cell(&cell(5, 0.75)).unwrap();
    drop(journal);
    let bytes = std::fs::read(&path).unwrap();
    let mut boundaries = Vec::new();
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            boundaries.push(i + 1);
        }
    }
    assert_eq!(
        boundaries.len(),
        5,
        "header + baseline + 3 cells, one newline each"
    );
    (bytes, boundaries)
}

/// The number of durable records recovered from a journal truncated to
/// `len` bytes: every record whose complete line (newline included)
/// survives. The header is boundary 0 and holds no records.
fn expected_records(boundaries: &[usize], len: usize) -> usize {
    boundaries[1..].iter().filter(|&&end| end <= len).count()
}

#[test]
fn truncation_at_every_byte_offset_recovers_the_longest_valid_prefix() {
    let dir = temp_dir("every-offset");
    let (bytes, boundaries) = reference_journal(&dir);
    let header_end = boundaries[0];

    for len in header_end..=bytes.len() {
        let path = dir.join(format!("cut-{len}.journal"));
        std::fs::write(&path, &bytes[..len]).unwrap();

        let (mut journal, recovered) = Journal::open(&path, DIGEST, N_CELLS)
            .unwrap_or_else(|e| panic!("replay failed at cut {len}: {e}"));
        let n_durable = expected_records(&boundaries, len);
        // Record 1 is the baseline; the rest are cells.
        let expect_baseline = n_durable >= 1;
        let expect_cells = n_durable.saturating_sub(1);
        assert_eq!(
            recovered.baseline_accuracy.is_some(),
            expect_baseline,
            "cut {len}: baseline survival"
        );
        assert_eq!(
            recovered.results.len(),
            expect_cells,
            "cut {len}: exactly the durable cells must be recovered"
        );
        // Recovered prefix is bit-exact and in journal order.
        let reference = [
            cell(2, 0.1f64.next_up()),
            cell(0, f64::from_bits(0x3fe0_0000_0000_0001)),
            cell(5, 0.75),
        ];
        for (got, want) in recovered.results.iter().zip(&reference) {
            assert_eq!(got.index, want.index, "cut {len}");
            assert_eq!(
                got.cell.accuracy.to_bits(),
                want.cell.accuracy.to_bits(),
                "cut {len}: bit-exact recovery"
            );
        }
        if expect_baseline {
            assert_eq!(
                recovered.baseline_accuracy.unwrap().to_bits(),
                0.5625f64.next_up().to_bits(),
                "cut {len}"
            );
        }

        // Recovery truncated the torn tail, so a post-recovery append
        // lands on a clean line boundary and survives the next replay.
        journal.record_cell(&cell(7, 0.25)).unwrap();
        drop(journal);
        let (_journal, reopened) = Journal::open(&path, DIGEST, N_CELLS)
            .unwrap_or_else(|e| panic!("post-recovery replay failed at cut {len}: {e}"));
        assert_eq!(
            reopened.results.len(),
            expect_cells + 1,
            "cut {len}: the post-recovery append must be durable"
        );
        assert_eq!(reopened.results.last().unwrap().index, 7, "cut {len}");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncation_inside_the_header_is_refused_not_misread() {
    let dir = temp_dir("header");
    let (bytes, boundaries) = reference_journal(&dir);
    let header_end = boundaries[0];
    // A journal cut anywhere inside its header no longer identifies its
    // campaign: replay must refuse it (mismatched or empty header)
    // rather than starting a fresh journal over torn bytes.
    for len in 1..header_end {
        let path = dir.join(format!("hdr-{len}.journal"));
        std::fs::write(&path, &bytes[..len]).unwrap();
        assert!(
            Journal::open(&path, DIGEST, N_CELLS).is_err(),
            "cut {len}: a torn header must be refused"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mid_file_corruption_is_an_error_not_a_silent_skip() {
    // A corrupt record with a *valid* record after it is not a torn
    // tail — it is corruption, and replay must fail loudly instead of
    // resuming over a hole in the history.
    let dir = temp_dir("midfile");
    let path = dir.join("corrupt.journal");
    let (mut journal, _) = Journal::open(&path, DIGEST, N_CELLS).unwrap();
    journal.record_cell(&cell(1, 0.5)).unwrap();
    journal.record_cell(&cell(2, 0.5)).unwrap();
    drop(journal);
    let text = std::fs::read_to_string(&path).unwrap();
    let corrupted = text.replacen("cell 1", "cell x", 1);
    assert_ne!(text, corrupted);
    std::fs::write(&path, corrupted).unwrap();
    assert!(Journal::open(&path, DIGEST, N_CELLS).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}
