//! Golden regression: a sharded sweep (coordinator + two in-process
//! workers over localhost TCP) must be *bit*-identical to the serial
//! engine, and an interrupted campaign must resume from its checkpoint
//! journal without recomputing finished cells.

use std::path::PathBuf;
use std::time::Duration;

use neurofi_core::sweep::SweepResult;
use neurofi_dist::{named_campaign, run_local_cluster, DistError, LocalClusterConfig};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("neurofi-dist-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn assert_bit_identical(distributed: &SweepResult, serial: &SweepResult) {
    assert_eq!(distributed.kind, serial.kind);
    assert_eq!(
        distributed.baseline_accuracy.to_bits(),
        serial.baseline_accuracy.to_bits(),
        "baseline accuracy diverged"
    );
    assert_eq!(distributed.cells.len(), serial.cells.len());
    for (d, s) in distributed.cells.iter().zip(&serial.cells) {
        assert_eq!(d.rel_change.to_bits(), s.rel_change.to_bits());
        assert_eq!(d.fraction.to_bits(), s.fraction.to_bits());
        assert_eq!(
            d.accuracy.to_bits(),
            s.accuracy.to_bits(),
            "cell ({}, {}) accuracy diverged",
            s.rel_change,
            s.fraction
        );
        assert_eq!(
            d.relative_change_percent.to_bits(),
            s.relative_change_percent.to_bits()
        );
    }
}

#[test]
fn sharded_sweep_is_bit_identical_to_serial() {
    let campaign = named_campaign("tiny").unwrap();
    let serial = campaign.run_serial().unwrap();

    // The golden grid must have structure: on a flat surface a slot
    // mix-up would be invisible to the bit comparison.
    let distinct: std::collections::HashSet<u64> =
        serial.cells.iter().map(|c| c.accuracy.to_bits()).collect();
    assert!(distinct.len() >= 2, "golden surface is flat");

    let report = run_local_cluster(&LocalClusterConfig::new(campaign, 2)).unwrap();
    assert_bit_identical(&report.sweep.result, &serial);
    assert_eq!(report.sweep.total_cells, serial.cells.len());
    assert_eq!(report.sweep.resumed_cells, 0);
    assert_eq!(report.sweep.computed_cells, serial.cells.len());
    assert_eq!(report.sweep.workers_seen, 2);

    // Both workers ended with a graceful Finished and between them
    // covered the whole grid.
    let mut executed = 0;
    for worker in &report.workers {
        let summary = worker.as_ref().expect("worker failed");
        assert!(summary.finished);
        executed += summary.cells_executed;
    }
    assert_eq!(executed, serial.cells.len());
}

#[test]
fn killed_workers_then_resume_completes_without_recompute() {
    let dir = temp_dir("resume");
    let journal = dir.join("campaign.journal");
    let campaign = named_campaign("tiny").unwrap();
    let total = campaign.plan().jobs.len();
    assert_eq!(total, 6);

    // Phase 1: two workers that each execute exactly one cell and then
    // vanish mid-campaign (the preemption path). With nobody left to
    // serve, the coordinator gives up quickly and checkpoints progress.
    let mut interrupted = LocalClusterConfig::new(campaign.clone(), 2);
    interrupted.journal = Some(journal.clone());
    interrupted.worker_max_cells = Some(1);
    interrupted.idle_timeout = Duration::from_millis(400);
    let err = run_local_cluster(&interrupted).unwrap_err();
    match err {
        DistError::Incomplete {
            done,
            total: t,
            journal: j,
        } => {
            assert_eq!(done, 2, "each preempted worker completed one cell");
            assert_eq!(t, total);
            assert_eq!(j.as_deref(), Some(journal.as_path()));
        }
        other => panic!("expected Incomplete, got {other}"),
    }
    let journal_text = std::fs::read_to_string(&journal).unwrap();
    assert_eq!(
        journal_text
            .lines()
            .filter(|l| l.starts_with("cell "))
            .count(),
        2,
        "both finished cells were checkpointed:\n{journal_text}"
    );

    // Phase 2: resume with healthy workers. Only the two unfinished
    // cells may be computed; the journal supplies the rest.
    let mut resumed = LocalClusterConfig::new(campaign.clone(), 2);
    resumed.journal = Some(journal.clone());
    let report = run_local_cluster(&resumed).unwrap();
    assert_eq!(report.sweep.resumed_cells, 2);
    assert_eq!(report.sweep.computed_cells, total - 2);
    let recomputed: usize = report
        .workers
        .iter()
        .map(|w| w.as_ref().expect("worker failed").cells_executed)
        .sum();
    assert_eq!(
        recomputed,
        total - 2,
        "finished cells must not be recomputed"
    );

    // The resumed merge is still bit-identical to the serial engine.
    let serial = campaign.run_serial().unwrap();
    assert_bit_identical(&report.sweep.result, &serial);

    // Resuming a *complete* journal computes nothing at all.
    let mut replay = LocalClusterConfig::new(campaign, 0);
    replay.journal = Some(journal);
    replay.idle_timeout = Duration::from_millis(400);
    let report = run_local_cluster(&replay).unwrap();
    assert_eq!(report.sweep.resumed_cells, total);
    assert_eq!(report.sweep.computed_cells, 0);
    assert_bit_identical(&report.sweep.result, &serial);

    let _ = std::fs::remove_dir_all(&dir);
}
