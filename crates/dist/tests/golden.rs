//! Golden regression: sharded sweeps (coordinator + in-process workers
//! over localhost TCP) must be *bit*-identical to the serial engine —
//! including when several campaigns share one worker fleet — and
//! interrupted runs must resume every campaign from its checkpoint
//! journal without recomputing finished cells.

use std::path::PathBuf;
use std::time::Duration;

use neurofi_core::sweep::SweepResult;
use neurofi_dist::{
    campaign_journal_path, named_campaign, run_local_cluster, DistError, LocalClusterConfig,
    NamedCampaign,
};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("neurofi-dist-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn assert_bit_identical(distributed: &SweepResult, serial: &SweepResult) {
    assert_eq!(distributed.kind, serial.kind);
    assert_eq!(
        distributed.baseline_accuracy.to_bits(),
        serial.baseline_accuracy.to_bits(),
        "baseline accuracy diverged"
    );
    assert_eq!(distributed.cells.len(), serial.cells.len());
    for (d, s) in distributed.cells.iter().zip(&serial.cells) {
        assert_eq!(d.rel_change.to_bits(), s.rel_change.to_bits());
        assert_eq!(d.fraction.to_bits(), s.fraction.to_bits());
        assert_eq!(
            d.accuracy.to_bits(),
            s.accuracy.to_bits(),
            "cell ({}, {}) accuracy diverged",
            s.rel_change,
            s.fraction
        );
        assert_eq!(
            d.relative_change_percent.to_bits(),
            s.relative_change_percent.to_bits()
        );
    }
}

#[test]
fn sharded_sweep_is_bit_identical_to_serial() {
    let campaign = named_campaign("tiny").unwrap();
    let serial = campaign.run_serial().unwrap();

    // The golden grid must have structure: on a flat surface a slot
    // mix-up would be invisible to the bit comparison.
    let distinct: std::collections::HashSet<u64> =
        serial.cells.iter().map(|c| c.accuracy.to_bits()).collect();
    assert!(distinct.len() >= 2, "golden surface is flat");

    let report = run_local_cluster(&LocalClusterConfig::new(campaign, 2)).unwrap();
    let sweep = &report.run.campaigns[0];
    assert_bit_identical(&sweep.result, &serial);
    assert_eq!(sweep.total_cells, serial.cells.len());
    assert_eq!(sweep.resumed_cells, 0);
    assert_eq!(sweep.computed_cells, serial.cells.len());
    assert_eq!(report.run.workers_seen, 2);

    // Both workers ended with a graceful Finished and between them
    // covered the whole grid.
    let mut executed = 0;
    for worker in &report.workers {
        let summary = worker.as_ref().expect("worker failed");
        assert!(summary.finished);
        executed += summary.cells_executed;
    }
    assert_eq!(executed, serial.cells.len());
}

#[test]
fn two_campaigns_share_one_fleet_and_stay_bit_identical() {
    // Two *different attack kinds* over the same experiment setup: the
    // worker-side baseline cache is keyed by setup, so the second
    // campaign's baselines are pure cache hits.
    let campaigns = vec![
        NamedCampaign::new("tiny", named_campaign("tiny").unwrap()),
        NamedCampaign::new("tiny-theta", named_campaign("tiny-theta").unwrap()),
    ];
    let serial_tiny = campaigns[0].spec.run_serial().unwrap();
    let serial_theta = campaigns[1].spec.run_serial().unwrap();
    assert_ne!(
        serial_tiny.kind, serial_theta.kind,
        "the two campaigns must sweep different attack kinds"
    );
    let distinct: std::collections::HashSet<u64> = serial_theta
        .cells
        .iter()
        .map(|c| c.accuracy.to_bits())
        .collect();
    assert!(distinct.len() >= 2, "theta golden surface is flat");

    let total = campaigns[0].spec.plan().jobs.len() + campaigns[1].spec.plan().jobs.len();
    let report = run_local_cluster(&LocalClusterConfig::multi(campaigns, 2)).unwrap();
    assert_eq!(report.run.campaigns.len(), 2);
    assert_eq!(report.run.campaigns[0].name, "tiny");
    assert_eq!(report.run.campaigns[1].name, "tiny-theta");
    assert_bit_identical(&report.run.campaigns[0].result, &serial_tiny);
    assert_bit_identical(&report.run.campaigns[1].result, &serial_theta);
    assert_eq!(
        report.run.workers_seen, 2,
        "one fleet serves both campaigns"
    );

    // One connection per worker served both campaigns: the cells both
    // workers executed across all campaigns cover both grids exactly.
    let executed: usize = report
        .workers
        .iter()
        .map(|w| w.as_ref().expect("worker failed").cells_executed)
        .sum();
    assert_eq!(executed, total);
}

#[test]
fn killed_workers_then_resume_completes_without_recompute() {
    let dir = temp_dir("resume");
    let journal = dir.join("campaign.journal");
    let campaign = named_campaign("tiny").unwrap();
    let total = campaign.plan().jobs.len();
    assert_eq!(total, 6);

    // Phase 1: two workers that each execute exactly one cell and then
    // vanish mid-campaign (the preemption path). With nobody left to
    // serve, the coordinator gives up quickly and checkpoints progress.
    let mut interrupted = LocalClusterConfig::new(campaign.clone(), 2);
    interrupted.journal = Some(journal.clone());
    interrupted.worker_max_cells = Some(1);
    interrupted.idle_timeout = Duration::from_millis(400);
    let err = run_local_cluster(&interrupted).unwrap_err();
    match err {
        DistError::Incomplete {
            done,
            total: t,
            journal: j,
        } => {
            assert_eq!(done, 2, "each preempted worker completed one cell");
            assert_eq!(t, total);
            assert_eq!(j.as_deref(), Some(journal.as_path()));
        }
        other => panic!("expected Incomplete, got {other}"),
    }
    // Journals are always suffixed by campaign name (the single
    // bind-time campaign is queued as `main`).
    let journal_text = std::fs::read_to_string(campaign_journal_path(&journal, "main")).unwrap();
    assert_eq!(
        journal_text
            .lines()
            .filter(|l| l.starts_with("cell "))
            .count(),
        2,
        "both finished cells were checkpointed:\n{journal_text}"
    );

    // Phase 2: resume with healthy workers. Only the four unfinished
    // cells may be computed; the journal supplies the rest.
    let mut resumed = LocalClusterConfig::new(campaign.clone(), 2);
    resumed.journal = Some(journal.clone());
    let report = run_local_cluster(&resumed).unwrap();
    let sweep = &report.run.campaigns[0];
    assert_eq!(sweep.resumed_cells, 2);
    assert_eq!(sweep.computed_cells, total - 2);
    let recomputed: usize = report
        .workers
        .iter()
        .map(|w| w.as_ref().expect("worker failed").cells_executed)
        .sum();
    assert_eq!(
        recomputed,
        total - 2,
        "finished cells must not be recomputed"
    );

    // The resumed merge is still bit-identical to the serial engine.
    let serial = campaign.run_serial().unwrap();
    assert_bit_identical(&sweep.result, &serial);

    // Resuming a *complete* journal computes nothing at all.
    let mut replay = LocalClusterConfig::new(campaign, 0);
    replay.journal = Some(journal);
    replay.idle_timeout = Duration::from_millis(400);
    let report = run_local_cluster(&replay).unwrap();
    let sweep = &report.run.campaigns[0];
    assert_eq!(sweep.resumed_cells, total);
    assert_eq!(sweep.computed_cells, 0);
    assert_bit_identical(&sweep.result, &serial);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn multi_campaign_kill_and_resume_skips_finished_cells_in_every_campaign() {
    let dir = temp_dir("multi-resume");
    let journal = dir.join("run.journal");
    let campaigns = vec![
        NamedCampaign::new("tiny", named_campaign("tiny").unwrap()),
        NamedCampaign::new("tiny-theta", named_campaign("tiny-theta").unwrap()),
    ];
    let totals: Vec<usize> = campaigns.iter().map(|c| c.spec.plan().jobs.len()).collect();
    let total: usize = totals.iter().sum();

    // Phase 1: preempted workers leave the run incomplete; each
    // campaign journals to its own digest-bound file.
    let mut interrupted = LocalClusterConfig::multi(campaigns.clone(), 2);
    interrupted.journal = Some(journal.clone());
    interrupted.worker_max_cells = Some(2);
    interrupted.idle_timeout = Duration::from_millis(400);
    let err = run_local_cluster(&interrupted).unwrap_err();
    let done = match err {
        DistError::Incomplete { done, total: t, .. } => {
            assert_eq!(t, total);
            assert!(done >= 1 && done < total, "run must be genuinely partial");
            done
        }
        other => panic!("expected Incomplete, got {other}"),
    };
    assert!(
        journal.with_file_name("run.journal.tiny").exists(),
        "per-campaign journal `run.journal.tiny` missing"
    );
    assert!(
        journal.with_file_name("run.journal.tiny-theta").exists(),
        "per-campaign journal `run.journal.tiny-theta` missing"
    );

    // Phase 2: resume with healthy workers; finished cells from *both*
    // campaigns are recovered, only the remainder is computed.
    let mut resumed = LocalClusterConfig::multi(campaigns.clone(), 2);
    resumed.journal = Some(journal.clone());
    let report = run_local_cluster(&resumed).unwrap();
    let resumed_total: usize = report.run.campaigns.iter().map(|c| c.resumed_cells).sum();
    let computed_total: usize = report.run.campaigns.iter().map(|c| c.computed_cells).sum();
    assert_eq!(resumed_total, done, "every journaled cell must be resumed");
    assert_eq!(computed_total, total - done);
    let recomputed: usize = report
        .workers
        .iter()
        .map(|w| w.as_ref().expect("worker failed").cells_executed)
        .sum();
    assert_eq!(recomputed, total - done, "zero recompute across campaigns");

    for (campaign, sweep) in campaigns.iter().zip(&report.run.campaigns) {
        assert_bit_identical(&sweep.result, &campaign.spec.run_serial().unwrap());
    }

    // Phase 3: replaying the fully complete journals computes nothing.
    let mut replay = LocalClusterConfig::multi(campaigns, 0);
    replay.journal = Some(journal);
    replay.idle_timeout = Duration::from_millis(400);
    let report = run_local_cluster(&replay).unwrap();
    for (sweep, &t) in report.run.campaigns.iter().zip(&totals) {
        assert_eq!(sweep.resumed_cells, t);
        assert_eq!(sweep.computed_cells, 0);
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn custom_cross_product_scenario_is_bit_identical_to_serial() {
    // A scenario only expressible as a custom spec — a threshold grid
    // crossed with a VDD axis, an attack surface the paper never ran —
    // must shard and merge bit-identically to its serial run, exactly
    // like the catalog presets. The spec arrives through the textual
    // grammar, the same path `repro submit --spec` uses.
    let parsed = neurofi_dist::parse_campaign_text(
        "name = cross\n\
         setup = bench\n\
         attack = threshold-inhibitory\n\
         axis rel_change = -0.2, 0.2\n\
         axis vdd = 0.9, 1\n\
         seeds = 42\n\
         transfer = paper\n",
    )
    .unwrap();
    let campaign = parsed.into_named("cross");
    assert!(
        neurofi_dist::named_campaign(&campaign.name).is_none(),
        "the scenario must not be a catalog preset"
    );
    let serial = campaign.spec.run_serial().unwrap();
    assert_eq!(serial.cells.len(), 4);
    // The surface must have structure (the depressed-VDD column behaves
    // differently), or slot mix-ups would be invisible.
    let distinct: std::collections::HashSet<u64> =
        serial.cells.iter().map(|c| c.accuracy.to_bits()).collect();
    assert!(distinct.len() >= 2, "cross-product surface is flat");

    let report = run_local_cluster(&LocalClusterConfig::multi(vec![campaign], 2)).unwrap();
    let sweep = &report.run.campaigns[0];
    assert_eq!(sweep.name, "cross");
    assert_bit_identical(&sweep.result, &serial);
    // Results are addressable by axis indices: cell (rel=-0.2, vdd=1.0)
    // sits at slot [0, 1] of the 2 × 2 surface.
    assert_eq!(sweep.result.shape(), vec![2, 2]);
    assert_eq!(
        sweep.result.cell_at(&[0, 1]).unwrap().accuracy.to_bits(),
        serial.cells[1].accuracy.to_bits()
    );
}
