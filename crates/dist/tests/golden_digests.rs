//! Golden store-key digests: the content-addressed result store keys
//! cells by a digest of (resolved setup, resolved cell attack, baseline
//! seeds[, transfer table]) — if that derivation ever changes, every
//! store on disk is silently invalidated and cross-campaign dedup
//! breaks without a single test failing. So the digests of the three
//! paper attack families (threshold, theta, vdd) are pinned to a
//! committed vector file; an intentional key change must regenerate it
//! with `UPDATE_GOLDEN=1` and say so in review.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use neurofi_core::{PowerTransferTable, ScenarioSpec};
use neurofi_dist::{named_campaign, CampaignSpec, SetupSpec};

/// The three paper attack families as concrete pinned grids: the
/// threshold smoke grid, the theta line, and a vdd grid over the
/// paper-nominal transfer table (vdd cells fold the table into the
/// key).
fn golden_specs() -> Vec<(&'static str, CampaignSpec)> {
    vec![
        ("tiny", named_campaign("tiny").unwrap()),
        ("tiny-theta", named_campaign("tiny-theta").unwrap()),
        (
            "vdd",
            CampaignSpec {
                setup: SetupSpec::bench(42),
                scenario: ScenarioSpec::vdd(
                    &[0.8, 1.0],
                    &PowerTransferTable::paper_nominal(),
                    &[42],
                ),
            },
        ),
    ]
}

fn render() -> String {
    let mut out = String::from(
        "# Golden store-key digests: FNV-1a over the canonical wire encoding of\n\
         # (resolved setup, resolved cell attack, baseline seeds[, transfer table]).\n\
         # Regenerate with: UPDATE_GOLDEN=1 cargo test -p neurofi-dist --test golden_digests\n\
         # A diff here invalidates every existing result store — review hard.\n",
    );
    for (name, spec) in golden_specs() {
        writeln!(out, "campaign {name} {:016x}", spec.digest()).unwrap();
        writeln!(out, "baseline {name} {:016x}", spec.baseline_digest()).unwrap();
        for (i, job) in spec.plan().jobs.iter().enumerate() {
            writeln!(
                out,
                "cell {name} {i} {:016x}",
                spec.cell_digest(&job.attack)
            )
            .unwrap();
        }
    }
    out
}

fn vector_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/digests.txt")
}

#[test]
fn store_key_digests_match_committed_vectors() {
    let rendered = render();
    let path = vector_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); bless initial vectors with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        committed, rendered,
        "store-key digest derivation changed: every content-addressed \
         store keyed by the old digests is silently invalidated. If \
         intentional, regenerate with UPDATE_GOLDEN=1 and call it out."
    );
}
