//! Crash-edge suite for the content-addressed result store, mirroring
//! the checkpoint journal's discipline: truncate a store file at *every
//! byte offset* — from the end of the header to the full file — and
//! assert that replay recovers exactly the longest valid prefix of
//! durable records, truncates the torn bytes, and accepts post-recovery
//! appends on a clean boundary. Plus the conflict guarantee the dedup
//! design rests on: a bit-different value appended under an existing
//! digest fails loudly, never silently wins.

use std::path::{Path, PathBuf};

use neurofi_core::sweep::SweepCell;
use neurofi_store::{Store, StoreError};

fn temp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("neurofi-store-crash-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Cells with awkward float bits (negative zero, subnormals, values
/// that don't round-trip through decimal) so a lossy encoding would be
/// caught, not masked.
fn cell(accuracy: f64) -> SweepCell {
    SweepCell {
        rel_change: -0.0,
        fraction: f64::MIN_POSITIVE,
        accuracy,
        relative_change_percent: accuracy * -10.0 + 0.1,
    }
}

const BASELINE_DIGEST: u64 = 0xba5e;
const CELL_DIGESTS: [u64; 3] = [0x1000, 0x1001, 0x1002];

/// Writes a reference store (baseline + 3 cells) and returns its bytes
/// plus the byte offset where each durable line — header included —
/// *ends*.
fn reference_store(dir: &Path) -> (Vec<u8>, Vec<usize>) {
    let path = dir.join("reference.store");
    let mut store = Store::open(&path).unwrap();
    store
        .put_baseline(BASELINE_DIGEST, 0.30000000000000004)
        .unwrap();
    for (i, &digest) in CELL_DIGESTS.iter().enumerate() {
        store.put_cell(digest, cell(0.1 + i as f64 * 0.07)).unwrap();
    }
    drop(store);
    let bytes = std::fs::read(&path).unwrap();
    let boundaries: Vec<usize> = bytes
        .iter()
        .enumerate()
        .filter(|&(_, &b)| b == b'\n')
        .map(|(i, _)| i + 1)
        .collect();
    assert_eq!(boundaries.len(), 5, "header + baseline + 3 cells");
    assert_eq!(*boundaries.last().unwrap(), bytes.len());
    (bytes, boundaries)
}

#[test]
fn truncation_at_every_byte_offset_recovers_the_longest_valid_prefix() {
    let dir = temp_dir("every-offset");
    let (bytes, boundaries) = reference_store(&dir);
    let header_end = boundaries[0];

    for len in header_end..=bytes.len() {
        let path = dir.join(format!("cut-{len}.store"));
        std::fs::write(&path, &bytes[..len]).unwrap();

        let mut store =
            Store::open(&path).unwrap_or_else(|e| panic!("replay failed at cut {len}: {e}"));
        // Records land in write order (baseline first), so the number
        // of line boundaries at or before the cut determines exactly
        // which records survive.
        let n_durable = boundaries.iter().filter(|&&b| b <= len).count() - 1;
        assert_eq!(
            store.get_baseline(BASELINE_DIGEST).is_some(),
            n_durable >= 1,
            "cut {len}: baseline survival"
        );
        let expect_cells = n_durable.saturating_sub(1);
        for (i, &digest) in CELL_DIGESTS.iter().enumerate() {
            assert_eq!(
                store.get_cell(digest).is_some(),
                i < expect_cells,
                "cut {len}: cell {i} survival"
            );
        }
        // Replay truncated the torn tail on disk, so a post-recovery
        // append starts on a clean line boundary and survives reopen.
        store
            .put_cell(0x9999, cell(0.25))
            .unwrap_or_else(|e| panic!("append after cut {len} failed: {e}"));
        drop(store);
        let reopened =
            Store::open(&path).unwrap_or_else(|e| panic!("re-replay failed at cut {len}: {e}"));
        assert!(
            reopened.get_cell(0x9999).is_some(),
            "cut {len}: post-recovery append lost"
        );
        assert_eq!(
            reopened.len(),
            n_durable + 1,
            "cut {len}: reopened record count"
        );
    }
}

#[test]
fn truncation_inside_the_header_is_refused_not_misread() {
    let dir = temp_dir("header-cut");
    let (bytes, boundaries) = reference_store(&dir);
    for len in 0..boundaries[0] {
        let path = dir.join(format!("cut-{len}.store"));
        std::fs::write(&path, &bytes[..len]).unwrap();
        assert!(
            Store::open(&path).is_err(),
            "cut {len}: a torn header must refuse to open, not replay as empty"
        );
    }
}

#[test]
fn bit_different_duplicate_append_fails_loudly() {
    let dir = temp_dir("conflict");
    let path = dir.join("conflict.store");
    let mut store = Store::open(&path).unwrap();
    let original = cell(0.5);
    assert!(store.put_cell(7, original).unwrap());
    // Identical re-append is an idempotent no-op...
    assert!(!store.put_cell(7, original).unwrap());
    // ...but a single-ULP difference under the same digest is a
    // conflict, both at append time and at replay time.
    let mut drifted = original;
    drifted.accuracy = f64::from_bits(drifted.accuracy.to_bits() + 1);
    match store.put_cell(7, drifted) {
        Err(StoreError::Conflict { digest: 7, .. }) => {}
        other => panic!("expected a conflict, got {other:?}"),
    }
    let mut base_drift = store.get_baseline(99);
    assert!(base_drift.is_none());
    store.put_baseline(99, 0.5).unwrap();
    base_drift = Some(f64::from_bits(0.5f64.to_bits() + 1));
    match store.put_baseline(99, base_drift.unwrap()) {
        Err(StoreError::Conflict { digest: 99, .. }) => {}
        other => panic!("expected a baseline conflict, got {other:?}"),
    }
    drop(store);

    // Forge the conflicting record directly on disk: replay must fail
    // loudly rather than let either version silently win.
    let mut bytes = std::fs::read(&path).unwrap();
    let forged = format!(
        "cell {:016x} 0 {:016x} {:016x} {:016x} {:016x}\n",
        7u64,
        (-0.0f64).to_bits(),
        f64::MIN_POSITIVE.to_bits(),
        f64::from_bits(0.5f64.to_bits() + 1).to_bits(),
        (0.5f64 * -10.0 + 0.1).to_bits(),
    );
    bytes.extend_from_slice(forged.as_bytes());
    std::fs::write(&path, &bytes).unwrap();
    match Store::open(&path) {
        Err(StoreError::Conflict { digest: 7, .. }) => {}
        other => panic!("expected a replay conflict, got {other:?}"),
    }
}
