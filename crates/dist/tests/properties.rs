//! Property tests for the wire protocol (via the vendored proptest
//! compat crate): encode/decode round-trips must be bit-exact, and
//! malformed frames — truncated or oversized — must be rejected, never
//! mis-decoded and never allowed to allocate unbounded memory.

use std::io::Cursor;

use neurofi_core::scenario::{
    AttackFamily, Axis, AxisKind, DefenseSel, DetectorSel, LayerSel, ScenarioSpec,
};
use neurofi_core::sweep::{CellAttack, CellJob, CellResult, SweepCell};
use neurofi_core::TargetLayer;
use neurofi_dist::wire::{
    decode_cell_job, decode_cell_result, decode_scenario_spec, encode_cell_job, encode_cell_result,
    encode_scenario_spec, read_frame, write_frame, CampaignProgress, Decoder, Encoder, Message,
    WireError,
};
use neurofi_dist::MAX_FRAME_LEN;
use proptest::prelude::*;

/// A composite cell: the family from `tag`, plus optional extra
/// components (theta, vdd, seed — and since v6, a defense and a
/// detector) toggled by `layer_tag`'s bits — so the round trips cover
/// pure legacy cells *and* cross-product cells.
fn build_job(index: usize, tag: u8, layer_tag: u8, a: f64, b: f64) -> CellJob {
    let mut attack = match tag % 3 {
        0 => CellAttack::threshold(
            match layer_tag % 3 {
                0 => None,
                1 => Some(TargetLayer::Excitatory),
                _ => Some(TargetLayer::Inhibitory),
            },
            a,
            b,
        ),
        1 => CellAttack::theta(a),
        _ => CellAttack::vdd(b),
    };
    if layer_tag & 4 != 0 {
        attack.vdd = Some(b.abs() + 0.1);
    }
    if layer_tag & 8 != 0 {
        attack.theta_change = Some(a);
    }
    if layer_tag & 16 != 0 {
        attack.seed = Some(index as u64);
    }
    if layer_tag & 32 != 0 {
        attack.defense = [
            DefenseSel::RobustDriver,
            DefenseSel::BandgapThreshold,
            DefenseSel::SizedNeuron,
            DefenseSel::Comparator,
        ][(tag % 4) as usize];
    }
    if layer_tag & 64 != 0 {
        attack.detector = DetectorSel::DummyNeuron;
    }
    CellJob { index, attack }
}

type JobBits = (
    usize,
    AttackFamily,
    Option<u64>,
    u64,
    Option<u64>,
    Option<u64>,
    Option<u64>,
    DefenseSel,
    DetectorSel,
);

fn job_bits(job: &CellJob) -> JobBits {
    (
        job.index,
        job.attack.family,
        job.attack.rel_change.map(f64::to_bits),
        job.attack.fraction.to_bits(),
        job.attack.theta_change.map(f64::to_bits),
        job.attack.vdd.map(f64::to_bits),
        job.attack.seed,
        job.attack.defense,
        job.attack.detector,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn cell_jobs_round_trip_bit_exactly(
        index in 0usize..1_000_000,
        tag in 0u8..3,
        layer_tag in 0u8..128,
        a in -0.99f64..=2.0,
        b in 0.0f64..=1.5,
    ) {
        let job = build_job(index, tag, layer_tag, a, b);
        let mut enc = Encoder::new();
        encode_cell_job(&mut enc, &job);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        let decoded = decode_cell_job(&mut dec).expect("round trip decodes");
        dec.expect_end().expect("no trailing bytes");
        prop_assert_eq!(job_bits(&decoded), job_bits(&job));
    }

    #[test]
    fn cell_results_round_trip_bit_exactly(
        index in 0usize..1_000_000,
        rel in -0.5f64..=0.5,
        frac in 0.0f64..=1.0,
        acc in 0.0f64..=1.0,
        chg in -100.0f64..=100.0,
    ) {
        let result = CellResult {
            index,
            cell: SweepCell {
                rel_change: rel,
                fraction: frac,
                accuracy: acc,
                relative_change_percent: chg,
            },
        };
        let mut enc = Encoder::new();
        encode_cell_result(&mut enc, &result);
        let bytes = enc.finish();
        let decoded = decode_cell_result(&mut Decoder::new(&bytes)).expect("decodes");
        prop_assert_eq!(decoded.index, result.index);
        prop_assert_eq!(decoded.cell.rel_change.to_bits(), rel.to_bits());
        prop_assert_eq!(decoded.cell.fraction.to_bits(), frac.to_bits());
        prop_assert_eq!(decoded.cell.accuracy.to_bits(), acc.to_bits());
        prop_assert_eq!(decoded.cell.relative_change_percent.to_bits(), chg.to_bits());
    }

    #[test]
    fn assign_messages_round_trip_through_frames(
        campaign in 0u32..64,
        n_jobs in 1usize..40,
        tag in 0u8..3,
        a in -0.9f64..=1.5,
    ) {
        let jobs: Vec<CellJob> = (0..n_jobs)
            .map(|i| build_job(i, tag.wrapping_add(i as u8), i as u8, a, a.abs()))
            .collect();
        let message = Message::Assign { campaign, jobs };
        let mut framed = Vec::new();
        message.write_to(&mut framed).expect("frame writes");
        let decoded = Message::read_from(&mut Cursor::new(framed)).expect("frame reads");
        prop_assert_eq!(decoded, message);
    }

    #[test]
    fn campaign_tagged_results_and_acks_round_trip(
        campaign in 0u32..64,
        n_results in 1usize..30,
        baseline in 0.0f64..=1.0,
        acc in 0.0f64..=1.0,
    ) {
        let results: Vec<CellResult> = (0..n_results)
            .map(|i| CellResult {
                index: i,
                cell: SweepCell {
                    rel_change: -0.2,
                    fraction: i as f64 / n_results as f64,
                    accuracy: acc,
                    relative_change_percent: (acc - baseline) * 100.0,
                },
            })
            .collect();
        let message = Message::Results {
            campaign,
            baseline_accuracy: baseline,
            results,
        };
        let decoded = Message::decode(&message.encode()).expect("results decode");
        prop_assert_eq!(&decoded, &message);
        // The window acknowledgement the coordinator answers with.
        let ack = Message::Ack { campaign, received: n_results as u32 };
        prop_assert_eq!(Message::decode(&ack.encode()).expect("ack decodes"), ack);
    }

    #[test]
    fn failed_cell_reports_round_trip(
        campaign in 0u32..64,
        index in 0u64..1_000_000,
        reason_seed in 0usize..4,
    ) {
        let reason = ["solver diverged", "NaN accuracy", "", "oom"][reason_seed].to_string();
        let message = Message::Failed { campaign, index, reason };
        prop_assert_eq!(Message::decode(&message.encode()).expect("decodes"), message);
    }

    #[test]
    fn handshake_and_lifecycle_messages_round_trip(
        protocol in 0u32..=u32::MAX,
        threads in 1u32..4096,
        max_cells in 1u32..=u32::MAX,
        cut_seed in 0u64..10_000,
    ) {
        // The fixed-shape control messages: Hello (worker handshake),
        // Request (batch pull), Status (snapshot poll), Finished
        // (drain). Each round-trips bit-exact and rejects every strict
        // prefix.
        for message in [
            Message::Hello { protocol, threads },
            Message::Request { max_cells },
            Message::Status { protocol },
            Message::Finished,
        ] {
            let payload = message.encode();
            prop_assert_eq!(Message::decode(&payload).expect("decodes"), message);
            let cut = (cut_seed as usize) % payload.len();
            prop_assert!(Message::decode(&payload[..cut]).is_err());
        }
    }

    #[test]
    fn progress_snapshots_round_trip_and_reject_hostile_lengths(
        n_campaigns in 0usize..8,
        total in 0u64..1_000_000,
        done in 0u64..1_000_000,
        failed in 0u8..2,
        claimed in 1_000u32..=u32::MAX,
    ) {
        let campaigns: Vec<CampaignProgress> = (0..n_campaigns)
            .map(|i| CampaignProgress {
                name: format!("campaign-{i}"),
                total,
                queued: total.saturating_sub(done),
                running: (i as u64) % 3,
                done,
                resumed: done / 2,
                store_hits: done / 3,
                detected: done / 4,
                missed: (i as u64) % 2,
                failed: failed == 1,
            })
            .collect();
        let message = Message::Progress { campaigns };
        let payload = message.encode();
        prop_assert_eq!(Message::decode(&payload).expect("snapshot decodes"), message);
        // Any strict prefix is rejected, never mis-decoded.
        for cut in 0..payload.len() {
            prop_assert!(Message::decode(&payload[..cut]).is_err());
        }
        // A snapshot claiming a multi-gigabyte campaign count with no
        // bytes behind it must be refused before allocating.
        let mut enc = Encoder::new();
        enc.u8(13); // Progress tag
        enc.u32(claimed);
        enc.u8(0);
        prop_assert!(Message::decode(&enc.finish()).is_err());
    }

    #[test]
    fn truncated_payloads_are_rejected_not_misdecoded(
        n_jobs in 1usize..20,
        cut_seed in 0u64..10_000,
    ) {
        let jobs: Vec<CellJob> = (0..n_jobs)
            .map(|i| build_job(i, i as u8, i as u8, 0.1, 0.9))
            .collect();
        let payload = (Message::Assign { campaign: 3, jobs }).encode();
        // Any strict prefix must fail to decode.
        let cut = (cut_seed as usize) % payload.len();
        prop_assert!(Message::decode(&payload[..cut]).is_err());
        // A frame cut mid-payload must fail the stream read.
        let mut framed = Vec::new();
        write_frame(&mut framed, &payload).expect("frame writes");
        let keep = 4 + cut; // header survives, payload is short
        prop_assert!(read_frame(&mut Cursor::new(framed[..keep].to_vec())).is_err());
    }

    #[test]
    fn oversized_frame_headers_are_rejected_before_allocation(
        excess in 1u64..=(u32::MAX as u64 - MAX_FRAME_LEN as u64),
    ) {
        let claimed = (MAX_FRAME_LEN as u64 + excess) as u32;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&claimed.to_be_bytes());
        // No payload follows — if the length were honoured this would
        // either allocate gigabytes or block; it must fail fast instead.
        match read_frame(&mut Cursor::new(bytes)) {
            Err(WireError::Oversized(n)) => prop_assert_eq!(n, claimed as usize),
            other => prop_assert!(false, "expected Oversized, got {:?}", other),
        }
    }

    #[test]
    fn hostile_sequence_lengths_never_allocate(
        claimed in 1_000u32..=u32::MAX,
    ) {
        // An Assign message whose job count vastly exceeds the bytes
        // present: the decoder must reject it as truncated instead of
        // reserving `claimed * size_of::<CellJob>()` up front.
        let mut enc = Encoder::new();
        enc.u8(3); // Assign tag
        enc.u32(0); // campaign id
        enc.u32(claimed);
        enc.u8(0); // a few stray bytes, far fewer than claimed jobs
        prop_assert!(Message::decode(&enc.finish()).is_err());
        // Same for a hostile campaign-queue handshake.
        let mut enc = Encoder::new();
        enc.u8(1); // Campaigns tag
        enc.u32(claimed);
        enc.u8(0);
        prop_assert!(Message::decode(&enc.finish()).is_err());
    }

    #[test]
    fn truncated_campaign_queues_are_rejected(
        cut_seed in 0u64..10_000,
        weight_a in 1u32..1000,
        weight_b in 1u32..1000,
    ) {
        let campaigns = vec![
            neurofi_dist::NamedCampaign::new(
                "tiny",
                neurofi_dist::named_campaign("tiny").unwrap(),
            ).with_weight(weight_a),
            neurofi_dist::NamedCampaign::new(
                "tiny-theta",
                neurofi_dist::named_campaign("tiny-theta").unwrap(),
            ).with_weight(weight_b),
        ];
        let message = Message::Campaigns { campaigns };
        let payload = message.encode();
        // The v3 queue round-trips whole — including the per-campaign
        // scheduling weights (policy fields).
        prop_assert_eq!(Message::decode(&payload).expect("whole queue decodes"), message);
        let cut = (cut_seed as usize) % payload.len();
        prop_assert!(Message::decode(&payload[..cut]).is_err());
    }

    #[test]
    fn submit_frames_round_trip_with_policy_fields(
        weight in 1u32..=u32::MAX,
        grid_seed in 0usize..3,
        name_seed in 0usize..4,
    ) {
        let grid = ["tiny", "tiny-theta", "fig8-reduced"][grid_seed];
        let name = ["tiny", "late", "a", "grid-with-a-long-queue-name"][name_seed];
        let campaign = neurofi_dist::NamedCampaign::new(
            name,
            neurofi_dist::named_campaign(grid).unwrap(),
        ).with_weight(weight);
        let message = Message::Submit {
            protocol: neurofi_dist::PROTOCOL_VERSION,
            campaign,
        };
        let payload = message.encode();
        prop_assert_eq!(Message::decode(&payload).expect("submit decodes"), message);
        // Any strict prefix is rejected, never mis-decoded.
        for cut in 0..payload.len() {
            prop_assert!(Message::decode(&payload[..cut]).is_err());
        }
    }

    #[test]
    fn announce_and_submit_ok_frames_round_trip(
        id in 0u32..=u32::MAX,
        weight in 1u32..10_000,
        cut_seed in 0u64..10_000,
    ) {
        let campaign = neurofi_dist::NamedCampaign::new(
            "announced",
            neurofi_dist::named_campaign("tiny-theta").unwrap(),
        ).with_weight(weight);
        let message = Message::CampaignAnnounce { id, campaign };
        let payload = message.encode();
        prop_assert_eq!(Message::decode(&payload).expect("announce decodes"), message);
        let cut = (cut_seed as usize) % payload.len();
        prop_assert!(Message::decode(&payload[..cut]).is_err());

        let ok = Message::SubmitOk { id };
        prop_assert_eq!(Message::decode(&ok.encode()).expect("ok decodes"), ok);
    }

    #[test]
    fn oversized_submit_frames_are_rejected_before_the_wire(
        extra in 1usize..4096,
    ) {
        // A Submit whose campaign name alone overflows the frame cap
        // must be refused at write time, not shipped or mis-framed.
        let campaign = neurofi_dist::NamedCampaign::new(
            "x".repeat(MAX_FRAME_LEN + extra),
            neurofi_dist::named_campaign("tiny").unwrap(),
        );
        let message = Message::Submit {
            protocol: neurofi_dist::PROTOCOL_VERSION,
            campaign,
        };
        let mut framed = Vec::new();
        match write_frame(&mut framed, &message.encode()) {
            Err(WireError::Oversized(n)) => prop_assert!(n > MAX_FRAME_LEN),
            other => prop_assert!(false, "expected Oversized, got {:?}", other),
        }
    }

    #[test]
    fn scenario_specs_round_trip_on_the_wire_and_in_the_grammar(
        rel_a in -0.99f64..=0.99,
        rel_b in -0.99f64..=0.99,
        fraction in 0.0f64..=1.0,
        vdd in 0.1f64..=2.0,
        n_seeds in 1usize..5,
        vdd_toggle in 0u8..2,
        layer_toggle in 0u8..2,
    ) {
        let (with_vdd, with_layer) = (vdd_toggle == 1, layer_toggle == 1);
        let mut axes = vec![
            Axis::real(AxisKind::RelChange, vec![rel_a, rel_b]),
            Axis::real(AxisKind::Fraction, vec![fraction]),
        ];
        if with_vdd {
            axes.push(Axis::real(AxisKind::Vdd, vec![vdd]));
        }
        if with_layer {
            axes.push(Axis::layers(vec![LayerSel::Excitatory, LayerSel::Both]));
        }
        let spec = ScenarioSpec {
            family: AttackFamily::Threshold(LayerSel::Inhibitory),
            axes,
            seeds: (0..n_seeds as u64).collect(),
            transfer: with_vdd.then(|| {
                neurofi_core::PowerTransferTable::paper_nominal().points().to_vec()
            }),
        };
        spec.validate().expect("generated specs are valid");

        // Wire round trip (protocol v4): bit-exact.
        let mut enc = Encoder::new();
        encode_scenario_spec(&mut enc, &spec);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        let wired = decode_scenario_spec(&mut dec).expect("wire round trip");
        dec.expect_end().expect("no trailing bytes");
        prop_assert_eq!(&wired, &spec);
        // Any strict prefix is rejected, never mis-decoded.
        for cut in 0..bytes.len() {
            prop_assert!(decode_scenario_spec(&mut Decoder::new(&bytes[..cut])).is_err());
        }

        // Grammar round trip: parse(display(spec)) is the identity,
        // including float artefacts, because Display uses shortest
        // round-trippable representations.
        let text = spec.to_string();
        let reparsed: ScenarioSpec = text.parse().expect("grammar round trip");
        prop_assert_eq!(&reparsed, &spec);
    }

    #[test]
    fn countermeasure_axes_round_trip_on_the_wire_and_in_the_grammar(
        vdd in 0.5f64..=1.4,
        defense_mask in 1u8..32,
        with_detector in 0u8..2,
    ) {
        // A v6 spec crossing the attack with §V defenses and the §V-C
        // detector: wire and grammar round trips must both be the
        // identity, and every strict wire prefix must be rejected.
        let all = [
            DefenseSel::None,
            DefenseSel::RobustDriver,
            DefenseSel::BandgapThreshold,
            DefenseSel::SizedNeuron,
            DefenseSel::Comparator,
        ];
        let defenses: Vec<DefenseSel> = all
            .iter()
            .copied()
            .enumerate()
            .filter(|(i, _)| defense_mask & (1 << i) != 0)
            .map(|(_, d)| d)
            .collect();
        let mut detectors = vec![DetectorSel::None];
        if with_detector == 1 {
            detectors.push(DetectorSel::DummyNeuron);
        }
        let spec = ScenarioSpec {
            family: AttackFamily::Vdd,
            axes: vec![
                Axis::real(AxisKind::Vdd, vec![vdd]),
                Axis::defenses(defenses),
                Axis::detectors(detectors),
            ],
            seeds: vec![42],
            transfer: Some(
                neurofi_core::PowerTransferTable::paper_nominal().points().to_vec(),
            ),
        };
        spec.validate().expect("generated countermeasure specs are valid");

        let mut enc = Encoder::new();
        encode_scenario_spec(&mut enc, &spec);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        let wired = decode_scenario_spec(&mut dec).expect("wire round trip");
        dec.expect_end().expect("no trailing bytes");
        prop_assert_eq!(&wired, &spec);
        for cut in 0..bytes.len() {
            prop_assert!(decode_scenario_spec(&mut Decoder::new(&bytes[..cut])).is_err());
        }

        let text = spec.to_string();
        let reparsed: ScenarioSpec = text.parse().expect("grammar round trip");
        prop_assert_eq!(&reparsed, &spec);
    }

    #[test]
    fn countermeasure_grammar_rejects_hostile_tokens(
        hostile_len in 65usize..4_096,
        which in 0u8..2,
    ) {
        // Unknown variants are named in the rejection; hostile-length
        // tokens are refused with the echo clipped, mirroring the other
        // categorical axes.
        let axis = ["defense", "detector"][which as usize];
        let unknown = Axis::parse(&format!("{axis}=firewall"));
        let err = unknown.expect_err("unknown variant must be rejected").to_string();
        prop_assert!(err.contains("firewall"), "refusal echoes the token: {}", err);
        let hostile = format!("{axis}={}", "x".repeat(hostile_len));
        prop_assert!(Axis::parse(&hostile).is_err());
        // A defense that isn't `none` is only meaningful against a vdd
        // fault — validation, not the parser, enforces that.
        let spec = ScenarioSpec {
            family: AttackFamily::Theta,
            axes: vec![
                Axis::real(AxisKind::ThetaChange, vec![0.1]),
                Axis::defenses(vec![DefenseSel::BandgapThreshold]),
            ],
            seeds: vec![1],
            transfer: None,
        };
        prop_assert!(spec.validate().is_err());
    }

    #[test]
    fn hostile_countermeasure_axis_lengths_never_allocate(
        claimed in 1_000u32..=u32::MAX,
        which in 0u8..2,
    ) {
        // A forged defense/detector axis claiming a multi-gigabyte
        // value count with one stray byte behind it must be rejected
        // as truncated instead of allocating.
        let mut enc = Encoder::new();
        enc.u8(2); // family: vdd
        enc.u32(1); // one axis
        enc.u8(if which == 0 { 7 } else { 8 }); // defense / detector axis tag
        enc.u32(claimed); // hostile value count
        enc.u8(0);
        prop_assert!(decode_scenario_spec(&mut Decoder::new(&enc.finish())).is_err());
    }

    #[test]
    fn hostile_scenario_payloads_never_allocate(
        claimed in 1_000u32..=u32::MAX,
        stage in 0usize..3,
    ) {
        // A scenario whose axis count, axis length, or transfer-point
        // count claims a multi-gigabyte sequence with no bytes behind
        // it must be rejected as truncated instead of allocating.
        let mut enc = Encoder::new();
        enc.u8(1); // family: theta
        match stage {
            0 => enc.u32(claimed), // hostile axis count
            1 => {
                enc.u32(1); // one axis
                enc.u8(0); // rel_change
                enc.u32(claimed); // hostile value count
            }
            _ => {
                enc.u32(0); // no axes
                enc.u32(0); // no seeds
                enc.u8(1); // transfer present
                enc.u32(claimed); // hostile point count
            }
        }
        enc.u8(0); // a stray byte, far fewer than claimed
        let bytes = enc.finish();
        prop_assert!(decode_scenario_spec(&mut Decoder::new(&bytes)).is_err());
    }

    #[test]
    fn grammar_rejects_empty_axes_and_hostile_lengths(
        n_values in 0usize..3,
        hostile_len in 65usize..4_096,
    ) {
        // Empty axes are rejected at parse time and by validation.
        if n_values == 0 {
            prop_assert!(Axis::parse("rel_change=").is_err());
        }
        // Overlong axis names are rejected before any lookup, mirroring
        // the wire layer's guards.
        let mut long_name = "a".repeat(hostile_len);
        long_name.push_str("=1");
        let overlong = Axis::parse(&long_name);
        prop_assert!(overlong.is_err());
        // Hostile point counts are rejected before expansion.
        prop_assert!(Axis::parse("rel_change=0..0.5/999999999").is_err());
        // Oversized spec text is rejected before line-splitting work.
        let oversized = format!(
            "attack = theta\n# {}",
            "x".repeat(neurofi_core::scenario::MAX_SPEC_TEXT)
        );
        prop_assert!(oversized.parse::<ScenarioSpec>().is_err());
    }

    #[test]
    fn campaign_names_round_trip_to_the_cap_and_are_refused_past_it(
        len in 1usize..=256,
        excess in 1usize..2048,
    ) {
        // MAX_NAME_LEN is a hard cap, not a truncation point: any name
        // up to it round-trips byte-exact, any name past it is refused
        // by the reader with the field named — never clamped, never
        // allocated.
        let spec = neurofi_dist::named_campaign("tiny").unwrap();
        let fits = neurofi_dist::NamedCampaign::new("n".repeat(len), spec.clone());
        prop_assert_eq!(len <= neurofi_dist::MAX_NAME_LEN, true);
        let message = Message::Submit {
            protocol: neurofi_dist::PROTOCOL_VERSION,
            campaign: fits,
        };
        prop_assert_eq!(Message::decode(&message.encode()).expect("capped name decodes"), message);

        let oversize = neurofi_dist::NamedCampaign::new(
            "n".repeat(neurofi_dist::MAX_NAME_LEN + excess),
            spec,
        );
        for message in [
            Message::Submit { protocol: neurofi_dist::PROTOCOL_VERSION, campaign: oversize.clone() },
            Message::CampaignAnnounce { id: 1, campaign: oversize.clone() },
        ] {
            match Message::decode(&message.encode()) {
                Err(WireError::Invalid(what)) => prop_assert!(
                    what.contains("campaign name"),
                    "the refusal must name the field: {}", what
                ),
                other => prop_assert!(false, "oversize name must be refused, got {:?}", other),
            }
        }
    }

    #[test]
    fn reason_fields_round_trip_under_the_cap_and_clamp_at_encode(
        len in 0usize..2048,
        excess in 1usize..128,
    ) {
        // Reasons are diagnostics: under MAX_REASON_LEN they round-trip
        // byte-exact; past it the *writer* clamps on a char boundary
        // (losing diagnostic tail beats losing the frame), so the
        // reader always sees a within-cap, valid-UTF-8 string.
        let reason = "r".repeat(len);
        let message = Message::Failed { campaign: 3, index: 7, reason };
        prop_assert_eq!(Message::decode(&message.encode()).expect("decodes"), message);

        // A multi-byte char straddling the cap must clamp to the char
        // boundary below it, not split the char.
        let oversize = "é".repeat((neurofi_dist::MAX_REASON_LEN + excess).div_ceil(2));
        prop_assert!(oversize.len() > neurofi_dist::MAX_REASON_LEN);
        for message in [
            Message::Abort { reason: oversize.clone() },
            Message::Failed { campaign: 0, index: 0, reason: oversize.clone() },
        ] {
            let reason = match Message::decode(&message.encode()).expect("clamped frame decodes") {
                Message::Abort { reason } | Message::Failed { reason, .. } => reason,
                other => { prop_assert!(false, "unexpected decode {:?}", other); unreachable!() }
            };
            prop_assert!(reason.len() <= neurofi_dist::MAX_REASON_LEN);
            prop_assert!(oversize.starts_with(&reason), "clamping must only drop the tail");
        }
    }

    #[test]
    fn forged_oversize_reason_frames_are_rejected_before_allocation(
        excess in 1u64..=(u32::MAX as u64 - neurofi_dist::MAX_REASON_LEN as u64),
    ) {
        // A hostile peer bypassing the encode-side clamp (raw length
        // prefix over the cap) must be refused by the reader's
        // allocation guard whether or not the bytes are present.
        let claimed = (neurofi_dist::MAX_REASON_LEN as u64 + excess) as u32;
        let mut enc = Encoder::new();
        enc.u8(6); // Abort tag
        enc.u32(claimed);
        enc.u8(b'x'); // far fewer bytes than claimed
        prop_assert!(matches!(
            Message::decode(&enc.finish()),
            Err(WireError::Invalid(_))
        ));
        // Same guard on Failed reports — with every claimed byte
        // actually present, so only the cap (not truncation) can reject.
        let present = (claimed as usize).min(neurofi_dist::MAX_REASON_LEN + 4096);
        let mut enc = Encoder::new();
        enc.u8(8); // Failed tag
        enc.u32(0); // campaign
        enc.u64(0); // index
        enc.string(&"x".repeat(present)); // raw length prefix + bytes, no clamp
        prop_assert!(matches!(
            Message::decode(&enc.finish()),
            Err(WireError::Invalid(_))
        ));
    }

    #[test]
    fn hostile_submit_and_announce_payloads_never_allocate(
        claimed in 1_000u32..=u32::MAX,
    ) {
        // A Submit (tag 9) / CampaignAnnounce (tag 11) whose campaign
        // name claims a multi-gigabyte length with no bytes behind it
        // must be rejected as truncated instead of allocating.
        for tag in [9u8, 11u8] {
            let mut enc = Encoder::new();
            enc.u8(tag);
            enc.u32(3); // protocol / id
            enc.u32(claimed); // hostile name length
            enc.u8(0); // a single stray byte, far fewer than claimed
            prop_assert!(Message::decode(&enc.finish()).is_err());
        }
    }
}
