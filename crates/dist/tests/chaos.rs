//! Chaos soak suite: the full coordinator/worker control plane driven
//! through seeded, deterministic fault schedules ([`FaultSchedule`])
//! over the loopback hub. The invariant under *any* schedule:
//!
//! * the run either completes with merges **bit-identical** to the
//!   serial engine, or fails loudly as [`DistError::Incomplete`] with
//!   resumable journals — never a hang, never silent corruption;
//! * journals never hold duplicate cell records, and a clean follow-up
//!   run on them resumes every journaled cell without recomputing any.
//!
//! Alongside the proptest soak: the acceptance scenario (every worker
//! link severed at least once *and* a `SubmitOk` lost in flight), the
//! ack-window crash edges (link cut between `Results` and `Ack`; a
//! `Results` window dropped in flight), and the dial-retry paths (a
//! worker started before its coordinator binds; budget exhaustion).

use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

use neurofi_core::sweep::SweepResult;
use neurofi_core::Parallelism;
use neurofi_dist::{
    campaign_journal_path, named_campaign, run_worker_reconnecting, serve_transport, submit_on,
    submit_with_retry, ChaosDialer, ConnectionFaults, CoordinatedRun, CoordinatorConfig, DistError,
    FaultSchedule, LoopbackConn, LoopbackHub, NamedCampaign, RetryPolicy, WorkerConfig,
    WorkerSummary,
};
use proptest::prelude::*;

fn temp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("neurofi-dist-chaos-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn assert_bit_identical(distributed: &SweepResult, serial: &SweepResult) {
    assert_eq!(distributed.kind, serial.kind);
    assert_eq!(
        distributed.baseline_accuracy.to_bits(),
        serial.baseline_accuracy.to_bits(),
        "baseline accuracy diverged"
    );
    assert_eq!(distributed.cells.len(), serial.cells.len());
    for (d, s) in distributed.cells.iter().zip(&serial.cells) {
        assert_eq!(d.accuracy.to_bits(), s.accuracy.to_bits());
        assert_eq!(d.rel_change.to_bits(), s.rel_change.to_bits());
        assert_eq!(d.fraction.to_bits(), s.fraction.to_bits());
        assert_eq!(
            d.relative_change_percent.to_bits(),
            s.relative_change_percent.to_bits()
        );
    }
}

/// The serial golden surfaces for the two soak campaigns, computed once
/// per test process.
fn serials() -> &'static (SweepResult, SweepResult) {
    static SERIALS: OnceLock<(SweepResult, SweepResult)> = OnceLock::new();
    SERIALS.get_or_init(|| {
        (
            named_campaign("tiny").unwrap().run_serial().unwrap(),
            named_campaign("tiny-theta").unwrap().run_serial().unwrap(),
        )
    })
}

/// The cell indices journaled under `path`, in append order (empty when
/// the journal does not exist yet).
fn journal_cells(path: &Path) -> Vec<usize> {
    std::fs::read_to_string(path)
        .unwrap_or_default()
        .lines()
        .filter(|line| line.starts_with("cell "))
        .map(|line| {
            line.split_whitespace()
                .nth(1)
                .and_then(|index| index.parse().ok())
                .unwrap_or_else(|| panic!("malformed journal line: {line}"))
        })
        .collect()
}

struct ChaosOutcome {
    run: Result<CoordinatedRun, DistError>,
    workers: Vec<Result<WorkerSummary, DistError>>,
}

/// Runs the two-campaign fleet (tiny + tiny-theta) over the loopback
/// hub with a chaos schedule on the listener side and one per worker on
/// the dial side, journaling under `journal`.
fn chaos_cluster(
    journal: &Path,
    listener_schedule: FaultSchedule,
    worker_schedules: Vec<FaultSchedule>,
    io_timeout: Duration,
    retry: &RetryPolicy,
) -> ChaosOutcome {
    let campaigns = vec![
        NamedCampaign::new("tiny", named_campaign("tiny").unwrap()),
        NamedCampaign::new("tiny-theta", named_campaign("tiny-theta").unwrap()),
    ];
    let mut config = CoordinatorConfig::with_campaigns("loopback", campaigns);
    config.journal = Some(journal.to_path_buf());
    // Generous bounds so chaos-induced stalls never trip them: the
    // worker's io_timeout (which must exceed the coordinator's 500 ms
    // keep-alive slice) is what breaks dropped-frame deadlocks.
    config.idle_timeout = Duration::from_secs(10);
    config.worker_timeout = Duration::from_secs(30);
    let hub = LoopbackHub::new();
    let listener = neurofi_dist::ChaosListener::new(hub.listener(), listener_schedule);
    std::thread::scope(|scope| {
        let serve = scope.spawn(move || serve_transport(listener, config));
        let worker_handles: Vec<_> = worker_schedules
            .into_iter()
            .enumerate()
            .map(|(w, schedule)| {
                let hub = hub.clone();
                let mut worker_config = WorkerConfig::new("chaos-loopback");
                worker_config.parallelism = Parallelism::Serial;
                worker_config.io_timeout = io_timeout;
                worker_config.retry = retry.clone().with_seed(retry.seed.wrapping_add(w as u64));
                scope.spawn(move || {
                    let dialer = ChaosDialer::new(schedule);
                    run_worker_reconnecting(|| dialer.dial(hub.connect()), &worker_config)
                })
            })
            .collect();
        let run = serve.join().expect("coordinator panicked");
        let workers = worker_handles
            .into_iter()
            .map(|handle| handle.join().expect("worker panicked"))
            .collect();
        ChaosOutcome { run, workers }
    })
}

/// A retry policy tuned for chaos tests: a deep consecutive-failure
/// budget (the longest faulty streak a schedule can produce is well
/// under it) with near-zero backoff so faults cost little wall clock.
fn chaos_retry(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_retries: 40,
        backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(20),
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The tentpole invariant, soaked over seeded schedules: whatever
    /// the faults, the run converges bit-identical or fails loudly with
    /// journals a clean follow-up resumes at zero recompute.
    #[test]
    fn chaos_soak_converges_bit_identical_or_fails_loudly(seed in any::<u64>()) {
        let dir = temp_dir(&format!("soak-{seed:016x}"));
        let journal = dir.join("run.journal");
        let listener_schedule = FaultSchedule::from_seed(seed ^ 0x00c0_ffee, 10);
        let worker_schedules = vec![
            FaultSchedule::from_seed(seed.wrapping_add(1), 3),
            FaultSchedule::from_seed(seed.wrapping_add(2), 3),
        ];
        let chaos = chaos_cluster(
            &journal,
            listener_schedule,
            worker_schedules,
            Duration::from_millis(1500),
            &chaos_retry(seed),
        );
        let (serial_tiny, serial_theta) = serials();
        match &chaos.run {
            Ok(run) => {
                prop_assert_eq!(run.campaigns.len(), 2);
                assert_bit_identical(&run.campaigns[0].result, serial_tiny);
                assert_bit_identical(&run.campaigns[1].result, serial_theta);
            }
            // Both workers burned their retry budget before the grids
            // drained: a loud, resumable failure is within contract —
            // and the workers must have failed loudly too, not stalled.
            Err(DistError::Incomplete { .. }) => {
                for worker in &chaos.workers {
                    prop_assert!(
                        worker.is_err(),
                        "an incomplete run implies every worker gave up loudly"
                    );
                }
            }
            Err(other) => prop_assert!(
                false,
                "chaos must converge or fail loudly as Incomplete, got: {}",
                other
            ),
        }

        // Duplicate deliveries (requeue + re-execution) must never
        // journal a cell twice.
        let mut journaled = 0usize;
        for name in ["tiny", "tiny-theta"] {
            let cells = journal_cells(&campaign_journal_path(&journal, name));
            let unique: HashSet<usize> = cells.iter().copied().collect();
            prop_assert_eq!(
                unique.len(),
                cells.len(),
                "journal `{}` holds duplicate cell records",
                name
            );
            journaled += cells.len();
        }

        // A clean follow-up run on the same journals converges, resumes
        // exactly the journaled cells, and recomputes none of them.
        let clean = chaos_cluster(
            &journal,
            FaultSchedule::clean(),
            vec![FaultSchedule::clean()],
            Duration::from_secs(10),
            &RetryPolicy::none(),
        );
        let run = clean.run.expect("clean follow-up run must converge");
        let total: usize = run.campaigns.iter().map(|c| c.total_cells).sum();
        let resumed: usize = run.campaigns.iter().map(|c| c.resumed_cells).sum();
        let computed: usize = run.campaigns.iter().map(|c| c.computed_cells).sum();
        prop_assert_eq!(resumed, journaled, "every journaled cell must be resumed");
        prop_assert_eq!(computed, total - journaled, "zero recompute of journaled cells");
        assert_bit_identical(&run.campaigns[0].result, serial_tiny);
        assert_bit_identical(&run.campaigns[1].result, serial_theta);

        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The acceptance scenario from the issue: sever every worker's first
/// link mid-session *and* lose a `SubmitOk` in flight. The submission
/// retry must land on the same campaign id (idempotent enqueue), and
/// the run must converge bit-identical with exactly one journal record
/// per cell.
#[test]
fn severed_worker_links_and_a_lost_submit_ok_still_converge_bit_identical() {
    let dir = temp_dir("acceptance");
    let journal = dir.join("run.journal");
    let mut config = CoordinatorConfig::with_campaigns(
        "loopback",
        vec![NamedCampaign::new("tiny", named_campaign("tiny").unwrap())],
    );
    config.journal = Some(journal.clone());
    config.idle_timeout = Duration::from_secs(10);
    config.worker_timeout = Duration::from_secs(30);
    let hub = LoopbackHub::new();
    let listener = hub.listener();

    let (run, workers) = std::thread::scope(|scope| {
        let serve = scope.spawn(move || serve_transport(listener, config));

        // Submit tiny-theta mid-run, losing the first verdict in
        // flight: the Submit lands, the SubmitOk arrives truncated, and
        // the client cannot know whether it was enqueued. The retry
        // resubmits and must get the *same* id back.
        let submit_dialer = ChaosDialer::new(FaultSchedule {
            connections: vec![
                ConnectionFaults {
                    truncate_recv: Some(0),
                    ..ConnectionFaults::clean()
                },
                ConnectionFaults::clean(),
            ],
        });
        let late = NamedCampaign::new("tiny-theta", named_campaign("tiny-theta").unwrap());
        let id = submit_with_retry(
            || submit_dialer.dial(hub.connect()),
            &late,
            &chaos_retry(0x00ac_ce55),
        )
        .expect("submission must survive a lost SubmitOk");
        assert_eq!(id, 1);
        // A further belt-and-braces resubmission is equally idempotent.
        let mut control = hub.connect();
        assert_eq!(
            submit_on(&mut control, late.clone()).expect("idempotent resubmission"),
            1
        );
        drop(control);

        // Two workers whose first link is severed mid-session (after a
        // few frames each); their reconnects are clean.
        let worker_handles: Vec<_> = (0..2)
            .map(|w| {
                let hub = hub.clone();
                let mut worker_config = WorkerConfig::new("chaos-loopback");
                worker_config.parallelism = Parallelism::Serial;
                worker_config.io_timeout = Duration::from_secs(5);
                worker_config.retry = chaos_retry(w as u64);
                scope.spawn(move || {
                    let dialer = ChaosDialer::new(FaultSchedule {
                        connections: vec![ConnectionFaults {
                            sever_after_sends: Some(3),
                            ..ConnectionFaults::clean()
                        }],
                    });
                    run_worker_reconnecting(|| dialer.dial(hub.connect()), &worker_config)
                })
            })
            .collect();

        let run = serve.join().expect("coordinator panicked");
        let workers: Vec<_> = worker_handles
            .into_iter()
            .map(|handle| handle.join().expect("worker panicked"))
            .collect();
        (run, workers)
    });

    let run = run.expect("the chaos run must converge");
    assert_eq!(run.campaigns.len(), 2, "the submission joined the queue");
    let (serial_tiny, serial_theta) = serials();
    assert_bit_identical(&run.campaigns[0].result, serial_tiny);
    assert_bit_identical(&run.campaigns[1].result, serial_theta);
    for worker in &workers {
        // Workers rode through their severed first session.
        assert!(worker.as_ref().expect("worker must recover").finished);
    }

    // Exactly one journal record per cell, despite severed windows.
    for (name, serial) in [("tiny", serial_tiny), ("tiny-theta", serial_theta)] {
        let cells = journal_cells(&campaign_journal_path(&journal, name));
        let unique: HashSet<usize> = cells.iter().copied().collect();
        assert_eq!(cells.len(), serial.cells.len(), "journal `{name}` complete");
        assert_eq!(unique.len(), cells.len(), "journal `{name}` duplicate-free");
    }

    // Zero recompute: a worker-less replay resumes everything.
    let mut replay = CoordinatorConfig::with_campaigns(
        "loopback",
        vec![
            NamedCampaign::new("tiny", named_campaign("tiny").unwrap()),
            NamedCampaign::new("tiny-theta", named_campaign("tiny-theta").unwrap()),
        ],
    );
    replay.journal = Some(journal);
    replay.idle_timeout = Duration::from_millis(400);
    let replayed = serve_transport(LoopbackHub::new().listener(), replay)
        .expect("complete journals replay without workers");
    for sweep in &replayed.campaigns {
        assert_eq!(sweep.resumed_cells, sweep.total_cells);
        assert_eq!(sweep.computed_cells, 0);
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// Ack-window crash edge: the link dies *between* the coordinator
/// receiving a `Results` window and the worker receiving its `Ack`.
/// The window was journaled before the ack, so the reconnected worker
/// must not re-execute it and the journal holds exactly one record per
/// cell.
#[test]
fn a_link_severed_between_results_and_ack_journals_each_cell_once() {
    let dir = temp_dir("ack-edge");
    let journal = dir.join("run.journal");
    let mut config = CoordinatorConfig::new("loopback", named_campaign("tiny").unwrap());
    config.journal = Some(journal.clone());
    config.idle_timeout = Duration::from_secs(10);
    config.worker_timeout = Duration::from_secs(30);
    let hub = LoopbackHub::new();
    let listener = hub.listener();

    let (run, worker) = std::thread::scope(|scope| {
        let serve = scope.spawn(move || serve_transport(listener, config));
        let worker_hub = hub.clone();
        let worker = scope.spawn(move || {
            let mut worker_config = WorkerConfig::new("chaos-loopback");
            worker_config.parallelism = Parallelism::Serial;
            worker_config.io_timeout = Duration::from_secs(5);
            worker_config.retry = chaos_retry(3);
            // Session recv order: Campaigns (0), Assign (1), Ack (2) —
            // severing before the third recv cuts the link exactly
            // between the Results delivery and its acknowledgement.
            let dialer = ChaosDialer::new(FaultSchedule {
                connections: vec![ConnectionFaults {
                    sever_after_recvs: Some(2),
                    ..ConnectionFaults::clean()
                }],
            });
            run_worker_reconnecting(|| dialer.dial(worker_hub.connect()), &worker_config)
        });
        (
            serve.join().expect("coordinator panicked"),
            worker.join().expect("worker panicked"),
        )
    });

    let run = run.expect("the run must converge");
    let sweep = &run.campaigns[0];
    let serial = &serials().0;
    assert_bit_identical(&sweep.result, serial);
    assert_eq!(sweep.computed_cells, serial.cells.len());
    assert_eq!(sweep.resumed_cells, 0);

    // The lost-ack window (one 2-cell batch: serial workers claim
    // 2 × threads cells) was journaled once and never re-executed: the
    // reconnected worker only acknowledged the remaining four cells.
    let cells = journal_cells(&campaign_journal_path(&journal, "main"));
    let unique: HashSet<usize> = cells.iter().copied().collect();
    assert_eq!(
        cells.len(),
        serial.cells.len(),
        "journal complete:\n{cells:?}"
    );
    assert_eq!(
        unique.len(),
        cells.len(),
        "journal duplicate-free:\n{cells:?}"
    );
    let summary = worker.expect("worker must recover");
    assert!(summary.finished);
    assert_eq!(
        summary.cells_executed,
        serial.cells.len() - 2,
        "the journaled-but-unacked window must not be re-executed"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// The dual crash edge: a `Results` window dropped in flight (the
/// worker believes it reported; the coordinator never saw it). The
/// worker's io_timeout breaks the stalemate, the window re-executes on
/// reconnect, and the journal still holds exactly one record per cell.
#[test]
fn a_dropped_results_window_is_reexecuted_and_journaled_once() {
    let dir = temp_dir("dropped-results");
    let journal = dir.join("run.journal");
    let mut config = CoordinatorConfig::new("loopback", named_campaign("tiny").unwrap());
    config.journal = Some(journal.clone());
    config.idle_timeout = Duration::from_secs(10);
    config.worker_timeout = Duration::from_secs(30);
    let hub = LoopbackHub::new();
    let listener = hub.listener();

    let (run, worker) = std::thread::scope(|scope| {
        let serve = scope.spawn(move || serve_transport(listener, config));
        let worker_hub = hub.clone();
        let worker = scope.spawn(move || {
            let mut worker_config = WorkerConfig::new("chaos-loopback");
            worker_config.parallelism = Parallelism::Serial;
            // Neither side knows the frame vanished: the worker waits
            // for an Ack that cannot come and must time out (the
            // timeout exceeds the coordinator's 500 ms keep-alive
            // slice, so it never fires on a healthy link).
            worker_config.io_timeout = Duration::from_millis(1200);
            worker_config.retry = chaos_retry(4);
            // Session send order: Hello (0), Request (1), Results (2).
            let dialer = ChaosDialer::new(FaultSchedule {
                connections: vec![ConnectionFaults {
                    drop_sends: vec![2],
                    ..ConnectionFaults::clean()
                }],
            });
            run_worker_reconnecting(|| dialer.dial(worker_hub.connect()), &worker_config)
        });
        (
            serve.join().expect("coordinator panicked"),
            worker.join().expect("worker panicked"),
        )
    });

    let run = run.expect("the run must converge");
    let sweep = &run.campaigns[0];
    let serial = &serials().0;
    assert_bit_identical(&sweep.result, serial);
    assert_eq!(sweep.computed_cells, serial.cells.len());

    let cells = journal_cells(&campaign_journal_path(&journal, "main"));
    let unique: HashSet<usize> = cells.iter().copied().collect();
    assert_eq!(
        cells.len(),
        serial.cells.len(),
        "journal complete:\n{cells:?}"
    );
    assert_eq!(
        unique.len(),
        cells.len(),
        "journal duplicate-free:\n{cells:?}"
    );
    // The dropped window's cells were executed twice (once lost, once
    // acknowledged) but acknowledged exactly once each.
    let summary = worker.expect("worker must recover");
    assert!(summary.finished);
    assert_eq!(summary.cells_executed, serial.cells.len());

    let _ = std::fs::remove_dir_all(&dir);
}

/// A worker launched before its coordinator binds must keep dialling
/// (connection refused is a retryable session loss) and then serve the
/// whole campaign normally.
#[test]
fn a_worker_started_before_its_coordinator_binds_keeps_dialling() {
    let hub = LoopbackHub::new();
    let mut config = CoordinatorConfig::new("loopback", named_campaign("tiny").unwrap());
    config.idle_timeout = Duration::from_secs(10);
    config.worker_timeout = Duration::from_secs(30);
    let listener = hub.listener();
    let attempts = AtomicUsize::new(0);

    let (run, worker) = std::thread::scope(|scope| {
        let worker_hub = hub.clone();
        let attempts = &attempts;
        let worker = scope.spawn(move || {
            let mut worker_config = WorkerConfig::new("chaos-loopback");
            worker_config.parallelism = Parallelism::Serial;
            worker_config.io_timeout = Duration::from_secs(5);
            worker_config.retry = chaos_retry(5);
            run_worker_reconnecting(
                || {
                    // The first two dials land before the coordinator
                    // exists — the TCP connect-refused shape.
                    if attempts.fetch_add(1, Ordering::SeqCst) < 2 {
                        return Err(DistError::Io(std::io::Error::new(
                            std::io::ErrorKind::ConnectionRefused,
                            "connection refused",
                        )));
                    }
                    Ok(worker_hub.connect())
                },
                &worker_config,
            )
        });
        let serve = scope.spawn(move || serve_transport(listener, config));
        (
            serve.join().expect("coordinator panicked"),
            worker.join().expect("worker panicked"),
        )
    });

    let run = run.expect("the run must converge");
    let serial = &serials().0;
    assert_bit_identical(&run.campaigns[0].result, serial);
    let summary = worker.expect("the worker must outlive the refused dials");
    assert!(summary.finished);
    assert_eq!(summary.cells_executed, serial.cells.len());
    assert!(
        attempts.load(Ordering::SeqCst) >= 3,
        "the first two dials were refused"
    );
}

/// An exhausted consecutive-failure budget is a loud error carrying the
/// last failure — never a silent exit or an unbounded dial loop.
#[test]
fn an_exhausted_retry_budget_returns_the_last_error() {
    let mut worker_config = WorkerConfig::new("nowhere");
    worker_config.retry = RetryPolicy {
        max_retries: 2,
        backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(2),
        seed: 9,
    };
    let attempts = AtomicUsize::new(0);
    let err = run_worker_reconnecting::<LoopbackConn, _>(
        || {
            attempts.fetch_add(1, Ordering::SeqCst);
            Err(DistError::Io(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                "connection refused",
            )))
        },
        &worker_config,
    )
    .expect_err("a coordinator that never appears must fail the worker");
    assert!(matches!(err, DistError::Io(_)), "got: {err}");
    assert_eq!(
        attempts.load(Ordering::SeqCst),
        3,
        "initial dial plus max_retries retries"
    );
}
