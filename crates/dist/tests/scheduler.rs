//! Deterministic scheduler tests over the in-process loopback
//! transport: no real sockets, no ports, no timing sleeps. Worker
//! arrival, death, and live campaign submission are *scripted* — a
//! dropped loopback end is observed immediately by the coordinator, so
//! the tests assert exact scheduling orders instead of sleep-polling
//! around socket latency.
//!
//! Covered here: capacity-aware batch sizing, the worker-death requeue
//! path (which must never poison healthy cells), explicit
//! execution-failure poisoning, old-protocol rejection (v1 *and* v2),
//! live submission (announce ordering, journal binding, kill + resume,
//! bit-identical merges), and `--fair` weighted-round-robin
//! interleaving bounds.

use std::path::PathBuf;
use std::time::Duration;

use neurofi_core::sweep::{CellJob, CellResult, SweepCell, SweepResult};
use neurofi_dist::{
    campaign_journal_path, named_campaign, run_worker_on, serve_transport, submit_on, Connection,
    CoordinatedRun, CoordinatorConfig, DistError, LoopbackConn, LoopbackHub, Message,
    NamedCampaign, PolicyKind, WorkerConfig, CELLS_PER_THREAD, PROTOCOL_VERSION,
};

fn temp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("neurofi-dist-sched-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Spawns a coordinator serving `config` over the hub's listener.
fn spawn_coordinator(
    hub: &LoopbackHub,
    config: CoordinatorConfig,
) -> std::thread::JoinHandle<Result<CoordinatedRun, DistError>> {
    let listener = hub.listener();
    std::thread::spawn(move || serve_transport(listener, config))
}

/// A scripted worker connection: handshake as a v3 worker reporting
/// `threads`, return the connection and the announced campaign queue.
fn scripted_worker(hub: &LoopbackHub, threads: u32) -> (LoopbackConn, Vec<NamedCampaign>) {
    let mut conn = hub.connect();
    conn.send(&Message::Hello {
        protocol: PROTOCOL_VERSION,
        threads,
    })
    .unwrap();
    match conn.recv().unwrap() {
        Message::Campaigns { campaigns } => {
            assert!(!campaigns.is_empty());
            (conn, campaigns)
        }
        other => panic!("expected campaign queue, got {other:?}"),
    }
}

/// What a scripted `Request` came back with.
enum Reply {
    Assign(u32, Vec<CellJob>),
    Finished,
    Abort(String),
}

/// Sends one `Request` and reads up to the reply, recording any
/// `CampaignAnnounce` frames pushed ahead of it.
fn request(
    conn: &mut LoopbackConn,
    max_cells: u32,
    announces: &mut Vec<(u32, NamedCampaign)>,
) -> Reply {
    conn.send(&Message::Request { max_cells }).unwrap();
    loop {
        match conn.recv().unwrap() {
            Message::CampaignAnnounce { id, campaign } => announces.push((id, campaign)),
            Message::Assign { campaign, jobs } => return Reply::Assign(campaign, jobs),
            Message::Finished => return Reply::Finished,
            Message::Abort { reason } => return Reply::Abort(reason),
            other => panic!("unexpected reply {other:?}"),
        }
    }
}

/// Requests until a non-empty batch arrives (an empty `Assign` is the
/// coordinator's keep-alive while requeues from a dropped connection
/// are still settling — rare on loopback, but possible).
fn request_batch(
    conn: &mut LoopbackConn,
    max_cells: u32,
    announces: &mut Vec<(u32, NamedCampaign)>,
) -> (u32, Vec<CellJob>) {
    loop {
        match request(conn, max_cells, announces) {
            Reply::Assign(_, jobs) if jobs.is_empty() => continue,
            Reply::Assign(campaign, jobs) => return (campaign, jobs),
            Reply::Finished => panic!("run finished while a batch was expected"),
            Reply::Abort(reason) => panic!("aborted while a batch was expected: {reason}"),
        }
    }
}

/// Reports synthetic (but per-cell deterministic) results for a batch
/// and consumes the acknowledgement. Scheduler tests only exercise
/// ordering, so cells need not be executed — the coordinator cannot
/// tell, and duplicate deliveries stay bit-consistent because the
/// values are a pure function of the cell index.
fn report_synthetic(
    conn: &mut LoopbackConn,
    campaign: u32,
    jobs: &[CellJob],
    announces: &mut Vec<(u32, NamedCampaign)>,
) {
    let results: Vec<CellResult> = jobs
        .iter()
        .map(|job| CellResult {
            index: job.index,
            cell: SweepCell {
                rel_change: 0.0,
                fraction: 0.0,
                accuracy: job.index as f64 * 0.01,
                relative_change_percent: job.index as f64,
            },
        })
        .collect();
    let sent = results.len();
    conn.send(&Message::Results {
        campaign,
        baseline_accuracy: 0.5,
        results,
    })
    .unwrap();
    loop {
        match conn.recv().unwrap() {
            Message::CampaignAnnounce { id, campaign } => announces.push((id, campaign)),
            Message::Ack {
                campaign: acked,
                received,
            } => {
                assert_eq!(acked, campaign);
                assert_eq!(received as usize, sent);
                return;
            }
            other => panic!("expected ack, got {other:?}"),
        }
    }
}

fn assert_bit_identical(distributed: &SweepResult, serial: &SweepResult) {
    assert_eq!(distributed.kind, serial.kind);
    assert_eq!(
        distributed.baseline_accuracy.to_bits(),
        serial.baseline_accuracy.to_bits(),
        "baseline accuracy diverged"
    );
    assert_eq!(distributed.cells.len(), serial.cells.len());
    for (d, s) in distributed.cells.iter().zip(&serial.cells) {
        assert_eq!(d.accuracy.to_bits(), s.accuracy.to_bits());
        assert_eq!(d.rel_change.to_bits(), s.rel_change.to_bits());
        assert_eq!(d.fraction.to_bits(), s.fraction.to_bits());
    }
}

#[test]
fn batch_sizes_scale_with_reported_worker_threads() {
    // fig8-reduced enumerates 24 cells — plenty pending for all claims.
    let mut config = CoordinatorConfig::new("loopback", named_campaign("fig8-reduced").unwrap());
    config.idle_timeout = Duration::from_secs(2);
    let hub = LoopbackHub::new();
    let serve = spawn_coordinator(&hub, config);
    let mut announces = Vec::new();

    let (mut narrow, _) = scripted_worker(&hub, 1);
    let (_, narrow_batch) = request_batch(&mut narrow, u32::MAX, &mut announces);
    let (mut wide, _) = scripted_worker(&hub, 4);
    let (_, wide_batch) = request_batch(&mut wide, u32::MAX, &mut announces);

    assert_eq!(narrow_batch.len(), CELLS_PER_THREAD);
    assert_eq!(wide_batch.len(), 4 * CELLS_PER_THREAD);

    // A worker's own cap still wins over its capacity.
    let (mut capped, _) = scripted_worker(&hub, 8);
    let (_, capped_batch) = request_batch(&mut capped, 3, &mut announces);
    assert_eq!(capped_batch.len(), 3);

    // Nobody executes anything; dropping the connections requeues every
    // claimed cell and the coordinator eventually gives up idle.
    drop(narrow);
    drop(wide);
    drop(capped);
    match serve.join().unwrap() {
        Err(DistError::Incomplete { done, total, .. }) => {
            assert_eq!(done, 0);
            assert_eq!(total, 24);
        }
        other => panic!("expected Incomplete after idle abandonment, got {other:?}"),
    }
    assert!(announces.is_empty(), "nothing was submitted");
}

#[test]
fn repeatedly_killed_workers_never_poison_healthy_cells() {
    // Regression for the PR 2 bug where `claim_batch` counted
    // *assignments* toward the poison cap: a healthy grid whose workers
    // kept dying was declared poisoned after 5 assignments. Kill more
    // scripted workers than max_attempts, each holding the whole grid,
    // then let one *real* worker (run over the same loopback transport)
    // finish the campaign.
    let campaign = named_campaign("tiny").unwrap();
    let serial = campaign.run_serial().unwrap();
    let mut config = CoordinatorConfig::new("loopback", campaign);
    config.idle_timeout = Duration::from_secs(30);
    config.max_attempts = 5;
    let hub = LoopbackHub::new();
    let serve = spawn_coordinator(&hub, config);
    let mut announces = Vec::new();

    for kill in 0..7 {
        // threads=3 → capacity 6 = the whole tiny grid in one batch.
        let (mut doomed, _) = scripted_worker(&hub, 3);
        let (_, batch) = request_batch(&mut doomed, u32::MAX, &mut announces);
        assert!(!batch.is_empty(), "kill {kill}: worker must receive cells");
        drop(doomed); // dies holding every cell it claimed
    }

    let summary = run_worker_on(hub.connect(), &WorkerConfig::new("loopback")).unwrap();
    assert!(summary.finished);
    assert_eq!(summary.cells_executed, serial.cells.len());

    let run = serve.join().unwrap().expect(
        "a campaign whose workers died 7 times must still complete \
         (worker deaths are not cell failures)",
    );
    assert_bit_identical(&run.campaigns[0].result, &serial);
}

#[test]
fn repeated_execution_failures_poison_the_campaign_with_a_diagnostic() {
    let mut config = CoordinatorConfig::new("loopback", named_campaign("tiny").unwrap());
    config.idle_timeout = Duration::from_secs(30);
    config.max_attempts = 2;
    let hub = LoopbackHub::new();
    let serve = spawn_coordinator(&hub, config);
    let mut announces = Vec::new();

    // Fail every cell we are handed, one at a time, until some cell
    // accumulates max_attempts execution failures and the coordinator
    // ends the run with the poison diagnostic.
    let (mut conn, _) = scripted_worker(&hub, 1);
    let abort_reason = loop {
        match request(&mut conn, 1, &mut announces) {
            Reply::Assign(campaign, jobs) => {
                if jobs.is_empty() {
                    continue;
                }
                conn.send(&Message::Failed {
                    campaign,
                    index: jobs[0].index as u64,
                    reason: "synthetic failure".into(),
                })
                .unwrap();
            }
            Reply::Abort(reason) => break reason,
            Reply::Finished => panic!("a poisoned lone campaign cannot finish cleanly"),
        }
    };
    assert!(
        abort_reason.contains("poisoned"),
        "diagnostic: {abort_reason}"
    );
    assert!(
        abort_reason.contains("synthetic failure"),
        "the failure log must surface the worker-reported reason: {abort_reason}"
    );
    drop(conn);
    match serve.join().unwrap() {
        Err(DistError::Protocol(message)) => {
            assert!(message.contains("poisoned"), "serve error: {message}")
        }
        other => panic!("expected a poisoned-campaign failure, got {other:?}"),
    }
}

#[test]
fn old_protocol_peers_are_rejected_with_a_clear_error() {
    let mut config = CoordinatorConfig::new("loopback", named_campaign("tiny").unwrap());
    config.idle_timeout = Duration::from_millis(400);
    let hub = LoopbackHub::new();
    let serve = spawn_coordinator(&hub, config);

    // A PR 2 (v1), PR 3 (v2), and PR 4 (v3) worker handshake: same
    // frame shape, old versions — all must be turned away naming both
    // versions.
    for old in [1u32, 2, 3] {
        let mut conn = hub.connect();
        conn.send(&Message::Hello {
            protocol: old,
            threads: 4,
        })
        .unwrap();
        match conn.recv().unwrap() {
            Message::Abort { reason } => {
                assert!(reason.contains("protocol mismatch"), "got: {reason}");
                assert!(
                    reason.contains(&format!("v{old}")),
                    "names the worker's version: {reason}"
                );
                assert!(
                    reason.contains(&format!("v{PROTOCOL_VERSION}")),
                    "names the coordinator's version: {reason}"
                );
            }
            other => panic!("expected Abort, got {other:?}"),
        }
    }

    // An old-protocol *submitter* is rejected the same way.
    let mut control = hub.connect();
    control
        .send(&Message::Submit {
            protocol: 2,
            campaign: NamedCampaign::new("late", named_campaign("tiny-theta").unwrap()),
        })
        .unwrap();
    match control.recv().unwrap() {
        Message::Abort { reason } => {
            assert!(reason.contains("protocol mismatch"), "got: {reason}");
        }
        other => panic!("expected Abort, got {other:?}"),
    }

    // No rejected peer ever joined, so the coordinator idles out.
    assert!(matches!(
        serve.join().unwrap(),
        Err(DistError::Incomplete { .. })
    ));
}

#[test]
fn fair_scheduling_interleaves_equal_weight_campaigns_strictly() {
    // tiny = 6 cells (campaign 0), tiny-theta = 4 cells (campaign 1).
    let mut config = CoordinatorConfig::with_campaigns(
        "loopback",
        vec![
            NamedCampaign::new("tiny", named_campaign("tiny").unwrap()),
            NamedCampaign::new("tiny-theta", named_campaign("tiny-theta").unwrap()),
        ],
    );
    config.policy = PolicyKind::WeightedRoundRobin;
    config.idle_timeout = Duration::from_secs(30);
    let hub = LoopbackHub::new();
    let serve = spawn_coordinator(&hub, config);
    let mut announces = Vec::new();

    // One scripted worker claiming 1-cell batches: the claim order *is*
    // the policy's pick order, with no concurrency noise.
    let (mut conn, _) = scripted_worker(&hub, 1);
    let mut order = Vec::new();
    for _ in 0..10 {
        let (campaign, jobs) = request_batch(&mut conn, 1, &mut announces);
        assert_eq!(jobs.len(), 1);
        order.push(campaign as usize);
        report_synthetic(&mut conn, campaign, &jobs, &mut announces);
    }
    assert_eq!(
        order,
        vec![0, 1, 0, 1, 0, 1, 0, 1, 0, 0],
        "equal weights must alternate strictly until the smaller grid drains"
    );
    // Interleaving bound: while both campaigns had pending cells (the
    // first 8 claims), neither waited more than sum-of-weights = 2
    // consecutive claims.
    for window in order[..8].windows(2) {
        assert_ne!(
            window[0], window[1],
            "a campaign waited too long: {order:?}"
        );
    }

    match request(&mut conn, 1, &mut announces) {
        Reply::Finished => {}
        other => panic!(
            "all cells reported: expected Finished, got {:?}",
            match other {
                Reply::Assign(c, j) => format!("Assign({c}, {} jobs)", j.len()),
                Reply::Abort(r) => format!("Abort({r})"),
                Reply::Finished => unreachable!(),
            }
        ),
    }
    let run = serve.join().unwrap().expect("run completes");
    assert_eq!(run.campaigns.len(), 2);
    assert_eq!(run.campaigns[0].computed_cells, 6);
    assert_eq!(run.campaigns[1].computed_cells, 4);
}

#[test]
fn weighted_fairness_grants_proportional_turns() {
    let mut config = CoordinatorConfig::with_campaigns(
        "loopback",
        vec![
            NamedCampaign::new("tiny", named_campaign("tiny").unwrap()).with_weight(2),
            NamedCampaign::new("tiny-theta", named_campaign("tiny-theta").unwrap()),
        ],
    );
    config.policy = PolicyKind::WeightedRoundRobin;
    config.idle_timeout = Duration::from_secs(30);
    let hub = LoopbackHub::new();
    let serve = spawn_coordinator(&hub, config);
    let mut announces = Vec::new();

    let (mut conn, campaigns) = scripted_worker(&hub, 1);
    assert_eq!(campaigns[0].weight, 2, "the handshake carries weights");
    let mut order = Vec::new();
    for _ in 0..10 {
        let (campaign, jobs) = request_batch(&mut conn, 1, &mut announces);
        order.push(campaign as usize);
        report_synthetic(&mut conn, campaign, &jobs, &mut announces);
    }
    assert_eq!(
        order,
        vec![0, 0, 1, 0, 0, 1, 0, 0, 1, 1],
        "weight 2 grants two consecutive batches per rotation"
    );
    // Weight-proportional wait bound: while both campaigns were
    // pending, campaign 1 never waited more than weight(0) = 2 claims,
    // campaign 0 never more than weight(1) = 1.
    let both_pending = &order[..9];
    let mut since = [0usize; 2];
    for &pick in both_pending {
        since[pick] = 0;
        since[1 - pick] += 1;
        assert!(since[0] <= 1, "campaign 0 starved: {order:?}");
        assert!(since[1] <= 2, "campaign 1 starved: {order:?}");
    }

    assert!(matches!(
        request(&mut conn, 1, &mut announces),
        Reply::Finished
    ));
    serve.join().unwrap().expect("run completes");
}

#[test]
fn poisoning_one_campaign_never_stalls_the_other() {
    let dir = temp_dir("poison-fair");
    let journal = dir.join("run.journal");
    let mut config = CoordinatorConfig::with_campaigns(
        "loopback",
        vec![
            NamedCampaign::new("doomed", named_campaign("tiny").unwrap()),
            NamedCampaign::new("healthy", named_campaign("tiny-theta").unwrap()),
        ],
    );
    config.policy = PolicyKind::WeightedRoundRobin;
    config.max_attempts = 1;
    config.journal = Some(journal.clone());
    config.idle_timeout = Duration::from_secs(30);
    let hub = LoopbackHub::new();
    let serve = spawn_coordinator(&hub, config);
    let mut announces = Vec::new();

    // The first claim comes from `doomed` (rotation starts at id 0);
    // one execution-failure report poisons it outright.
    let (mut conn, _) = scripted_worker(&hub, 1);
    let (campaign, jobs) = request_batch(&mut conn, 1, &mut announces);
    assert_eq!(campaign, 0);
    conn.send(&Message::Failed {
        campaign,
        index: jobs[0].index as u64,
        reason: "synthetic segfault".into(),
    })
    .unwrap();

    // Every subsequent claim must come from `healthy` — the poisoned
    // campaign never blocks the rotation — and the run completes the
    // healthy campaign before failing.
    for _ in 0..4 {
        let (campaign, jobs) = request_batch(&mut conn, 1, &mut announces);
        assert_eq!(campaign, 1, "the poisoned campaign must be skipped");
        report_synthetic(&mut conn, campaign, &jobs, &mut announces);
    }
    match request(&mut conn, 1, &mut announces) {
        Reply::Abort(reason) => {
            assert!(
                reason.contains("`doomed`"),
                "goodbye names the campaign: {reason}"
            );
        }
        Reply::Finished => panic!("a run with a poisoned campaign cannot finish cleanly"),
        Reply::Assign(c, j) => panic!("unexpected assignment ({c}, {} jobs)", j.len()),
    }
    drop(conn);

    match serve.join().unwrap() {
        Err(DistError::Protocol(message)) => {
            assert!(
                message.contains("`doomed`"),
                "error names the campaign: {message}"
            );
            assert!(
                message.contains("synthetic segfault"),
                "error keeps the log: {message}"
            );
        }
        other => panic!("expected a poisoned-campaign failure, got {other:?}"),
    }

    // The healthy campaign ran to completion and journaled every cell.
    let healthy = std::fs::read_to_string(campaign_journal_path(&journal, "healthy")).unwrap();
    assert_eq!(
        healthy.lines().filter(|l| l.starts_with("cell ")).count(),
        4,
        "healthy campaign must finish and journal despite the poisoned one:\n{healthy}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn live_submission_is_announced_before_any_frame_references_it() {
    let mut config = CoordinatorConfig::new("loopback", named_campaign("tiny").unwrap());
    config.idle_timeout = Duration::from_secs(30);
    let hub = LoopbackHub::new();
    let serve = spawn_coordinator(&hub, config);
    let mut announces = Vec::new();

    // The worker handshakes while only `main` is queued.
    let (mut conn, campaigns) = scripted_worker(&hub, 1);
    assert_eq!(campaigns.len(), 1);
    let (campaign, jobs) = request_batch(&mut conn, 1, &mut announces);
    assert_eq!(campaign, 0);
    report_synthetic(&mut conn, campaign, &jobs, &mut announces);
    assert!(announces.is_empty(), "nothing submitted yet");

    // A control client submits a second campaign mid-run.
    let mut control = hub.connect();
    let id = submit_on(
        &mut control,
        NamedCampaign::new("late-theta", named_campaign("tiny-theta").unwrap()).with_weight(7),
    )
    .expect("submission accepted");
    assert_eq!(id, 1);
    // Resubmitting the same name with the same spec is idempotent: the
    // coordinator answers with the existing id instead of enqueueing a
    // duplicate, so a client that lost the first SubmitOk can retry.
    let resubmitted = submit_on(
        &mut control,
        NamedCampaign::new("late-theta", named_campaign("tiny-theta").unwrap()),
    )
    .expect("identical resubmission is idempotent");
    assert_eq!(resubmitted, id);
    // The same name bound to a *different* spec is still refused.
    match submit_on(
        &mut control,
        NamedCampaign::new("late-theta", named_campaign("tiny").unwrap()),
    ) {
        Err(DistError::Aborted(reason)) => {
            assert!(reason.contains("different spec"), "got: {reason}")
        }
        other => panic!("conflicting submission must be refused, got {other:?}"),
    }

    // The very next reply to this (pre-submission) worker must be
    // preceded by the announcement — before any frame references id 1.
    let mut order = vec![0usize];
    loop {
        let (campaign, jobs) = request_batch(&mut conn, 1, &mut announces);
        if campaign == 1 {
            assert!(
                !announces.is_empty(),
                "an Assign referenced campaign 1 before its announcement"
            );
        }
        order.push(campaign as usize);
        report_synthetic(&mut conn, campaign, &jobs, &mut announces);
        if order.len() == 10 {
            break;
        }
    }
    assert_eq!(announces.len(), 1, "exactly one announcement");
    let (announced_id, announced) = &announces[0];
    assert_eq!(*announced_id, 1);
    assert_eq!(announced.name, "late-theta");
    assert_eq!(
        announced.weight, 7,
        "announcements carry the scheduling weight"
    );
    // FIFO: the bind-time campaign drains first, then the submission.
    assert_eq!(order, vec![0, 0, 0, 0, 0, 0, 1, 1, 1, 1]);

    assert!(matches!(
        request(&mut conn, 1, &mut announces),
        Reply::Finished
    ));
    let run = serve.join().unwrap().expect("run completes");
    assert_eq!(run.campaigns.len(), 2);
    assert_eq!(run.campaigns[1].name, "late-theta");
    assert_eq!(run.campaigns[1].total_cells, 4);
}

#[test]
fn an_idle_control_connection_does_not_stall_run_exit() {
    // Regression: a control client may keep its connection open for
    // further submissions. Once every worker is done, the run must end
    // promptly by severing the idle control link — not block the scope
    // join until the 600 s worker timeout expires on its recv.
    let mut config = CoordinatorConfig::new("loopback", named_campaign("tiny").unwrap());
    config.idle_timeout = Duration::from_secs(30);
    let hub = LoopbackHub::new();
    let serve = spawn_coordinator(&hub, config);
    let mut announces = Vec::new();

    // Submit, then stay connected without ever sending another frame.
    let mut control = hub.connect();
    let id = submit_on(
        &mut control,
        NamedCampaign::new("late", named_campaign("tiny-theta").unwrap()),
    )
    .unwrap();
    assert_eq!(id, 1);

    // A scripted worker completes both campaigns.
    let (mut conn, campaigns) = scripted_worker(&hub, 8);
    assert_eq!(
        campaigns.len(),
        2,
        "a post-submission handshake already carries the new campaign"
    );
    loop {
        match request(&mut conn, u32::MAX, &mut announces) {
            Reply::Assign(_, jobs) if jobs.is_empty() => continue,
            Reply::Assign(campaign, jobs) => {
                report_synthetic(&mut conn, campaign, &jobs, &mut announces)
            }
            Reply::Finished => break,
            Reply::Abort(reason) => panic!("unexpected abort: {reason}"),
        }
    }

    // Joins promptly (the test itself is the timeout: a regression here
    // blocks for the 600 s default worker timeout).
    let run = serve.join().unwrap().expect("run completes");
    assert_eq!(run.campaigns.len(), 2);
    // The idle control link was severed by the drain.
    assert!(control.recv().is_err());
}

#[test]
fn live_submission_merges_bit_identical_and_survives_kill_plus_resume() {
    // The acceptance path, end to end and fully deterministic: a
    // campaign submitted to a *running* coordinator is executed by real
    // workers (over loopback), interrupted by worker death, resumed by
    // a fresh coordinator from its digest-bound journal, and merges
    // bit-identical to its serial run with zero recomputation of
    // journaled cells.
    let dir = temp_dir("submit-resume");
    let journal = dir.join("run.journal");
    let tiny = named_campaign("tiny").unwrap();
    let theta = named_campaign("tiny-theta").unwrap();
    let serial_tiny = tiny.run_serial().unwrap();
    let serial_theta = theta.run_serial().unwrap();

    // Phase 1: coordinator starts with only `tiny`; `tiny-theta`
    // arrives by live submission. Workers are preempted (killed) after
    // tiny cell budgets, so the run is left genuinely partial.
    let mut config = CoordinatorConfig::with_campaigns(
        "loopback",
        vec![NamedCampaign::new("tiny", tiny.clone())],
    );
    config.journal = Some(journal.clone());
    config.idle_timeout = Duration::from_secs(2);
    let hub = LoopbackHub::new();
    let serve = spawn_coordinator(&hub, config);

    // Worker 1: executes exactly 2 cells of `tiny`, then vanishes —
    // run inline, so the schedule is fully sequential.
    let mut worker_config = WorkerConfig::new("loopback");
    worker_config.max_cells = Some(2);
    let summary = run_worker_on(hub.connect(), &worker_config).unwrap();
    assert!(
        !summary.finished,
        "worker 1 must be preempted, not finished"
    );
    assert_eq!(summary.cells_executed, 2);

    // Live submission while the coordinator is running.
    let mut control = hub.connect();
    let id = submit_on(
        &mut control,
        NamedCampaign::new("tiny-theta", theta.clone()),
    )
    .expect("submission accepted");
    assert_eq!(id, 1);
    drop(control);

    // Worker 2: 3 more cells (FIFO: still `tiny`), then vanishes.
    worker_config.max_cells = Some(3);
    let summary = run_worker_on(hub.connect(), &worker_config).unwrap();
    assert!(!summary.finished);
    assert_eq!(summary.cells_executed, 3);

    // Nobody is left: the coordinator checkpoints and gives up.
    match serve.join().unwrap() {
        Err(DistError::Incomplete { done, total, .. }) => {
            assert_eq!(done, 5, "5 cells were executed before the kills");
            assert_eq!(total, 6 + 4, "both campaigns count toward the total");
        }
        other => panic!("expected Incomplete, got {other:?}"),
    }
    // Both campaigns journaled — the submitted one exactly like the
    // bind-time one.
    assert!(campaign_journal_path(&journal, "tiny").exists());
    assert!(campaign_journal_path(&journal, "tiny-theta").exists());

    // Phase 2: resume. The submitted campaign is now simply queued at
    // bind time — its journal is digest-bound, so it resumes no
    // differently from how it was created.
    let mut config = CoordinatorConfig::with_campaigns(
        "loopback",
        vec![
            NamedCampaign::new("tiny", tiny),
            NamedCampaign::new("tiny-theta", theta),
        ],
    );
    config.journal = Some(journal.clone());
    config.idle_timeout = Duration::from_secs(2);
    let hub = LoopbackHub::new();
    let serve = spawn_coordinator(&hub, config);
    let healthy = std::thread::spawn({
        let conn = hub.connect();
        move || run_worker_on(conn, &WorkerConfig::new("loopback"))
    });
    let run = serve.join().unwrap().expect("resumed run completes");
    let summary = healthy.join().unwrap().unwrap();
    assert!(summary.finished);

    assert_eq!(run.campaigns[0].resumed_cells, 5, "tiny resumes 5 cells");
    assert_eq!(run.campaigns[0].computed_cells, 1);
    assert_eq!(run.campaigns[1].resumed_cells, 0);
    assert_eq!(run.campaigns[1].computed_cells, 4);
    assert_eq!(
        summary.cells_executed, 5,
        "zero recomputation of journaled cells"
    );
    assert_bit_identical(&run.campaigns[0].result, &serial_tiny);
    assert_bit_identical(&run.campaigns[1].result, &serial_theta);

    let _ = std::fs::remove_dir_all(&dir);
}
