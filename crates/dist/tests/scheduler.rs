//! Scheduler-level integration tests over real localhost TCP: capacity-
//! aware batch sizing from the `Hello` thread report, the worker-death
//! requeue path (which must never poison healthy cells), explicit
//! execution-failure poisoning, and old-protocol rejection.

use std::net::TcpStream;
use std::time::Duration;

use neurofi_dist::{
    named_campaign, run_worker, Coordinator, CoordinatorConfig, DistError, Message, NamedCampaign,
    WorkerConfig, CELLS_PER_THREAD, PROTOCOL_VERSION,
};

/// A hand-driven worker connection: handshake as a v2 worker reporting
/// `threads`, return the stream ready for Request/Assign traffic.
fn fake_worker(addr: &str, threads: u32) -> TcpStream {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    Message::Hello {
        protocol: PROTOCOL_VERSION,
        threads,
    }
    .write_to(&mut stream)
    .unwrap();
    match Message::read_from(&mut stream).unwrap() {
        Message::Campaigns { campaigns } => assert!(!campaigns.is_empty()),
        other => panic!("expected campaign queue, got {other:?}"),
    }
    stream
}

/// Requests until a non-empty batch arrives (an empty `Assign` is the
/// coordinator's keep-alive while requeues from a previous connection
/// are still settling).
fn request_batch(stream: &mut TcpStream, max_cells: u32) -> (u32, usize) {
    loop {
        Message::Request { max_cells }.write_to(stream).unwrap();
        match Message::read_from(stream).unwrap() {
            Message::Assign { jobs, .. } if jobs.is_empty() => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Message::Assign { campaign, jobs } => return (campaign, jobs.len()),
            other => panic!("expected assignment, got {other:?}"),
        }
    }
}

#[test]
fn batch_sizes_scale_with_reported_worker_threads() {
    // fig8-reduced enumerates 24 cells — plenty pending for both claims.
    let mut config = CoordinatorConfig::new("127.0.0.1:0", named_campaign("fig8-reduced").unwrap());
    config.idle_timeout = Duration::from_secs(2);
    let coordinator = Coordinator::bind(config).unwrap();
    let addr = coordinator.local_addr().unwrap().to_string();
    let serve = std::thread::spawn(move || coordinator.serve());

    let mut narrow = fake_worker(&addr, 1);
    let (_, narrow_batch) = request_batch(&mut narrow, u32::MAX);
    let mut wide = fake_worker(&addr, 4);
    let (_, wide_batch) = request_batch(&mut wide, u32::MAX);

    assert_eq!(narrow_batch, CELLS_PER_THREAD);
    assert_eq!(wide_batch, 4 * CELLS_PER_THREAD);
    assert!(
        wide_batch > narrow_batch,
        "batch size must scale with the reported thread width"
    );

    // A worker's own cap still wins over its capacity.
    let mut capped = fake_worker(&addr, 8);
    let (_, capped_batch) = request_batch(&mut capped, 3);
    assert_eq!(capped_batch, 3);

    // Nobody executes anything; dropping the connections requeues every
    // claimed cell and the coordinator eventually gives up idle.
    drop(narrow);
    drop(wide);
    drop(capped);
    match serve.join().unwrap() {
        Err(DistError::Incomplete { done, total, .. }) => {
            assert_eq!(done, 0);
            assert_eq!(total, 24);
        }
        other => panic!("expected Incomplete after idle abandonment, got {other:?}"),
    }
}

#[test]
fn repeatedly_killed_workers_never_poison_healthy_cells() {
    // Regression for the PR 2 bug where `claim_batch` counted
    // *assignments* toward the poison cap: a healthy grid whose workers
    // kept dying was declared poisoned after 5 assignments. Kill more
    // workers than max_attempts, each holding the whole grid, then let
    // one healthy worker finish the campaign.
    let campaign = named_campaign("tiny").unwrap();
    let serial = campaign.run_serial().unwrap();
    let mut config = CoordinatorConfig::new("127.0.0.1:0", campaign);
    config.idle_timeout = Duration::from_secs(30);
    config.max_attempts = 5;
    let coordinator = Coordinator::bind(config).unwrap();
    let addr = coordinator.local_addr().unwrap().to_string();
    let serve = std::thread::spawn(move || coordinator.serve());

    for kill in 0..7 {
        // threads=3 → capacity 6 = the whole tiny grid in one batch.
        let mut doomed = fake_worker(&addr, 3);
        let (_, batch) = request_batch(&mut doomed, u32::MAX);
        assert!(batch > 0, "kill {kill}: worker must receive cells");
        drop(doomed); // dies holding every cell it claimed
    }

    let summary = run_worker(&WorkerConfig::new(addr)).unwrap();
    assert!(summary.finished);
    assert_eq!(summary.cells_executed, serial.cells.len());

    let run = serve.join().unwrap().expect(
        "a campaign whose workers died 7 times must still complete \
         (worker deaths are not cell failures)",
    );
    let merged = &run.campaigns[0].result;
    assert_eq!(merged.cells.len(), serial.cells.len());
    for (d, s) in merged.cells.iter().zip(&serial.cells) {
        assert_eq!(d.accuracy.to_bits(), s.accuracy.to_bits());
    }
}

#[test]
fn repeated_execution_failures_poison_the_campaign_with_a_diagnostic() {
    let mut config = CoordinatorConfig::new("127.0.0.1:0", named_campaign("tiny").unwrap());
    config.idle_timeout = Duration::from_secs(30);
    config.max_attempts = 2;
    let coordinator = Coordinator::bind(config).unwrap();
    let addr = coordinator.local_addr().unwrap().to_string();
    let serve = std::thread::spawn(move || coordinator.serve());

    // Fail every cell we are handed, one at a time, until some cell
    // accumulates max_attempts execution failures and the coordinator
    // aborts us with the poison diagnostic.
    let mut stream = fake_worker(&addr, 1);
    let mut abort_reason = None;
    for _ in 0..100 {
        if (Message::Request { max_cells: 1 })
            .write_to(&mut stream)
            .is_err()
        {
            break;
        }
        match Message::read_from(&mut stream) {
            Ok(Message::Assign { campaign, jobs }) => {
                if jobs.is_empty() {
                    std::thread::sleep(Duration::from_millis(20));
                    continue;
                }
                let report = Message::Failed {
                    campaign,
                    index: jobs[0].index as u64,
                    reason: "synthetic failure".into(),
                };
                if report.write_to(&mut stream).is_err() {
                    break;
                }
            }
            Ok(Message::Abort { reason }) => {
                abort_reason = Some(reason);
                break;
            }
            Ok(other) => panic!("unexpected message {other:?}"),
            Err(_) => break,
        }
    }
    let reason = abort_reason.expect("the coordinator must abort the failing worker");
    assert!(reason.contains("poisoned"), "diagnostic: {reason}");
    assert!(
        reason.contains("synthetic failure"),
        "the failure log must surface the worker-reported reason: {reason}"
    );
    match serve.join().unwrap() {
        Err(DistError::Protocol(message)) => {
            assert!(message.contains("poisoned"), "serve error: {message}")
        }
        other => panic!("expected a poisoned-campaign failure, got {other:?}"),
    }
}

#[test]
fn poisoned_campaign_does_not_sink_healthy_campaigns() {
    let dir = std::env::temp_dir().join(format!("neurofi-dist-poison-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("run.journal");

    let mut config = CoordinatorConfig::with_campaigns(
        "127.0.0.1:0",
        vec![
            NamedCampaign::new("doomed", named_campaign("tiny").unwrap()),
            NamedCampaign::new("healthy", named_campaign("tiny-theta").unwrap()),
        ],
    );
    config.idle_timeout = Duration::from_secs(30);
    config.max_attempts = 1;
    config.journal = Some(journal.clone());
    let coordinator = Coordinator::bind(config).unwrap();
    let addr = coordinator.local_addr().unwrap().to_string();
    let serve = std::thread::spawn(move || coordinator.serve());

    // A saboteur poisons campaign 0 with a single execution-failure
    // report (max_attempts = 1) and vanishes.
    let mut saboteur = fake_worker(&addr, 1);
    (Message::Request { max_cells: 1 })
        .write_to(&mut saboteur)
        .unwrap();
    let (campaign, index) = match Message::read_from(&mut saboteur).unwrap() {
        Message::Assign { campaign, jobs } if !jobs.is_empty() => (campaign, jobs[0].index),
        other => panic!("expected a non-empty assignment, got {other:?}"),
    };
    assert_eq!(campaign, 0, "the queue drains FIFO, so cell 0 is doomed's");
    Message::Failed {
        campaign,
        index: index as u64,
        reason: "synthetic segfault".into(),
    }
    .write_to(&mut saboteur)
    .unwrap();
    drop(saboteur);
    std::thread::sleep(Duration::from_millis(100));

    // A healthy worker still serves the surviving campaign to
    // completion, then learns the run failed (the poisoned campaign is
    // named in the goodbye).
    match run_worker(&WorkerConfig::new(addr)).unwrap_err() {
        DistError::Aborted(reason) => {
            assert!(
                reason.contains("`doomed`"),
                "goodbye names the campaign: {reason}"
            )
        }
        other => panic!("expected the run-failed goodbye, got {other:?}"),
    }

    match serve.join().unwrap() {
        Err(DistError::Protocol(message)) => {
            assert!(
                message.contains("`doomed`"),
                "error names the campaign: {message}"
            );
            assert!(
                message.contains("synthetic segfault"),
                "error keeps the log: {message}"
            );
        }
        other => panic!("expected a poisoned-campaign failure, got {other:?}"),
    }

    // The healthy campaign ran to completion and journaled every cell,
    // so rerunning without the poisoned grid resumes at zero cost.
    let healthy = std::fs::read_to_string(journal.with_file_name("run.journal.healthy")).unwrap();
    assert_eq!(
        healthy.lines().filter(|l| l.starts_with("cell ")).count(),
        4,
        "healthy campaign must finish and journal despite the poisoned one:\n{healthy}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn old_protocol_workers_are_rejected_with_a_clear_error() {
    let mut config = CoordinatorConfig::new("127.0.0.1:0", named_campaign("tiny").unwrap());
    config.idle_timeout = Duration::from_secs(2);
    let coordinator = Coordinator::bind(config).unwrap();
    let addr = coordinator.local_addr().unwrap().to_string();
    let serve = std::thread::spawn(move || coordinator.serve());

    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // A PR 2 (v1) worker's handshake: same frame shape, old version.
    Message::Hello {
        protocol: 1,
        threads: 4,
    }
    .write_to(&mut stream)
    .unwrap();
    match Message::read_from(&mut stream).unwrap() {
        Message::Abort { reason } => {
            assert!(reason.contains("protocol mismatch"), "got: {reason}");
            assert!(
                reason.contains("v1"),
                "names the worker's version: {reason}"
            );
            assert!(
                reason.contains(&format!("v{PROTOCOL_VERSION}")),
                "names the coordinator's version: {reason}"
            );
        }
        other => panic!("expected Abort, got {other:?}"),
    }
    // The rejected worker never joined, so the coordinator idles out.
    assert!(matches!(
        serve.join().unwrap(),
        Err(DistError::Incomplete { .. })
    ));
}
