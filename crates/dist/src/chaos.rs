//! Deterministic fault injection for the dist transport.
//!
//! The repro's subject is injecting faults into neurons and measuring
//! the response; this module turns the same discipline on the control
//! plane itself. [`ChaosConnection`] and [`ChaosListener`] wrap any
//! [`Connection`]/[`Listener`] pair and apply a *seeded, fully
//! deterministic* fault schedule — sever the link after the Nth frame,
//! drop or duplicate the kth send, refuse the mth inbound connection,
//! deliver a truncated frame — so the chaos soak suite
//! (`tests/chaos.rs`) can replay the exact same failure sequence on
//! every run, over TCP and the loopback hub alike.
//!
//! Faults are expressed per connection in *arrival order*: the first
//! accepted (or dialled) connection gets `schedule.faults(0)`, the next
//! `faults(1)`, and connections beyond the schedule's end are clean.
//! Because both the schedule generation ([`FaultSchedule::from_seed`])
//! and the counters that trigger each fault are deterministic, a seed
//! identifies one exact chaos scenario.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::transport::{Canceller, Connection, Listener};
use crate::wire::{Message, WireError};
use crate::DistError;

/// SplitMix64: a tiny, high-quality, hand-rolled PRNG (no dependencies)
/// used for fault-schedule generation and retry jitter. The sequence is
/// a pure function of the seed, which is what makes chaos runs and
/// backoff timing replayable.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator whose whole output sequence is determined by `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// A value in `0..bound` (`0` when `bound` is `0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        self.next_u64() % bound
    }

    /// A float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }
}

/// The faults applied to one connection. Frame indices count from 0 per
/// direction: `drop_sends: vec![2]` loses the third frame this side
/// sends, `sever_after_recvs: Some(1)` kills the link once one frame
/// has been received.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConnectionFaults {
    /// Refuse the connection outright: a [`ChaosListener`] drops it
    /// before the protocol sees it, as if the dial never completed.
    pub refuse: bool,
    /// Sever the link once this many frames have been sent.
    pub sever_after_sends: Option<u32>,
    /// Sever the link once this many frames have been received.
    pub sever_after_recvs: Option<u32>,
    /// Send indices that vanish in flight: `send` reports success but
    /// the peer never sees the frame.
    pub drop_sends: Vec<u32>,
    /// Send indices delivered twice, back to back.
    pub duplicate_sends: Vec<u32>,
    /// The receive index at which the peer's frame arrives truncated;
    /// the link is severed afterwards, like a socket cut mid-frame.
    pub truncate_recv: Option<u32>,
}

impl ConnectionFaults {
    /// No faults at all.
    pub fn clean() -> ConnectionFaults {
        ConnectionFaults::default()
    }

    /// Whether this connection behaves exactly like the bare transport.
    pub fn is_clean(&self) -> bool {
        *self == ConnectionFaults::default()
    }
}

/// A deterministic fault plan for a sequence of connections, indexed by
/// arrival order. Connections past the end of the plan are clean.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    /// Per-connection faults, in arrival order.
    pub connections: Vec<ConnectionFaults>,
}

impl FaultSchedule {
    /// A schedule that injects nothing.
    pub fn clean() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// Generates a schedule for `connections` connections from a seed.
    /// The same `(seed, connections)` pair always yields the same
    /// schedule, so a failing soak case is reproducible from its seed
    /// alone. Fault rates are tuned so most schedules contain several
    /// faults but leave later connections clean enough to converge.
    pub fn from_seed(seed: u64, connections: usize) -> FaultSchedule {
        let mut rng = SplitMix64::new(seed);
        let mut plan = Vec::with_capacity(connections);
        for _ in 0..connections {
            let mut faults = ConnectionFaults::clean();
            if rng.chance(0.15) {
                faults.refuse = true;
                plan.push(faults);
                continue;
            }
            if rng.chance(0.35) {
                faults.sever_after_sends = Some(rng.below(8) as u32);
            }
            if rng.chance(0.35) {
                faults.sever_after_recvs = Some(rng.below(8) as u32);
            }
            for _ in 0..2 {
                if rng.chance(0.2) {
                    faults.drop_sends.push(rng.below(10) as u32);
                }
            }
            for _ in 0..2 {
                if rng.chance(0.2) {
                    faults.duplicate_sends.push(rng.below(10) as u32);
                }
            }
            if rng.chance(0.15) {
                faults.truncate_recv = Some(rng.below(8) as u32);
            }
            plan.push(faults);
        }
        FaultSchedule { connections: plan }
    }

    /// The faults for the `index`-th connection (clean past the end).
    pub fn faults(&self, index: usize) -> ConnectionFaults {
        self.connections.get(index).cloned().unwrap_or_default()
    }

    /// Whether every connection in the schedule is clean.
    pub fn is_clean(&self) -> bool {
        self.connections.iter().all(ConnectionFaults::is_clean)
    }
}

fn chaos_severed() -> DistError {
    DistError::Io(std::io::Error::new(
        std::io::ErrorKind::BrokenPipe,
        "chaos: link severed by fault schedule",
    ))
}

/// A [`Connection`] that injects the faults of one
/// [`ConnectionFaults`] entry into an inner connection. Severing uses
/// the inner connection's own canceller, so the peer observes the cut
/// exactly as it would a real one.
#[derive(Debug)]
pub struct ChaosConnection<C: Connection> {
    inner: C,
    faults: ConnectionFaults,
    sends: u32,
    recvs: u32,
    dead: bool,
}

impl<C: Connection> ChaosConnection<C> {
    /// Wraps `inner`, applying `faults` to its frames.
    pub fn new(inner: C, faults: ConnectionFaults) -> ChaosConnection<C> {
        ChaosConnection {
            inner,
            faults,
            sends: 0,
            recvs: 0,
            dead: false,
        }
    }

    fn sever(&mut self) {
        if !self.dead {
            self.dead = true;
            (self.inner.canceller())();
        }
    }
}

impl<C: Connection> Connection for ChaosConnection<C> {
    fn send(&mut self, message: &Message) -> Result<(), DistError> {
        if self.dead {
            return Err(chaos_severed());
        }
        if let Some(n) = self.faults.sever_after_sends {
            if self.sends >= n {
                self.sever();
                return Err(chaos_severed());
            }
        }
        let index = self.sends;
        self.sends += 1;
        if self.faults.drop_sends.contains(&index) {
            // Lost in flight: this side believes the frame went out.
            return Ok(());
        }
        self.inner.send(message)?;
        if self.faults.duplicate_sends.contains(&index) {
            self.inner.send(message)?;
        }
        Ok(())
    }

    fn recv(&mut self) -> Result<Message, DistError> {
        if self.dead {
            return Err(chaos_severed());
        }
        if let Some(n) = self.faults.sever_after_recvs {
            if self.recvs >= n {
                self.sever();
                return Err(chaos_severed());
            }
        }
        if self.faults.truncate_recv == Some(self.recvs) {
            // A frame cut mid-body: the bytes that did arrive are
            // consumed, the decode fails, and the link is gone.
            let _ = self.inner.recv();
            self.sever();
            return Err(DistError::Wire(WireError::Truncated));
        }
        let message = self.inner.recv()?;
        self.recvs += 1;
        Ok(message)
    }

    fn set_recv_timeout(&mut self, timeout: Option<Duration>) {
        self.inner.set_recv_timeout(timeout);
    }

    fn canceller(&self) -> Canceller {
        self.inner.canceller()
    }
}

/// A [`Listener`] that wraps every accepted connection in a
/// [`ChaosConnection`], assigning faults by accept order, and silently
/// drops connections whose schedule entry says `refuse` (the dialling
/// side sees a severed link, as with a connection refused mid-dial).
#[derive(Debug)]
pub struct ChaosListener<L: Listener> {
    inner: L,
    schedule: FaultSchedule,
    accepted: usize,
}

impl<L: Listener> ChaosListener<L> {
    /// Wraps `inner`, applying `schedule` by accept order.
    pub fn new(inner: L, schedule: FaultSchedule) -> ChaosListener<L> {
        ChaosListener {
            inner,
            schedule,
            accepted: 0,
        }
    }

    fn admit(&mut self, conn: L::Conn) -> Option<ChaosConnection<L::Conn>> {
        let faults = self.schedule.faults(self.accepted);
        self.accepted += 1;
        if faults.refuse {
            drop(conn);
            return None;
        }
        Some(ChaosConnection::new(conn, faults))
    }
}

impl<L: Listener> Listener for ChaosListener<L> {
    type Conn = ChaosConnection<L::Conn>;

    fn poll_accept(&mut self) -> Result<Option<Self::Conn>, DistError> {
        while let Some(conn) = self.inner.poll_accept()? {
            if let Some(admitted) = self.admit(conn) {
                return Ok(Some(admitted));
            }
        }
        Ok(None)
    }

    fn accept(&mut self) -> Result<Option<Self::Conn>, DistError> {
        loop {
            match self.inner.accept()? {
                None => return Ok(None),
                Some(conn) => {
                    if let Some(admitted) = self.admit(conn) {
                        return Ok(Some(admitted));
                    }
                }
            }
        }
    }

    fn canceller(&self) -> Canceller {
        self.inner.canceller()
    }
}

/// Hands out chaos-wrapped connections from a connect closure, drawing
/// faults from a schedule by dial order. Clone-free and thread-safe via
/// an internal counter, so several workers can share one connector.
#[derive(Debug)]
pub struct ChaosDialer {
    schedule: FaultSchedule,
    dialled: AtomicUsize,
}

impl ChaosDialer {
    /// A dialer applying `schedule` in dial order.
    pub fn new(schedule: FaultSchedule) -> Arc<ChaosDialer> {
        Arc::new(ChaosDialer {
            schedule,
            dialled: AtomicUsize::new(0),
        })
    }

    /// Wraps the next outbound connection. A `refuse` entry fails the
    /// dial itself, like a connection refused by a coordinator that has
    /// not bound its port yet.
    ///
    /// # Errors
    /// Fails when the schedule refuses this dial.
    pub fn dial<C: Connection>(&self, conn: C) -> Result<ChaosConnection<C>, DistError> {
        let faults = self
            .schedule
            .faults(self.dialled.fetch_add(1, Ordering::SeqCst));
        if faults.refuse {
            return Err(DistError::Io(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                "chaos: connect refused by fault schedule",
            )));
        }
        Ok(ChaosConnection::new(conn, faults))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::loopback_pair;

    #[test]
    fn splitmix_is_deterministic_and_spread() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let first: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let second: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(first, second);
        assert_ne!(first[0], first[1]);
        let mut c = SplitMix64::new(43);
        assert_ne!(first[0], c.next_u64());
    }

    #[test]
    fn schedules_replay_bit_identically_from_their_seed() {
        let a = FaultSchedule::from_seed(7, 12);
        let b = FaultSchedule::from_seed(7, 12);
        assert_eq!(a, b);
        assert_ne!(a, FaultSchedule::from_seed(8, 12));
        // Past-the-end connections are clean.
        assert!(a.faults(100).is_clean());
    }

    #[test]
    fn drop_and_duplicate_reorder_nothing_else() {
        let (a, mut b) = loopback_pair();
        let faults = ConnectionFaults {
            drop_sends: vec![1],
            duplicate_sends: vec![2],
            ..ConnectionFaults::clean()
        };
        let mut chaotic = ChaosConnection::new(a, faults);
        for n in 0..4 {
            chaotic.send(&Message::Request { max_cells: n }).unwrap();
        }
        // Send 1 vanished, send 2 arrived twice, order preserved.
        let got: Vec<Message> = (0..4).map(|_| b.recv().unwrap()).collect();
        assert_eq!(
            got,
            vec![
                Message::Request { max_cells: 0 },
                Message::Request { max_cells: 2 },
                Message::Request { max_cells: 2 },
                Message::Request { max_cells: 3 },
            ]
        );
    }

    #[test]
    fn sever_after_sends_cuts_the_link_for_both_sides() {
        let (a, mut b) = loopback_pair();
        let faults = ConnectionFaults {
            sever_after_sends: Some(1),
            ..ConnectionFaults::clean()
        };
        let mut chaotic = ChaosConnection::new(a, faults);
        chaotic.send(&Message::Finished).unwrap();
        assert!(chaotic.send(&Message::Finished).is_err());
        assert!(chaotic.recv().is_err(), "a severed link stays severed");
        assert_eq!(b.recv().unwrap(), Message::Finished);
        assert!(b.recv().is_err(), "the peer observes the cut");
    }

    #[test]
    fn truncate_recv_consumes_the_frame_and_severs() {
        let (mut a, b) = loopback_pair();
        let faults = ConnectionFaults {
            truncate_recv: Some(0),
            ..ConnectionFaults::clean()
        };
        let mut chaotic = ChaosConnection::new(b, faults);
        a.send(&Message::Finished).unwrap();
        assert!(matches!(
            chaotic.recv(),
            Err(DistError::Wire(WireError::Truncated))
        ));
        assert!(a.send(&Message::Finished).is_err());
    }

    #[test]
    fn refused_connections_never_reach_the_accept_loop() {
        let hub = crate::transport::LoopbackHub::new();
        let schedule = FaultSchedule {
            connections: vec![
                ConnectionFaults {
                    refuse: true,
                    ..ConnectionFaults::clean()
                },
                ConnectionFaults::clean(),
            ],
        };
        let mut listener = ChaosListener::new(hub.listener(), schedule);
        let mut refused = hub.connect();
        let mut admitted = hub.connect();
        let mut server = listener
            .accept()
            .unwrap()
            .expect("second connection admitted");
        assert!(refused.recv().is_err(), "refused dialler sees a dead link");
        admitted.send(&Message::Finished).unwrap();
        assert_eq!(server.recv().unwrap(), Message::Finished);
    }

    #[test]
    fn dialer_refuses_by_schedule_and_then_admits() {
        let schedule = FaultSchedule {
            connections: vec![
                ConnectionFaults {
                    refuse: true,
                    ..ConnectionFaults::clean()
                },
                ConnectionFaults::clean(),
            ],
        };
        let dialer = ChaosDialer::new(schedule);
        let (a, _b) = loopback_pair();
        assert!(dialer.dial(a).is_err());
        let (a, mut b) = loopback_pair();
        let mut conn = dialer.dial(a).unwrap();
        conn.send(&Message::Finished).unwrap();
        assert_eq!(b.recv().unwrap(), Message::Finished);
    }
}
