//! On-disk checkpoint journal for interrupted campaigns.
//!
//! The coordinator appends one record per completed cell (plus one for
//! the campaign's baseline accuracy) to a plain-text journal. A
//! restarted coordinator replays the journal, skips every cell already
//! measured, and only schedules the remainder — a killed worker or a
//! crashed coordinator costs at most the cells that were in flight.
//!
//! Robustness properties:
//!
//! * The header binds the journal to one [`CampaignSpec`] digest and
//!   cell count; resuming with a different campaign is refused instead
//!   of silently merging incompatible grids.
//! * Floats are stored as 16-digit hex IEEE-754 bit patterns, so a
//!   resumed merge stays *bit*-identical to an uninterrupted run.
//! * Appends are flushed per record, and a torn trailing line (from a
//!   crash mid-write) is dropped on load rather than poisoning the
//!   journal.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use neurofi_core::sweep::{CellResult, SweepCell};

use crate::DistError;

const MAGIC: &str = "neurofi-dist-journal v1";

/// What a journal replay recovered.
#[derive(Debug, Clone, Default)]
pub struct Recovered {
    /// Completed cells, deduplicated, in journal order.
    pub results: Vec<CellResult>,
    /// The campaign's mean baseline accuracy, if it was recorded.
    pub baseline_accuracy: Option<f64>,
}

/// An append-only checkpoint journal bound to one campaign.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    writer: BufWriter<File>,
}

fn hex_bits(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn parse_bits(token: &str) -> Option<f64> {
    if token.len() != 16 {
        return None;
    }
    u64::from_str_radix(token, 16).ok().map(f64::from_bits)
}

fn journal_error(path: &Path, message: impl Into<String>) -> DistError {
    DistError::Journal(format!("{}: {}", path.display(), message.into()))
}

impl Journal {
    /// Opens `path` for the campaign identified by `digest` over
    /// `n_cells` cells: creates a fresh journal when absent, otherwise
    /// replays the existing records and reopens in append mode.
    ///
    /// # Errors
    /// Fails on i/o errors, a foreign or mismatched header, or corrupt
    /// non-trailing records.
    pub fn open(
        path: &Path,
        digest: u64,
        n_cells: usize,
    ) -> Result<(Journal, Recovered), DistError> {
        let recovered = if path.exists() {
            Journal::replay(path, digest, n_cells)?
        } else {
            if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                std::fs::create_dir_all(parent)?;
            }
            let mut file = File::create(path)?;
            writeln!(file, "{MAGIC} digest={digest:016x} cells={n_cells}")?;
            file.sync_all()?;
            Recovered::default()
        };
        let writer = BufWriter::new(OpenOptions::new().append(true).open(path)?);
        Ok((
            Journal {
                path: path.to_path_buf(),
                writer,
            },
            recovered,
        ))
    }

    fn replay(path: &Path, digest: u64, n_cells: usize) -> Result<Recovered, DistError> {
        let text = std::fs::read_to_string(path)?;
        let mut segments = text.split_inclusive('\n');
        let header = segments
            .next()
            .ok_or_else(|| journal_error(path, "journal is empty"))?;
        let expected = format!("{MAGIC} digest={digest:016x} cells={n_cells}\n");
        if header != expected {
            return Err(journal_error(
                path,
                format!(
                    "journal belongs to a different campaign \
                     (header `{}`, expected `{}`); \
                     remove it or point --journal elsewhere",
                    header.trim_end(),
                    expected.trim_end()
                ),
            ));
        }
        let mut recovered = Recovered::default();
        let mut seen = vec![false; n_cells];
        // Every durable record was flushed whole with its newline; a crash
        // mid-append can only tear the final line. Track the length of the
        // valid prefix and truncate anything after it, so post-recovery
        // appends land on a clean boundary instead of merging with torn
        // bytes.
        let mut valid_len = header.len();
        for (lineno, segment) in segments.enumerate() {
            let complete = segment.ends_with('\n');
            match parse_record(segment.trim_end_matches('\n')) {
                Some(record) if complete => {
                    match record {
                        Record::Baseline(accuracy) => {
                            recovered.baseline_accuracy.get_or_insert(accuracy);
                        }
                        Record::Cell(result) => {
                            if result.index >= n_cells {
                                return Err(journal_error(
                                    path,
                                    format!(
                                        "record {} indexes cell {} of a {n_cells}-cell grid",
                                        lineno + 2,
                                        result.index
                                    ),
                                ));
                            }
                            if !seen[result.index] {
                                seen[result.index] = true;
                                recovered.results.push(result);
                            }
                        }
                    }
                    valid_len += segment.len();
                }
                // An unfinished or unparseable trailing line is a torn
                // append: drop it.
                _ if valid_len + segment.len() == text.len() => break,
                _ => {
                    return Err(journal_error(
                        path,
                        format!("corrupt record at line {}", lineno + 2),
                    ));
                }
            }
        }
        if valid_len < text.len() {
            OpenOptions::new()
                .write(true)
                .open(path)?
                .set_len(valid_len as u64)?;
        }
        Ok(recovered)
    }

    /// The journal's on-disk location.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records the campaign's mean baseline accuracy (call once, before
    /// the first cell).
    ///
    /// # Errors
    /// Propagates i/o failures.
    pub fn record_baseline(&mut self, accuracy: f64) -> Result<(), DistError> {
        writeln!(self.writer, "baseline {}", hex_bits(accuracy))?;
        self.writer.flush()?;
        Ok(())
    }

    /// Appends one completed cell and flushes it to disk.
    ///
    /// # Errors
    /// Propagates i/o failures.
    pub fn record_cell(&mut self, result: &CellResult) -> Result<(), DistError> {
        writeln!(
            self.writer,
            "cell {} {} {} {} {}",
            result.index,
            hex_bits(result.cell.rel_change),
            hex_bits(result.cell.fraction),
            hex_bits(result.cell.accuracy),
            hex_bits(result.cell.relative_change_percent),
        )?;
        self.writer.flush()?;
        Ok(())
    }
}

enum Record {
    Baseline(f64),
    Cell(CellResult),
}

fn parse_record(line: &str) -> Option<Record> {
    let mut tokens = line.split_ascii_whitespace();
    match tokens.next()? {
        "baseline" => {
            let accuracy = parse_bits(tokens.next()?)?;
            tokens
                .next()
                .is_none()
                .then_some(Record::Baseline(accuracy))
        }
        "cell" => {
            let index: usize = tokens.next()?.parse().ok()?;
            let rel_change = parse_bits(tokens.next()?)?;
            let fraction = parse_bits(tokens.next()?)?;
            let accuracy = parse_bits(tokens.next()?)?;
            let relative_change_percent = parse_bits(tokens.next()?)?;
            tokens.next().is_none().then_some(Record::Cell(CellResult {
                index,
                cell: SweepCell {
                    rel_change,
                    fraction,
                    accuracy,
                    relative_change_percent,
                },
            }))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "neurofi-dist-journal-{name}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("journal.log")
    }

    fn cell(index: usize, accuracy: f64) -> CellResult {
        CellResult {
            index,
            cell: SweepCell {
                rel_change: -0.2,
                fraction: 0.5,
                accuracy,
                relative_change_percent: accuracy * -10.0,
            },
        }
    }

    #[test]
    fn journal_round_trips_bit_exactly() {
        let path = temp_path("roundtrip");
        let (mut journal, recovered) = Journal::open(&path, 0xabcd, 4).unwrap();
        assert!(recovered.results.is_empty());
        journal.record_baseline(0.5625).unwrap();
        let a = cell(2, 0.1f64.next_up()); // deliberately awkward bits
        let b = cell(0, f64::from_bits(0x3fe0_0000_0000_0001));
        journal.record_cell(&a).unwrap();
        journal.record_cell(&b).unwrap();
        drop(journal);

        let (_journal, recovered) = Journal::open(&path, 0xabcd, 4).unwrap();
        assert_eq!(
            recovered.baseline_accuracy.unwrap().to_bits(),
            0.5625f64.to_bits()
        );
        assert_eq!(recovered.results.len(), 2);
        assert_eq!(recovered.results[0].index, 2);
        assert_eq!(
            recovered.results[0].cell.accuracy.to_bits(),
            a.cell.accuracy.to_bits()
        );
        assert_eq!(
            recovered.results[1].cell.accuracy.to_bits(),
            b.cell.accuracy.to_bits()
        );
    }

    #[test]
    fn foreign_journal_is_refused() {
        let path = temp_path("foreign");
        drop(Journal::open(&path, 1, 4).unwrap());
        assert!(Journal::open(&path, 2, 4).is_err());
        assert!(Journal::open(&path, 1, 5).is_err());
        // Same identity still resumes.
        assert!(Journal::open(&path, 1, 4).is_ok());
    }

    #[test]
    fn torn_trailing_record_is_dropped() {
        let path = temp_path("torn");
        let (mut journal, _) = Journal::open(&path, 7, 4).unwrap();
        journal.record_cell(&cell(1, 0.25)).unwrap();
        drop(journal);
        // Simulate a crash mid-append.
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        write!(file, "cell 2 3fd0000000").unwrap();
        drop(file);

        let (mut journal, recovered) = Journal::open(&path, 7, 4).unwrap();
        assert_eq!(recovered.results.len(), 1);
        assert_eq!(recovered.results[0].index, 1);
        // Recovery truncated the torn bytes, so post-recovery appends land
        // on a clean line boundary and survive the next replay.
        journal.record_cell(&cell(3, 0.75)).unwrap();
        drop(journal);
        let (_j, recovered) = Journal::open(&path, 7, 4).unwrap();
        assert_eq!(recovered.results.len(), 2);
        assert_eq!(recovered.results[1].index, 3);
    }

    #[test]
    fn duplicate_cells_are_deduplicated_on_replay() {
        let path = temp_path("dup");
        let (mut journal, _) = Journal::open(&path, 9, 4).unwrap();
        journal.record_cell(&cell(1, 0.25)).unwrap();
        journal.record_cell(&cell(1, 0.25)).unwrap();
        drop(journal);
        let (_j, recovered) = Journal::open(&path, 9, 4).unwrap();
        assert_eq!(recovered.results.len(), 1);
    }

    #[test]
    fn out_of_range_record_is_an_error() {
        let path = temp_path("range");
        let (mut journal, _) = Journal::open(&path, 3, 4).unwrap();
        journal.record_cell(&cell(9, 0.25)).unwrap();
        // Append a valid trailing record so the bad one is not "torn".
        journal.record_cell(&cell(1, 0.25)).unwrap();
        drop(journal);
        assert!(Journal::open(&path, 3, 4).is_err());
    }
}
