//! # neurofi-dist
//!
//! Distributed sweep orchestration: shards the paper's
//! `rel_changes × fractions × seeds × attack-kind` cell grids across
//! worker processes and machines, with checkpoint/resume, while keeping
//! the merged [`SweepResult`](neurofi_core::SweepResult) **bit-identical**
//! to a serial in-process run.
//!
//! Built entirely on `std` (TCP from `std::net`, hand-rolled binary
//! serialisation) because the workspace builds offline — no tokio, no
//! serde, no crates.io.
//!
//! ## Architecture
//!
//! * [`campaign`] — [`CampaignSpec`]: a self-contained, serialisable
//!   description of one sweep campaign (experiment preset and scale
//!   knobs plus a declarative N-axis
//!   [`ScenarioSpec`](neurofi_core::ScenarioSpec)), with a digest that
//!   binds journals and handshakes to the exact campaign. The preset
//!   catalog ([`named_campaign`]) and the spec-file grammar
//!   ([`parse_campaign_text`]) both expand to the same specs.
//!   [`NamedCampaign`] queues several on one coordinator, each with a
//!   scheduling weight.
//! * [`wire`] — length-prefixed framing and defensive binary encoding of
//!   the coordinator/worker [`Message`](wire::Message)s (v4: campaigns
//!   carry whole scenario specs, and cell jobs carry resolved composite
//!   attacks, so live [`Submit`](wire::Message::Submit) frames can
//!   enqueue *arbitrary* cross-product grids — not just catalog names);
//!   floats travel as IEEE-754 bit patterns.
//! * [`transport`] — the [`Connection`](transport::Connection) /
//!   [`Listener`](transport::Listener) abstraction the coordinator and
//!   worker are generic over: TCP in production, a deterministic
//!   in-process [`LoopbackHub`](transport::LoopbackHub) in the scheduler
//!   tests (no ports, no timing sleeps).
//! * [`schedule`] — pluggable cross-campaign
//!   [`SchedulingPolicy`](schedule::SchedulingPolicy): FIFO for
//!   compatibility, weighted round-robin (`--fair`) so interleaved
//!   campaigns all make latency progress. Policies cannot affect merged
//!   results — cells are pure and merges slot-addressed.
//! * [`coordinator`] — pull-based multi-campaign scheduler: one fleet
//!   serves every queued campaign, batches are sized by each worker's
//!   reported thread width, and dead workers' cells requeue without
//!   advancing the poison cap (explicit execution failures advance it;
//!   a large orphan backstop terminates worker-crashing cells; a
//!   poisoned campaign never takes the healthy ones down with it).
//!   Campaigns may be submitted to a *running* coordinator; every
//!   completed cell is journaled before its window is acked.
//! * [`control`] — the submission client (`repro submit`).
//! * [`worker`] — executes campaign-tagged batches on the PR 1
//!   in-process pool; campaigns over the same setup share one
//!   [`BaselineCache`](neurofi_core::BaselineCache) per process, so
//!   per-seed baselines are trained once no matter how many attack
//!   kinds are queued or submitted.
//! * [`checkpoint`] — the append-only journals (one per campaign)
//!   interrupted runs resume from without recomputing finished cells.
//!
//! ## Quickstart (in-process cluster over localhost TCP)
//!
//! ```no_run
//! use neurofi_dist::{named_campaign, run_local_cluster, LocalClusterConfig, NamedCampaign};
//!
//! let campaigns = vec![
//!     NamedCampaign::new("tiny", named_campaign("tiny").unwrap()),
//!     NamedCampaign::new("tiny-theta", named_campaign("tiny-theta").unwrap()),
//! ];
//! let report = run_local_cluster(&LocalClusterConfig::multi(campaigns, 2))?;
//! for sweep in &report.run.campaigns {
//!     println!("campaign `{}`: {} cells merged", sweep.name, sweep.result.cells.len());
//! }
//! # Ok::<(), neurofi_dist::DistError>(())
//! ```
//!
//! Across machines, run `repro coordinate` on one host and
//! `repro work --connect host:port` on the rest.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod campaign;
pub mod chaos;
pub mod checkpoint;
pub mod control;
pub mod coordinator;
pub mod schedule;
pub mod transport;
pub mod wire;
pub mod worker;

use std::path::PathBuf;
use std::time::Duration;

use neurofi_core::Parallelism;

pub use campaign::{
    named_campaign, parse_campaign_text, CampaignSpec, NamedCampaign, ParsedCampaign, SetupBase,
    SetupSpec, NAMED_CAMPAIGNS,
};
pub use chaos::{
    ChaosConnection, ChaosDialer, ChaosListener, ConnectionFaults, FaultSchedule, SplitMix64,
};
pub use checkpoint::Journal;
pub use control::{
    query_status, query_status_on, submit_campaign, submit_campaign_retrying, submit_on,
    submit_with_retry,
};
pub use coordinator::{
    campaign_journal_path, capacity_batch, resolve_addr, run_coordinator, serve_transport,
    CampaignSweep, CoordinatedRun, Coordinator, CoordinatorConfig, CELLS_PER_THREAD,
};
pub use schedule::{Candidate, Fifo, PolicyKind, SchedulingPolicy, WeightedRoundRobin};
pub use transport::{
    loopback_pair, Connection, Listener, LoopbackConn, LoopbackHub, LoopbackListener,
    TcpConnection, TcpServerListener,
};
pub use wire::{
    clamp_str, CampaignProgress, Message, WireError, MAX_FRAME_LEN, MAX_NAME_LEN, MAX_REASON_LEN,
    PROTOCOL_VERSION,
};
pub use worker::{
    run_worker, run_worker_on, run_worker_reconnecting, WorkerConfig, WorkerSummary,
    DEFAULT_ACK_WINDOW,
};

/// Any error produced by the distributed layer.
#[derive(Debug)]
pub enum DistError {
    /// A socket or file operation failed.
    Io(std::io::Error),
    /// A frame or message could not be encoded/decoded.
    Wire(WireError),
    /// The peer violated the protocol (bad handshake, unexpected
    /// message, divergent determinism fingerprint, poisoned cell, ...).
    Protocol(String),
    /// The peer abandoned the campaign and said why.
    Aborted(String),
    /// A checkpoint journal could not be used.
    Journal(String),
    /// The content-addressed result store refused an operation
    /// (corruption, i/o, or a conflicting record under one digest).
    Store(neurofi_store::StoreError),
    /// Executing or assembling cells failed in the core engine.
    Core(neurofi_core::Error),
    /// The coordinator gave up with work remaining (no workers for the
    /// idle timeout). The journal, when present, holds the progress;
    /// rerunning the same command resumes it.
    Incomplete {
        /// Cells measured so far (journaled when a journal is set).
        done: usize,
        /// Cells in the campaign.
        total: usize,
        /// The journal base path holding the progress, if checkpointing
        /// was on (per-campaign files are derived from it — see
        /// [`campaign_journal_path`]).
        journal: Option<PathBuf>,
    },
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::Io(e) => write!(f, "i/o failed: {e}"),
            DistError::Wire(e) => write!(f, "wire protocol failed: {e}"),
            DistError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            DistError::Aborted(reason) => write!(f, "campaign aborted by peer: {reason}"),
            DistError::Journal(msg) => write!(f, "checkpoint journal unusable: {msg}"),
            DistError::Store(e) => write!(f, "result store unusable: {e}"),
            DistError::Core(e) => write!(f, "sweep execution failed: {e}"),
            DistError::Incomplete {
                done,
                total,
                journal,
            } => match journal {
                Some(path) => write!(
                    f,
                    "campaign incomplete ({done}/{total} cells): no workers connected; \
                     progress checkpointed under {} — rerun the same command to resume \
                     every queued campaign",
                    path.display()
                ),
                None => write!(
                    f,
                    "campaign incomplete ({done}/{total} cells): no workers connected \
                     and no --journal was set, so progress was not checkpointed"
                ),
            },
        }
    }
}

impl std::error::Error for DistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DistError::Io(e) => Some(e),
            DistError::Wire(e) => Some(e),
            DistError::Core(e) => Some(e),
            DistError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<neurofi_store::StoreError> for DistError {
    fn from(e: neurofi_store::StoreError) -> DistError {
        DistError::Store(e)
    }
}

impl From<std::io::Error> for DistError {
    fn from(e: std::io::Error) -> DistError {
        DistError::Io(e)
    }
}

impl From<WireError> for DistError {
    fn from(e: WireError) -> DistError {
        // An i/o failure underneath the wire layer is an i/o failure.
        match e {
            WireError::Io(io) => DistError::Io(io),
            other => DistError::Wire(other),
        }
    }
}

impl From<neurofi_core::Error> for DistError {
    fn from(e: neurofi_core::Error) -> DistError {
        DistError::Core(e)
    }
}

/// How a client (worker or submitter) retries a failed link: capped
/// exponential backoff with seeded jitter.
///
/// Attempt `n` (0-based) sleeps `backoff × 2ⁿ`, capped at
/// `max_backoff`, then scaled by a jitter factor in `[0.5, 1.5)` drawn
/// from a [`SplitMix64`] stream seeded with `seed` — so two workers
/// given different seeds do not reconnect in lockstep, yet a given
/// seed's timing replays exactly (which the chaos suite relies on).
///
/// Retries are *consecutive-failure* bounded: a worker that completes a
/// handshake resets its failure count, so a long-lived worker rides
/// through any number of separated link flaps, while a coordinator
/// that is truly gone is given up on after `max_retries + 1` dials.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// How many consecutive failed attempts to retry before giving up
    /// (0 = fail on the first error, preserving pre-retry behaviour).
    pub max_retries: u32,
    /// Base delay before the first retry.
    pub backoff: Duration,
    /// Ceiling on the exponentially grown delay.
    pub max_backoff: Duration,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 4,
            backoff: Duration::from_millis(250),
            max_backoff: Duration::from_secs(5),
            seed: 0x9e3779b97f4a7c15,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (single-shot, pre-retry behaviour).
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }

    /// Default backoff shape with the given retry budget.
    pub fn with_retries(max_retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries,
            ..RetryPolicy::default()
        }
    }

    /// Same policy, different jitter seed (give each worker its own).
    pub fn with_seed(mut self, seed: u64) -> RetryPolicy {
        self.seed = seed;
        self
    }

    /// The sleep before retry number `attempt` (0-based), jittered by
    /// `rng`.
    pub fn delay(&self, attempt: u32, rng: &mut SplitMix64) -> Duration {
        let doublings = attempt.min(16);
        let grown = self.backoff.saturating_mul(1u32 << doublings);
        let capped = grown.min(self.max_backoff);
        capped.mul_f64(0.5 + rng.unit_f64())
    }
}

/// Configuration for [`run_local_cluster`]: one coordinator plus `n`
/// worker threads in this process, talking real TCP over localhost.
#[derive(Debug, Clone)]
pub struct LocalClusterConfig {
    /// The campaigns to queue, in order.
    pub campaigns: Vec<NamedCampaign>,
    /// Cross-campaign scheduling policy (FIFO unless overridden).
    pub policy: schedule::PolicyKind,
    /// Number of local workers to spawn.
    pub workers: usize,
    /// Bind address for the coordinator (default `127.0.0.1:0`).
    pub bind: String,
    /// Per-worker cell-level parallelism.
    pub worker_parallelism: Parallelism,
    /// Optional per-worker cell budget (workers vanish after this many
    /// cells — used to exercise requeue/resume).
    pub worker_max_cells: Option<usize>,
    /// Checkpoint journal path.
    pub journal: Option<PathBuf>,
    /// Content-addressed result store path (cross-campaign dedup).
    pub store: Option<PathBuf>,
    /// Coordinator idle timeout (how long pending work may sit with no
    /// connected workers before the run returns [`DistError::Incomplete`]).
    pub idle_timeout: Duration,
    /// Worker-side socket timeout. Scheduling replies are immediate
    /// (the coordinator heartbeats while work is in flight elsewhere),
    /// so this only guards against a dead coordinator.
    pub io_timeout: Duration,
    /// Coordinator-side silence tolerance per worker. This must cover a
    /// worker's longest baseline-training plus batch-computation gap —
    /// paper-scale cells take minutes — and is therefore much larger
    /// than `io_timeout`.
    pub worker_timeout: Duration,
    /// Worker reconnect policy. Defaults to [`RetryPolicy::none`]: an
    /// in-process cluster's coordinator and workers die together, so
    /// reconnect attempts after the run ends would only delay exit.
    /// Long-lived multi-machine workers (`repro work`) default to
    /// retrying instead.
    pub worker_retry: RetryPolicy,
}

impl LocalClusterConfig {
    /// Single-campaign defaults: loopback auto-port, serial workers
    /// (the cluster itself provides the parallelism), no budget, no
    /// journal. The campaign is queued under the name `main`.
    pub fn new(campaign: CampaignSpec, workers: usize) -> LocalClusterConfig {
        LocalClusterConfig::multi(vec![NamedCampaign::new("main", campaign)], workers)
    }

    /// Queues several campaigns on one coordinator with the same
    /// defaults.
    pub fn multi(campaigns: Vec<NamedCampaign>, workers: usize) -> LocalClusterConfig {
        LocalClusterConfig {
            campaigns,
            policy: schedule::PolicyKind::Fifo,
            workers,
            bind: "127.0.0.1:0".into(),
            worker_parallelism: Parallelism::Serial,
            worker_max_cells: None,
            journal: None,
            store: None,
            idle_timeout: Duration::from_secs(10),
            io_timeout: Duration::from_secs(60),
            worker_timeout: Duration::from_secs(600),
            worker_retry: RetryPolicy::none(),
        }
    }
}

/// What a local cluster run produced.
#[derive(Debug)]
pub struct LocalClusterReport {
    /// The coordinator's merged sweeps, one per queued campaign.
    pub run: CoordinatedRun,
    /// Per-worker outcomes, in spawn order. Workers that error *after*
    /// the run completed (their socket was shut down while they were
    /// computing requeued duplicates) are reported, not fatal.
    pub workers: Vec<Result<WorkerSummary, DistError>>,
}

/// Runs a coordinator and `n` in-process workers over localhost TCP and
/// returns the merged sweep. The transport is the real wire protocol —
/// this is the same code path as a multi-machine campaign, minus the
/// machines.
///
/// # Errors
/// Propagates the coordinator's failure (worker failures are reported in
/// the [`LocalClusterReport`] but only fail the run when the coordinator
/// also fails).
pub fn run_local_cluster(config: &LocalClusterConfig) -> Result<LocalClusterReport, DistError> {
    let mut coordinator_config =
        CoordinatorConfig::with_campaigns(config.bind.clone(), config.campaigns.clone());
    coordinator_config.journal = config.journal.clone();
    coordinator_config.store = config.store.clone();
    coordinator_config.policy = config.policy;
    coordinator_config.idle_timeout = config.idle_timeout;
    coordinator_config.worker_timeout = config.worker_timeout;

    let coordinator = Coordinator::bind(coordinator_config)?;
    let addr = coordinator.local_addr()?;

    std::thread::scope(|scope| {
        let worker_handles: Vec<_> = (0..config.workers)
            .map(|i| {
                let worker_config = WorkerConfig {
                    parallelism: config.worker_parallelism,
                    max_cells: config.worker_max_cells,
                    io_timeout: config.io_timeout,
                    retry: config
                        .worker_retry
                        .clone()
                        .with_seed(config.worker_retry.seed.wrapping_add(i as u64)),
                    ..WorkerConfig::new(addr.to_string())
                };
                scope.spawn(move || run_worker(&worker_config))
            })
            .collect();

        let run = coordinator.serve();
        let workers: Vec<Result<WorkerSummary, DistError>> = worker_handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err(DistError::Protocol("worker thread panicked".into())))
            })
            .collect();
        run.map(|run| LocalClusterReport { run, workers })
    })
}
