//! The campaign coordinator: queues multiple campaigns and shards their
//! cell grids over one shared worker fleet.
//!
//! Scheduling is pull-based work stealing at the granularity the PR 1
//! in-process pool established: idle workers request batches, the
//! coordinator pops pending cell indices from the campaign its
//! [`SchedulingPolicy`] picks (FIFO by default; weighted round-robin
//! under `--fair`, so interleaved campaigns all make latency progress),
//! and a worker that dies (or times out) simply has its in-flight cells
//! requeued for whoever asks next. Batches are sized by the `threads`
//! each worker reported in its `Hello` (capacity-aware batching — a
//! 16-core node gets 16× the cells of a 1-core node per round trip).
//! Because every cell is a pure function of `(setup, job)` and each
//! campaign's merge is slot-addressed ([`assemble_sweep`]), *any*
//! interleaving of campaigns, workers, retries, resumes, and scheduling
//! policies produces the same bit-exact [`SweepResult`]s as serial runs.
//!
//! The campaign queue is **live** (protocol v3): a control client may
//! [`Submit`](Message::Submit) a campaign to a running coordinator
//! (`repro submit`). The submission is validated, bound a digest-checked
//! journal exactly as bind-time campaigns are, announced to every
//! connected worker ([`Message::CampaignAnnounce`] — pushed before the
//! first reply that references the new campaign id), and scheduled by
//! the same policy as everything else.
//!
//! Completed cells are journaled — one journal per campaign, each bound
//! to its campaign digest — before they are acknowledged back to the
//! worker ([`Message::Ack`]), so a killed coordinator resumes every
//! queued campaign from its checkpoint without recomputing finished
//! cells (see [`crate::checkpoint`]).
//!
//! Failure accounting distinguishes *worker* failures from *cell*
//! failures: a worker that dies or times out has its in-flight cells
//! requeued without advancing the `max_attempts` poison cap (assignment
//! is not evidence against a cell), while an explicit
//! [`Message::Failed`] execution report counts toward it. A cell that
//! fails execution `max_attempts` times — or is orphaned by
//! `max_worker_losses` dying workers without ever reporting (the
//! signature of a cell that crashes worker *processes*) — poisons **its
//! campaign only**: the poisoned campaign stops scheduling, every other
//! queued campaign runs to completion (and journals), and the run then
//! ends failed, naming each poisoned campaign with its failure log.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use neurofi_core::sweep::{
    assemble_sweep, cell_countermeasures, CellResult, SweepPlan, SweepResult,
};
use neurofi_core::DetectionOutcome;
use neurofi_store::Store;

use crate::campaign::NamedCampaign;
use crate::checkpoint::Journal;
use crate::schedule::{Candidate, PolicyKind, SchedulingPolicy};
use crate::transport::{Canceller, Connection, Listener, TcpServerListener};
use crate::wire::{CampaignProgress, Message, PROTOCOL_VERSION};
use crate::DistError;

/// How a coordinator serves its campaign queue.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Address to listen on (`127.0.0.1:0` picks a free port).
    pub bind: String,
    /// The campaigns to queue at bind time (more may arrive live via
    /// [`Message::Submit`]). Names must be unique.
    pub campaigns: Vec<NamedCampaign>,
    /// Checkpoint journal base path; `None` disables checkpointing.
    /// Every campaign — bind-time or submitted — journals to
    /// `<path>.<campaign-name>` (see [`campaign_journal_path`]).
    pub journal: Option<PathBuf>,
    /// Content-addressed result store path; `None` disables the store.
    /// Unlike journals (one per campaign, an in-flight ack/resume log),
    /// the store is one file shared by *every* campaign this coordinator
    /// will ever serve: cells are keyed by content digest
    /// ([`CampaignSpec::cell_digest`](crate::CampaignSpec::cell_digest)),
    /// so overlapping submissions dedupe to store hits before any cell
    /// reaches a worker.
    pub store: Option<PathBuf>,
    /// Service mode: when `true`, the coordinator outlives queue drain —
    /// it never settles `Complete`, never idles out, accepts an empty
    /// bind-time queue, and keeps accepting submissions until the
    /// process is killed (`repro serve`). Progress is observable via
    /// [`Message::Status`] queries, and the journals + store make a
    /// killed service resumable.
    pub persistent: bool,
    /// Cross-campaign scheduling policy (FIFO unless `--fair`).
    pub policy: PolicyKind,
    /// Socket read timeout per worker: a worker silent for this long is
    /// declared dead and its in-flight cells are requeued.
    pub worker_timeout: Duration,
    /// How long the coordinator tolerates pending work with *no* workers
    /// connected before giving up (the journals keep the progress).
    pub idle_timeout: Duration,
    /// Maximum times one cell may *fail execution* (reported via
    /// [`Message::Failed`]) before its campaign is declared poisoned.
    /// Worker deaths and timeouts do not count toward this — a healthy
    /// cell handed to five dying workers requeues for free.
    pub max_attempts: u32,
    /// Termination backstop for cells whose execution kills the worker
    /// *process* (no [`Message::Failed`] ever arrives): a cell orphaned
    /// by this many dying/timing-out workers poisons its campaign. Much
    /// larger than `max_attempts` so flaky fleets (spot preemption,
    /// restarts) never false-poison a healthy cell, but a
    /// worker-crashing cell cannot requeue forever.
    pub max_worker_losses: u32,
}

impl CoordinatorConfig {
    /// A single-campaign config with the defaults: FIFO scheduling,
    /// generous worker timeout (cells are training runs), 60 s idle
    /// timeout, 5 execution failures per cell, 50 worker losses per
    /// cell. The campaign is queued under the name `main`.
    pub fn new(bind: impl Into<String>, campaign: crate::CampaignSpec) -> CoordinatorConfig {
        CoordinatorConfig::with_campaigns(bind, vec![NamedCampaign::new("main", campaign)])
    }

    /// A config queueing several campaigns with the defaults.
    pub fn with_campaigns(
        bind: impl Into<String>,
        campaigns: Vec<NamedCampaign>,
    ) -> CoordinatorConfig {
        CoordinatorConfig {
            bind: bind.into(),
            campaigns,
            journal: None,
            store: None,
            persistent: false,
            policy: PolicyKind::Fifo,
            worker_timeout: Duration::from_secs(600),
            idle_timeout: Duration::from_secs(60),
            max_attempts: 5,
            max_worker_losses: 50,
        }
    }
}

/// Cells a worker gets per reported thread and scheduling round trip.
/// 2 keeps every core busy while the next request is in flight without
/// hoarding cells a slow node would strand until its timeout.
pub const CELLS_PER_THREAD: usize = 2;

/// Capacity-aware batch sizing: how many cells to hand a worker that
/// reported `threads` in its `Hello`, asked for at most `requested`, and
/// faces `pending` unassigned cells. Scales linearly with the reported
/// width, never exceeds the worker's own cap, and never over-claims the
/// queue.
pub fn capacity_batch(threads: u32, requested: u32, pending: usize) -> usize {
    (threads.max(1) as usize)
        .saturating_mul(CELLS_PER_THREAD)
        .min(requested.max(1) as usize)
        .min(pending)
}

/// The two per-cell poison caps, bundled for the handler threads.
#[derive(Debug, Clone, Copy)]
struct PoisonLimits {
    max_attempts: u32,
    max_worker_losses: u32,
}

/// The per-campaign journal path under `base`: always `base.<name>`.
///
/// The suffix is unconditional (PR 3 used the bare base path for a lone
/// campaign) because with live submission the number of campaigns a run
/// will ultimately serve is unknowable at bind time — a path that
/// depended on it could not resume reliably. The journal header's
/// campaign digest still guards against name collisions across
/// different grids.
pub fn campaign_journal_path(base: &Path, name: &str) -> PathBuf {
    PathBuf::from(format!("{}.{name}", base.display()))
}

/// One campaign's merged outcome within a [`CoordinatedRun`].
#[derive(Debug, Clone)]
pub struct CampaignSweep {
    /// The campaign's queue name.
    pub name: String,
    /// The campaign that produced the merge (bind-time or
    /// live-submitted) — callers can re-run it serially for golden
    /// verification without knowing how it was enqueued.
    pub spec: crate::CampaignSpec,
    /// The assembled sweep — bit-identical to a serial run.
    pub result: SweepResult,
    /// Cells in the campaign grid.
    pub total_cells: usize,
    /// Cells recovered from the checkpoint journal (not recomputed).
    pub resumed_cells: usize,
    /// Cells satisfied by the content-addressed result store — measured
    /// by some earlier campaign (any name, any submitter) and never
    /// assigned to a worker in this run.
    pub store_hit_cells: usize,
    /// Cells measured by workers during this run.
    pub computed_cells: usize,
}

/// The merged outcome of a coordinated run over every queued campaign
/// (bind-time and live-submitted, in queue order).
#[derive(Debug, Clone)]
pub struct CoordinatedRun {
    /// Per-campaign merges, in queue order.
    pub campaigns: Vec<CampaignSweep>,
    /// Distinct worker connections that completed the handshake.
    pub workers_seen: usize,
}

/// Why the serve loop stopped.
enum Outcome {
    Complete,
    Failed(String),
}

/// Scheduler state for one queued campaign.
struct CampaignState {
    /// The campaign as queued (name, scheduling weight, spec).
    campaign: NamedCampaign,
    /// Stage-1 enumeration of the campaign's cells (job lookup for
    /// assignments).
    plan: SweepPlan,
    pending: VecDeque<usize>,
    /// Execution failures per cell ([`Message::Failed`] reports only —
    /// assignments alone are never counted, so a healthy cell can
    /// survive any number of dying workers).
    failures: Vec<u32>,
    /// Times each cell was orphaned by a dying/timing-out worker. Not
    /// part of the `max_attempts` poison cap, but bounded by the much
    /// larger `max_worker_losses` so a cell that crashes worker
    /// *processes* (and therefore never gets a [`Message::Failed`])
    /// still cannot requeue forever.
    orphaned: Vec<u32>,
    /// Human-readable log of every execution failure, surfaced in the
    /// poison diagnostic so the operator sees what actually happened.
    failure_log: Vec<String>,
    completed: Vec<Option<CellResult>>,
    n_done: usize,
    /// Cells recovered from the journal when this campaign was queued.
    resumed: usize,
    /// Cells satisfied by the result store when this campaign was
    /// queued (cross-campaign dedup — never assigned to a worker).
    store_hits: usize,
    /// Per-cell content digests (store keys), index-aligned with the
    /// plan. Computed once at enqueue so the record path never re-walks
    /// the spec.
    digests: Vec<u64>,
    /// Detector-armed cells whose dummy neuron trips the ≥10% rule.
    /// Detection is a pure function of the planned attack (not of
    /// execution), so both counters are fixed at enqueue time.
    detected: usize,
    /// Detector-armed off-nominal cells the dummy neuron misses.
    missed: usize,
    baseline_accuracy: Option<f64>,
    journal: Option<Journal>,
    /// Set when this campaign is poisoned. A failed campaign stops
    /// scheduling its cells; the *other* queued campaigns keep running
    /// to completion (their journals make the merges resumable), and
    /// the run as a whole ends failed, naming every poisoned campaign.
    failed: Option<String>,
}

impl CampaignState {
    /// Builds the scheduler state for one campaign: enumerates its
    /// plan, opens (and replays) its digest-bound journal when
    /// checkpointing is on, seeds `completed` from the recovery, then
    /// consults the content-addressed store — journal-recovered cells
    /// drain *into* it, and every still-missing cell it already holds
    /// is filled as a store hit (never assigned to a worker). Used
    /// identically for bind-time campaigns and live submissions.
    fn create(
        campaign: NamedCampaign,
        journal_base: Option<&Path>,
        store: Option<&Mutex<Store>>,
    ) -> Result<CampaignState, DistError> {
        campaign.spec.validate()?;
        let plan = campaign.spec.plan();
        let total = plan.jobs.len();
        let (mut journal, recovered) = match journal_base {
            Some(base) => {
                let path = campaign_journal_path(base, &campaign.name);
                let (journal, recovered) = Journal::open(&path, campaign.spec.digest(), total)?;
                (Some(journal), recovered)
            }
            None => (None, Default::default()),
        };
        let mut completed: Vec<Option<CellResult>> = vec![None; total];
        let mut n_done = 0usize;
        for result in &recovered.results {
            if completed[result.index].is_none() {
                completed[result.index] = Some(*result);
                n_done += 1;
            }
        }
        let resumed = n_done;
        let digests: Vec<u64> = plan
            .jobs
            .iter()
            .map(|job| campaign.spec.cell_digest(&job.attack))
            .collect();
        // Detection outcomes are a pure function of the planned attack
        // (the dummy neuron watches the raw supply, not the measured
        // accuracy), so the status counters are fixed here, once.
        let transfer = campaign.spec.scenario.transfer_table()?;
        let (mut detected, mut missed) = (0usize, 0usize);
        for job in &plan.jobs {
            match cell_countermeasures(&job.attack, transfer.as_ref()).detection {
                Some(DetectionOutcome::Detected) => detected += 1,
                Some(DetectionOutcome::Missed) => missed += 1,
                Some(DetectionOutcome::Quiet) | None => {}
            }
        }
        let mut baseline_accuracy = recovered.baseline_accuracy;
        let mut store_hits = 0usize;
        if let Some(store) = store {
            let mut store = lock_store(store);
            // Journal-recovered cells drain into the store first, so
            // progress made under this campaign's name is visible to
            // every overlapping campaign. A conflict here means two
            // runs measured different bits for the same content —
            // surface it, never cache over it.
            if let Some(accuracy) = baseline_accuracy {
                store.put_baseline(campaign.spec.baseline_digest(), accuracy)?;
            }
            for (index, result) in completed.iter().flatten().map(|r| (r.index, r)) {
                store.put_cell(digests[index], result.cell)?;
            }
            // The baseline must be pinned before any hit is filled in:
            // store-held cells were measured against the store-held
            // baseline, so mixing them with a *different* baseline
            // would blend two relative-change scales in one grid.
            if baseline_accuracy.is_none() {
                if let Some(accuracy) = store.get_baseline(campaign.spec.baseline_digest()) {
                    if let Some(journal) = journal.as_mut() {
                        journal.record_baseline(accuracy)?;
                    }
                    baseline_accuracy = Some(accuracy);
                }
            }
            // Then every cell the store already holds is a hit: filled
            // in, journaled for the per-campaign resume log (so a
            // restart resumes it even against a compacted store), and
            // never assigned to a worker.
            for index in 0..total {
                if completed[index].is_some() {
                    continue;
                }
                if let Some(cell) = store.get_cell(digests[index]) {
                    let result = CellResult { index, cell };
                    if let Some(journal) = journal.as_mut() {
                        journal.record_cell(&result)?;
                    }
                    completed[index] = Some(result);
                    n_done += 1;
                    store_hits += 1;
                }
            }
        }
        Ok(CampaignState {
            campaign,
            plan,
            pending: (0..total).filter(|&i| completed[i].is_none()).collect(),
            failures: vec![0; total],
            orphaned: vec![0; total],
            failure_log: Vec::new(),
            completed,
            n_done,
            resumed,
            store_hits,
            digests,
            detected,
            missed,
            baseline_accuracy,
            journal,
            failed: None,
        })
    }

    fn total(&self) -> usize {
        self.completed.len()
    }

    /// Complete or poisoned — either way, nothing left to schedule.
    fn settled(&self) -> bool {
        self.failed.is_some() || self.n_done == self.total()
    }

    /// Poisons this campaign (first reason wins) and drops its pending
    /// queue so no further cells are scheduled.
    fn poison(&mut self, reason: String) {
        if self.failed.is_none() {
            self.failed = Some(reason);
        }
        self.pending.clear();
    }

    fn schedulable(&self) -> bool {
        self.failed.is_none() && !self.pending.is_empty()
    }
}

struct State {
    campaigns: Vec<CampaignState>,
    /// Picks which campaign serves each batch claim.
    policy: Box<dyn SchedulingPolicy>,
    workers_connected: usize,
    workers_seen: usize,
    /// Campaigns accepted by live submission. The serve loop treats a
    /// growing count as activity, so an accepted submission resets the
    /// idle-abandonment clock — a coordinator that just told a client
    /// `SubmitOk` must give workers a chance to arrive for it.
    submissions_accepted: usize,
    /// Service mode: a persistent coordinator never settles `Complete`
    /// when its queue drains — it waits for the next submission.
    persistent: bool,
    outcome: Option<Outcome>,
}

impl State {
    fn fail(&mut self, reason: String) {
        if self.outcome.is_none() {
            self.outcome = Some(Outcome::Failed(reason));
        }
    }

    /// Ends the run once every campaign is settled: `Complete` when all
    /// succeeded, otherwise `Failed` naming every poisoned campaign
    /// (healthy campaigns were still driven to completion and journaled
    /// first). A persistent coordinator never settles — a drained queue
    /// just means it is waiting for the next submission, and a poisoned
    /// campaign must not take the service down with it.
    fn settle_if_done(&mut self) {
        if self.persistent
            || self.outcome.is_some()
            || !self.campaigns.iter().all(CampaignState::settled)
        {
            return;
        }
        let poisoned: Vec<&String> = self
            .campaigns
            .iter()
            .filter_map(|c| c.failed.as_ref())
            .collect();
        if poisoned.is_empty() {
            self.outcome = Some(Outcome::Complete);
        } else {
            let reasons: Vec<String> = poisoned.into_iter().cloned().collect();
            self.fail(reasons.join("; "));
        }
    }

    fn cells_done(&self) -> usize {
        self.campaigns.iter().map(|c| c.n_done).sum()
    }

    fn cells_total(&self) -> usize {
        self.campaigns.iter().map(CampaignState::total).sum()
    }
}

struct Shared {
    state: Mutex<State>,
    /// Signalled when pending work appears, completion flips, the run
    /// fails, or a campaign is submitted — anything a blocked scheduler
    /// call cares about.
    changed: Condvar,
    /// One canceller slot per accepted connection, so shutdown can
    /// unblock handler reads once the run is over. A handler clears its
    /// slot when its connection ends — a long-lived coordinator churns
    /// through connections without pinning dead handles (and their
    /// duplicated fds) for the whole run.
    conns: Mutex<Vec<Option<Canceller>>>,
    /// Journal base for campaigns submitted after bind.
    journal_base: Option<PathBuf>,
    /// The cross-campaign result store, shared by the record path and
    /// every enqueue. Lock order is strictly `state` → `store` (the
    /// enqueue path locks `store` *without* `state`, never the
    /// reverse), so the pair cannot deadlock.
    store: Option<Mutex<Store>>,
}

/// Locks the result store, shedding poison: the store's own conflict
/// checks make a torn in-memory update loud on the next insert, and an
/// abandoned lock must not wedge every later campaign.
fn lock_store(store: &Mutex<Store>) -> MutexGuard<'_, Store> {
    store
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl Shared {
    /// Locks the scheduler state, recovering from mutex poisoning: if a
    /// handler thread panicked mid-update, the run is marked failed with
    /// a diagnostic and every caller keeps operating on the (possibly
    /// torn, but no longer trusted) state long enough to deliver clean
    /// `Abort`s to its workers — instead of cascading panics across
    /// every connection.
    fn lock_state(&self) -> MutexGuard<'_, State> {
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                guard.fail(
                    "a coordinator handler thread panicked mid-update; \
                     failing the run (state can no longer be trusted)"
                        .into(),
                );
                self.changed.notify_all();
                guard
            }
        }
    }

    /// [`Condvar::wait_timeout`] with the same poison recovery as
    /// [`Shared::lock_state`]. Returns the reacquired guard and whether
    /// the wait timed out.
    fn wait_changed<'a>(
        &'a self,
        guard: MutexGuard<'a, State>,
        timeout: Duration,
    ) -> (MutexGuard<'a, State>, bool) {
        match self.changed.wait_timeout(guard, timeout) {
            Ok((guard, result)) => (guard, result.timed_out()),
            Err(poisoned) => {
                let (mut guard, result) = poisoned.into_inner();
                guard.fail(
                    "a coordinator handler thread panicked mid-update; \
                     failing the run (state can no longer be trusted)"
                        .into(),
                );
                self.changed.notify_all();
                (guard, result.timed_out())
            }
        }
    }

    /// Locks the canceller registry, shedding poison (the registry is
    /// only ever appended to, so a torn update cannot corrupt it).
    fn lock_conns(&self) -> MutexGuard<'_, Vec<Option<Canceller>>> {
        self.conns
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Registers a connection's canceller, returning the slot to clear
    /// when the connection ends.
    fn register_conn(&self, canceller: Canceller) -> usize {
        let mut conns = self.lock_conns();
        conns.push(Some(canceller));
        conns.len() - 1
    }

    /// Severs every connection still registered (idle control clients,
    /// half-open handshakes, workers mid-computation).
    fn cancel_all_conns(&self) {
        for cancel in self.lock_conns().iter().flatten() {
            cancel();
        }
    }
}

/// After the run ends, how long handlers get to deliver a graceful
/// `Finished`/`Abort` before their connections are forcibly severed.
const DRAIN_GRACE: Duration = Duration::from_secs(5);

/// Validates a campaign queue: valid specs, unique names, and —
/// except for a persistent service, which legitimately starts empty
/// and fills by submission — non-empty.
fn validate_queue(campaigns: &[NamedCampaign], allow_empty: bool) -> Result<(), DistError> {
    if campaigns.is_empty() && !allow_empty {
        return Err(DistError::Protocol("no campaigns queued".into()));
    }
    for (i, campaign) in campaigns.iter().enumerate() {
        campaign.spec.validate()?;
        if campaign.name.len() > crate::wire::MAX_NAME_LEN {
            return Err(DistError::Protocol(format!(
                "campaign name of {} bytes exceeds the {}-byte wire cap",
                campaign.name.len(),
                crate::wire::MAX_NAME_LEN
            )));
        }
        if campaigns[..i].iter().any(|c| c.name == campaign.name) {
            return Err(DistError::Protocol(format!(
                "campaign name `{}` is queued twice; names must be unique \
                 (they key journals and reports)",
                campaign.name
            )));
        }
    }
    Ok(())
}

/// A bound coordinator, ready to serve over TCP. Splitting bind from
/// serve lets callers learn the actual port (`bind = "127.0.0.1:0"`)
/// before workers are launched — the local-cluster helper and CI rely
/// on it. Tests that need determinism instead drive [`serve_transport`]
/// directly over a loopback listener.
#[derive(Debug)]
pub struct Coordinator {
    listener: TcpListener,
    config: CoordinatorConfig,
}

impl Coordinator {
    /// Validates every queued campaign and binds the listener.
    ///
    /// # Errors
    /// Fails on an empty queue, duplicate campaign names, invalid
    /// campaigns, or unbindable addresses.
    pub fn bind(config: CoordinatorConfig) -> Result<Coordinator, DistError> {
        validate_queue(&config.campaigns, config.persistent)?;
        let listener = TcpListener::bind(&config.bind)?;
        Ok(Coordinator { listener, config })
    }

    /// The address workers should connect to.
    ///
    /// # Errors
    /// Propagates the (unlikely) socket introspection failure.
    pub fn local_addr(&self) -> Result<SocketAddr, DistError> {
        Ok(self.listener.local_addr()?)
    }

    /// Serves the campaign queue until every campaign settles (all
    /// cells measured, or the campaign poisoned), then assembles the
    /// merged sweeps.
    ///
    /// # Errors
    /// See [`serve_transport`].
    pub fn serve(self) -> Result<CoordinatedRun, DistError> {
        serve_transport(TcpServerListener::new(self.listener)?, self.config)
    }
}

/// Serves a campaign queue over any [`Listener`] until every campaign
/// settles, then assembles the merged sweeps. This is the whole
/// coordinator — [`Coordinator::serve`] runs it over TCP, tests run it
/// over a [`LoopbackHub`](crate::transport::LoopbackHub) listener for
/// deterministic scheduling tests.
///
/// # Errors
/// * [`DistError::Incomplete`] when work remains but no workers have
///   been connected for `idle_timeout` — the journals hold the
///   progress and the same command resumes all campaigns.
/// * A poisoned campaign (over `max_attempts` execution failures or
///   `max_worker_losses` orphaning worker deaths on one cell) fails
///   the run *after* the healthy campaigns finish and journal; the
///   error names each poisoned campaign with its failure log, and
///   rerunning without the poisoned grid resumes the rest at zero
///   cost.
/// * Divergent worker baselines, journal i/o failures, and protocol
///   violations surface as their respective variants.
pub fn serve_transport<L: Listener>(
    mut listener: L,
    config: CoordinatorConfig,
) -> Result<CoordinatedRun, DistError> {
    validate_queue(&config.campaigns, config.persistent)?;
    let store = config
        .store
        .as_deref()
        .map(Store::open)
        .transpose()?
        .map(Mutex::new);
    let mut states = Vec::with_capacity(config.campaigns.len());
    for campaign in &config.campaigns {
        states.push(CampaignState::create(
            campaign.clone(),
            config.journal.as_deref(),
            store.as_ref(),
        )?);
    }

    let shared = Shared {
        state: Mutex::new(State {
            campaigns: states,
            policy: config.policy.build(),
            workers_connected: 0,
            workers_seen: 0,
            submissions_accepted: 0,
            persistent: config.persistent,
            outcome: None,
        }),
        changed: Condvar::new(),
        conns: Mutex::new(Vec::new()),
        journal_base: config.journal.clone(),
        store,
    };
    shared.lock_state().settle_if_done();

    let worker_timeout = config.worker_timeout;
    let idle_timeout = config.idle_timeout;
    let limits = PoisonLimits {
        max_attempts: config.max_attempts,
        max_worker_losses: config.max_worker_losses,
    };

    // The listener's canceller is the shutdown signal for the accept
    // thread: it unblocks the blocking accept and makes every later
    // accept return `None`.
    let unblock_accept = listener.canceller();

    std::thread::scope(|scope| {
        let shared = &shared;
        // Accept thread: parks in the kernel (TCP) or on the hub's
        // condvar (loopback) — no polling — and spawns one handler per
        // peer. It exits when the canceller fires or the listener
        // breaks.
        scope.spawn(move || loop {
            match listener.accept() {
                Ok(Some(conn)) => {
                    scope.spawn(move || serve_conn(conn, shared, worker_timeout, limits));
                }
                Ok(None) => break, // cancelled: run is over
                Err(e) => {
                    let mut state = shared.lock_state();
                    state.fail(format!("listener failed: {e}"));
                    shared.changed.notify_all();
                    break;
                }
            }
        });

        // Main loop: sleep on the `changed` condvar, re-checking
        // outcome and idleness on every wake. The bounded slice exists
        // only so the idle deadline is noticed promptly when *nothing*
        // happens; all real transitions (completion, failure, worker
        // arrival/departure, submission) signal the condvar.
        let mut idle_since = Instant::now();
        let mut submissions_seen = 0usize;
        let slice = idle_timeout
            .min(Duration::from_millis(500))
            .max(Duration::from_millis(10));
        let mut state = shared.lock_state();
        loop {
            if state.outcome.is_some() {
                break;
            }
            // Connected workers *and* accepted submissions count as
            // activity: a coordinator that just replied `SubmitOk`
            // must give workers a chance to arrive for the new
            // campaign instead of idling out moments later.
            if state.workers_connected > 0 || state.submissions_accepted != submissions_seen {
                submissions_seen = state.submissions_accepted;
                idle_since = Instant::now();
            } else if !state.persistent && idle_since.elapsed() > idle_timeout {
                // A persistent service is exempt: waiting for the next
                // submission with no workers around is its steady state,
                // not abandonment.
                state.fail(String::new()); // marker: idle abandonment
                shared.changed.notify_all();
                break;
            }
            state = shared.wait_changed(state, slice).0;
        }
        drop(state);
        unblock_accept();

        // Drain: wake blocked handlers so they deliver Finished/Abort
        // to their workers; after a short grace, force-sever any
        // connection still open (e.g. a worker mid-computation on
        // cells that were requeued and finished elsewhere). Once every
        // *worker* is gone, sever whatever remains anyway — an idle
        // control client (or a peer that never finished its handshake)
        // would otherwise pin its handler in `recv` until the worker
        // timeout, stalling the scope join for minutes after the merge
        // is ready. Handler exits signal `changed`, so the drain waits
        // on the condvar too (the slice re-notifies stragglers).
        let deadline = Instant::now() + DRAIN_GRACE;
        let mut state = shared.lock_state();
        loop {
            shared.changed.notify_all();
            if state.workers_connected == 0 || Instant::now() > deadline {
                break;
            }
            state = shared.wait_changed(state, Duration::from_millis(50)).0;
        }
        drop(state);
        shared.cancel_all_conns();
    });

    let state = shared
        .state
        .into_inner()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let (cells_done, cells_total) = (state.cells_done(), state.cells_total());
    match state.outcome {
        Some(Outcome::Complete) => {
            let mut merged = Vec::with_capacity(state.campaigns.len());
            for campaign_state in state.campaigns {
                let total = campaign_state.total();
                let baseline_accuracy = match campaign_state.baseline_accuracy {
                    Some(b) => b,
                    // Fully resumed from a journal written before any
                    // baseline record existed (not produced by this
                    // version, but cheap to tolerate): derive it
                    // locally.
                    None => {
                        let setup = campaign_state.campaign.spec.materialize();
                        let cache = neurofi_core::BaselineCache::new(&setup);
                        neurofi_core::sweep::mean_baseline_accuracy(
                            &cache,
                            campaign_state.campaign.spec.scenario.baseline_seeds(),
                        )
                    }
                };
                let results: Vec<CellResult> =
                    campaign_state.completed.iter().flatten().copied().collect();
                let result = assemble_sweep(&campaign_state.plan, baseline_accuracy, results)?;
                merged.push(CampaignSweep {
                    name: campaign_state.campaign.name.clone(),
                    spec: campaign_state.campaign.spec.clone(),
                    result,
                    total_cells: total,
                    resumed_cells: campaign_state.resumed,
                    store_hit_cells: campaign_state.store_hits,
                    computed_cells: campaign_state.n_done
                        - campaign_state.resumed
                        - campaign_state.store_hits,
                });
            }
            Ok(CoordinatedRun {
                campaigns: merged,
                workers_seen: state.workers_seen,
            })
        }
        Some(Outcome::Failed(reason)) if reason.is_empty() => Err(DistError::Incomplete {
            done: cells_done,
            total: cells_total,
            journal: config.journal.clone(),
        }),
        Some(Outcome::Failed(reason)) => Err(DistError::Protocol(reason)),
        None => unreachable!("serve loop exits only with an outcome"),
    }
}

/// Pops a capacity-sized batch of pending cells from the campaign the
/// scheduling policy picks, blocking until work, completion, or
/// failure. Returns the campaign id with the batch, `Some((0, []))` as
/// a keep-alive while all remaining work is in flight elsewhere, and
/// `None` when the run is over (complete or failed).
///
/// Claiming never mutates failure counts — assignment is not evidence
/// against a cell, and a popped batch can no longer be dropped on the
/// floor by a mid-pop poison abort (poisoning happens in
/// [`cell_failed`], outside any batch assembly).
fn claim_batch(shared: &Shared, threads: u32, requested: u32) -> Option<(usize, Vec<usize>)> {
    let mut state = shared.lock_state();
    loop {
        if state.outcome.is_some() {
            return None;
        }
        let candidates: Vec<Candidate> = state
            .campaigns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.schedulable())
            .map(|(id, c)| Candidate {
                id,
                weight: c.campaign.weight,
                pending: c.pending.len(),
            })
            .collect();
        if !candidates.is_empty() {
            let picked = state.policy.pick(&candidates);
            // A policy returning a non-candidate degrades to FIFO
            // rather than panicking or stalling.
            let id = if candidates.iter().any(|c| c.id == picked) {
                picked
            } else {
                candidates[0].id
            };
            let campaign = &mut state.campaigns[id];
            let take = capacity_batch(threads, requested, campaign.pending.len());
            let batch: Vec<usize> = campaign.pending.drain(..take).collect();
            return Some((id, batch));
        }
        // No schedulable work anywhere: everything is done, poisoned,
        // or in flight elsewhere. Wait in slices so the caller can
        // heartbeat its worker.
        let (next, timed_out) = shared.wait_changed(state, Duration::from_millis(500));
        state = next;
        if timed_out
            && state.outcome.is_none()
            && !state.campaigns.iter().any(CampaignState::schedulable)
        {
            // Hand back an empty batch as a keep-alive; the worker will
            // re-request.
            return Some((0, Vec::new()));
        }
    }
}

/// Records one acknowledgement window of measured cells for `campaign`;
/// journals each cell before the caller acknowledges the window.
fn record_results(
    shared: &Shared,
    in_flight: &mut Vec<(usize, usize)>,
    campaign: usize,
    baseline_accuracy: f64,
    results: &[CellResult],
) -> Result<(), String> {
    let mut state = shared.lock_state();
    if campaign >= state.campaigns.len() {
        let reason = format!("worker reported results for unknown campaign {campaign}");
        state.fail(reason.clone());
        shared.changed.notify_all();
        return Err(reason);
    }
    let Some(campaign_state) = state.campaigns.get_mut(campaign) else {
        return Err("internal: campaign index out of range after bounds check".into());
    };
    if campaign_state.failed.is_some() {
        // The campaign was poisoned while this window was in flight:
        // drop the results (acked but unrecorded) and let the worker
        // keep serving the surviving campaigns.
        in_flight.retain(|&(c, _)| c != campaign);
        return Ok(());
    }
    let mut baseline_newly_recorded = false;
    match campaign_state.baseline_accuracy {
        None => {
            if let Some(journal) = campaign_state.journal.as_mut() {
                if let Err(e) = journal.record_baseline(baseline_accuracy) {
                    let reason = format!("journal write failed: {e}");
                    state.fail(reason.clone());
                    shared.changed.notify_all();
                    return Err(reason);
                }
            }
            campaign_state.baseline_accuracy = Some(baseline_accuracy);
            baseline_newly_recorded = true;
        }
        Some(existing) => {
            // Cross-worker determinism check: every node must derive the
            // same baseline bits from the same spec.
            if existing.to_bits() != baseline_accuracy.to_bits() {
                let reason = format!(
                    "worker baseline accuracy {baseline_accuracy:?} diverges from \
                     campaign baseline {existing:?}: non-deterministic runner"
                );
                state.fail(reason.clone());
                shared.changed.notify_all();
                return Err(reason);
            }
        }
    }
    // Newly recorded results drain into the cross-campaign store (after
    // the journal — the journal is the ack-before-send contract, the
    // store is the dedup index). A store failure is as fatal as a
    // journal failure: acking a window whose cells the store silently
    // dropped would let a later campaign recompute them, and a conflict
    // means a non-deterministic runner.
    if baseline_newly_recorded {
        if let Some(store) = shared.store.as_ref() {
            let digest = state
                .campaigns
                .get(campaign)
                .map(|c| c.campaign.spec.baseline_digest());
            let Some(digest) = digest else {
                return Err("internal: campaign index out of range after bounds check".into());
            };
            if let Err(e) = lock_store(store).put_baseline(digest, baseline_accuracy) {
                let reason = format!("result store write failed: {e}");
                state.fail(reason.clone());
                shared.changed.notify_all();
                return Err(reason);
            }
        }
    }
    for result in results {
        let Some(campaign_state) = state.campaigns.get_mut(campaign) else {
            return Err("internal: campaign index out of range after bounds check".into());
        };
        if result.index >= campaign_state.total() {
            let reason = format!("worker reported cell {} outside the grid", result.index);
            state.fail(reason.clone());
            shared.changed.notify_all();
            return Err(reason);
        }
        in_flight.retain(|&(c, i)| !(c == campaign && i == result.index));
        let mut cell_newly_recorded = false;
        match campaign_state
            .completed
            .get(result.index)
            .copied()
            .flatten()
        {
            // A duplicate delivery (the cell was requeued after a timeout
            // and finished twice) must carry identical bits — this is the
            // per-cell determinism cross-check. assemble_sweep never sees
            // conflicting duplicates because only the first value is
            // kept, so the comparison has to happen here.
            Some(existing) => {
                if !same_cell_bits(&existing, result) {
                    let reason = format!(
                        "cell {} measured twice with different bits \
                         ({:?} vs {:?}): non-deterministic runner",
                        result.index, existing.cell, result.cell
                    );
                    state.fail(reason.clone());
                    shared.changed.notify_all();
                    return Err(reason);
                }
            }
            None => {
                if let Some(journal) = campaign_state.journal.as_mut() {
                    if let Err(e) = journal.record_cell(result) {
                        let reason = format!("journal write failed: {e}");
                        state.fail(reason.clone());
                        shared.changed.notify_all();
                        return Err(reason);
                    }
                }
                if let Some(slot) = campaign_state.completed.get_mut(result.index) {
                    *slot = Some(*result);
                }
                campaign_state.n_done += 1;
                cell_newly_recorded = true;
            }
        }
        if cell_newly_recorded {
            if let Some(store) = shared.store.as_ref() {
                let digest = state
                    .campaigns
                    .get(campaign)
                    .and_then(|c| c.digests.get(result.index))
                    .copied();
                let Some(digest) = digest else {
                    return Err("internal: cell index out of range after bounds check".into());
                };
                if let Err(e) = lock_store(store).put_cell(digest, result.cell) {
                    let reason = format!("result store write failed: {e}");
                    state.fail(reason.clone());
                    shared.changed.notify_all();
                    return Err(reason);
                }
            }
        }
    }
    state.settle_if_done();
    shared.changed.notify_all();
    Ok(())
}

/// Records one explicit execution failure for a cell. The cell requeues
/// unless it has now failed `max_attempts` times, in which case *its*
/// campaign is poisoned with the accumulated failure log — the other
/// queued campaigns keep running, and the reporting worker keeps
/// serving them. Only this path and the `max_worker_losses` backstop
/// advance the poison caps — ordinary worker deaths requeue for free.
/// `Err` is returned only for protocol violations (which do abort the
/// connection).
fn cell_failed(
    shared: &Shared,
    in_flight: &mut Vec<(usize, usize)>,
    campaign: usize,
    index: usize,
    reason: &str,
    limits: PoisonLimits,
) -> Result<(), String> {
    let mut state = shared.lock_state();
    let total = state.campaigns.get(campaign).map(|c| c.total());
    let Some(total) = total else {
        let reason = format!("worker reported a failure in unknown campaign {campaign}");
        state.fail(reason.clone());
        shared.changed.notify_all();
        return Err(reason);
    };
    if index >= total {
        let reason = format!("worker reported failing cell {index} outside the grid");
        state.fail(reason.clone());
        shared.changed.notify_all();
        return Err(reason);
    }
    in_flight.retain(|&(c, i)| !(c == campaign && i == index));
    let Some(campaign_state) = state.campaigns.get_mut(campaign) else {
        return Err("internal: campaign index out of range after bounds check".into());
    };
    if campaign_state
        .completed
        .get(index)
        .is_some_and(Option::is_some)
        || campaign_state.failed.is_some()
    {
        // Finished elsewhere, or the campaign is already poisoned; the
        // report is moot.
        return Ok(());
    }
    let attempts = match campaign_state.failures.get_mut(index) {
        Some(count) => {
            *count += 1;
            *count
        }
        None => return Err("internal: cell index out of range after bounds check".into()),
    };
    campaign_state.failure_log.push(format!(
        "cell {index} execution failure {attempts}: {reason}"
    ));
    if attempts >= limits.max_attempts {
        let log = campaign_state.failure_log.join("; ");
        let poison = format!(
            "campaign `{}` poisoned: cell {index} failed execution {} times \
             (failure log: {log})",
            campaign_state.campaign.name, limits.max_attempts
        );
        campaign_state.poison(poison);
    } else if !campaign_state.pending.contains(&index) {
        campaign_state.pending.push_back(index);
    }
    state.settle_if_done();
    shared.changed.notify_all();
    Ok(())
}

/// Bit-level equality of two deliveries of the same cell (`==` on the
/// floats would treat `0.0 == -0.0` and miss NaN divergence).
fn same_cell_bits(a: &CellResult, b: &CellResult) -> bool {
    a.cell.rel_change.to_bits() == b.cell.rel_change.to_bits()
        && a.cell.fraction.to_bits() == b.cell.fraction.to_bits()
        && a.cell.accuracy.to_bits() == b.cell.accuracy.to_bits()
        && a.cell.relative_change_percent.to_bits() == b.cell.relative_change_percent.to_bits()
}

/// Returns a dead worker's unacknowledged cells to their campaigns'
/// pending queues. Deliberately does *not* touch the `max_attempts`
/// failure counts — a worker dying while holding a cell is evidence
/// against the worker, not the cell — but each loss advances the cell's
/// orphan tally: a cell whose execution crashes worker *processes*
/// never produces a `Failed` report, so the much larger
/// `max_worker_losses` backstop is the only thing standing between it
/// and an infinite requeue loop.
fn requeue(shared: &Shared, in_flight: &mut Vec<(usize, usize)>, limits: PoisonLimits) {
    if in_flight.is_empty() {
        return;
    }
    let mut state = shared.lock_state();
    for &(campaign, index) in in_flight.iter() {
        // In-flight entries always name real cells (claim_batch built
        // them) — `get` only so a bookkeeping bug degrades to a skipped
        // requeue instead of a poisoned lock.
        let Some(campaign_state) = state.campaigns.get_mut(campaign) else {
            continue;
        };
        if campaign_state
            .completed
            .get(index)
            .is_some_and(Option::is_some)
            || campaign_state.failed.is_some()
        {
            continue;
        }
        let losses = match campaign_state.orphaned.get_mut(index) {
            Some(count) => {
                *count += 1;
                *count
            }
            None => continue,
        };
        if losses >= limits.max_worker_losses {
            let poison = format!(
                "campaign `{}` poisoned: cell {index} was orphaned by {} \
                 dying/timing-out workers without ever reporting an execution \
                 failure — it is likely crashing worker processes",
                campaign_state.campaign.name, limits.max_worker_losses
            );
            campaign_state.poison(poison);
        } else if !campaign_state.pending.contains(&index) {
            campaign_state.pending.push_back(index);
        }
    }
    in_flight.clear();
    state.settle_if_done();
    shared.changed.notify_all();
}

/// Enqueues a live-submitted campaign: validates it, binds (and
/// replays) its digest-checked journal exactly as a bind-time campaign
/// gets, appends it to the queue, and wakes every blocked scheduler
/// call so idle workers pick it up immediately. Returns the new
/// campaign id.
fn enqueue_submission(shared: &Shared, campaign: NamedCampaign) -> Result<u32, String> {
    // `Ok(Some(id))` short-circuits: the campaign is already enqueued
    // and this submission is a retry. A client whose `SubmitOk` was
    // lost cannot know whether its submit landed, so resubmitting must
    // be idempotent — same name *and* same digest answer with the
    // existing id; same name but a different spec is still an error
    // (two different campaigns cannot share a journal or a report row).
    fn admissible(state: &State, name: &str, digest: u64) -> Result<Option<u32>, String> {
        if state.outcome.is_some() {
            return Err("the run is already over; submit to a fresh coordinator".into());
        }
        if let Some(id) = state.campaigns.iter().position(|c| c.campaign.name == name) {
            if state.campaigns[id].campaign.spec.digest() == digest {
                return Ok(Some(id as u32));
            }
            return Err(format!(
                "campaign name `{name}` is already queued on this coordinator \
                 with a different spec; pick another name"
            ));
        }
        Ok(None)
    }
    let digest = campaign.spec.digest();
    // Cheap pre-check so obviously inadmissible submissions never touch
    // the filesystem.
    if let Some(id) = admissible(&shared.lock_state(), &campaign.name, digest)? {
        return Ok(id);
    }
    // Plan enumeration and journal open/replay can be slow for big
    // resumed grids — build the state *outside* the scheduler lock so
    // the fleet's claim/record handlers never stall behind a
    // submission. (`CampaignState::create` also validates the spec.)
    let name = campaign.name.clone();
    let campaign_state = CampaignState::create(
        campaign,
        shared.journal_base.as_deref(),
        shared.store.as_ref(),
    )
    .map_err(|e| format!("cannot enqueue campaign `{name}`: {e}"))?;
    let mut state = shared.lock_state();
    // Re-check under the lock: a racing duplicate submission (or the
    // run ending) may have won while the journal was replaying.
    if let Some(id) = admissible(&state, &name, digest)? {
        return Ok(id);
    }
    state.campaigns.push(campaign_state);
    state.submissions_accepted += 1;
    let id = (state.campaigns.len() - 1) as u32;
    // A submission that resumes fully from its journal may settle the
    // whole run right here.
    state.settle_if_done();
    shared.changed.notify_all();
    Ok(id)
}

/// One accepted connection: dispatch on its first frame. Workers open
/// with `Hello`, control clients with `Submit`, status clients with
/// `Status`; each carries its protocol version and is rejected with a
/// versioned `Abort` on mismatch.
fn serve_conn<C: Connection>(
    mut conn: C,
    shared: &Shared,
    worker_timeout: Duration,
    limits: PoisonLimits,
) {
    conn.set_recv_timeout(Some(worker_timeout));
    let slot = shared.register_conn(conn.canceller());

    match conn.recv() {
        Ok(Message::Hello { protocol, threads }) if protocol == PROTOCOL_VERSION => {
            serve_worker(conn, shared, threads, limits);
        }
        Ok(Message::Submit { protocol, campaign }) if protocol == PROTOCOL_VERSION => {
            serve_control(conn, shared, campaign);
        }
        Ok(Message::Status { protocol }) if protocol == PROTOCOL_VERSION => {
            serve_status(conn, shared);
        }
        Ok(Message::Hello { protocol, .. })
        | Ok(Message::Submit { protocol, .. })
        | Ok(Message::Status { protocol }) => {
            let _ = conn.send(&Message::Abort {
                reason: format!(
                    "protocol mismatch: peer speaks v{protocol}, coordinator v{PROTOCOL_VERSION} \
                     (the v{PROTOCOL_VERSION} control plane needs v{PROTOCOL_VERSION} peers; \
                     upgrade `repro work` / `repro submit`)"
                ),
            });
        }
        _ => {}
    }

    // The connection is over: release its canceller (and, for TCP, the
    // duplicated fd it pins) so a long-lived coordinator's registry
    // does not grow with every worker churn or submit invocation.
    shared.lock_conns()[slot] = None;
}

/// A control connection: the first `Submit` was already read; keep
/// accepting further `Submit` frames until the client disconnects.
/// Validation or journal failures abort the connection with the reason
/// but never touch the run.
fn serve_control<C: Connection>(mut conn: C, shared: &Shared, first: NamedCampaign) {
    let mut next = Some(first);
    loop {
        let campaign = match next.take() {
            Some(campaign) => campaign,
            None => match conn.recv() {
                Ok(Message::Submit { protocol, campaign }) if protocol == PROTOCOL_VERSION => {
                    campaign
                }
                Ok(Message::Submit { protocol, .. }) => {
                    let _ = conn.send(&Message::Abort {
                        reason: format!(
                            "protocol mismatch: submitter speaks v{protocol}, \
                             coordinator v{PROTOCOL_VERSION}"
                        ),
                    });
                    return;
                }
                // Disconnect or anything else ends the control session.
                _ => return,
            },
        };
        match enqueue_submission(shared, campaign) {
            Ok(id) => {
                if conn.send(&Message::SubmitOk { id }).is_err() {
                    return;
                }
            }
            Err(reason) => {
                let _ = conn.send(&Message::Abort { reason });
                return;
            }
        }
    }
}

/// One campaign's progress counters, straight off the scheduler state.
/// `running` is everything neither pending nor done — i.e. in flight on
/// a worker (for a poisoned campaign, whose pending queue is dropped,
/// the never-to-run remainder also lands here; the `failed` flag tells
/// the reader how to interpret it).
fn campaign_progress(c: &CampaignState) -> CampaignProgress {
    let (total, queued, done) = (c.total(), c.pending.len(), c.n_done);
    CampaignProgress {
        name: c.campaign.name.clone(),
        total: total as u64,
        queued: queued as u64,
        running: total.saturating_sub(queued + done) as u64,
        done: done as u64,
        resumed: c.resumed as u64,
        store_hits: c.store_hits as u64,
        detected: c.detected as u64,
        missed: c.missed as u64,
        failed: c.failed.is_some(),
    }
}

/// A status connection: the first `Status` was already read. Answer it
/// — and every further `Status` poll — with a `Progress` snapshot of
/// all queued campaigns, until the client disconnects. Read-only: a
/// status client never touches scheduling, journals, or the store.
fn serve_status<C: Connection>(mut conn: C, shared: &Shared) {
    loop {
        let campaigns: Vec<CampaignProgress> = {
            let state = shared.lock_state();
            state.campaigns.iter().map(campaign_progress).collect()
        };
        if conn.send(&Message::Progress { campaigns }).is_err() {
            return;
        }
        match conn.recv() {
            Ok(Message::Status { protocol }) if protocol == PROTOCOL_VERSION => {}
            _ => return,
        }
    }
}

/// Pushes a `CampaignAnnounce` for every campaign queued after this
/// connection's last announcement, so the worker knows every campaign
/// id before the reply that may reference it.
fn announce_new<C: Connection>(
    conn: &mut C,
    shared: &Shared,
    announced: &mut usize,
) -> Result<(), DistError> {
    loop {
        let next = {
            let state = shared.lock_state();
            if state.campaigns.len() <= *announced {
                return Ok(());
            }
            state.campaigns[*announced].campaign.clone()
        };
        conn.send(&Message::CampaignAnnounce {
            id: *announced as u32,
            campaign: next,
        })?;
        *announced += 1;
    }
}

/// One worker connection, from completed handshake to goodbye.
fn serve_worker<C: Connection>(mut conn: C, shared: &Shared, threads: u32, limits: PoisonLimits) {
    // Handshake reply: the current campaign queue. Campaigns submitted
    // later reach this worker via `CampaignAnnounce` pushes.
    let (campaigns, mut announced) = {
        let state = shared.lock_state();
        let campaigns: Vec<NamedCampaign> =
            state.campaigns.iter().map(|c| c.campaign.clone()).collect();
        let announced = campaigns.len();
        (campaigns, announced)
    };
    if conn.send(&Message::Campaigns { campaigns }).is_err() {
        return;
    }
    {
        let mut state = shared.lock_state();
        state.workers_connected += 1;
        state.workers_seen += 1;
        // The main loop sleeps on `changed` and must observe worker
        // arrival promptly — it resets the idle clock.
        shared.changed.notify_all();
    }

    let mut in_flight: Vec<(usize, usize)> = Vec::new();
    loop {
        match conn.recv() {
            Ok(Message::Request { max_cells }) => {
                match claim_batch(shared, threads, max_cells) {
                    Some((campaign, batch)) => {
                        in_flight.extend(batch.iter().map(|&i| (campaign, i)));
                        let jobs = {
                            let state = shared.lock_state();
                            // claim_batch only hands out indices from this
                            // campaign's plan; `get` so a scheduler bug
                            // shrinks the batch instead of panicking with
                            // the state lock held.
                            state.campaigns.get(campaign).map_or_else(Vec::new, |c| {
                                batch
                                    .iter()
                                    .filter_map(|&i| c.plan.jobs.get(i).copied())
                                    .collect()
                            })
                        };
                        // The claimed campaign may have been submitted
                        // after this worker's handshake: announce before
                        // the Assign that references its id.
                        if announce_new(&mut conn, shared, &mut announced).is_err() {
                            break;
                        }
                        let assign = Message::Assign {
                            campaign: campaign as u32,
                            jobs,
                        };
                        if conn.send(&assign).is_err() {
                            break;
                        }
                    }
                    None => {
                        // The run is over: tell the worker why and stop.
                        let state = shared.lock_state();
                        let goodbye = match &state.outcome {
                            Some(Outcome::Failed(reason)) => Message::Abort {
                                reason: if reason.is_empty() {
                                    "run abandoned".into()
                                } else {
                                    reason.clone()
                                },
                            },
                            _ => Message::Finished,
                        };
                        drop(state);
                        let _ = conn.send(&goodbye);
                        break;
                    }
                }
            }
            Ok(Message::Results {
                campaign,
                baseline_accuracy,
                results,
            }) => {
                match record_results(
                    shared,
                    &mut in_flight,
                    campaign as usize,
                    baseline_accuracy,
                    &results,
                ) {
                    Ok(()) => {
                        // Journaled: acknowledge the window so the worker
                        // can drop it and stream the next. Announcements
                        // piggyback on the ack so idle-free workers still
                        // learn about submissions promptly.
                        if announce_new(&mut conn, shared, &mut announced).is_err() {
                            break;
                        }
                        let ack = Message::Ack {
                            campaign,
                            received: results.len() as u32,
                        };
                        if conn.send(&ack).is_err() {
                            break;
                        }
                    }
                    Err(reason) => {
                        let _ = conn.send(&Message::Abort { reason });
                        break;
                    }
                }
            }
            Ok(Message::Failed {
                campaign,
                index,
                reason,
            }) => {
                if let Err(reason) = cell_failed(
                    shared,
                    &mut in_flight,
                    campaign as usize,
                    index as usize,
                    &reason,
                    limits,
                ) {
                    let _ = conn.send(&Message::Abort { reason });
                    break;
                }
            }
            Ok(Message::Abort { .. }) | Ok(_) | Err(_) => break,
        }
    }

    requeue(shared, &mut in_flight, limits);
    let mut state = shared.lock_state();
    state.workers_connected -= 1;
    drop(state);
    shared.changed.notify_all();
}

/// Binds and serves in one call — the simple entry point when the bind
/// address is already concrete.
///
/// # Errors
/// See [`Coordinator::bind`] and [`Coordinator::serve`].
pub fn run_coordinator(config: CoordinatorConfig) -> Result<CoordinatedRun, DistError> {
    Coordinator::bind(config)?.serve()
}

/// Resolves a bind/connect string early so misconfigured addresses fail
/// with a clear error instead of a hung socket.
///
/// # Errors
/// Fails when the string resolves to no address.
pub fn resolve_addr(addr: &str) -> Result<SocketAddr, DistError> {
    addr.to_socket_addrs()?
        .next()
        .ok_or_else(|| DistError::Protocol(format!("`{addr}` resolves to no address")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_batch_scales_with_reported_threads() {
        // Linear in threads while the queue and the worker cap allow it.
        assert_eq!(capacity_batch(1, u32::MAX, 100), CELLS_PER_THREAD);
        assert_eq!(capacity_batch(4, u32::MAX, 100), 4 * CELLS_PER_THREAD);
        assert_eq!(capacity_batch(16, u32::MAX, 100), 16 * CELLS_PER_THREAD);
        // Clamped by the worker's own request cap...
        assert_eq!(capacity_batch(16, 3, 100), 3);
        // ...and by what is actually pending.
        assert_eq!(capacity_batch(16, u32::MAX, 5), 5);
        // Degenerate reports never produce a zero batch on a non-empty
        // queue (that would spin), nor a claim on an empty one.
        assert_eq!(capacity_batch(0, 0, 100), 1);
        assert_eq!(capacity_batch(8, u32::MAX, 0), 0);
    }

    #[test]
    fn journal_paths_are_suffixed_by_campaign_name() {
        let base = Path::new("/tmp/run.journal");
        assert_eq!(
            campaign_journal_path(base, "tiny"),
            PathBuf::from("/tmp/run.journal.tiny")
        );
        assert_eq!(
            campaign_journal_path(base, "tiny-theta"),
            PathBuf::from("/tmp/run.journal.tiny-theta")
        );
    }

    const TEST_LIMITS: PoisonLimits = PoisonLimits {
        max_attempts: 5,
        max_worker_losses: 50,
    };

    fn test_campaign_state(name: &str, n_cells: usize) -> CampaignState {
        let spec = crate::campaign::named_campaign("tiny").unwrap();
        CampaignState {
            campaign: NamedCampaign::new(name, spec.clone()),
            plan: spec.plan(),
            pending: (0..n_cells).collect(),
            failures: vec![0; n_cells],
            orphaned: vec![0; n_cells],
            failure_log: Vec::new(),
            completed: vec![None; n_cells],
            n_done: 0,
            resumed: 0,
            store_hits: 0,
            detected: 0,
            missed: 0,
            digests: vec![0; n_cells],
            baseline_accuracy: None,
            journal: None,
            failed: None,
        }
    }

    fn test_shared_with(campaigns: Vec<CampaignState>, policy: PolicyKind) -> Shared {
        Shared {
            state: Mutex::new(State {
                campaigns,
                policy: policy.build(),
                workers_connected: 0,
                workers_seen: 0,
                submissions_accepted: 0,
                persistent: false,
                outcome: None,
            }),
            changed: Condvar::new(),
            conns: Mutex::new(Vec::new()),
            journal_base: None,
            store: None,
        }
    }

    fn test_shared(n_cells: usize) -> Shared {
        test_shared_with(vec![test_campaign_state("main", n_cells)], PolicyKind::Fifo)
    }

    #[test]
    fn poisoned_state_mutex_fails_the_run_instead_of_cascading_panics() {
        let shared = test_shared(4);
        // Poison the mutex the way a real handler would: panic while
        // holding the guard.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = shared.state.lock().unwrap();
            panic!("handler bug");
        }));
        assert!(result.is_err());
        assert!(shared.state.is_poisoned());

        // Every subsequent lock recovers, and the run is marked failed
        // with a diagnostic instead of panicking.
        let state = shared.lock_state();
        match &state.outcome {
            Some(Outcome::Failed(reason)) => assert!(reason.contains("panicked")),
            _ => panic!("poisoned lock must fail the run"),
        }
        drop(state);
        // A scheduler call on the poisoned state returns "run over"
        // rather than panicking.
        assert!(claim_batch(&shared, 4, u32::MAX).is_none());
    }

    #[test]
    fn worker_deaths_requeue_without_advancing_the_poison_cap() {
        let shared = test_shared(2);
        // Simulate the cells being claimed and orphaned many more times
        // than max_attempts: they must always requeue (only the much
        // larger max_worker_losses backstop may eventually intervene).
        for _ in 0..20 {
            let (campaign, batch) = claim_batch(&shared, 1, 1).unwrap();
            assert_eq!(campaign, 0);
            let mut in_flight: Vec<(usize, usize)> = batch.iter().map(|&i| (campaign, i)).collect();
            requeue(&shared, &mut in_flight, TEST_LIMITS);
        }
        let state = shared.lock_state();
        assert!(state.outcome.is_none(), "healthy cells must never poison");
        assert_eq!(state.campaigns[0].failures, vec![0, 0]);
        assert_eq!(state.campaigns[0].orphaned, vec![10, 10]);
        assert_eq!(state.campaigns[0].pending.len(), 2);
    }

    #[test]
    fn worker_crashing_cells_hit_the_orphan_backstop() {
        // A cell that crashes the worker process never sends Failed; the
        // max_worker_losses backstop must still terminate the campaign.
        let shared = test_shared(2);
        let limits = PoisonLimits {
            max_attempts: 5,
            max_worker_losses: 3,
        };
        for _ in 0..3 {
            let mut in_flight = vec![(0usize, 0usize)];
            requeue(&shared, &mut in_flight, limits);
        }
        let state = shared.lock_state();
        let reason = state.campaigns[0]
            .failed
            .as_ref()
            .expect("campaign poisons");
        assert!(reason.contains("orphaned by 3"), "diagnostic: {reason}");
        assert!(
            matches!(state.outcome, Some(Outcome::Failed(_))),
            "a lone poisoned campaign settles the run"
        );
    }

    #[test]
    fn repeated_execution_failures_poison_only_their_campaign() {
        let shared = test_shared_with(
            vec![
                test_campaign_state("doomed", 2),
                test_campaign_state("healthy", 2),
            ],
            PolicyKind::Fifo,
        );
        let mut in_flight = vec![(0usize, 0usize)];
        for _ in 0..5 {
            cell_failed(
                &shared,
                &mut in_flight,
                0,
                0,
                "solver diverged",
                TEST_LIMITS,
            )
            .expect("execution failures are not protocol violations");
        }
        let state = shared.lock_state();
        let reason = state.campaigns[0]
            .failed
            .as_ref()
            .expect("campaign poisons");
        assert!(
            reason.contains("`doomed`"),
            "diagnostic names the campaign: {reason}"
        );
        assert!(
            reason.contains("cell 0"),
            "diagnostic names the cell: {reason}"
        );
        assert!(
            reason.contains("solver diverged"),
            "diagnostic keeps the log: {reason}"
        );
        // The other campaign is untouched and still schedulable; the run
        // as a whole is not over yet.
        assert!(state.campaigns[1].failed.is_none());
        assert!(state.outcome.is_none(), "healthy campaigns keep running");
        drop(state);
        let (campaign, batch) = claim_batch(&shared, 1, u32::MAX).unwrap();
        assert_eq!(campaign, 1, "scheduling skips the poisoned campaign");
        assert!(!batch.is_empty());
    }

    #[test]
    fn fair_claims_interleave_campaigns_batch_by_batch() {
        let shared = test_shared_with(
            vec![
                test_campaign_state("front", 6),
                test_campaign_state("back", 6),
            ],
            PolicyKind::WeightedRoundRobin,
        );
        // One-cell batches: the claim order is exactly the policy's pick
        // order.
        let order: Vec<usize> = (0..12)
            .map(|_| claim_batch(&shared, 1, 1).unwrap().0)
            .collect();
        assert_eq!(
            order,
            vec![0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1],
            "equal-weight fair scheduling must alternate strictly"
        );
    }

    #[test]
    fn submissions_enqueue_and_are_scheduled() {
        let shared = test_shared(2);
        let submitted = NamedCampaign::new(
            "late",
            crate::campaign::named_campaign("tiny-theta").unwrap(),
        );
        let id = enqueue_submission(&shared, submitted).expect("submission accepted");
        assert_eq!(id, 1);
        // An identical resubmission (same name, same digest) is a retry
        // after a lost `SubmitOk`: it must answer with the existing id,
        // not enqueue a second instance and not abort.
        let duplicate = NamedCampaign::new(
            "late",
            crate::campaign::named_campaign("tiny-theta").unwrap(),
        );
        assert_eq!(
            enqueue_submission(&shared, duplicate).expect("idempotent resubmission"),
            1
        );
        // Same name, different spec: that is a genuine conflict.
        let conflicting =
            NamedCampaign::new("late", crate::campaign::named_campaign("tiny").unwrap());
        let err = enqueue_submission(&shared, conflicting).unwrap_err();
        assert!(err.contains("different spec"), "diagnostic: {err}");
        // The new campaign's cells are schedulable (FIFO serves the
        // bind-time campaign first, then the submission).
        let state = shared.lock_state();
        assert_eq!(state.campaigns.len(), 2, "no second instance enqueued");
        assert_eq!(
            state.submissions_accepted, 1,
            "accepted submissions count as serve-loop activity \
             (idempotent retries and rejected conflicts do not)"
        );
        assert_eq!(state.campaigns[1].pending.len(), 4);
        drop(state);
        let (campaign, _) = claim_batch(&shared, 8, u32::MAX).unwrap();
        assert_eq!(campaign, 0);
        let (campaign, batch) = claim_batch(&shared, 8, u32::MAX).unwrap();
        assert_eq!(campaign, 1, "the submitted campaign is scheduled next");
        assert_eq!(batch.len(), 4);
    }

    #[test]
    fn submissions_after_the_run_ends_are_refused() {
        let shared = test_shared(2);
        shared.lock_state().fail("done".into());
        let submitted = NamedCampaign::new(
            "late",
            crate::campaign::named_campaign("tiny-theta").unwrap(),
        );
        let err = enqueue_submission(&shared, submitted).unwrap_err();
        assert!(err.contains("already over"), "diagnostic: {err}");
    }
}
