//! The campaign coordinator: shards the cell grid over TCP workers.
//!
//! Scheduling is pull-based work stealing at the granularity the PR 1
//! in-process pool established: idle workers request batches, the
//! coordinator pops pending cell indices, and a worker that dies (or
//! times out) simply has its in-flight cells requeued for whoever asks
//! next. Because every cell is a pure function of `(setup, job)` and the
//! merge is slot-addressed ([`assemble_sweep`]), *any* interleaving of
//! workers, retries, and resumes produces the same bit-exact
//! [`SweepResult`] as a serial run.
//!
//! Completed cells are journaled before they are acknowledged, so a
//! killed coordinator resumes from its checkpoint without recomputing
//! finished cells (see [`crate::checkpoint`]).

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use neurofi_core::sweep::{assemble_sweep, CellResult, SweepPlan, SweepResult};

use crate::campaign::CampaignSpec;
use crate::checkpoint::Journal;
use crate::wire::{Message, PROTOCOL_VERSION};
use crate::DistError;

/// How a coordinator serves one campaign.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Address to listen on (`127.0.0.1:0` picks a free port).
    pub bind: String,
    /// The campaign to shard.
    pub campaign: CampaignSpec,
    /// Checkpoint journal path; `None` disables checkpointing.
    pub journal: Option<PathBuf>,
    /// Socket read timeout per worker: a worker silent for this long is
    /// declared dead and its in-flight cells are requeued.
    pub worker_timeout: Duration,
    /// How long the coordinator tolerates pending work with *no* workers
    /// connected before giving up (the journal keeps the progress).
    pub idle_timeout: Duration,
    /// Maximum times one cell may be handed out before the campaign is
    /// declared poisoned (a cell that kills every worker that touches it
    /// must not retry forever).
    pub max_attempts: u32,
}

impl CoordinatorConfig {
    /// A config with the defaults: generous worker timeout (cells are
    /// training runs), 60 s idle timeout, 5 attempts per cell.
    pub fn new(bind: impl Into<String>, campaign: CampaignSpec) -> CoordinatorConfig {
        CoordinatorConfig {
            bind: bind.into(),
            campaign,
            journal: None,
            worker_timeout: Duration::from_secs(600),
            idle_timeout: Duration::from_secs(60),
            max_attempts: 5,
        }
    }
}

/// The merged outcome of a coordinated campaign.
#[derive(Debug, Clone)]
pub struct CoordinatedSweep {
    /// The assembled sweep — bit-identical to a serial run.
    pub result: SweepResult,
    /// Cells in the campaign grid.
    pub total_cells: usize,
    /// Cells recovered from the checkpoint journal (not recomputed).
    pub resumed_cells: usize,
    /// Cells measured by workers during this run.
    pub computed_cells: usize,
    /// Distinct worker connections that completed the handshake.
    pub workers_seen: usize,
}

/// Why the serve loop stopped.
enum Outcome {
    Complete,
    Failed(String),
}

struct State {
    pending: VecDeque<usize>,
    attempts: Vec<u32>,
    completed: Vec<Option<CellResult>>,
    n_done: usize,
    baseline_accuracy: Option<f64>,
    journal: Option<Journal>,
    workers_connected: usize,
    workers_seen: usize,
    outcome: Option<Outcome>,
}

impl State {
    fn total(&self) -> usize {
        self.completed.len()
    }

    fn fail(&mut self, reason: String) {
        if self.outcome.is_none() {
            self.outcome = Some(Outcome::Failed(reason));
        }
    }

    fn finish_if_done(&mut self) {
        if self.n_done == self.total() && self.outcome.is_none() {
            self.outcome = Some(Outcome::Complete);
        }
    }
}

struct Shared {
    state: Mutex<State>,
    /// Signalled when pending work appears, completion flips, or the
    /// campaign fails — anything a blocked scheduler call cares about.
    changed: Condvar,
    /// Every accepted connection (cloned handles), so shutdown can
    /// unblock handler reads once the campaign is over.
    streams: Mutex<Vec<TcpStream>>,
    plan: SweepPlan,
}

/// After the campaign ends, how long handlers get to deliver a graceful
/// `Finished`/`Abort` before their sockets are forcibly shut down.
const DRAIN_GRACE: Duration = Duration::from_secs(5);

/// A bound coordinator, ready to serve. Splitting bind from serve lets
/// callers learn the actual port (`bind = "127.0.0.1:0"`) before
/// workers are launched — the local-cluster helper and tests rely on it.
#[derive(Debug)]
pub struct Coordinator {
    listener: TcpListener,
    config: CoordinatorConfig,
}

impl Coordinator {
    /// Validates the campaign, binds the listener, and (if configured)
    /// opens or resumes the checkpoint journal early so foreign journals
    /// are refused before any worker connects.
    ///
    /// # Errors
    /// Fails on invalid campaigns, unbindable addresses, or a journal
    /// that belongs to a different campaign.
    pub fn bind(config: CoordinatorConfig) -> Result<Coordinator, DistError> {
        config.campaign.validate()?;
        let listener = TcpListener::bind(&config.bind)?;
        listener.set_nonblocking(true)?;
        Ok(Coordinator { listener, config })
    }

    /// The address workers should connect to.
    ///
    /// # Errors
    /// Propagates the (unlikely) socket introspection failure.
    pub fn local_addr(&self) -> Result<SocketAddr, DistError> {
        Ok(self.listener.local_addr()?)
    }

    /// Serves the campaign until every cell is measured (or the campaign
    /// fails), then assembles the merged sweep.
    ///
    /// # Errors
    /// * [`DistError::Incomplete`] when work remains but no workers have
    ///   been connected for `idle_timeout` — the journal (if any) holds
    ///   the progress and the same command resumes it.
    /// * Poisoned cells (over `max_attempts`), divergent worker
    ///   baselines, journal i/o failures, and protocol violations
    ///   surface as their respective variants.
    pub fn serve(self) -> Result<CoordinatedSweep, DistError> {
        let plan = self.config.campaign.plan();
        let total = plan.jobs.len();
        let digest = self.config.campaign.digest();

        let (journal, recovered) = match &self.config.journal {
            Some(path) => {
                let (journal, recovered) = Journal::open(path, digest, total)?;
                (Some(journal), recovered)
            }
            None => (None, Default::default()),
        };

        let mut completed: Vec<Option<CellResult>> = vec![None; total];
        let mut n_done = 0usize;
        for result in &recovered.results {
            if completed[result.index].is_none() {
                completed[result.index] = Some(*result);
                n_done += 1;
            }
        }
        let resumed_cells = n_done;
        let pending: VecDeque<usize> = (0..total).filter(|&i| completed[i].is_none()).collect();

        let shared = Shared {
            state: Mutex::new(State {
                pending,
                attempts: vec![0; total],
                completed,
                n_done,
                baseline_accuracy: recovered.baseline_accuracy,
                journal,
                workers_connected: 0,
                workers_seen: 0,
                outcome: None,
            }),
            changed: Condvar::new(),
            streams: Mutex::new(Vec::new()),
            plan,
        };
        {
            let mut state = shared.state.lock().expect("coordinator state poisoned");
            state.finish_if_done();
        }

        let worker_timeout = self.config.worker_timeout;
        let idle_timeout = self.config.idle_timeout;
        let max_attempts = self.config.max_attempts;
        let spec = &self.config.campaign;

        std::thread::scope(|scope| {
            let mut idle_since = Instant::now();
            loop {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        let shared = &shared;
                        scope.spawn(move || {
                            serve_worker(stream, shared, spec, worker_timeout, max_attempts);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                    Err(e) => {
                        let mut state = shared.state.lock().expect("coordinator state poisoned");
                        state.fail(format!("listener failed: {e}"));
                        shared.changed.notify_all();
                    }
                }

                {
                    let mut state = shared.state.lock().expect("coordinator state poisoned");
                    if state.outcome.is_some() {
                        break;
                    }
                    if state.workers_connected > 0 {
                        idle_since = Instant::now();
                    } else if idle_since.elapsed() > idle_timeout {
                        state.fail(String::new()); // marker: idle abandonment
                        shared.changed.notify_all();
                        break;
                    }
                }
                std::thread::sleep(Duration::from_millis(20));
            }
            // Drain: wake blocked handlers so they deliver Finished/Abort
            // to their workers; after a short grace, force-shutdown any
            // connection still open (e.g. a worker mid-computation on
            // cells that were requeued and finished elsewhere) so the
            // scope join cannot hang on a silent socket.
            let deadline = Instant::now() + DRAIN_GRACE;
            loop {
                shared.changed.notify_all();
                {
                    let state = shared.state.lock().expect("coordinator state poisoned");
                    if state.workers_connected == 0 {
                        break;
                    }
                }
                if Instant::now() > deadline {
                    for stream in shared
                        .streams
                        .lock()
                        .expect("stream registry poisoned")
                        .iter()
                    {
                        let _ = stream.shutdown(std::net::Shutdown::Both);
                    }
                    break;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        });

        let state = shared
            .state
            .into_inner()
            .expect("coordinator state poisoned");
        match state.outcome {
            Some(Outcome::Complete) => {
                let baseline_accuracy = match state.baseline_accuracy {
                    Some(b) => b,
                    // Fully resumed from a journal written before any
                    // baseline record existed (not produced by this
                    // version, but cheap to tolerate): derive it locally.
                    None => {
                        let setup = self.config.campaign.materialize();
                        let cache = neurofi_core::BaselineCache::new(&setup);
                        neurofi_core::sweep::mean_baseline_accuracy(
                            &cache,
                            &self.config.campaign.sweep.seeds,
                        )
                    }
                };
                let results: Vec<CellResult> = state.completed.iter().flatten().copied().collect();
                let result = assemble_sweep(shared.plan.kind, baseline_accuracy, total, results)?;
                Ok(CoordinatedSweep {
                    result,
                    total_cells: total,
                    resumed_cells,
                    computed_cells: state.n_done - resumed_cells,
                    workers_seen: state.workers_seen,
                })
            }
            Some(Outcome::Failed(reason)) if reason.is_empty() => Err(DistError::Incomplete {
                done: state.n_done,
                total,
                journal: self.config.journal.clone(),
            }),
            Some(Outcome::Failed(reason)) => Err(DistError::Protocol(reason)),
            None => unreachable!("serve loop exits only with an outcome"),
        }
    }
}

/// Pops up to `max_cells` pending cells for a worker, blocking until
/// work, completion, or failure. Returns `None` when the campaign is
/// over (complete or failed).
fn claim_batch(shared: &Shared, max_cells: usize, max_attempts: u32) -> Option<Vec<usize>> {
    let mut state = shared.state.lock().expect("coordinator state poisoned");
    loop {
        if state.outcome.is_some() {
            return None;
        }
        if !state.pending.is_empty() {
            let take = max_cells.max(1).min(state.pending.len());
            let mut batch = Vec::with_capacity(take);
            for _ in 0..take {
                let index = state.pending.pop_front().expect("checked non-empty");
                state.attempts[index] += 1;
                if state.attempts[index] > max_attempts {
                    state.fail(format!(
                        "cell {index} failed {max_attempts} assignment attempts; \
                         campaign poisoned"
                    ));
                    shared.changed.notify_all();
                    return None;
                }
                batch.push(index);
            }
            return Some(batch);
        }
        // No pending work: either everything is done/in flight elsewhere.
        // Wait in slices so the caller can heartbeat its worker.
        let (next, timeout) = shared
            .changed
            .wait_timeout(state, Duration::from_millis(500))
            .expect("coordinator state poisoned");
        state = next;
        if timeout.timed_out() && state.outcome.is_none() && state.pending.is_empty() {
            // Hand back an empty batch as a keep-alive; the worker will
            // re-request.
            return Some(Vec::new());
        }
    }
}

/// Records measured cells; journals each before acknowledging.
fn record_results(
    shared: &Shared,
    in_flight: &mut Vec<usize>,
    baseline_accuracy: f64,
    results: &[CellResult],
) -> Result<(), String> {
    let mut state = shared.state.lock().expect("coordinator state poisoned");
    match state.baseline_accuracy {
        None => {
            if let Some(journal) = state.journal.as_mut() {
                if let Err(e) = journal.record_baseline(baseline_accuracy) {
                    let reason = format!("journal write failed: {e}");
                    state.fail(reason.clone());
                    shared.changed.notify_all();
                    return Err(reason);
                }
            }
            state.baseline_accuracy = Some(baseline_accuracy);
        }
        Some(existing) => {
            // Cross-worker determinism check: every node must derive the
            // same baseline bits from the same spec.
            if existing.to_bits() != baseline_accuracy.to_bits() {
                let reason = format!(
                    "worker baseline accuracy {baseline_accuracy:?} diverges from \
                     campaign baseline {existing:?}: non-deterministic runner"
                );
                state.fail(reason.clone());
                shared.changed.notify_all();
                return Err(reason);
            }
        }
    }
    for result in results {
        if result.index >= state.total() {
            let reason = format!("worker reported cell {} outside the grid", result.index);
            state.fail(reason.clone());
            shared.changed.notify_all();
            return Err(reason);
        }
        in_flight.retain(|&i| i != result.index);
        match state.completed[result.index] {
            // A duplicate delivery (the cell was requeued after a timeout
            // and finished twice) must carry identical bits — this is the
            // per-cell determinism cross-check. assemble_sweep never sees
            // conflicting duplicates because only the first value is
            // kept, so the comparison has to happen here.
            Some(existing) => {
                if !same_cell_bits(&existing, result) {
                    let reason = format!(
                        "cell {} measured twice with different bits \
                         ({:?} vs {:?}): non-deterministic runner",
                        result.index, existing.cell, result.cell
                    );
                    state.fail(reason.clone());
                    shared.changed.notify_all();
                    return Err(reason);
                }
            }
            None => {
                if let Some(journal) = state.journal.as_mut() {
                    if let Err(e) = journal.record_cell(result) {
                        let reason = format!("journal write failed: {e}");
                        state.fail(reason.clone());
                        shared.changed.notify_all();
                        return Err(reason);
                    }
                }
                state.completed[result.index] = Some(*result);
                state.n_done += 1;
            }
        }
    }
    state.finish_if_done();
    shared.changed.notify_all();
    Ok(())
}

/// Bit-level equality of two deliveries of the same cell (`==` on the
/// floats would treat `0.0 == -0.0` and miss NaN divergence).
fn same_cell_bits(a: &CellResult, b: &CellResult) -> bool {
    a.cell.rel_change.to_bits() == b.cell.rel_change.to_bits()
        && a.cell.fraction.to_bits() == b.cell.fraction.to_bits()
        && a.cell.accuracy.to_bits() == b.cell.accuracy.to_bits()
        && a.cell.relative_change_percent.to_bits() == b.cell.relative_change_percent.to_bits()
}

/// Returns a dead worker's unacknowledged cells to the pending queue.
fn requeue(shared: &Shared, in_flight: &mut Vec<usize>) {
    if in_flight.is_empty() {
        return;
    }
    let mut state = shared.state.lock().expect("coordinator state poisoned");
    for &index in in_flight.iter() {
        if state.completed[index].is_none() && !state.pending.contains(&index) {
            state.pending.push_back(index);
        }
    }
    in_flight.clear();
    shared.changed.notify_all();
}

/// One worker connection, handshake to goodbye.
fn serve_worker(
    mut stream: TcpStream,
    shared: &Shared,
    spec: &CampaignSpec,
    worker_timeout: Duration,
    max_attempts: u32,
) {
    let _ = stream.set_read_timeout(Some(worker_timeout));
    let _ = stream.set_write_timeout(Some(worker_timeout));
    let _ = stream.set_nodelay(true);
    if let Ok(clone) = stream.try_clone() {
        shared
            .streams
            .lock()
            .expect("stream registry poisoned")
            .push(clone);
    }

    // Handshake: Hello in, Campaign out.
    match Message::read_from(&mut stream) {
        Ok(Message::Hello { protocol, .. }) if protocol == PROTOCOL_VERSION => {}
        Ok(Message::Hello { protocol, .. }) => {
            let _ = Message::Abort {
                reason: format!(
                    "protocol mismatch: worker speaks v{protocol}, coordinator v{PROTOCOL_VERSION}"
                ),
            }
            .write_to(&mut stream);
            return;
        }
        _ => return,
    }
    if (Message::Campaign { spec: spec.clone() })
        .write_to(&mut stream)
        .is_err()
    {
        return;
    }
    {
        let mut state = shared.state.lock().expect("coordinator state poisoned");
        state.workers_connected += 1;
        state.workers_seen += 1;
    }

    let mut in_flight: Vec<usize> = Vec::new();
    loop {
        match Message::read_from(&mut stream) {
            Ok(Message::Request { max_cells }) => {
                match claim_batch(shared, max_cells as usize, max_attempts) {
                    Some(batch) => {
                        in_flight.extend(&batch);
                        let jobs = batch.iter().map(|&i| shared.plan.jobs[i]).collect();
                        if (Message::Assign { jobs }).write_to(&mut stream).is_err() {
                            break;
                        }
                    }
                    None => {
                        // Campaign over: tell the worker why and stop.
                        let state = shared.state.lock().expect("coordinator state poisoned");
                        let goodbye = match &state.outcome {
                            Some(Outcome::Failed(reason)) => Message::Abort {
                                reason: if reason.is_empty() {
                                    "campaign abandoned".into()
                                } else {
                                    reason.clone()
                                },
                            },
                            _ => Message::Finished,
                        };
                        drop(state);
                        let _ = goodbye.write_to(&mut stream);
                        break;
                    }
                }
            }
            Ok(Message::Results {
                baseline_accuracy,
                results,
            }) => {
                if let Err(reason) =
                    record_results(shared, &mut in_flight, baseline_accuracy, &results)
                {
                    let _ = Message::Abort { reason }.write_to(&mut stream);
                    break;
                }
            }
            Ok(Message::Abort { .. }) | Ok(_) | Err(_) => break,
        }
    }

    requeue(shared, &mut in_flight);
    let mut state = shared.state.lock().expect("coordinator state poisoned");
    state.workers_connected -= 1;
    drop(state);
    shared.changed.notify_all();
}

/// Binds and serves in one call — the simple entry point when the bind
/// address is already concrete.
///
/// # Errors
/// See [`Coordinator::bind`] and [`Coordinator::serve`].
pub fn run_coordinator(config: CoordinatorConfig) -> Result<CoordinatedSweep, DistError> {
    Coordinator::bind(config)?.serve()
}

/// Resolves a bind/connect string early so misconfigured addresses fail
/// with a clear error instead of a hung socket.
///
/// # Errors
/// Fails when the string resolves to no address.
pub fn resolve_addr(addr: &str) -> Result<SocketAddr, DistError> {
    addr.to_socket_addrs()?
        .next()
        .ok_or_else(|| DistError::Protocol(format!("`{addr}` resolves to no address")))
}
