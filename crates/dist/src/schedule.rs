//! Cross-campaign scheduling policies.
//!
//! PR 3's coordinator drained its campaign queue strictly FIFO: a huge
//! front campaign starved every later one's latency, which blocks the
//! "worker fleet saturated while new grids arrive continuously" north
//! star. [`SchedulingPolicy`] makes the drain order pluggable; the
//! coordinator consults the policy once per batch claim, under the
//! scheduler lock.
//!
//! Crucially, **policies cannot affect results**. Every cell is a pure
//! function of `(setup, job)` and every campaign's merge is
//! slot-addressed, so any drain order — FIFO, round-robin, or anything
//! a future policy invents — produces merges bit-identical to serial
//! per-campaign runs by construction. A policy is purely a latency /
//! fairness knob.

/// A campaign the policy may schedule from right now: its queue id, its
/// configured weight, and how many cells it still has pending.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// The campaign's queue id (queue order == id order).
    pub id: usize,
    /// The campaign's scheduling weight (0 is treated as 1).
    pub weight: u32,
    /// Unassigned cells remaining in the campaign.
    pub pending: usize,
}

/// Picks which campaign serves the next batch.
///
/// Implementations may keep state between calls (the coordinator holds
/// the policy for the lifetime of the run, under the scheduler lock).
/// Campaigns submitted mid-run simply start appearing in `candidates`.
pub trait SchedulingPolicy: Send {
    /// Returns the queue id of the campaign to serve next. `candidates`
    /// is non-empty and sorted by id; the returned id must be one of
    /// them (the coordinator falls back to `candidates[0]` otherwise,
    /// so a buggy policy degrades to FIFO instead of panicking).
    fn pick(&mut self, candidates: &[Candidate]) -> usize;

    /// Human-readable name, surfaced in logs.
    fn name(&self) -> &'static str;
}

/// Which built-in policy a coordinator runs. This is the `Clone`able
/// configuration knob; [`PolicyKind::build`] instantiates the stateful
/// policy at serve time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PolicyKind {
    /// Drain campaigns in queue order — PR 3's behaviour, the default.
    #[default]
    Fifo,
    /// Rotate over schedulable campaigns, serving each `weight`
    /// consecutive batches per turn (`repro coordinate --fair`).
    WeightedRoundRobin,
}

impl PolicyKind {
    /// Instantiates the policy's runtime state.
    pub fn build(self) -> Box<dyn SchedulingPolicy> {
        match self {
            PolicyKind::Fifo => Box::new(Fifo),
            PolicyKind::WeightedRoundRobin => Box::new(WeightedRoundRobin::new()),
        }
    }
}

/// Strict queue order: the first campaign with pending work wins.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fifo;

impl SchedulingPolicy for Fifo {
    fn pick(&mut self, candidates: &[Candidate]) -> usize {
        candidates[0].id
    }

    fn name(&self) -> &'static str {
        "fifo"
    }
}

/// Weighted round-robin: campaigns take turns in id order; a campaign
/// with weight `w` is served `w` consecutive batches per turn.
///
/// Fairness bound: while `k` campaigns are schedulable, a campaign
/// never waits more than `sum(other weights)` batch claims between two
/// of its own turns — interleaving is proportional, and no campaign can
/// be starved no matter how large the others' grids are.
#[derive(Debug, Clone, Copy)]
pub struct WeightedRoundRobin {
    /// Id of the campaign currently taking its turn (`None` before the
    /// first pick).
    turn: Option<usize>,
    /// Batches left in the current turn.
    remaining: u32,
}

impl WeightedRoundRobin {
    /// A fresh rotation (the first pick starts at the lowest id).
    pub fn new() -> WeightedRoundRobin {
        WeightedRoundRobin {
            turn: None,
            remaining: 0,
        }
    }
}

impl Default for WeightedRoundRobin {
    fn default() -> WeightedRoundRobin {
        WeightedRoundRobin::new()
    }
}

impl SchedulingPolicy for WeightedRoundRobin {
    fn pick(&mut self, candidates: &[Candidate]) -> usize {
        // Continue the current turn while its campaign is schedulable
        // and has credit left.
        if let (Some(turn), 1..) = (self.turn, self.remaining) {
            if let Some(current) = candidates.iter().find(|c| c.id == turn) {
                self.remaining -= 1;
                return current.id;
            }
        }
        // Turn over: the next schedulable id after the current one, in
        // id order, wrapping — a campaign that drained or was poisoned
        // is simply skipped.
        let next = match self.turn {
            Some(turn) => candidates
                .iter()
                .find(|c| c.id > turn)
                .unwrap_or(&candidates[0]),
            None => &candidates[0],
        };
        self.turn = Some(next.id);
        self.remaining = next.weight.max(1) - 1;
        next.id
    }

    fn name(&self) -> &'static str {
        "weighted-round-robin"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidates(spec: &[(usize, u32, usize)]) -> Vec<Candidate> {
        spec.iter()
            .map(|&(id, weight, pending)| Candidate {
                id,
                weight,
                pending,
            })
            .collect()
    }

    /// Replays `claims` picks against a fixed candidate set.
    fn sequence(policy: &mut dyn SchedulingPolicy, set: &[Candidate], claims: usize) -> Vec<usize> {
        (0..claims).map(|_| policy.pick(set)).collect()
    }

    #[test]
    fn fifo_always_serves_the_front_campaign() {
        let set = candidates(&[(0, 1, 100), (1, 5, 100)]);
        let mut policy = PolicyKind::Fifo.build();
        assert_eq!(sequence(policy.as_mut(), &set, 4), vec![0, 0, 0, 0]);
        assert_eq!(policy.name(), "fifo");
    }

    #[test]
    fn equal_weights_alternate_strictly() {
        let set = candidates(&[(0, 1, 100), (1, 1, 100)]);
        let mut policy = PolicyKind::WeightedRoundRobin.build();
        assert_eq!(
            sequence(policy.as_mut(), &set, 6),
            vec![0, 1, 0, 1, 0, 1],
            "two equal-weight campaigns must interleave 1:1"
        );
    }

    #[test]
    fn weights_grant_proportional_consecutive_batches() {
        let set = candidates(&[(0, 2, 100), (1, 1, 100), (2, 3, 100)]);
        let mut policy = WeightedRoundRobin::new();
        assert_eq!(
            sequence(&mut policy, &set, 12),
            vec![0, 0, 1, 2, 2, 2, 0, 0, 1, 2, 2, 2],
            "each rotation serves weight-many batches per campaign"
        );
    }

    #[test]
    fn zero_weight_is_treated_as_one() {
        let set = candidates(&[(0, 0, 10), (1, 0, 10)]);
        let mut policy = WeightedRoundRobin::new();
        assert_eq!(sequence(&mut policy, &set, 4), vec![0, 1, 0, 1]);
    }

    #[test]
    fn drained_campaigns_are_skipped_and_rotation_continues() {
        let mut policy = WeightedRoundRobin::new();
        let all = candidates(&[(0, 1, 10), (1, 1, 10), (2, 1, 10)]);
        assert_eq!(policy.pick(&all), 0);
        // Campaign 1 drains (or is poisoned) mid-rotation: the next turn
        // falls through to 2, then wraps to 0.
        let remaining = candidates(&[(0, 1, 10), (2, 1, 10)]);
        assert_eq!(policy.pick(&remaining), 2);
        assert_eq!(policy.pick(&remaining), 0);
        // A lone survivor is served continuously, never deadlocked.
        let lone = candidates(&[(2, 1, 10)]);
        assert_eq!(policy.pick(&lone), 2);
        assert_eq!(policy.pick(&lone), 2);
    }

    #[test]
    fn submitted_campaigns_join_the_rotation() {
        let mut policy = WeightedRoundRobin::new();
        let before = candidates(&[(0, 1, 10)]);
        assert_eq!(policy.pick(&before), 0);
        // A live submission appends id 1: it gets the very next turn.
        let after = candidates(&[(0, 1, 10), (1, 1, 10)]);
        assert_eq!(policy.pick(&after), 1);
        assert_eq!(policy.pick(&after), 0);
    }

    #[test]
    fn starvation_bound_holds_under_every_weighting() {
        // Property-style check over a few weightings: within any window
        // of sum(weights) consecutive picks, every campaign appears at
        // least once (the weight-proportional no-starvation bound).
        for weights in [[1u32, 1, 1], [2, 1, 1], [3, 2, 1], [5, 1, 2]] {
            let set = candidates(&[
                (0, weights[0], 1000),
                (1, weights[1], 1000),
                (2, weights[2], 1000),
            ]);
            let window: usize = weights.iter().sum::<u32>() as usize;
            let mut policy = WeightedRoundRobin::new();
            let picks = sequence(&mut policy, &set, window * 6);
            for start in 0..picks.len() - window {
                let slice = &picks[start..start + window];
                for id in 0..3 {
                    assert!(
                        slice.contains(&id),
                        "weights {weights:?}: campaign {id} starved in window {slice:?}"
                    );
                }
            }
        }
    }
}
