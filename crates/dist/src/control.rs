//! Control-plane client: submit campaigns to — and query the progress
//! of — a *running* coordinator.
//!
//! A control connection opens with [`Message::Submit`] instead of a
//! worker `Hello`. The coordinator validates the campaign, binds it a
//! digest-checked journal exactly as bind-time campaigns get, announces
//! it to every connected worker, and replies [`Message::SubmitOk`] with
//! the assigned campaign id — or [`Message::Abort`] with the reason
//! (duplicate name, invalid spec, foreign journal, run already over).
//!
//! A status connection (v5) opens with [`Message::Status`] instead and
//! receives one [`Message::Progress`] snapshot per poll: per-campaign
//! queued / running / done / resumed / store-hit counters.
//!
//! `repro submit --grid NAME --to HOST:PORT` and
//! `repro status --to HOST:PORT` are the CLI front ends.
//!
//! Submission is **idempotent**, which makes retrying safe: the
//! coordinator answers a resubmission whose name *and* digest match an
//! already-enqueued campaign with the existing id rather than a
//! duplicate-name abort. So when the link dies between the `Submit`
//! going out and the `SubmitOk` coming back — the client cannot know
//! whether the campaign was enqueued — [`submit_with_retry`] simply
//! dials again and resubmits; whichever attempt's reply gets through
//! returns the one true id.

use std::net::TcpStream;
use std::time::Duration;

use crate::campaign::NamedCampaign;
use crate::chaos::SplitMix64;
use crate::transport::{Connection, TcpConnection};
use crate::wire::{CampaignProgress, Message, PROTOCOL_VERSION};
use crate::{DistError, RetryPolicy};

/// How long a submitter waits for the coordinator's verdict. Enqueueing
/// is a queue append plus one journal open, so replies are immediate;
/// this guards against a dead peer.
pub const SUBMIT_TIMEOUT: Duration = Duration::from_secs(60);

/// Submits one campaign to the coordinator at `addr` over TCP and
/// returns the campaign id it was enqueued under.
///
/// # Errors
/// Propagates connect/link failures; a coordinator rejection surfaces
/// as [`DistError::Aborted`] with the coordinator's reason.
pub fn submit_campaign(addr: &str, campaign: NamedCampaign) -> Result<u32, DistError> {
    let stream = TcpStream::connect(addr)?;
    let mut conn = TcpConnection::new(stream);
    conn.set_recv_timeout(Some(SUBMIT_TIMEOUT));
    submit_on(&mut conn, campaign)
}

/// Submits one campaign over an already-established [`Connection`] —
/// the transport-generic core of [`submit_campaign`], also driven
/// directly by the deterministic loopback tests. The connection can be
/// reused for further submissions.
///
/// # Errors
/// See [`submit_campaign`].
pub fn submit_on<C: Connection>(conn: &mut C, campaign: NamedCampaign) -> Result<u32, DistError> {
    // Fail fast client-side: the coordinator's reader would refuse to
    // allocate an overlong name anyway, but that surfaces as an opaque
    // dropped connection rather than this message.
    if campaign.name.len() > crate::wire::MAX_NAME_LEN {
        return Err(DistError::Protocol(format!(
            "campaign name of {} bytes exceeds the {}-byte wire cap",
            campaign.name.len(),
            crate::wire::MAX_NAME_LEN
        )));
    }
    conn.send(&Message::Submit {
        protocol: PROTOCOL_VERSION,
        campaign,
    })?;
    match conn.recv()? {
        Message::SubmitOk { id } => Ok(id),
        Message::Abort { reason } => Err(DistError::Aborted(reason)),
        other => Err(DistError::Protocol(format!(
            "expected a submission verdict, got {other:?}"
        ))),
    }
}

/// Submits one campaign through connections produced by `connect`,
/// retrying link failures with the policy's capped, jittered backoff.
/// Safe to retry because enqueueing is idempotent (see module docs): a
/// resubmission after a lost `SubmitOk` returns the existing id.
///
/// # Errors
/// A coordinator verdict ([`DistError::Aborted`]) or protocol violation
/// returns immediately — retrying would get the same answer. Link
/// errors return once the retry budget is exhausted.
pub fn submit_with_retry<C, F>(
    mut connect: F,
    campaign: &NamedCampaign,
    retry: &RetryPolicy,
) -> Result<u32, DistError>
where
    C: Connection,
    F: FnMut() -> Result<C, DistError>,
{
    let mut rng = SplitMix64::new(retry.seed);
    let mut attempt = 0u32;
    loop {
        let result = connect().and_then(|mut conn| submit_on(&mut conn, campaign.clone()));
        match result {
            Ok(id) => return Ok(id),
            Err(error @ (DistError::Aborted(_) | DistError::Protocol(_))) => return Err(error),
            Err(error) => {
                if attempt >= retry.max_retries {
                    return Err(error);
                }
                std::thread::sleep(retry.delay(attempt, &mut rng));
                attempt += 1;
            }
        }
    }
}

/// Queries the coordinator at `addr` for one progress snapshot of every
/// campaign it is serving, in queue order.
///
/// # Errors
/// Propagates connect/link failures; a coordinator rejection (e.g. a
/// protocol-version mismatch) surfaces as [`DistError::Aborted`].
pub fn query_status(addr: &str) -> Result<Vec<CampaignProgress>, DistError> {
    let stream = TcpStream::connect(addr)?;
    let mut conn = TcpConnection::new(stream);
    conn.set_recv_timeout(Some(SUBMIT_TIMEOUT));
    query_status_on(&mut conn)
}

/// One status poll over an already-established [`Connection`] — the
/// transport-generic core of [`query_status`], also driven directly by
/// the deterministic loopback tests. The connection can be reused for
/// further polls.
///
/// # Errors
/// See [`query_status`].
pub fn query_status_on<C: Connection>(conn: &mut C) -> Result<Vec<CampaignProgress>, DistError> {
    conn.send(&Message::Status {
        protocol: PROTOCOL_VERSION,
    })?;
    match conn.recv()? {
        Message::Progress { campaigns } => Ok(campaigns),
        Message::Abort { reason } => Err(DistError::Aborted(reason)),
        other => Err(DistError::Protocol(format!(
            "expected a progress snapshot, got {other:?}"
        ))),
    }
}

/// [`submit_with_retry`] over TCP: dials `addr` fresh for each attempt,
/// so a coordinator that was briefly unreachable (or not yet bound) is
/// retried rather than fatal.
///
/// # Errors
/// See [`submit_with_retry`].
pub fn submit_campaign_retrying(
    addr: &str,
    campaign: &NamedCampaign,
    retry: &RetryPolicy,
) -> Result<u32, DistError> {
    submit_with_retry(
        || {
            let stream = TcpStream::connect(addr)?;
            let mut conn = TcpConnection::new(stream);
            conn.set_recv_timeout(Some(SUBMIT_TIMEOUT));
            Ok(conn)
        },
        campaign,
        retry,
    )
}
