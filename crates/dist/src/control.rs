//! Control-plane client: submit campaigns to a *running* coordinator.
//!
//! A control connection opens with [`Message::Submit`] instead of a
//! worker `Hello`. The coordinator validates the campaign, binds it a
//! digest-checked journal exactly as bind-time campaigns get, announces
//! it to every connected worker, and replies [`Message::SubmitOk`] with
//! the assigned campaign id — or [`Message::Abort`] with the reason
//! (duplicate name, invalid spec, foreign journal, run already over).
//!
//! `repro submit --grid NAME --to HOST:PORT` is the CLI front end.

use std::net::TcpStream;
use std::time::Duration;

use crate::campaign::NamedCampaign;
use crate::transport::{Connection, TcpConnection};
use crate::wire::{Message, PROTOCOL_VERSION};
use crate::DistError;

/// How long a submitter waits for the coordinator's verdict. Enqueueing
/// is a queue append plus one journal open, so replies are immediate;
/// this guards against a dead peer.
pub const SUBMIT_TIMEOUT: Duration = Duration::from_secs(60);

/// Submits one campaign to the coordinator at `addr` over TCP and
/// returns the campaign id it was enqueued under.
///
/// # Errors
/// Propagates connect/link failures; a coordinator rejection surfaces
/// as [`DistError::Aborted`] with the coordinator's reason.
pub fn submit_campaign(addr: &str, campaign: NamedCampaign) -> Result<u32, DistError> {
    let stream = TcpStream::connect(addr)?;
    let mut conn = TcpConnection::new(stream);
    conn.set_recv_timeout(Some(SUBMIT_TIMEOUT));
    submit_on(&mut conn, campaign)
}

/// Submits one campaign over an already-established [`Connection`] —
/// the transport-generic core of [`submit_campaign`], also driven
/// directly by the deterministic loopback tests. The connection can be
/// reused for further submissions.
///
/// # Errors
/// See [`submit_campaign`].
pub fn submit_on<C: Connection>(conn: &mut C, campaign: NamedCampaign) -> Result<u32, DistError> {
    conn.send(&Message::Submit {
        protocol: PROTOCOL_VERSION,
        campaign,
    })?;
    match conn.recv()? {
        Message::SubmitOk { id } => Ok(id),
        Message::Abort { reason } => Err(DistError::Aborted(reason)),
        other => Err(DistError::Protocol(format!(
            "expected a submission verdict, got {other:?}"
        ))),
    }
}
