//! Message transports: the coordinator/worker conversation, abstracted
//! over its byte carrier.
//!
//! PR 2/3 talked straight to [`TcpStream`]s, which meant every
//! scheduler-level test had to bind real ports and sleep-poll around
//! socket latency. The [`Connection`]/[`Listener`] traits factor the
//! transport out of the protocol: production uses [`TcpConnection`] /
//! [`TcpServerListener`] (identical wire behaviour to before), while
//! tests use the in-process [`LoopbackHub`], whose connections are
//! deterministic — a dropped end is observed *immediately* by the peer
//! (no timeouts), messages arrive in order, and nothing depends on the
//! kernel's socket scheduling — so tests can script worker arrival,
//! death, and live submission order exactly.
//!
//! Both transports carry the same [`Message`]s; the coordinator and
//! worker are generic over the trait, so the loopback path exercises the
//! real scheduler and protocol code, not a mock.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::wire::Message;
use crate::DistError;

/// A handle that severs a connection from any thread, unblocking a
/// blocked [`Connection::recv`] on it. The coordinator keeps one per
/// accepted connection so shutdown can force-disconnect stragglers.
pub type Canceller = Box<dyn Fn() + Send + 'static>;

/// One bidirectional, ordered message channel between a coordinator and
/// a peer (worker or control client).
pub trait Connection: Send {
    /// Sends one message.
    ///
    /// # Errors
    /// Fails when the link is down.
    fn send(&mut self, message: &Message) -> Result<(), DistError>;

    /// Receives the next message, blocking up to the configured receive
    /// timeout.
    ///
    /// # Errors
    /// Fails on a severed link, a timeout, or a malformed frame.
    fn recv(&mut self) -> Result<Message, DistError>;

    /// Bounds how long [`recv`](Connection::recv) may block (`None`
    /// blocks until the link closes).
    fn set_recv_timeout(&mut self, timeout: Option<Duration>);

    /// A handle that severs this link from another thread.
    fn canceller(&self) -> Canceller;
}

/// Accepts inbound [`Connection`]s for a coordinator.
pub trait Listener: Send {
    /// The connection type this listener produces.
    type Conn: Connection;

    /// Non-blocking accept: `Ok(None)` when nothing is waiting.
    ///
    /// # Errors
    /// Fails when the listener itself is broken (fails the run).
    fn poll_accept(&mut self) -> Result<Option<Self::Conn>, DistError>;

    /// Blocking accept: parks until a peer arrives or the listener is
    /// cancelled. `Ok(None)` means cancelled — the accept loop should
    /// exit; it is *not* a transient condition to retry.
    ///
    /// # Errors
    /// Fails when the listener itself is broken (fails the run).
    fn accept(&mut self) -> Result<Option<Self::Conn>, DistError>;

    /// A handle that unblocks a blocked [`accept`](Listener::accept)
    /// from another thread and makes every later accept return
    /// `Ok(None)`.
    fn canceller(&self) -> Canceller;
}

// ---------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------

/// The production transport: length-prefixed frames over one
/// [`TcpStream`].
#[derive(Debug)]
pub struct TcpConnection {
    stream: TcpStream,
}

impl TcpConnection {
    /// Wraps a connected stream (enabling `TCP_NODELAY` — frames are
    /// small and latency-sensitive).
    pub fn new(stream: TcpStream) -> TcpConnection {
        let _ = stream.set_nodelay(true);
        TcpConnection { stream }
    }
}

impl Connection for TcpConnection {
    fn send(&mut self, message: &Message) -> Result<(), DistError> {
        Ok(message.write_to(&mut self.stream)?)
    }

    fn recv(&mut self) -> Result<Message, DistError> {
        Ok(Message::read_from(&mut self.stream)?)
    }

    fn set_recv_timeout(&mut self, timeout: Option<Duration>) {
        // Sends share the bound: a peer that stops draining its socket
        // is as dead as one that stops sending.
        let _ = self.stream.set_read_timeout(timeout);
        let _ = self.stream.set_write_timeout(timeout);
    }

    fn canceller(&self) -> Canceller {
        match self.stream.try_clone() {
            Ok(clone) => Box::new(move || {
                let _ = clone.shutdown(std::net::Shutdown::Both);
            }),
            // No handle, no force-shutdown; the drain grace period still
            // bounds how long this connection can hold up exit.
            Err(_) => Box::new(|| {}),
        }
    }
}

/// The production listener over a bound [`TcpListener`].
///
/// Supports both accept styles: [`poll_accept`](Listener::poll_accept)
/// flips the socket non-blocking, [`accept`](Listener::accept) parks in
/// the kernel. Cancellation of a blocking accept has no portable
/// `std`-only primitive, so the canceller raises a flag and then dials
/// the listener's own address: the self-connection wakes `accept`, which
/// sees the flag and reports `Ok(None)`.
#[derive(Debug)]
pub struct TcpServerListener {
    listener: TcpListener,
    cancelled: Arc<AtomicBool>,
    wake_addr: Option<SocketAddr>,
}

impl TcpServerListener {
    /// Wraps a bound listener.
    ///
    /// # Errors
    /// Propagates the initial non-blocking mode switch failing.
    pub fn new(listener: TcpListener) -> Result<TcpServerListener, DistError> {
        listener.set_nonblocking(true)?;
        // A listener bound to the unspecified address can still be woken
        // through loopback on the same port.
        let wake_addr = listener.local_addr().ok().map(|mut addr| {
            if addr.ip().is_unspecified() {
                match addr {
                    SocketAddr::V4(_) => addr.set_ip(std::net::Ipv4Addr::LOCALHOST.into()),
                    SocketAddr::V6(_) => addr.set_ip(std::net::Ipv6Addr::LOCALHOST.into()),
                }
            }
            addr
        });
        Ok(TcpServerListener {
            listener,
            cancelled: Arc::new(AtomicBool::new(false)),
            wake_addr,
        })
    }
}

impl Listener for TcpServerListener {
    type Conn = TcpConnection;

    fn poll_accept(&mut self) -> Result<Option<TcpConnection>, DistError> {
        if self.cancelled.load(Ordering::SeqCst) {
            return Ok(None);
        }
        self.listener.set_nonblocking(true)?;
        match self.listener.accept() {
            Ok((stream, _peer)) => Ok(Some(TcpConnection::new(stream))),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(DistError::Io(e)),
        }
    }

    fn accept(&mut self) -> Result<Option<TcpConnection>, DistError> {
        self.listener.set_nonblocking(false)?;
        loop {
            if self.cancelled.load(Ordering::SeqCst) {
                return Ok(None);
            }
            match self.listener.accept() {
                // The accepted stream may be the canceller's wake-up
                // self-connection; checking the flag after accept drops
                // it on the floor either way.
                Ok((stream, _peer)) => {
                    if self.cancelled.load(Ordering::SeqCst) {
                        return Ok(None);
                    }
                    return Ok(Some(TcpConnection::new(stream)));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    if self.cancelled.load(Ordering::SeqCst) {
                        return Ok(None);
                    }
                    return Err(DistError::Io(e));
                }
            }
        }
    }

    fn canceller(&self) -> Canceller {
        let cancelled = Arc::clone(&self.cancelled);
        let wake_addr = self.wake_addr;
        Box::new(move || {
            cancelled.store(true, Ordering::SeqCst);
            if let Some(addr) = wake_addr {
                let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(250));
            }
        })
    }
}

// ---------------------------------------------------------------------
// Loopback
// ---------------------------------------------------------------------

/// One direction of a loopback link: an ordered message queue plus a
/// closed flag, guarded by a mutex/condvar pair.
#[derive(Debug, Default)]
struct Pipe {
    state: Mutex<PipeState>,
    ready: Condvar,
}

#[derive(Debug, Default)]
struct PipeState {
    queue: VecDeque<Message>,
    closed: bool,
}

impl Pipe {
    fn close(&self) {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .closed = true;
        self.ready.notify_all();
    }
}

fn loopback_io(kind: std::io::ErrorKind, message: &str) -> DistError {
    DistError::Io(std::io::Error::new(kind, message))
}

/// One end of an in-process loopback link. Dropping either end severs
/// the link: the peer drains any messages already queued (exactly like
/// bytes already in a socket buffer) and then sees end-of-stream
/// *immediately* — no timeout has to expire, which is what makes
/// loopback scheduler tests deterministic.
#[derive(Debug)]
pub struct LoopbackConn {
    tx: Arc<Pipe>,
    rx: Arc<Pipe>,
    recv_timeout: Option<Duration>,
}

impl Connection for LoopbackConn {
    fn send(&mut self, message: &Message) -> Result<(), DistError> {
        let mut state = self
            .tx
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if state.closed {
            return Err(loopback_io(
                std::io::ErrorKind::BrokenPipe,
                "loopback peer disconnected",
            ));
        }
        state.queue.push_back(message.clone());
        self.tx.ready.notify_all();
        Ok(())
    }

    fn recv(&mut self) -> Result<Message, DistError> {
        let mut state = self
            .rx
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        loop {
            if let Some(message) = state.queue.pop_front() {
                return Ok(message);
            }
            if state.closed {
                return Err(loopback_io(
                    std::io::ErrorKind::UnexpectedEof,
                    "loopback link closed",
                ));
            }
            state = match self.recv_timeout {
                None => self
                    .rx
                    .ready
                    .wait(state)
                    .unwrap_or_else(|poisoned| poisoned.into_inner()),
                Some(timeout) => {
                    let (state, result) = self
                        .rx
                        .ready
                        .wait_timeout(state, timeout)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                    if result.timed_out() && state.queue.is_empty() && !state.closed {
                        return Err(loopback_io(
                            std::io::ErrorKind::TimedOut,
                            "loopback recv timed out",
                        ));
                    }
                    state
                }
            };
        }
    }

    fn set_recv_timeout(&mut self, timeout: Option<Duration>) {
        self.recv_timeout = timeout;
    }

    fn canceller(&self) -> Canceller {
        let tx = Arc::clone(&self.tx);
        let rx = Arc::clone(&self.rx);
        Box::new(move || {
            tx.close();
            rx.close();
        })
    }
}

impl Drop for LoopbackConn {
    fn drop(&mut self) {
        self.tx.close();
        self.rx.close();
    }
}

/// Creates a connected loopback pair directly (no hub): `(a, b)` where
/// whatever `a` sends, `b` receives, and vice versa.
pub fn loopback_pair() -> (LoopbackConn, LoopbackConn) {
    let forward = Arc::new(Pipe::default());
    let backward = Arc::new(Pipe::default());
    (
        LoopbackConn {
            tx: Arc::clone(&forward),
            rx: Arc::clone(&backward),
            recv_timeout: None,
        },
        LoopbackConn {
            tx: backward,
            rx: forward,
            recv_timeout: None,
        },
    )
}

#[derive(Debug, Default)]
struct HubState {
    incoming: VecDeque<LoopbackConn>,
    closed: bool,
}

#[derive(Debug, Default)]
struct HubShared {
    state: Mutex<HubState>,
    arrived: Condvar,
}

/// An in-process "network": test threads [`connect`](LoopbackHub::connect)
/// to it, the coordinator accepts from it via
/// [`listener`](LoopbackHub::listener). Clone freely — all clones share
/// one accept queue. Once a listener's canceller fires the hub is
/// closed: later connects return an already-severed client end, exactly
/// like dialling a coordinator that has exited.
#[derive(Debug, Clone, Default)]
pub struct LoopbackHub {
    shared: Arc<HubShared>,
}

impl LoopbackHub {
    /// A fresh hub with an empty accept queue.
    pub fn new() -> LoopbackHub {
        LoopbackHub::default()
    }

    /// Opens a connection to the hub's coordinator and returns the
    /// client end; the server end is queued for the listener. On a
    /// closed hub the client end comes back already severed.
    pub fn connect(&self) -> LoopbackConn {
        let (client, server) = loopback_pair();
        let mut state = self
            .shared
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if state.closed {
            drop(server);
        } else {
            state.incoming.push_back(server);
            self.shared.arrived.notify_all();
        }
        client
    }

    /// The accept side, for [`serve_transport`](crate::serve_transport).
    pub fn listener(&self) -> LoopbackListener {
        LoopbackListener { hub: self.clone() }
    }
}

/// Accepts connections opened on a [`LoopbackHub`].
#[derive(Debug)]
pub struct LoopbackListener {
    hub: LoopbackHub,
}

impl Listener for LoopbackListener {
    type Conn = LoopbackConn;

    fn poll_accept(&mut self) -> Result<Option<LoopbackConn>, DistError> {
        Ok(self
            .hub
            .shared
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .incoming
            .pop_front())
    }

    fn accept(&mut self) -> Result<Option<LoopbackConn>, DistError> {
        let shared = &self.hub.shared;
        let mut state = shared
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        loop {
            if let Some(conn) = state.incoming.pop_front() {
                return Ok(Some(conn));
            }
            if state.closed {
                return Ok(None);
            }
            state = shared
                .arrived
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    fn canceller(&self) -> Canceller {
        let shared = Arc::clone(&self.hub.shared);
        Box::new(move || {
            shared
                .state
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .closed = true;
            shared.arrived.notify_all();
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_pair_delivers_in_order_and_both_directions() {
        let (mut a, mut b) = loopback_pair();
        a.send(&Message::Request { max_cells: 1 }).unwrap();
        a.send(&Message::Request { max_cells: 2 }).unwrap();
        assert_eq!(b.recv().unwrap(), Message::Request { max_cells: 1 });
        assert_eq!(b.recv().unwrap(), Message::Request { max_cells: 2 });
        b.send(&Message::Finished).unwrap();
        assert_eq!(a.recv().unwrap(), Message::Finished);
    }

    #[test]
    fn dropping_one_end_drains_then_closes_the_peer() {
        let (mut a, mut b) = loopback_pair();
        a.send(&Message::Finished).unwrap();
        drop(a);
        // The queued message survives the close (like buffered socket
        // bytes), then the closure is visible with no timeout involved.
        assert_eq!(b.recv().unwrap(), Message::Finished);
        assert!(b.recv().is_err());
        assert!(b.send(&Message::Finished).is_err());
    }

    #[test]
    fn canceller_unblocks_a_blocked_recv() {
        let (mut a, b) = loopback_pair();
        let cancel = b.canceller();
        let waiter = std::thread::spawn(move || a.recv());
        cancel();
        assert!(waiter.join().unwrap().is_err());
        drop(b);
    }

    #[test]
    fn recv_timeout_fires_only_without_traffic() {
        let (mut a, mut b) = loopback_pair();
        a.set_recv_timeout(Some(Duration::from_millis(10)));
        assert!(
            matches!(a.recv(), Err(DistError::Io(e)) if e.kind() == std::io::ErrorKind::TimedOut)
        );
        b.send(&Message::Finished).unwrap();
        assert_eq!(a.recv().unwrap(), Message::Finished);
    }

    #[test]
    fn hub_queues_connections_for_the_listener() {
        let hub = LoopbackHub::new();
        let mut listener = hub.listener();
        assert!(listener.poll_accept().unwrap().is_none());
        let mut client = hub.connect();
        let mut server = listener.poll_accept().unwrap().expect("queued");
        client.send(&Message::Request { max_cells: 7 }).unwrap();
        assert_eq!(server.recv().unwrap(), Message::Request { max_cells: 7 });
    }

    #[test]
    fn blocking_accept_parks_until_a_peer_or_the_canceller_arrives() {
        let hub = LoopbackHub::new();
        let mut listener = hub.listener();
        let cancel = listener.canceller();
        let accepter = std::thread::spawn(move || {
            let first = listener.accept();
            let second = listener.accept();
            (first, second)
        });
        let mut client = hub.connect();
        std::thread::sleep(Duration::from_millis(20));
        cancel();
        let (first, second) = accepter.join().unwrap();
        let mut server = first.unwrap().expect("first accept yields the connection");
        assert!(second.unwrap().is_none(), "cancelled accept returns None");
        client.send(&Message::Finished).unwrap();
        assert_eq!(server.recv().unwrap(), Message::Finished);
    }

    #[test]
    fn connecting_to_a_closed_hub_returns_a_severed_end() {
        let hub = LoopbackHub::new();
        hub.listener().canceller()();
        let mut client = hub.connect();
        assert!(client.send(&Message::Finished).is_err());
        assert!(client.recv().is_err());
    }

    #[test]
    fn tcp_blocking_accept_is_unblocked_by_its_canceller() {
        let bound = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut listener = TcpServerListener::new(bound).unwrap();
        let cancel = listener.canceller();
        let accepter = std::thread::spawn(move || listener.accept());
        std::thread::sleep(Duration::from_millis(30));
        cancel();
        assert!(accepter.join().unwrap().unwrap().is_none());
    }
}
