//! The campaign worker: executes assigned cells on the in-process pool.
//!
//! A worker is deliberately stateless between batches: it connects,
//! learns every queued [`CampaignSpec`](crate::CampaignSpec) from the
//! coordinator's handshake, and then pulls campaign-tagged job batches
//! until the coordinator says [`Message::Finished`]. Cells run on the
//! PR 1 work-stealing pool ([`Parallelism`]), and **baseline caches are
//! shared across campaigns**: campaigns whose [`SetupSpec`] is identical
//! (the common case — several attack kinds over one experiment) resolve
//! to one [`BaselineCache`], so each per-seed baseline is trained at
//! most once per worker process no matter how many campaigns use it.
//!
//! Results stream back in acknowledgement windows: the worker sends one
//! [`Message::Results`] window, waits for the coordinator's
//! [`Message::Ack`] (which guarantees the cells were journaled), then
//! streams the next — so a huge grid never accumulates an unbounded
//! unacknowledged backlog, and a killed worker loses at most one
//! window. A cell that fails to execute is reported individually via
//! [`Message::Failed`] (counting toward its poison cap) while the rest
//! of the batch proceeds.

use std::net::TcpStream;
use std::time::Duration;

use neurofi_analog::PowerTransferTable;
use neurofi_core::sweep::{execute_cell, mean_baseline_accuracy, run_indexed};
use neurofi_core::{BaselineCache, Parallelism};

use crate::campaign::{NamedCampaign, SetupSpec};
use crate::wire::{Message, PROTOCOL_VERSION};
use crate::DistError;

/// Default acknowledgement-window size (cells per unacknowledged
/// `Results` frame).
pub const DEFAULT_ACK_WINDOW: usize = 32;

/// How a worker connects and executes.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Coordinator address (`host:port`).
    pub connect: String,
    /// Cell-level parallelism on this node (the in-process pool). The
    /// pool width is reported in the `Hello` and drives the
    /// coordinator's capacity-aware batch sizing.
    pub parallelism: Parallelism,
    /// Stop after executing this many cells and disconnect without
    /// ceremony — deliberate preemption (spot instances, tests of the
    /// coordinator's requeue path). `None` runs to completion.
    pub max_cells: Option<usize>,
    /// Hard cap on cells requested per batch. `None` (the default) lets
    /// the coordinator size batches from the reported thread width.
    pub batch: Option<usize>,
    /// Cells per acknowledgement window when streaming results (0 is
    /// treated as 1).
    pub ack_window: usize,
    /// Socket timeout for coordinator replies (scheduling and ack
    /// replies are immediate — the coordinator heartbeats empty batches
    /// while work is in flight elsewhere — so this guards against a
    /// dead peer, not against slow cells).
    pub io_timeout: Duration,
}

impl WorkerConfig {
    /// A config with the defaults (auto parallelism, coordinator-sized
    /// batches, no cell budget).
    pub fn new(connect: impl Into<String>) -> WorkerConfig {
        WorkerConfig {
            connect: connect.into(),
            parallelism: Parallelism::Auto,
            max_cells: None,
            batch: None,
            ack_window: DEFAULT_ACK_WINDOW,
            io_timeout: Duration::from_secs(60),
        }
    }
}

/// What one worker session accomplished.
#[derive(Debug, Clone, Copy)]
pub struct WorkerSummary {
    /// Cells this worker measured and reported.
    pub cells_executed: usize,
    /// True when the coordinator ended the session with `Finished`
    /// (false when the worker hit its `max_cells` budget and left).
    pub finished: bool,
}

/// Per-campaign execution state on the worker: which shared cache the
/// campaign resolves to, its transfer table, and the lazily derived mean
/// baseline (computed on the campaign's first assigned batch; a cache
/// hit when another campaign over the same setup already trained the
/// seeds).
struct CampaignRuntime {
    seeds: Vec<u64>,
    cache: usize,
    transfer: Option<PowerTransferTable>,
    baseline_accuracy: Option<f64>,
}

/// Builds the per-campaign runtimes, deduplicating baseline caches by
/// [`SetupSpec`] equality so campaigns over the same experiment share
/// per-seed baselines.
fn build_runtimes(
    campaigns: &[NamedCampaign],
    parallelism: Parallelism,
) -> Result<(Vec<BaselineCache>, Vec<CampaignRuntime>), DistError> {
    let mut setups: Vec<SetupSpec> = Vec::new();
    let mut caches: Vec<BaselineCache> = Vec::new();
    let mut runtimes = Vec::with_capacity(campaigns.len());
    for campaign in campaigns {
        campaign.spec.validate()?;
        let cache = match setups.iter().position(|s| *s == campaign.spec.setup) {
            Some(i) => i,
            None => {
                let setup = campaign.spec.materialize().with_parallelism(parallelism);
                setups.push(campaign.spec.setup.clone());
                caches.push(BaselineCache::new(&setup));
                caches.len() - 1
            }
        };
        runtimes.push(CampaignRuntime {
            seeds: campaign.spec.sweep.seeds.clone(),
            cache,
            transfer: campaign.spec.transfer_table()?,
            baseline_accuracy: None,
        });
    }
    Ok((caches, runtimes))
}

/// Connects to a coordinator and works until every queued campaign
/// finishes, the cell budget runs out, or the coordinator aborts.
///
/// # Errors
/// Propagates socket and protocol failures, and surfaces a coordinator
/// [`Message::Abort`] as [`DistError::Aborted`]. A cell that fails
/// execution is reported to the coordinator ([`Message::Failed`]) and
/// does *not* end the session.
pub fn run_worker(config: &WorkerConfig) -> Result<WorkerSummary, DistError> {
    let mut stream = TcpStream::connect(&config.connect)?;
    stream.set_read_timeout(Some(config.io_timeout))?;
    stream.set_write_timeout(Some(config.io_timeout))?;
    stream.set_nodelay(true)?;

    let pool_width = config.parallelism.worker_count();
    Message::Hello {
        protocol: PROTOCOL_VERSION,
        threads: pool_width as u32,
    }
    .write_to(&mut stream)?;

    let campaigns = match Message::read_from(&mut stream)? {
        Message::Campaigns { campaigns } => campaigns,
        Message::Abort { reason } => return Err(DistError::Aborted(reason)),
        other => {
            return Err(DistError::Protocol(format!(
                "expected campaign-queue handshake, got {other:?}"
            )))
        }
    };
    if campaigns.is_empty() {
        return Err(DistError::Protocol(
            "coordinator announced an empty campaign queue".into(),
        ));
    }
    let (caches, mut runtimes) = build_runtimes(&campaigns, config.parallelism)?;

    let batch_cap = config.batch.unwrap_or(u32::MAX as usize).max(1);
    let ack_window = config.ack_window.max(1);
    let mut executed = 0usize;
    loop {
        let budget = match config.max_cells {
            Some(max) => {
                if executed >= max {
                    // Preemption: vanish, exactly like a killed process.
                    return Ok(WorkerSummary {
                        cells_executed: executed,
                        finished: false,
                    });
                }
                (max - executed).min(batch_cap)
            }
            None => batch_cap,
        };
        Message::Request {
            max_cells: budget.min(u32::MAX as usize) as u32,
        }
        .write_to(&mut stream)?;

        let (campaign, jobs) = match Message::read_from(&mut stream)? {
            Message::Assign { campaign, jobs } => (campaign, jobs),
            Message::Finished => {
                return Ok(WorkerSummary {
                    cells_executed: executed,
                    finished: true,
                })
            }
            Message::Abort { reason } => return Err(DistError::Aborted(reason)),
            other => {
                return Err(DistError::Protocol(format!(
                    "expected assignment, got {other:?}"
                )))
            }
        };
        if jobs.is_empty() {
            // Keep-alive: nothing pending right now (work is in flight on
            // other workers). Back off briefly and ask again.
            std::thread::sleep(Duration::from_millis(50));
            continue;
        }
        let runtime = runtimes.get_mut(campaign as usize).ok_or_else(|| {
            DistError::Protocol(format!(
                "coordinator assigned cells for unknown campaign {campaign}"
            ))
        })?;
        let cache = &caches[runtime.cache];

        // First batch of this campaign: derive the mean baseline. When
        // another campaign over the same setup already trained these
        // seeds this is a pure cache hit — the whole point of sharing
        // the fleet across campaigns.
        let baseline_accuracy = match runtime.baseline_accuracy {
            Some(b) => b,
            None => {
                let b = mean_baseline_accuracy(cache, &runtime.seeds);
                runtime.baseline_accuracy = Some(b);
                b
            }
        };

        // Execute and stream the batch in acknowledgement windows; each
        // window is journaled by the coordinator before it is acked.
        for window in jobs.chunks(ack_window) {
            let measured = run_indexed(window.len(), config.parallelism, |i| {
                execute_cell(
                    cache,
                    &runtime.seeds,
                    baseline_accuracy,
                    &window[i],
                    runtime.transfer.as_ref(),
                )
            });
            let mut results = Vec::with_capacity(window.len());
            for (job, outcome) in window.iter().zip(measured) {
                match outcome {
                    Ok(result) => results.push(result),
                    // A cell this node cannot execute: report it
                    // individually (it counts toward the cell's poison
                    // cap) and keep serving the rest of the batch.
                    Err(e) => Message::Failed {
                        campaign,
                        index: job.index as u64,
                        reason: e.to_string(),
                    }
                    .write_to(&mut stream)?,
                }
            }
            if results.is_empty() {
                continue;
            }
            let sent = results.len();
            Message::Results {
                campaign,
                baseline_accuracy,
                results,
            }
            .write_to(&mut stream)?;
            match Message::read_from(&mut stream)? {
                Message::Ack {
                    campaign: acked,
                    received,
                } => {
                    if acked != campaign || received as usize != sent {
                        return Err(DistError::Protocol(format!(
                            "acknowledgement mismatch: sent {sent} cells for campaign \
                             {campaign}, ack covers {received} for campaign {acked}"
                        )));
                    }
                }
                Message::Abort { reason } => return Err(DistError::Aborted(reason)),
                other => {
                    return Err(DistError::Protocol(format!(
                        "expected window acknowledgement, got {other:?}"
                    )))
                }
            }
            executed += sent;
        }
    }
}
