//! The campaign worker: executes assigned cells on the in-process pool.
//!
//! A worker is deliberately stateless between batches: it connects,
//! learns the [`CampaignSpec`] from the coordinator's handshake, and
//! then pulls job batches until the coordinator says [`Message::Finished`].
//! Cells run on the PR 1 work-stealing pool ([`Parallelism`]) and share
//! one [`BaselineCache`], so a 4-machine × 4-core campaign nests the two
//! levels of parallelism cleanly: the coordinator shards cells across
//! machines, each worker shards its batch across cores, and per-seed
//! baselines are trained at most once per worker process.

use std::net::TcpStream;
use std::time::Duration;

use neurofi_analog::PowerTransferTable;
use neurofi_core::sweep::{execute_cell, mean_baseline_accuracy, run_indexed};
use neurofi_core::{BaselineCache, Parallelism};

use crate::wire::{Message, PROTOCOL_VERSION};
use crate::DistError;

/// How a worker connects and executes.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Coordinator address (`host:port`).
    pub connect: String,
    /// Cell-level parallelism on this node (the in-process pool).
    pub parallelism: Parallelism,
    /// Stop after executing this many cells and disconnect without
    /// ceremony — deliberate preemption (spot instances, tests of the
    /// coordinator's requeue path). `None` runs to completion.
    pub max_cells: Option<usize>,
    /// Cells requested per batch; defaults to the pool width so every
    /// core has a cell.
    pub batch: Option<usize>,
    /// Socket timeout for coordinator replies (scheduling replies are
    /// immediate — the coordinator heartbeats empty batches while work
    /// is in flight elsewhere — so this guards against a dead peer, not
    /// against slow cells).
    pub io_timeout: Duration,
}

impl WorkerConfig {
    /// A config with the defaults (auto parallelism, no cell budget).
    pub fn new(connect: impl Into<String>) -> WorkerConfig {
        WorkerConfig {
            connect: connect.into(),
            parallelism: Parallelism::Auto,
            max_cells: None,
            batch: None,
            io_timeout: Duration::from_secs(60),
        }
    }
}

/// What one worker session accomplished.
#[derive(Debug, Clone, Copy)]
pub struct WorkerSummary {
    /// Cells this worker measured and reported.
    pub cells_executed: usize,
    /// True when the coordinator ended the session with `Finished`
    /// (false when the worker hit its `max_cells` budget and left).
    pub finished: bool,
}

/// Connects to a coordinator and works until the campaign finishes, the
/// cell budget runs out, or the coordinator aborts.
///
/// # Errors
/// Propagates socket, protocol, and cell-execution failures, and
/// surfaces a coordinator [`Message::Abort`] as [`DistError::Aborted`].
pub fn run_worker(config: &WorkerConfig) -> Result<WorkerSummary, DistError> {
    let mut stream = TcpStream::connect(&config.connect)?;
    stream.set_read_timeout(Some(config.io_timeout))?;
    stream.set_write_timeout(Some(config.io_timeout))?;
    stream.set_nodelay(true)?;

    let pool_width = config.parallelism.worker_count();
    Message::Hello {
        protocol: PROTOCOL_VERSION,
        threads: pool_width as u32,
    }
    .write_to(&mut stream)?;

    let spec = match Message::read_from(&mut stream)? {
        Message::Campaign { spec } => spec,
        Message::Abort { reason } => return Err(DistError::Aborted(reason)),
        other => {
            return Err(DistError::Protocol(format!(
                "expected campaign handshake, got {other:?}"
            )))
        }
    };
    spec.validate()?;

    let setup = spec.materialize().with_parallelism(config.parallelism);
    let cache = BaselineCache::new(&setup);
    let seeds = spec.sweep.seeds.clone();
    let transfer: Option<PowerTransferTable> = spec.transfer_table()?;

    // Train the per-seed baselines once, up front; every batch reuses
    // them through the cache, and the resulting mean is this worker's
    // determinism fingerprint (the coordinator cross-checks its bits).
    let baseline_accuracy = mean_baseline_accuracy(&cache, &seeds);

    let batch_size = config.batch.unwrap_or(pool_width).max(1);
    let mut executed = 0usize;
    loop {
        let budget = match config.max_cells {
            Some(max) => {
                if executed >= max {
                    // Preemption: vanish, exactly like a killed process.
                    return Ok(WorkerSummary {
                        cells_executed: executed,
                        finished: false,
                    });
                }
                (max - executed).min(batch_size)
            }
            None => batch_size,
        };
        Message::Request {
            max_cells: budget as u32,
        }
        .write_to(&mut stream)?;

        let jobs = match Message::read_from(&mut stream)? {
            Message::Assign { jobs } => jobs,
            Message::Finished => {
                return Ok(WorkerSummary {
                    cells_executed: executed,
                    finished: true,
                })
            }
            Message::Abort { reason } => return Err(DistError::Aborted(reason)),
            other => {
                return Err(DistError::Protocol(format!(
                    "expected assignment, got {other:?}"
                )))
            }
        };
        if jobs.is_empty() {
            // Keep-alive: nothing pending right now (work is in flight on
            // other workers). Back off briefly and ask again.
            std::thread::sleep(Duration::from_millis(50));
            continue;
        }

        let measured = run_indexed(jobs.len(), config.parallelism, |i| {
            execute_cell(
                &cache,
                &seeds,
                baseline_accuracy,
                &jobs[i],
                transfer.as_ref(),
            )
        });
        let results = measured
            .into_iter()
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| {
                // A cell this node cannot execute poisons the whole
                // campaign; tell the coordinator before bailing.
                let _ = Message::Abort {
                    reason: format!("worker cannot execute cell: {e}"),
                }
                .write_to(&mut stream);
                DistError::Core(e)
            })?;
        executed += results.len();
        Message::Results {
            baseline_accuracy,
            results,
        }
        .write_to(&mut stream)?;
    }
}
