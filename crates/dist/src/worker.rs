//! The campaign worker: executes assigned cells on the in-process pool.
//!
//! A worker is deliberately stateless between batches: it connects,
//! learns every queued [`CampaignSpec`](crate::CampaignSpec) from the
//! coordinator's handshake — plus any campaign submitted later, via
//! [`Message::CampaignAnnounce`] pushes — and then pulls campaign-tagged
//! job batches until the coordinator says [`Message::Finished`]. Cells
//! run on the PR 1 work-stealing pool ([`Parallelism`]), and **baseline
//! caches are shared across campaigns**: campaigns whose [`SetupSpec`]
//! is identical (the common case — several attack kinds over one
//! experiment) resolve to one [`BaselineCache`], so each per-seed
//! baseline is trained at most once per process no matter how many
//! campaigns are queued or submitted.
//!
//! Results stream back in acknowledgement windows: the worker sends one
//! [`Message::Results`] window, waits for the coordinator's
//! [`Message::Ack`] (which guarantees the cells were journaled), then
//! streams the next — so a huge grid never accumulates an unbounded
//! unacknowledged backlog, and a killed worker loses at most one
//! window. A cell that fails to execute is reported individually via
//! [`Message::Failed`] (counting toward its poison cap) while the rest
//! of the batch proceeds.
//!
//! The worker is generic over [`Connection`]: production runs it over
//! TCP ([`run_worker`]), the deterministic scheduler tests run the same
//! code over an in-process loopback link ([`run_worker_on`]).

use std::net::TcpStream;
use std::time::Duration;

use neurofi_analog::PowerTransferTable;
use neurofi_core::sweep::{execute_cell, mean_baseline_accuracy, run_indexed};
use neurofi_core::{BaselineCache, Parallelism};

use crate::campaign::{NamedCampaign, SetupSpec};
use crate::transport::{Connection, TcpConnection};
use crate::wire::{Message, PROTOCOL_VERSION};
use crate::DistError;

/// Default acknowledgement-window size (cells per unacknowledged
/// `Results` frame).
pub const DEFAULT_ACK_WINDOW: usize = 32;

/// How a worker connects and executes.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Coordinator address (`host:port`).
    pub connect: String,
    /// Cell-level parallelism on this node (the in-process pool). The
    /// pool width is reported in the `Hello` and drives the
    /// coordinator's capacity-aware batch sizing.
    pub parallelism: Parallelism,
    /// Stop after executing this many cells and disconnect without
    /// ceremony — deliberate preemption (spot instances, tests of the
    /// coordinator's requeue path). `None` runs to completion.
    pub max_cells: Option<usize>,
    /// Hard cap on cells requested per batch. `None` (the default) lets
    /// the coordinator size batches from the reported thread width.
    pub batch: Option<usize>,
    /// Cells per acknowledgement window when streaming results (0 is
    /// treated as 1).
    pub ack_window: usize,
    /// Socket timeout for coordinator replies (scheduling and ack
    /// replies are immediate — the coordinator heartbeats empty batches
    /// while work is in flight elsewhere — so this guards against a
    /// dead peer, not against slow cells).
    pub io_timeout: Duration,
}

impl WorkerConfig {
    /// A config with the defaults (auto parallelism, coordinator-sized
    /// batches, no cell budget).
    pub fn new(connect: impl Into<String>) -> WorkerConfig {
        WorkerConfig {
            connect: connect.into(),
            parallelism: Parallelism::Auto,
            max_cells: None,
            batch: None,
            ack_window: DEFAULT_ACK_WINDOW,
            io_timeout: Duration::from_secs(60),
        }
    }
}

/// What one worker session accomplished.
#[derive(Debug, Clone, Copy)]
pub struct WorkerSummary {
    /// Cells this worker measured and reported.
    pub cells_executed: usize,
    /// True when the coordinator ended the session with `Finished`
    /// (false when the worker hit its `max_cells` budget and left).
    pub finished: bool,
}

/// Per-campaign execution state on the worker: which shared cache the
/// campaign resolves to, its transfer table, and the lazily derived mean
/// baseline (computed on the campaign's first assigned batch; a cache
/// hit when another campaign over the same setup already trained the
/// seeds).
struct CampaignRuntime {
    seeds: Vec<u64>,
    cache: usize,
    transfer: Option<PowerTransferTable>,
    baseline_accuracy: Option<f64>,
}

/// Every campaign this worker knows, with baseline caches deduplicated
/// by [`SetupSpec`] equality so campaigns over the same experiment
/// share per-seed baselines. Grows when the coordinator announces a
/// live-submitted campaign.
struct WorkerRuntimes {
    parallelism: Parallelism,
    setups: Vec<SetupSpec>,
    caches: Vec<BaselineCache>,
    campaigns: Vec<CampaignRuntime>,
}

impl WorkerRuntimes {
    fn new(campaigns: &[NamedCampaign], parallelism: Parallelism) -> Result<Self, DistError> {
        let mut runtimes = WorkerRuntimes {
            parallelism,
            setups: Vec::new(),
            caches: Vec::new(),
            campaigns: Vec::new(),
        };
        for campaign in campaigns {
            runtimes.add(campaign)?;
        }
        Ok(runtimes)
    }

    /// Registers one campaign, resolving it to an existing baseline
    /// cache when its setup matches one already built.
    fn add(&mut self, campaign: &NamedCampaign) -> Result<(), DistError> {
        campaign.spec.validate()?;
        let cache = match self.setups.iter().position(|s| *s == campaign.spec.setup) {
            Some(i) => i,
            None => {
                let setup = campaign
                    .spec
                    .materialize()
                    .with_parallelism(self.parallelism);
                self.setups.push(campaign.spec.setup.clone());
                self.caches.push(BaselineCache::new(&setup));
                self.caches.len() - 1
            }
        };
        self.campaigns.push(CampaignRuntime {
            seeds: campaign.spec.scenario.baseline_seeds().to_vec(),
            cache,
            transfer: campaign.spec.transfer_table()?,
            baseline_accuracy: None,
        });
        Ok(())
    }

    /// Handles one [`Message::CampaignAnnounce`]: announcements arrive
    /// in queue order, so the announced id must be the next unused one.
    fn announce(&mut self, id: u32, campaign: &NamedCampaign) -> Result<(), DistError> {
        if id as usize != self.campaigns.len() {
            return Err(DistError::Protocol(format!(
                "coordinator announced campaign `{}` as id {id}, expected {}",
                campaign.name,
                self.campaigns.len()
            )));
        }
        self.add(campaign)
    }

    /// The campaign's mean baseline accuracy, derived on first use (a
    /// pure cache hit when another campaign over the same setup already
    /// trained these seeds — the whole point of sharing the fleet).
    fn baseline(&mut self, id: usize) -> f64 {
        if let Some(b) = self.campaigns[id].baseline_accuracy {
            return b;
        }
        let cache = &self.caches[self.campaigns[id].cache];
        let b = mean_baseline_accuracy(cache, &self.campaigns[id].seeds);
        self.campaigns[id].baseline_accuracy = Some(b);
        b
    }
}

/// Receives the next protocol message, buffering any
/// [`Message::CampaignAnnounce`] pushed ahead of the actual reply (the
/// caller applies the buffer to its [`WorkerRuntimes`] before touching
/// a campaign id — the coordinator guarantees the announce precedes the
/// first reply referencing the id).
fn recv_reply<C: Connection>(
    conn: &mut C,
    pending: &mut Vec<(u32, NamedCampaign)>,
) -> Result<Message, DistError> {
    loop {
        match conn.recv()? {
            Message::CampaignAnnounce { id, campaign } => pending.push((id, campaign)),
            other => return Ok(other),
        }
    }
}

/// Registers every buffered announcement, in arrival order.
fn apply_announcements(
    runtimes: &mut WorkerRuntimes,
    pending: &mut Vec<(u32, NamedCampaign)>,
) -> Result<(), DistError> {
    for (id, campaign) in pending.drain(..) {
        runtimes.announce(id, &campaign)?;
    }
    Ok(())
}

/// Connects to a coordinator over TCP and works until every queued
/// campaign finishes, the cell budget runs out, or the coordinator
/// aborts.
///
/// # Errors
/// See [`run_worker_on`]; additionally propagates connect failures.
pub fn run_worker(config: &WorkerConfig) -> Result<WorkerSummary, DistError> {
    let stream = TcpStream::connect(&config.connect)?;
    let mut conn = TcpConnection::new(stream);
    conn.set_recv_timeout(Some(config.io_timeout));
    run_worker_on(conn, config)
}

/// Works an already-established [`Connection`] until every queued
/// campaign finishes, the cell budget runs out, or the coordinator
/// aborts. This is the whole worker — [`run_worker`] runs it over TCP,
/// deterministic tests run it over a loopback link.
///
/// # Errors
/// Propagates link and protocol failures, and surfaces a coordinator
/// [`Message::Abort`] as [`DistError::Aborted`]. A cell that fails
/// execution is reported to the coordinator ([`Message::Failed`]) and
/// does *not* end the session.
pub fn run_worker_on<C: Connection>(
    mut conn: C,
    config: &WorkerConfig,
) -> Result<WorkerSummary, DistError> {
    let pool_width = config.parallelism.worker_count();
    conn.send(&Message::Hello {
        protocol: PROTOCOL_VERSION,
        threads: pool_width as u32,
    })?;

    let campaigns = match conn.recv()? {
        Message::Campaigns { campaigns } => campaigns,
        Message::Abort { reason } => return Err(DistError::Aborted(reason)),
        other => {
            return Err(DistError::Protocol(format!(
                "expected campaign-queue handshake, got {other:?}"
            )))
        }
    };
    if campaigns.is_empty() {
        return Err(DistError::Protocol(
            "coordinator announced an empty campaign queue".into(),
        ));
    }
    let mut runtimes = WorkerRuntimes::new(&campaigns, config.parallelism)?;
    let mut pending: Vec<(u32, NamedCampaign)> = Vec::new();

    let batch_cap = config.batch.unwrap_or(u32::MAX as usize).max(1);
    let ack_window = config.ack_window.max(1);
    let mut executed = 0usize;
    loop {
        let budget = match config.max_cells {
            Some(max) => {
                if executed >= max {
                    // Preemption: vanish, exactly like a killed process.
                    return Ok(WorkerSummary {
                        cells_executed: executed,
                        finished: false,
                    });
                }
                (max - executed).min(batch_cap)
            }
            None => batch_cap,
        };
        conn.send(&Message::Request {
            max_cells: budget.min(u32::MAX as usize) as u32,
        })?;

        let (campaign, jobs) = match recv_reply(&mut conn, &mut pending)? {
            Message::Assign { campaign, jobs } => (campaign, jobs),
            Message::Finished => {
                return Ok(WorkerSummary {
                    cells_executed: executed,
                    finished: true,
                })
            }
            Message::Abort { reason } => return Err(DistError::Aborted(reason)),
            other => {
                return Err(DistError::Protocol(format!(
                    "expected assignment, got {other:?}"
                )))
            }
        };
        // Any campaign submitted since the last reply was announced
        // ahead of this Assign: register it before resolving the id.
        apply_announcements(&mut runtimes, &mut pending)?;
        if jobs.is_empty() {
            // Keep-alive: nothing pending right now (work is in flight on
            // other workers). Back off briefly and ask again.
            std::thread::sleep(Duration::from_millis(50));
            continue;
        }
        if campaign as usize >= runtimes.campaigns.len() {
            return Err(DistError::Protocol(format!(
                "coordinator assigned cells for unknown campaign {campaign}"
            )));
        }

        // First batch of this campaign: derive the mean baseline (a
        // cache hit when another campaign shares the setup).
        let baseline_accuracy = runtimes.baseline(campaign as usize);
        let runtime = &runtimes.campaigns[campaign as usize];
        let cache = &runtimes.caches[runtime.cache];

        // Execute and stream the batch in acknowledgement windows; each
        // window is journaled by the coordinator before it is acked.
        for window in jobs.chunks(ack_window) {
            let measured = run_indexed(window.len(), config.parallelism, |i| {
                execute_cell(
                    cache,
                    &runtime.seeds,
                    baseline_accuracy,
                    &window[i],
                    runtime.transfer.as_ref(),
                )
            });
            let mut results = Vec::with_capacity(window.len());
            for (job, outcome) in window.iter().zip(measured) {
                match outcome {
                    Ok(result) => results.push(result),
                    // A cell this node cannot execute: report it
                    // individually (it counts toward the cell's poison
                    // cap) and keep serving the rest of the batch.
                    Err(e) => conn.send(&Message::Failed {
                        campaign,
                        index: job.index as u64,
                        reason: e.to_string(),
                    })?,
                }
            }
            if results.is_empty() {
                continue;
            }
            let sent = results.len();
            conn.send(&Message::Results {
                campaign,
                baseline_accuracy,
                results,
            })?;
            match recv_reply(&mut conn, &mut pending)? {
                Message::Ack {
                    campaign: acked_campaign,
                    received,
                } => {
                    if acked_campaign != campaign || received as usize != sent {
                        return Err(DistError::Protocol(format!(
                            "acknowledgement mismatch: sent {sent} cells for campaign \
                             {campaign}, ack covers {received} for campaign {acked_campaign}"
                        )));
                    }
                }
                Message::Abort { reason } => return Err(DistError::Aborted(reason)),
                other => {
                    return Err(DistError::Protocol(format!(
                        "expected window acknowledgement, got {other:?}"
                    )))
                }
            }
            executed += sent;
        }
    }
}
