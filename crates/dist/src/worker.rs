//! The campaign worker: executes assigned cells on the in-process pool.
//!
//! A worker is deliberately stateless between batches: it connects,
//! learns every queued [`CampaignSpec`](crate::CampaignSpec) from the
//! coordinator's handshake — plus any campaign submitted later, via
//! [`Message::CampaignAnnounce`] pushes — and then pulls campaign-tagged
//! job batches until the coordinator says [`Message::Finished`]. Cells
//! run on the PR 1 work-stealing pool ([`Parallelism`]), and **baseline
//! caches are shared across campaigns**: campaigns whose [`SetupSpec`]
//! is identical (the common case — several attack kinds over one
//! experiment) resolve to one [`BaselineCache`], so each per-seed
//! baseline is trained at most once per process no matter how many
//! campaigns are queued or submitted.
//!
//! Results stream back in acknowledgement windows: the worker sends one
//! [`Message::Results`] window, waits for the coordinator's
//! [`Message::Ack`] (which guarantees the cells were journaled), then
//! streams the next — so a huge grid never accumulates an unbounded
//! unacknowledged backlog, and a killed worker loses at most one
//! window. A cell that fails to execute is reported individually via
//! [`Message::Failed`] (counting toward its poison cap) while the rest
//! of the batch proceeds.
//!
//! The worker is generic over [`Connection`]: production runs it over
//! TCP ([`run_worker`]), the deterministic scheduler tests run the same
//! code over an in-process loopback link ([`run_worker_on`]).
//!
//! ## Sessions and reconnection
//!
//! A link to the coordinator is one *session*; the worker's life is a
//! loop of sessions ([`run_worker_reconnecting`]). When a session dies
//! — the link severed, a frame lost or corrupted, the conversation
//! desynchronised by a duplicated frame — the worker drops the
//! connection, sleeps a capped exponential backoff with seeded jitter
//! ([`RetryPolicy`]), redials, re-handshakes, and resumes pulling.
//! Three properties make this safe with no worker-side journal:
//!
//! * the coordinator requeues a dead worker's in-flight cells, and its
//!   duplicate-delivery tolerance accepts a re-executed cell as long as
//!   the bits match, so the lost unacked window is simply re-executed;
//! * [`WorkerRuntimes`] (baseline caches keyed by setup) survives
//!   across sessions in-process, so a reconnect retrains nothing;
//! * the re-handshake is *reconciled* against what the worker already
//!   knows: campaign ids must map to the same name + digest as before,
//!   otherwise the peer is not the coordinator this worker was serving
//!   and the mismatch is a loud protocol error, not silent corruption.
//!
//! Only consecutive failures count against the retry budget — a
//! completed handshake resets it — so a long-lived worker rides through
//! unlimited *separated* link flaps, and a worker started before its
//! coordinator binds the port keeps dialling until it arrives.

use std::net::TcpStream;
use std::time::Duration;

use neurofi_analog::PowerTransferTable;
use neurofi_core::sweep::{execute_cell, mean_baseline_accuracy, run_indexed};
use neurofi_core::{BaselineCache, Parallelism};

use crate::campaign::{NamedCampaign, SetupSpec};
use crate::chaos::SplitMix64;
use crate::transport::{Connection, TcpConnection};
use crate::wire::{Message, PROTOCOL_VERSION};
use crate::{DistError, RetryPolicy};

/// Default acknowledgement-window size (cells per unacknowledged
/// `Results` frame).
pub const DEFAULT_ACK_WINDOW: usize = 32;

/// How a worker connects and executes.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Coordinator address (`host:port`).
    pub connect: String,
    /// Cell-level parallelism on this node (the in-process pool). The
    /// pool width is reported in the `Hello` and drives the
    /// coordinator's capacity-aware batch sizing.
    pub parallelism: Parallelism,
    /// Stop after executing this many cells and disconnect without
    /// ceremony — deliberate preemption (spot instances, tests of the
    /// coordinator's requeue path). `None` runs to completion.
    pub max_cells: Option<usize>,
    /// Hard cap on cells requested per batch. `None` (the default) lets
    /// the coordinator size batches from the reported thread width.
    pub batch: Option<usize>,
    /// Cells per acknowledgement window when streaming results (0 is
    /// treated as 1).
    pub ack_window: usize,
    /// Socket timeout for coordinator replies (scheduling and ack
    /// replies are immediate — the coordinator heartbeats empty batches
    /// while work is in flight elsewhere — so this guards against a
    /// dead peer, not against slow cells).
    pub io_timeout: Duration,
    /// Reconnect policy for lost sessions and failed dials. The count
    /// bounds *consecutive* failures: a completed handshake resets it.
    pub retry: RetryPolicy,
}

impl WorkerConfig {
    /// A config with the defaults (auto parallelism, coordinator-sized
    /// batches, no cell budget, default reconnect backoff).
    pub fn new(connect: impl Into<String>) -> WorkerConfig {
        WorkerConfig {
            connect: connect.into(),
            parallelism: Parallelism::Auto,
            max_cells: None,
            batch: None,
            ack_window: DEFAULT_ACK_WINDOW,
            io_timeout: Duration::from_secs(60),
            retry: RetryPolicy::default(),
        }
    }
}

/// What one worker session accomplished.
#[derive(Debug, Clone, Copy)]
pub struct WorkerSummary {
    /// Cells this worker measured and reported.
    pub cells_executed: usize,
    /// True when the coordinator ended the session with `Finished`
    /// (false when the worker hit its `max_cells` budget and left).
    pub finished: bool,
}

/// Per-campaign execution state on the worker: which shared cache the
/// campaign resolves to, its transfer table, and the lazily derived mean
/// baseline (computed on the campaign's first assigned batch; a cache
/// hit when another campaign over the same setup already trained the
/// seeds).
struct CampaignRuntime {
    name: String,
    digest: u64,
    seeds: Vec<u64>,
    cache: usize,
    transfer: Option<PowerTransferTable>,
    baseline_accuracy: Option<f64>,
}

/// Every campaign this worker knows, with baseline caches deduplicated
/// by [`SetupSpec`] equality so campaigns over the same experiment
/// share per-seed baselines. Grows when the coordinator announces a
/// live-submitted campaign.
struct WorkerRuntimes {
    parallelism: Parallelism,
    setups: Vec<SetupSpec>,
    caches: Vec<BaselineCache>,
    campaigns: Vec<CampaignRuntime>,
}

impl WorkerRuntimes {
    fn new(campaigns: &[NamedCampaign], parallelism: Parallelism) -> Result<Self, DistError> {
        let mut runtimes = WorkerRuntimes {
            parallelism,
            setups: Vec::new(),
            caches: Vec::new(),
            campaigns: Vec::new(),
        };
        for campaign in campaigns {
            runtimes.add(campaign)?;
        }
        Ok(runtimes)
    }

    /// Registers one campaign, resolving it to an existing baseline
    /// cache when its setup matches one already built.
    fn add(&mut self, campaign: &NamedCampaign) -> Result<(), DistError> {
        campaign.spec.validate()?;
        let cache = match self.setups.iter().position(|s| *s == campaign.spec.setup) {
            Some(i) => i,
            None => {
                let setup = campaign
                    .spec
                    .materialize()
                    .with_parallelism(self.parallelism);
                self.setups.push(campaign.spec.setup.clone());
                self.caches.push(BaselineCache::new(&setup));
                self.caches.len() - 1
            }
        };
        self.campaigns.push(CampaignRuntime {
            name: campaign.name.clone(),
            digest: campaign.spec.digest(),
            seeds: campaign.spec.scenario.baseline_seeds().to_vec(),
            cache,
            transfer: campaign.spec.transfer_table()?,
            baseline_accuracy: None,
        });
        Ok(())
    }

    /// Whether slot `id` already holds exactly this campaign.
    fn matches(&self, id: usize, campaign: &NamedCampaign) -> bool {
        let known = &self.campaigns[id];
        known.name == campaign.name && known.digest == campaign.spec.digest()
    }

    /// Handles one [`Message::CampaignAnnounce`]. Announcements arrive
    /// in queue order, so the id is either the next unused one (new
    /// campaign) or an already-known slot — which is fine as long as it
    /// names the *same* campaign (a duplicated announce frame, or a
    /// re-handshake after reconnect, must be idempotent).
    fn announce(&mut self, id: u32, campaign: &NamedCampaign) -> Result<(), DistError> {
        let id = id as usize;
        if id < self.campaigns.len() {
            if self.matches(id, campaign) {
                return Ok(());
            }
            return Err(DistError::Protocol(format!(
                "coordinator announced campaign `{}` as id {id}, but this worker already \
                 holds `{}` there",
                campaign.name, self.campaigns[id].name
            )));
        }
        if id != self.campaigns.len() {
            return Err(DistError::Protocol(format!(
                "coordinator announced campaign `{}` as id {id}, expected {}",
                campaign.name,
                self.campaigns.len()
            )));
        }
        self.add(campaign)
    }

    /// Reconciles a re-handshake's campaign queue against what this
    /// worker already knows: every known id must still map to the same
    /// name and digest (otherwise the peer is a *different* coordinator
    /// and executing its cells against cached baselines would be
    /// corruption), and genuinely new campaigns are appended.
    fn reconcile(&mut self, campaigns: &[NamedCampaign]) -> Result<(), DistError> {
        if campaigns.len() < self.campaigns.len() {
            return Err(DistError::Protocol(format!(
                "re-handshake announced {} campaigns but this worker already knows {} — \
                 the coordinator is not the one this worker was serving",
                campaigns.len(),
                self.campaigns.len()
            )));
        }
        for (id, campaign) in campaigns.iter().enumerate() {
            if id < self.campaigns.len() {
                if !self.matches(id, campaign) {
                    return Err(DistError::Protocol(format!(
                        "re-handshake maps id {id} to campaign `{}` (digest {:#x}) but this \
                         worker knows `{}` (digest {:#x}) there",
                        campaign.name,
                        campaign.spec.digest(),
                        self.campaigns[id].name,
                        self.campaigns[id].digest,
                    )));
                }
            } else {
                self.add(campaign)?;
            }
        }
        Ok(())
    }

    /// The campaign's mean baseline accuracy, derived on first use (a
    /// pure cache hit when another campaign over the same setup already
    /// trained these seeds — the whole point of sharing the fleet).
    fn baseline(&mut self, id: usize) -> f64 {
        if let Some(b) = self.campaigns[id].baseline_accuracy {
            return b;
        }
        let cache = &self.caches[self.campaigns[id].cache];
        let b = mean_baseline_accuracy(cache, &self.campaigns[id].seeds);
        self.campaigns[id].baseline_accuracy = Some(b);
        b
    }
}

/// Receives the next protocol message, buffering any
/// [`Message::CampaignAnnounce`] pushed ahead of the actual reply (the
/// caller applies the buffer to its [`WorkerRuntimes`] before touching
/// a campaign id — the coordinator guarantees the announce precedes the
/// first reply referencing the id).
fn recv_reply<C: Connection>(
    conn: &mut C,
    pending: &mut Vec<(u32, NamedCampaign)>,
) -> Result<Message, DistError> {
    loop {
        match conn.recv()? {
            Message::CampaignAnnounce { id, campaign } => pending.push((id, campaign)),
            other => return Ok(other),
        }
    }
}

/// Registers every buffered announcement, in arrival order.
fn apply_announcements(
    runtimes: &mut WorkerRuntimes,
    pending: &mut Vec<(u32, NamedCampaign)>,
) -> Result<(), DistError> {
    for (id, campaign) in pending.drain(..) {
        runtimes.announce(id, &campaign)?;
    }
    Ok(())
}

/// How one session over one connection ended.
enum SessionEnd {
    /// The coordinator said [`Message::Finished`]: every campaign done.
    Finished,
    /// This worker's `max_cells` budget ran out (deliberate preemption).
    Budget,
    /// The link died or the conversation desynchronised (a dropped,
    /// duplicated, or truncated frame). Recoverable: drop the
    /// connection, redial, re-handshake — the coordinator requeues the
    /// unacked window and tolerates bit-identical re-delivery.
    Lost {
        /// Whether the handshake completed before the loss (resets the
        /// consecutive-failure count: the coordinator was alive).
        handshaken: bool,
        /// What went wrong (surfaced if the retry budget runs out).
        error: DistError,
    },
    /// Unrecoverable: the coordinator aborted, rejected the protocol
    /// version, or is demonstrably not the coordinator this worker was
    /// serving. Retrying would loop on the same answer.
    Fatal(DistError),
}

/// One session: handshake (or re-handshake), then pull/execute/stream
/// until the run ends, the budget runs out, or the link dies.
///
/// `runtimes_slot` and `executed` belong to the worker's whole life,
/// not the session — baseline caches survive reconnects (nothing is
/// retrained) and the cell budget counts across sessions.
fn worker_session<C: Connection>(
    mut conn: C,
    config: &WorkerConfig,
    runtimes_slot: &mut Option<WorkerRuntimes>,
    executed: &mut usize,
) -> SessionEnd {
    let lost = |handshaken: bool, error: DistError| SessionEnd::Lost { handshaken, error };
    let desync = |handshaken: bool, context: &str, got: &Message| SessionEnd::Lost {
        handshaken,
        error: DistError::Protocol(format!(
            "session desynchronised: expected {context}, got {got:?}"
        )),
    };

    conn.set_recv_timeout(Some(config.io_timeout));
    let pool_width = config.parallelism.worker_count();
    if let Err(e) = conn.send(&Message::Hello {
        protocol: PROTOCOL_VERSION,
        threads: pool_width as u32,
    }) {
        return lost(false, e);
    }

    let campaigns = match conn.recv() {
        Ok(Message::Campaigns { campaigns }) => campaigns,
        Ok(Message::Abort { reason }) => return SessionEnd::Fatal(DistError::Aborted(reason)),
        Ok(other) => return desync(false, "campaign-queue handshake", &other),
        Err(e) => return lost(false, e),
    };
    if campaigns.is_empty() {
        return SessionEnd::Fatal(DistError::Protocol(
            "coordinator announced an empty campaign queue".into(),
        ));
    }
    let runtimes = match runtimes_slot {
        None => match WorkerRuntimes::new(&campaigns, config.parallelism) {
            Ok(runtimes) => runtimes_slot.insert(runtimes),
            Err(e) => return SessionEnd::Fatal(e),
        },
        // Reconnect: the queue must still be the one this worker knows.
        Some(runtimes) => {
            if let Err(e) = runtimes.reconcile(&campaigns) {
                return SessionEnd::Fatal(e);
            }
            runtimes
        }
    };
    let mut pending: Vec<(u32, NamedCampaign)> = Vec::new();

    let batch_cap = config.batch.unwrap_or(u32::MAX as usize).max(1);
    let ack_window = config.ack_window.max(1);
    loop {
        let budget = match config.max_cells {
            Some(max) => {
                if *executed >= max {
                    // Preemption: vanish, exactly like a killed process.
                    return SessionEnd::Budget;
                }
                (max - *executed).min(batch_cap)
            }
            None => batch_cap,
        };
        if let Err(e) = conn.send(&Message::Request {
            max_cells: budget.min(u32::MAX as usize) as u32,
        }) {
            return lost(true, e);
        }

        let (campaign, jobs) = match recv_reply(&mut conn, &mut pending) {
            Ok(Message::Assign { campaign, jobs }) => (campaign, jobs),
            Ok(Message::Finished) => return SessionEnd::Finished,
            Ok(Message::Abort { reason }) => return SessionEnd::Fatal(DistError::Aborted(reason)),
            Ok(other) => return desync(true, "assignment", &other),
            Err(e) => return lost(true, e),
        };
        // Any campaign submitted since the last reply was announced
        // ahead of this Assign: register it before resolving the id. A
        // mismatched announcement sequence means frames were lost or
        // duplicated in flight — reconnecting re-learns the queue, and
        // a genuinely different coordinator is caught at re-handshake.
        if let Err(e) = apply_announcements(runtimes, &mut pending) {
            return lost(true, e);
        }
        if jobs.is_empty() {
            // Keep-alive: nothing pending right now (work is in flight on
            // other workers). Back off briefly and ask again.
            std::thread::sleep(Duration::from_millis(50));
            continue;
        }
        if campaign as usize >= runtimes.campaigns.len() {
            // An Assign referencing a campaign this worker never saw
            // announced: the announce frame was lost in flight. A
            // re-handshake re-learns the full queue.
            return lost(
                true,
                DistError::Protocol(format!(
                    "coordinator assigned cells for unknown campaign {campaign}"
                )),
            );
        }

        // First batch of this campaign: derive the mean baseline (a
        // cache hit when another campaign shares the setup).
        let baseline_accuracy = runtimes.baseline(campaign as usize);
        let runtime = &runtimes.campaigns[campaign as usize];
        let cache = &runtimes.caches[runtime.cache];

        // Execute and stream the batch in acknowledgement windows; each
        // window is journaled by the coordinator before it is acked.
        for window in jobs.chunks(ack_window) {
            let measured = run_indexed(window.len(), config.parallelism, |i| {
                execute_cell(
                    cache,
                    &runtime.seeds,
                    baseline_accuracy,
                    &window[i],
                    runtime.transfer.as_ref(),
                )
            });
            let mut results = Vec::with_capacity(window.len());
            for (job, outcome) in window.iter().zip(measured) {
                match outcome {
                    Ok(result) => results.push(result),
                    // A cell this node cannot execute: report it
                    // individually (it counts toward the cell's poison
                    // cap) and keep serving the rest of the batch.
                    Err(e) => {
                        if let Err(send_err) = conn.send(&Message::Failed {
                            campaign,
                            index: job.index as u64,
                            reason: e.to_string(),
                        }) {
                            return lost(true, send_err);
                        }
                    }
                }
            }
            if results.is_empty() {
                continue;
            }
            let sent = results.len();
            if let Err(e) = conn.send(&Message::Results {
                campaign,
                baseline_accuracy,
                results,
            }) {
                return lost(true, e);
            }
            match recv_reply(&mut conn, &mut pending) {
                Ok(Message::Ack {
                    campaign: acked_campaign,
                    received,
                }) => {
                    if acked_campaign != campaign || received as usize != sent {
                        // A stale ack from a duplicated frame: resync by
                        // reconnecting (the coordinator journals before
                        // acking, so nothing is lost either way).
                        return lost(
                            true,
                            DistError::Protocol(format!(
                                "acknowledgement mismatch: sent {sent} cells for campaign \
                                 {campaign}, ack covers {received} for campaign {acked_campaign}"
                            )),
                        );
                    }
                }
                Ok(Message::Abort { reason }) => {
                    return SessionEnd::Fatal(DistError::Aborted(reason))
                }
                Ok(other) => return desync(true, "window acknowledgement", &other),
                Err(e) => return lost(true, e),
            }
            *executed += sent;
        }
    }
}

/// Connects to a coordinator over TCP and works until every queued
/// campaign finishes, the cell budget runs out, or the coordinator
/// aborts — reconnecting through link losses per the config's
/// [`RetryPolicy`]. A worker started before its coordinator binds the
/// port keeps dialling until the retry budget runs out.
///
/// # Errors
/// See [`run_worker_reconnecting`].
pub fn run_worker(config: &WorkerConfig) -> Result<WorkerSummary, DistError> {
    run_worker_reconnecting(
        || {
            let stream = TcpStream::connect(&config.connect)?;
            Ok(TcpConnection::new(stream))
        },
        config,
    )
}

/// Works an already-established [`Connection`] for exactly one session —
/// no reconnection. [`run_worker`] wraps the same session logic in the
/// retry loop; deterministic single-session tests call this directly.
///
/// # Errors
/// Propagates link and protocol failures, and surfaces a coordinator
/// [`Message::Abort`] as [`DistError::Aborted`]. A cell that fails
/// execution is reported to the coordinator ([`Message::Failed`]) and
/// does *not* end the session.
pub fn run_worker_on<C: Connection>(
    conn: C,
    config: &WorkerConfig,
) -> Result<WorkerSummary, DistError> {
    let mut runtimes = None;
    let mut executed = 0usize;
    match worker_session(conn, config, &mut runtimes, &mut executed) {
        SessionEnd::Finished => Ok(WorkerSummary {
            cells_executed: executed,
            finished: true,
        }),
        SessionEnd::Budget => Ok(WorkerSummary {
            cells_executed: executed,
            finished: false,
        }),
        SessionEnd::Lost { error, .. } | SessionEnd::Fatal(error) => Err(error),
    }
}

/// The worker's whole life as a loop of sessions over connections
/// produced by `connect`: dial, handshake, pull and execute until the
/// link dies, then back off (capped exponential with seeded jitter),
/// redial, re-handshake, resume. Baseline caches and the cell budget
/// persist across sessions, so a reconnect retrains nothing and
/// recomputes nothing that was acknowledged.
///
/// Only *consecutive* failures count against `retry.max_retries`; any
/// completed handshake resets the count, so a long-lived worker rides
/// through unlimited separated link flaps.
///
/// # Errors
/// Returns the last error once the retry budget is exhausted, and
/// immediately on fatal conditions (coordinator [`Message::Abort`],
/// protocol-version rejection, or a re-handshake proving the peer is a
/// different coordinator).
pub fn run_worker_reconnecting<C, F>(
    mut connect: F,
    config: &WorkerConfig,
) -> Result<WorkerSummary, DistError>
where
    C: Connection,
    F: FnMut() -> Result<C, DistError>,
{
    let mut rng = SplitMix64::new(config.retry.seed);
    let mut runtimes: Option<WorkerRuntimes> = None;
    let mut executed = 0usize;
    let mut consecutive_failures = 0u32;
    loop {
        let end = match connect() {
            Ok(conn) => worker_session(conn, config, &mut runtimes, &mut executed),
            Err(error) => SessionEnd::Lost {
                handshaken: false,
                error,
            },
        };
        match end {
            SessionEnd::Finished => {
                return Ok(WorkerSummary {
                    cells_executed: executed,
                    finished: true,
                })
            }
            SessionEnd::Budget => {
                return Ok(WorkerSummary {
                    cells_executed: executed,
                    finished: false,
                })
            }
            SessionEnd::Fatal(error) => return Err(error),
            SessionEnd::Lost { handshaken, error } => {
                if handshaken {
                    consecutive_failures = 0;
                }
                if consecutive_failures >= config.retry.max_retries {
                    return Err(error);
                }
                std::thread::sleep(config.retry.delay(consecutive_failures, &mut rng));
                consecutive_failures += 1;
            }
        }
    }
}
