//! Length-prefixed framing and hand-rolled binary serialisation.
//!
//! The workspace builds offline, so there is no serde / bincode / tokio:
//! every value that crosses a socket is encoded by hand into a
//! big-endian byte buffer and shipped as one frame (`u32` length prefix
//! followed by the payload). Floats travel as IEEE-754 bit patterns,
//! which is what makes the distributed merge *bit*-identical to a
//! serial sweep rather than merely close.
//!
//! Decoding is defensive: frames larger than [`MAX_FRAME_LEN`] are
//! rejected before any allocation, truncated buffers fail with
//! [`WireError::Truncated`], and collection length prefixes are checked
//! against the bytes actually present so a hostile or corrupt header
//! cannot trigger an outsized allocation.

use std::io::{Read, Write};

use neurofi_analog::TransferPoint;
use neurofi_core::sweep::{CellAttack, CellJob, CellResult, SweepCell};
use neurofi_core::TargetLayer;

use crate::campaign::{
    CampaignSpec, NamedCampaign, SetupBase, SetupSpec, SweepKindSpec, SweepSpec,
};

/// Wire-protocol version; bumped on any incompatible encoding change.
///
/// v2: multi-campaign coordination. The handshake carries every queued
/// campaign ([`Message::Campaigns`]), `Assign`/`Results` frames are
/// campaign-tagged, result windows are acknowledged ([`Message::Ack`]),
/// and per-cell execution failures travel as [`Message::Failed`] instead
/// of aborting the whole connection.
///
/// v3: the control plane. A running coordinator accepts live campaign
/// submission ([`Message::Submit`] → [`Message::SubmitOk`]) and pushes
/// [`Message::CampaignAnnounce`] frames to connected workers before the
/// first reply that references the new campaign id. Campaign-queue
/// entries additionally carry their scheduling weight (the weighted
/// round-robin policy knob), which changes the `Campaigns` frame layout.
pub const PROTOCOL_VERSION: u32 = 3;

/// Upper bound on a single frame's payload (16 MiB). The largest real
/// message is an [`Message::Assign`] batch of cell jobs (~40 bytes per
/// job), so this is generous headroom, not a constraint.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Errors produced while encoding, framing, or decoding.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket/stream failed.
    Io(std::io::Error),
    /// The buffer ended before the value was complete.
    Truncated,
    /// A frame header announced a payload larger than [`MAX_FRAME_LEN`].
    Oversized(usize),
    /// A payload had bytes left over after the message was decoded.
    TrailingBytes(usize),
    /// An enum tag or field had no valid interpretation.
    Invalid(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o failed: {e}"),
            WireError::Truncated => write!(f, "frame truncated mid-value"),
            WireError::Oversized(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME_LEN}-byte cap")
            }
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            WireError::Invalid(msg) => write!(f, "invalid wire value: {msg}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e)
    }
}

/// Append-only big-endian encoder.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// A fresh, empty encoder.
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// The encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a big-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (bit-exact).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn string(&mut self, v: &str) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Appends a length prefix for a collection of `len` items.
    pub fn seq_len(&mut self, len: usize) {
        self.u32(len as u32);
    }
}

/// Cursor-based decoder over one frame's payload.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Decodes from `buf`, starting at its beginning.
    pub fn new(buf: &'a [u8]) -> Decoder<'a> {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless every byte was consumed.
    pub fn expect_end(&self) -> Result<(), WireError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(WireError::TrailingBytes(n)),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a big-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `usize` (rejecting values that overflow the platform).
    pub fn usize(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.u64()?)
            .map_err(|_| WireError::Invalid("usize overflows platform width".into()))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Invalid("string is not UTF-8".into()))
    }

    /// Reads a collection length prefix, verifying that at least
    /// `min_item_bytes * len` bytes are actually present — a corrupt
    /// length can therefore never provoke an outsized allocation.
    pub fn seq_len(&mut self, min_item_bytes: usize) -> Result<usize, WireError> {
        let len = self.u32()? as usize;
        if len.saturating_mul(min_item_bytes.max(1)) > self.remaining() {
            return Err(WireError::Truncated);
        }
        Ok(len)
    }
}

/// Writes `payload` as one length-prefixed frame.
///
/// # Errors
/// Rejects oversized payloads; propagates stream failures.
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(WireError::Oversized(payload.len()));
    }
    writer.write_all(&(payload.len() as u32).to_be_bytes())?;
    writer.write_all(payload)?;
    writer.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame. Oversized length prefixes are
/// rejected before the payload is allocated or read.
///
/// # Errors
/// Propagates stream failures (including truncation mid-frame, which
/// surfaces as [`WireError::Io`] with `UnexpectedEof`).
pub fn read_frame(reader: &mut impl Read) -> Result<Vec<u8>, WireError> {
    let mut header = [0u8; 4];
    reader.read_exact(&mut header)?;
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::Oversized(len));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    Ok(payload)
}

/// Everything coordinator and worker say to each other.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Worker → coordinator: introduce yourself.
    Hello {
        /// The worker's [`PROTOCOL_VERSION`].
        protocol: u32,
        /// Worker-pool threads the peer will run cells on. The
        /// coordinator sizes batches from this (capacity-aware
        /// scheduling), so it must reflect real execution width.
        threads: u32,
    },
    /// Coordinator → worker: every campaign queued on this coordinator.
    /// Campaign ids used by the other messages are indices into this
    /// list.
    Campaigns {
        /// The full, self-contained campaign descriptions, in queue
        /// order.
        campaigns: Vec<NamedCampaign>,
    },
    /// Worker → coordinator: give me up to `max_cells` jobs (from any
    /// campaign — the coordinator picks).
    Request {
        /// Batch-size cap for the next assignment (budget/CLI caps; the
        /// coordinator further sizes the batch by the worker's reported
        /// threads).
        max_cells: u32,
    },
    /// Coordinator → worker: a shard of jobs from one campaign (possibly
    /// empty, meaning "nothing available yet — ask again").
    Assign {
        /// Which campaign the jobs belong to.
        campaign: u32,
        /// The assigned cell jobs.
        jobs: Vec<CellJob>,
    },
    /// Worker → coordinator: one acknowledgement window of measured
    /// cells plus the worker's locally derived mean baseline accuracy
    /// for the campaign (the coordinator cross-checks the bits across
    /// workers to catch non-deterministic runners). The coordinator
    /// journals the cells and answers with [`Message::Ack`].
    Results {
        /// Which campaign the cells belong to.
        campaign: u32,
        /// The worker's mean fault-free baseline accuracy for this
        /// campaign.
        baseline_accuracy: f64,
        /// The measured cells.
        results: Vec<CellResult>,
    },
    /// Coordinator → worker: the preceding [`Message::Results`] window
    /// was journaled; the worker may drop it and stream the next.
    Ack {
        /// The campaign the acknowledged window belonged to.
        campaign: u32,
        /// How many cells were received in the window.
        received: u32,
    },
    /// Worker → coordinator: one cell failed to execute on this node
    /// (the rest of the batch is unaffected). Counts toward the cell's
    /// poison cap — unlike a worker death, which requeues for free.
    Failed {
        /// The campaign the failing cell belongs to.
        campaign: u32,
        /// The failing cell's slot index.
        index: u64,
        /// Why execution failed.
        reason: String,
    },
    /// Coordinator → worker: every campaign is complete; disconnect.
    Finished,
    /// Either direction: the run is being abandoned.
    Abort {
        /// Human-readable reason.
        reason: String,
    },
    /// Control client → coordinator: enqueue this campaign on the
    /// *running* coordinator (it is scheduled, journaled, and merged
    /// exactly as a bind-time campaign would be). Sent as the first
    /// frame of a control connection, in place of a worker `Hello`.
    Submit {
        /// The submitter's [`PROTOCOL_VERSION`].
        protocol: u32,
        /// The campaign to enqueue (name, scheduling weight, spec).
        campaign: NamedCampaign,
    },
    /// Coordinator → control client: the submitted campaign was
    /// validated, journal-bound, and enqueued under this campaign id.
    /// Rejections travel as [`Message::Abort`] with the reason.
    SubmitOk {
        /// The queue id the campaign was enqueued under.
        id: u32,
    },
    /// Coordinator → worker: a campaign was submitted after your
    /// handshake. Announcements are pushed before the first `Assign` or
    /// `Ack` that references the new id, so a worker always knows a
    /// campaign before it sees the id on the wire.
    CampaignAnnounce {
        /// The new campaign's queue id (always the next unused id —
        /// announcements arrive in queue order).
        id: u32,
        /// The full campaign description.
        campaign: NamedCampaign,
    },
}

const TAG_HELLO: u8 = 0;
const TAG_CAMPAIGNS: u8 = 1;
const TAG_REQUEST: u8 = 2;
const TAG_ASSIGN: u8 = 3;
const TAG_RESULTS: u8 = 4;
const TAG_FINISHED: u8 = 5;
const TAG_ABORT: u8 = 6;
const TAG_ACK: u8 = 7;
const TAG_FAILED: u8 = 8;
const TAG_SUBMIT: u8 = 9;
const TAG_SUBMIT_OK: u8 = 10;
const TAG_ANNOUNCE: u8 = 11;

fn encode_layer(enc: &mut Encoder, layer: Option<TargetLayer>) {
    enc.u8(match layer {
        None => 0,
        Some(TargetLayer::Excitatory) => 1,
        Some(TargetLayer::Inhibitory) => 2,
    });
}

fn decode_layer(dec: &mut Decoder<'_>) -> Result<Option<TargetLayer>, WireError> {
    match dec.u8()? {
        0 => Ok(None),
        1 => Ok(Some(TargetLayer::Excitatory)),
        2 => Ok(Some(TargetLayer::Inhibitory)),
        tag => Err(WireError::Invalid(format!("unknown layer tag {tag}"))),
    }
}

/// Encodes one [`CellJob`].
pub fn encode_cell_job(enc: &mut Encoder, job: &CellJob) {
    enc.usize(job.index);
    match job.attack {
        CellAttack::Threshold {
            layer,
            rel_change,
            fraction,
        } => {
            enc.u8(0);
            encode_layer(enc, layer);
            enc.f64(rel_change);
            enc.f64(fraction);
        }
        CellAttack::Theta { theta_change } => {
            enc.u8(1);
            enc.f64(theta_change);
        }
        CellAttack::Vdd { vdd } => {
            enc.u8(2);
            enc.f64(vdd);
        }
    }
}

/// Decodes one [`CellJob`].
///
/// # Errors
/// Fails on truncation or unknown attack tags.
pub fn decode_cell_job(dec: &mut Decoder<'_>) -> Result<CellJob, WireError> {
    let index = dec.usize()?;
    let attack = match dec.u8()? {
        0 => CellAttack::Threshold {
            layer: decode_layer(dec)?,
            rel_change: dec.f64()?,
            fraction: dec.f64()?,
        },
        1 => CellAttack::Theta {
            theta_change: dec.f64()?,
        },
        2 => CellAttack::Vdd { vdd: dec.f64()? },
        tag => return Err(WireError::Invalid(format!("unknown attack tag {tag}"))),
    };
    Ok(CellJob { index, attack })
}

/// Encodes one [`CellResult`].
pub fn encode_cell_result(enc: &mut Encoder, result: &CellResult) {
    enc.usize(result.index);
    enc.f64(result.cell.rel_change);
    enc.f64(result.cell.fraction);
    enc.f64(result.cell.accuracy);
    enc.f64(result.cell.relative_change_percent);
}

/// Decodes one [`CellResult`].
///
/// # Errors
/// Fails on truncation.
pub fn decode_cell_result(dec: &mut Decoder<'_>) -> Result<CellResult, WireError> {
    Ok(CellResult {
        index: dec.usize()?,
        cell: SweepCell {
            rel_change: dec.f64()?,
            fraction: dec.f64()?,
            accuracy: dec.f64()?,
            relative_change_percent: dec.f64()?,
        },
    })
}

fn encode_setup_spec(enc: &mut Encoder, spec: &SetupSpec) {
    enc.u8(match spec.base {
        SetupBase::Quick => 0,
        SetupBase::Paper => 1,
    });
    enc.u64(spec.seed);
    enc.usize(spec.n_train);
    enc.usize(spec.n_test);
    enc.f64(spec.sample_time_ms);
    match spec.assignment_window {
        None => enc.u8(0),
        Some(w) => {
            enc.u8(1);
            enc.usize(w);
        }
    }
}

fn decode_setup_spec(dec: &mut Decoder<'_>) -> Result<SetupSpec, WireError> {
    let base = match dec.u8()? {
        0 => SetupBase::Quick,
        1 => SetupBase::Paper,
        tag => return Err(WireError::Invalid(format!("unknown setup base tag {tag}"))),
    };
    let seed = dec.u64()?;
    let n_train = dec.usize()?;
    let n_test = dec.usize()?;
    let sample_time_ms = dec.f64()?;
    let assignment_window = match dec.u8()? {
        0 => None,
        1 => Some(dec.usize()?),
        tag => {
            return Err(WireError::Invalid(format!(
                "unknown option tag {tag} for assignment window"
            )))
        }
    };
    Ok(SetupSpec {
        base,
        seed,
        n_train,
        n_test,
        sample_time_ms,
        assignment_window,
    })
}

fn encode_f64_seq(enc: &mut Encoder, values: &[f64]) {
    enc.seq_len(values.len());
    for &v in values {
        enc.f64(v);
    }
}

fn decode_f64_seq(dec: &mut Decoder<'_>) -> Result<Vec<f64>, WireError> {
    let len = dec.seq_len(8)?;
    (0..len).map(|_| dec.f64()).collect()
}

fn encode_sweep_spec(enc: &mut Encoder, spec: &SweepSpec) {
    match &spec.kind {
        SweepKindSpec::Threshold { layer } => {
            enc.u8(0);
            encode_layer(enc, *layer);
        }
        SweepKindSpec::Theta => enc.u8(1),
        SweepKindSpec::Vdd { transfer } => {
            enc.u8(2);
            enc.seq_len(transfer.len());
            for point in transfer {
                enc.f64(point.vdd);
                enc.f64(point.drive_scale);
                enc.f64(point.ah_threshold_scale);
                enc.f64(point.if_threshold_scale);
            }
        }
    }
    encode_f64_seq(enc, &spec.values);
    encode_f64_seq(enc, &spec.fractions);
    enc.seq_len(spec.seeds.len());
    for &seed in &spec.seeds {
        enc.u64(seed);
    }
}

fn decode_sweep_spec(dec: &mut Decoder<'_>) -> Result<SweepSpec, WireError> {
    let kind = match dec.u8()? {
        0 => SweepKindSpec::Threshold {
            layer: decode_layer(dec)?,
        },
        1 => SweepKindSpec::Theta,
        2 => {
            let len = dec.seq_len(32)?;
            let transfer = (0..len)
                .map(|_| {
                    Ok(TransferPoint {
                        vdd: dec.f64()?,
                        drive_scale: dec.f64()?,
                        ah_threshold_scale: dec.f64()?,
                        if_threshold_scale: dec.f64()?,
                    })
                })
                .collect::<Result<Vec<_>, WireError>>()?;
            SweepKindSpec::Vdd { transfer }
        }
        tag => return Err(WireError::Invalid(format!("unknown sweep kind tag {tag}"))),
    };
    let values = decode_f64_seq(dec)?;
    let fractions = decode_f64_seq(dec)?;
    let n_seeds = dec.seq_len(8)?;
    let seeds = (0..n_seeds)
        .map(|_| dec.u64())
        .collect::<Result<Vec<_>, _>>()?;
    Ok(SweepSpec {
        kind,
        values,
        fractions,
        seeds,
    })
}

/// Encodes a full [`CampaignSpec`] (also the byte stream its digest is
/// computed over).
pub fn encode_campaign_spec(enc: &mut Encoder, spec: &CampaignSpec) {
    encode_setup_spec(enc, &spec.setup);
    encode_sweep_spec(enc, &spec.sweep);
}

/// Decodes a full [`CampaignSpec`].
///
/// # Errors
/// Fails on truncation or unknown tags.
pub fn decode_campaign_spec(dec: &mut Decoder<'_>) -> Result<CampaignSpec, WireError> {
    Ok(CampaignSpec {
        setup: decode_setup_spec(dec)?,
        sweep: decode_sweep_spec(dec)?,
    })
}

/// Encodes a [`NamedCampaign`] queue entry (name, scheduling weight,
/// spec) — the v3 layout shared by `Campaigns`, `Submit`, and
/// `CampaignAnnounce` frames.
pub fn encode_named_campaign(enc: &mut Encoder, campaign: &NamedCampaign) {
    enc.string(&campaign.name);
    enc.u32(campaign.weight);
    encode_campaign_spec(enc, &campaign.spec);
}

/// Decodes a [`NamedCampaign`] queue entry.
///
/// # Errors
/// Fails on truncation or unknown tags.
pub fn decode_named_campaign(dec: &mut Decoder<'_>) -> Result<NamedCampaign, WireError> {
    Ok(NamedCampaign {
        name: dec.string()?,
        weight: dec.u32()?,
        spec: decode_campaign_spec(dec)?,
    })
}

impl Message {
    /// Encodes the message into one frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        match self {
            Message::Hello { protocol, threads } => {
                enc.u8(TAG_HELLO);
                enc.u32(*protocol);
                enc.u32(*threads);
            }
            Message::Campaigns { campaigns } => {
                enc.u8(TAG_CAMPAIGNS);
                enc.seq_len(campaigns.len());
                for campaign in campaigns {
                    encode_named_campaign(&mut enc, campaign);
                }
            }
            Message::Request { max_cells } => {
                enc.u8(TAG_REQUEST);
                enc.u32(*max_cells);
            }
            Message::Assign { campaign, jobs } => {
                enc.u8(TAG_ASSIGN);
                enc.u32(*campaign);
                enc.seq_len(jobs.len());
                for job in jobs {
                    encode_cell_job(&mut enc, job);
                }
            }
            Message::Results {
                campaign,
                baseline_accuracy,
                results,
            } => {
                enc.u8(TAG_RESULTS);
                enc.u32(*campaign);
                enc.f64(*baseline_accuracy);
                enc.seq_len(results.len());
                for result in results {
                    encode_cell_result(&mut enc, result);
                }
            }
            Message::Ack { campaign, received } => {
                enc.u8(TAG_ACK);
                enc.u32(*campaign);
                enc.u32(*received);
            }
            Message::Failed {
                campaign,
                index,
                reason,
            } => {
                enc.u8(TAG_FAILED);
                enc.u32(*campaign);
                enc.u64(*index);
                enc.string(reason);
            }
            Message::Finished => enc.u8(TAG_FINISHED),
            Message::Abort { reason } => {
                enc.u8(TAG_ABORT);
                enc.string(reason);
            }
            Message::Submit { protocol, campaign } => {
                enc.u8(TAG_SUBMIT);
                enc.u32(*protocol);
                encode_named_campaign(&mut enc, campaign);
            }
            Message::SubmitOk { id } => {
                enc.u8(TAG_SUBMIT_OK);
                enc.u32(*id);
            }
            Message::CampaignAnnounce { id, campaign } => {
                enc.u8(TAG_ANNOUNCE);
                enc.u32(*id);
                encode_named_campaign(&mut enc, campaign);
            }
        }
        enc.finish()
    }

    /// Decodes one message from a complete frame payload, requiring that
    /// every byte is consumed.
    ///
    /// # Errors
    /// Fails on truncation, trailing bytes, or unknown tags.
    pub fn decode(payload: &[u8]) -> Result<Message, WireError> {
        let mut dec = Decoder::new(payload);
        let message = match dec.u8()? {
            TAG_HELLO => Message::Hello {
                protocol: dec.u32()?,
                threads: dec.u32()?,
            },
            TAG_CAMPAIGNS => {
                // Minimum entry: 4-byte name prefix + 4-byte weight + the
                // smallest spec (34-byte setup + ~14-byte sweep); 8 is a
                // safe floor.
                let len = dec.seq_len(8)?;
                let campaigns = (0..len)
                    .map(|_| decode_named_campaign(&mut dec))
                    .collect::<Result<Vec<_>, WireError>>()?;
                Message::Campaigns { campaigns }
            }
            TAG_REQUEST => Message::Request {
                max_cells: dec.u32()?,
            },
            TAG_ASSIGN => {
                let campaign = dec.u32()?;
                let len = dec.seq_len(9)?;
                let jobs = (0..len)
                    .map(|_| decode_cell_job(&mut dec))
                    .collect::<Result<Vec<_>, _>>()?;
                Message::Assign { campaign, jobs }
            }
            TAG_RESULTS => {
                let campaign = dec.u32()?;
                let baseline_accuracy = dec.f64()?;
                let len = dec.seq_len(40)?;
                let results = (0..len)
                    .map(|_| decode_cell_result(&mut dec))
                    .collect::<Result<Vec<_>, _>>()?;
                Message::Results {
                    campaign,
                    baseline_accuracy,
                    results,
                }
            }
            TAG_ACK => Message::Ack {
                campaign: dec.u32()?,
                received: dec.u32()?,
            },
            TAG_FAILED => Message::Failed {
                campaign: dec.u32()?,
                index: dec.u64()?,
                reason: dec.string()?,
            },
            TAG_FINISHED => Message::Finished,
            TAG_ABORT => Message::Abort {
                reason: dec.string()?,
            },
            TAG_SUBMIT => Message::Submit {
                protocol: dec.u32()?,
                campaign: decode_named_campaign(&mut dec)?,
            },
            TAG_SUBMIT_OK => Message::SubmitOk { id: dec.u32()? },
            TAG_ANNOUNCE => Message::CampaignAnnounce {
                id: dec.u32()?,
                campaign: decode_named_campaign(&mut dec)?,
            },
            tag => return Err(WireError::Invalid(format!("unknown message tag {tag}"))),
        };
        dec.expect_end()?;
        Ok(message)
    }

    /// Writes the message as one frame.
    ///
    /// # Errors
    /// Propagates framing and stream failures.
    pub fn write_to(&self, writer: &mut impl Write) -> Result<(), WireError> {
        write_frame(writer, &self.encode())
    }

    /// Reads and decodes one framed message.
    ///
    /// # Errors
    /// Propagates framing, stream, and decoding failures.
    pub fn read_from(reader: &mut impl Read) -> Result<Message, WireError> {
        Message::decode(&read_frame(reader)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample_job() -> CellJob {
        CellJob {
            index: 5,
            attack: CellAttack::Threshold {
                layer: Some(TargetLayer::Inhibitory),
                rel_change: -0.2,
                fraction: 0.75,
            },
        }
    }

    #[test]
    fn messages_round_trip() {
        let tiny = crate::campaign::named_campaign("tiny").unwrap();
        let theta = crate::campaign::named_campaign("tiny-theta").unwrap();
        let messages = vec![
            Message::Hello {
                protocol: PROTOCOL_VERSION,
                threads: 4,
            },
            Message::Campaigns {
                campaigns: vec![
                    NamedCampaign::new("tiny", tiny),
                    NamedCampaign::new("tiny-theta", theta).with_weight(4),
                ],
            },
            Message::Request { max_cells: 3 },
            Message::Assign {
                campaign: 1,
                jobs: vec![
                    sample_job(),
                    CellJob {
                        index: 0,
                        attack: CellAttack::Theta { theta_change: 0.1 },
                    },
                    CellJob {
                        index: 1,
                        attack: CellAttack::Vdd { vdd: 0.8 },
                    },
                ],
            },
            Message::Results {
                campaign: 0,
                baseline_accuracy: 0.55,
                results: vec![CellResult {
                    index: 5,
                    cell: SweepCell {
                        rel_change: -0.2,
                        fraction: 0.75,
                        accuracy: 0.31,
                        relative_change_percent: -43.6,
                    },
                }],
            },
            Message::Ack {
                campaign: 0,
                received: 1,
            },
            Message::Failed {
                campaign: 1,
                index: 3,
                reason: "solver diverged".into(),
            },
            Message::Finished,
            Message::Abort {
                reason: "testing".into(),
            },
            Message::Submit {
                protocol: PROTOCOL_VERSION,
                campaign: NamedCampaign::new(
                    "late",
                    crate::campaign::named_campaign("tiny-theta").unwrap(),
                )
                .with_weight(3),
            },
            Message::SubmitOk { id: 2 },
            Message::CampaignAnnounce {
                id: 2,
                campaign: NamedCampaign::new(
                    "late",
                    crate::campaign::named_campaign("tiny-theta").unwrap(),
                )
                .with_weight(3),
            },
        ];
        for message in messages {
            let decoded = Message::decode(&message.encode()).unwrap();
            assert_eq!(decoded, message);
        }
    }

    #[test]
    fn frames_round_trip_over_a_stream() {
        let message = Message::Request { max_cells: 9 };
        let mut buf = Vec::new();
        message.write_to(&mut buf).unwrap();
        let mut cursor = Cursor::new(buf);
        assert_eq!(Message::read_from(&mut cursor).unwrap(), message);
    }

    #[test]
    fn oversized_frame_header_is_rejected_before_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(u32::MAX).to_be_bytes());
        bytes.extend_from_slice(&[0u8; 8]);
        let mut cursor = Cursor::new(bytes);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::Oversized(_))
        ));
    }

    #[test]
    fn truncated_frames_and_payloads_fail() {
        let message = Message::Assign {
            campaign: 0,
            jobs: vec![sample_job()],
        };
        let mut framed = Vec::new();
        message.write_to(&mut framed).unwrap();
        // Cut the frame mid-payload: the stream read must fail.
        let mut cursor = Cursor::new(framed[..framed.len() - 3].to_vec());
        assert!(Message::read_from(&mut cursor).is_err());
        // Cut the decoded payload: decoding must fail, not panic.
        let payload = message.encode();
        for cut in 0..payload.len() {
            assert!(Message::decode(&payload[..cut]).is_err());
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = Message::Finished.encode();
        payload.push(0);
        assert!(matches!(
            Message::decode(&payload),
            Err(WireError::TrailingBytes(1))
        ));
    }

    #[test]
    fn hostile_sequence_lengths_cannot_allocate() {
        // An Assign frame claiming 2^32-1 jobs but carrying none: the
        // length check must reject it as truncated instead of reserving.
        let mut enc = Encoder::new();
        enc.u8(3); // TAG_ASSIGN
        enc.u32(0); // campaign id
        enc.u32(u32::MAX);
        assert!(matches!(
            Message::decode(&enc.finish()),
            Err(WireError::Truncated)
        ));
    }
}
