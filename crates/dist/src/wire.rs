//! Length-prefixed framing and hand-rolled binary serialisation.
//!
//! The workspace builds offline, so there is no serde / bincode / tokio:
//! every value that crosses a socket is encoded by hand into a
//! big-endian byte buffer and shipped as one frame (`u32` length prefix
//! followed by the payload). Floats travel as IEEE-754 bit patterns,
//! which is what makes the distributed merge *bit*-identical to a
//! serial sweep rather than merely close.
//!
//! Decoding is defensive: frames larger than [`MAX_FRAME_LEN`] are
//! rejected before any allocation, truncated buffers fail with
//! [`WireError::Truncated`], and collection length prefixes are checked
//! against the bytes actually present so a hostile or corrupt header
//! cannot trigger an outsized allocation.

use std::io::{Read, Write};

use neurofi_analog::TransferPoint;
use neurofi_core::scenario::{
    AttackFamily, Axis, AxisKind, AxisValues, DefenseSel, DetectorSel, LayerSel, ScenarioSpec,
};
use neurofi_core::sweep::{CellAttack, CellJob, CellResult, SweepCell};

use crate::campaign::{CampaignSpec, NamedCampaign, SetupBase, SetupSpec};

/// Wire-protocol version; bumped on any incompatible encoding change.
///
/// v2: multi-campaign coordination. The handshake carries every queued
/// campaign ([`Message::Campaigns`]), `Assign`/`Results` frames are
/// campaign-tagged, result windows are acknowledged ([`Message::Ack`]),
/// and per-cell execution failures travel as [`Message::Failed`] instead
/// of aborting the whole connection.
///
/// v3: the control plane. A running coordinator accepts live campaign
/// submission ([`Message::Submit`] → [`Message::SubmitOk`]) and pushes
/// [`Message::CampaignAnnounce`] frames to connected workers before the
/// first reply that references the new campaign id. Campaign-queue
/// entries additionally carry their scheduling weight (the weighted
/// round-robin policy knob), which changes the `Campaigns` frame layout.
///
/// v4: declarative scenarios. Campaigns carry a full N-axis
/// [`ScenarioSpec`] (attack family, typed axes, seeds, transfer table)
/// instead of the three hardcoded grid shapes, so `repro submit` can
/// enqueue arbitrary cross products; cell jobs carry the resolved
/// composite [`CellAttack`] (optional threshold, theta, VDD, and seed
/// components) instead of a single-family coordinate pair.
///
/// v5: service mode. A status client opens a connection with
/// [`Message::Status`] (in place of a worker `Hello` or control
/// `Submit`) and the coordinator answers each poll with a
/// [`Message::Progress`] snapshot: per-campaign queued / running /
/// done / resumed / store-hit counters from the content-addressed
/// result store that now fronts cell assignment.
///
/// v6: countermeasure axes. Scenario specs may carry `defense` and
/// `detector` axes (§V hardenings and the §V-C dummy-neuron detector),
/// cell jobs unconditionally carry the resolved [`DefenseSel`] /
/// [`DetectorSel`] component tags, and [`CampaignProgress`] snapshots
/// gain `detected` / `missed` detection counters. Store digests are
/// *not* re-keyed for legacy cells: they hash through
/// [`encode_attack_digest`], which only appends the countermeasure
/// suffix when a cell actually carries one.
///
/// v7: the whole-layer netlist workload. Scenario specs may carry a
/// `neurons` axis (tag 9, integer values), and cell jobs carry the
/// resolved optional neuron-count component after the countermeasure
/// tags. Store digests follow the v6 pattern: legacy cells keep their
/// exact key, and a layer cell appends a `0x02` marker followed by its
/// neuron count ([`encode_attack_digest`]).
pub const PROTOCOL_VERSION: u32 = 7;

/// Upper bound on a single frame's payload (16 MiB). The largest real
/// message is an [`Message::Assign`] batch of cell jobs (~40 bytes per
/// job), so this is generous headroom, not a constraint.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Upper bound on a campaign name on the wire. Names key journals,
/// report rows, and the idempotent-resubmission check, so they are
/// never silently truncated: an overlong name is rejected at both ends
/// (the reader refuses to allocate it, [`validate_queue`] and the
/// submission path refuse to send it).
///
/// [`validate_queue`]: crate::coordinator
pub const MAX_NAME_LEN: usize = 256;

/// Upper bound on a free-text reason field (`Failed` execution reports,
/// `Abort` reasons — which can carry a poisoned campaign's whole
/// failure log). Unlike names, reasons are diagnostics: writers clamp
/// them to this cap at encode time (on a char boundary) rather than
/// failing, and readers refuse to allocate past it.
pub const MAX_REASON_LEN: usize = 64 * 1024;

/// Truncates `s` to at most `max` bytes on a `char` boundary.
pub fn clamp_str(s: &str, max: usize) -> &str {
    if s.len() <= max {
        return s;
    }
    let mut end = max;
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    // `end <= max < s.len()` and sits on a char boundary, so the slice
    // always exists; the fallback keeps the function panic-free anyway.
    s.get(..end).unwrap_or(s)
}

/// Errors produced while encoding, framing, or decoding.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket/stream failed.
    Io(std::io::Error),
    /// The buffer ended before the value was complete.
    Truncated,
    /// A frame header announced a payload larger than [`MAX_FRAME_LEN`].
    Oversized(usize),
    /// A payload had bytes left over after the message was decoded.
    TrailingBytes(usize),
    /// An enum tag or field had no valid interpretation.
    Invalid(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o failed: {e}"),
            WireError::Truncated => write!(f, "frame truncated mid-value"),
            WireError::Oversized(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME_LEN}-byte cap")
            }
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            WireError::Invalid(msg) => write!(f, "invalid wire value: {msg}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e)
    }
}

/// Append-only big-endian encoder.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// A fresh, empty encoder.
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// The encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a big-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (bit-exact).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn string(&mut self, v: &str) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Appends a length prefix for a collection of `len` items.
    pub fn seq_len(&mut self, len: usize) {
        self.u32(len as u32);
    }
}

/// Cursor-based decoder over one frame's payload.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Decodes from `buf`, starting at its beginning.
    pub fn new(buf: &'a [u8]) -> Decoder<'a> {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless every byte was consumed.
    pub fn expect_end(&self) -> Result<(), WireError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(WireError::TrailingBytes(n)),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let slice = self
            .buf
            .get(self.pos..self.pos.saturating_add(n))
            .ok_or(WireError::Truncated)?;
        self.pos += n;
        Ok(slice)
    }

    /// Reads exactly `N` bytes into a fixed array (no panic path: the
    /// length is checked by `take` before the copy).
    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        let mut out = [0u8; N];
        out.copy_from_slice(self.take(N)?);
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        let [byte] = self.take_array::<1>()?;
        Ok(byte)
    }

    /// Reads a big-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.take_array()?))
    }

    /// Reads a big-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.take_array()?))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `usize` (rejecting values that overflow the platform).
    pub fn usize(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.u64()?)
            .map_err(|_| WireError::Invalid("usize overflows platform width".into()))
    }

    /// Reads a length-prefixed UTF-8 string, capped at
    /// [`MAX_REASON_LEN`] (the most permissive field cap — prefer
    /// [`capped_string`](Decoder::capped_string) with the field's own
    /// cap).
    pub fn string(&mut self) -> Result<String, WireError> {
        self.capped_string("string", MAX_REASON_LEN)
    }

    /// Reads a length-prefixed UTF-8 string, rejecting any announced
    /// length over `max` *before* allocating — the shared allocation
    /// guard every variable-length text field decodes through. `what`
    /// names the field in the error.
    pub fn capped_string(&mut self, what: &str, max: usize) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        if len > max {
            return Err(WireError::Invalid(format!(
                "{what} of {len} bytes exceeds its {max}-byte cap"
            )));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Invalid(format!("{what} is not UTF-8")))
    }

    /// Reads a collection length prefix, verifying that at least
    /// `min_item_bytes * len` bytes are actually present — a corrupt
    /// length can therefore never provoke an outsized allocation.
    pub fn seq_len(&mut self, min_item_bytes: usize) -> Result<usize, WireError> {
        let len = self.u32()? as usize;
        if len.saturating_mul(min_item_bytes.max(1)) > self.remaining() {
            return Err(WireError::Truncated);
        }
        Ok(len)
    }
}

/// Writes `payload` as one length-prefixed frame.
///
/// # Errors
/// Rejects oversized payloads; propagates stream failures.
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(WireError::Oversized(payload.len()));
    }
    writer.write_all(&(payload.len() as u32).to_be_bytes())?;
    writer.write_all(payload)?;
    writer.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame. Oversized length prefixes are
/// rejected before the payload is allocated or read.
///
/// # Errors
/// Propagates stream failures (including truncation mid-frame, which
/// surfaces as [`WireError::Io`] with `UnexpectedEof`).
pub fn read_frame(reader: &mut impl Read) -> Result<Vec<u8>, WireError> {
    let mut header = [0u8; 4];
    reader.read_exact(&mut header)?;
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::Oversized(len));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    Ok(payload)
}

/// Everything coordinator and worker say to each other.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Worker → coordinator: introduce yourself.
    Hello {
        /// The worker's [`PROTOCOL_VERSION`].
        protocol: u32,
        /// Worker-pool threads the peer will run cells on. The
        /// coordinator sizes batches from this (capacity-aware
        /// scheduling), so it must reflect real execution width.
        threads: u32,
    },
    /// Coordinator → worker: every campaign queued on this coordinator.
    /// Campaign ids used by the other messages are indices into this
    /// list.
    Campaigns {
        /// The full, self-contained campaign descriptions, in queue
        /// order.
        campaigns: Vec<NamedCampaign>,
    },
    /// Worker → coordinator: give me up to `max_cells` jobs (from any
    /// campaign — the coordinator picks).
    Request {
        /// Batch-size cap for the next assignment (budget/CLI caps; the
        /// coordinator further sizes the batch by the worker's reported
        /// threads).
        max_cells: u32,
    },
    /// Coordinator → worker: a shard of jobs from one campaign (possibly
    /// empty, meaning "nothing available yet — ask again").
    Assign {
        /// Which campaign the jobs belong to.
        campaign: u32,
        /// The assigned cell jobs.
        jobs: Vec<CellJob>,
    },
    /// Worker → coordinator: one acknowledgement window of measured
    /// cells plus the worker's locally derived mean baseline accuracy
    /// for the campaign (the coordinator cross-checks the bits across
    /// workers to catch non-deterministic runners). The coordinator
    /// journals the cells and answers with [`Message::Ack`].
    Results {
        /// Which campaign the cells belong to.
        campaign: u32,
        /// The worker's mean fault-free baseline accuracy for this
        /// campaign.
        baseline_accuracy: f64,
        /// The measured cells.
        results: Vec<CellResult>,
    },
    /// Coordinator → worker: the preceding [`Message::Results`] window
    /// was journaled; the worker may drop it and stream the next.
    Ack {
        /// The campaign the acknowledged window belonged to.
        campaign: u32,
        /// How many cells were received in the window.
        received: u32,
    },
    /// Worker → coordinator: one cell failed to execute on this node
    /// (the rest of the batch is unaffected). Counts toward the cell's
    /// poison cap — unlike a worker death, which requeues for free.
    Failed {
        /// The campaign the failing cell belongs to.
        campaign: u32,
        /// The failing cell's slot index.
        index: u64,
        /// Why execution failed.
        reason: String,
    },
    /// Coordinator → worker: every campaign is complete; disconnect.
    Finished,
    /// Either direction: the run is being abandoned.
    Abort {
        /// Human-readable reason.
        reason: String,
    },
    /// Control client → coordinator: enqueue this campaign on the
    /// *running* coordinator (it is scheduled, journaled, and merged
    /// exactly as a bind-time campaign would be). Sent as the first
    /// frame of a control connection, in place of a worker `Hello`.
    Submit {
        /// The submitter's [`PROTOCOL_VERSION`].
        protocol: u32,
        /// The campaign to enqueue (name, scheduling weight, spec).
        campaign: NamedCampaign,
    },
    /// Coordinator → control client: the submitted campaign was
    /// validated, journal-bound, and enqueued under this campaign id.
    /// Rejections travel as [`Message::Abort`] with the reason.
    SubmitOk {
        /// The queue id the campaign was enqueued under.
        id: u32,
    },
    /// Coordinator → worker: a campaign was submitted after your
    /// handshake. Announcements are pushed before the first `Assign` or
    /// `Ack` that references the new id, so a worker always knows a
    /// campaign before it sees the id on the wire.
    CampaignAnnounce {
        /// The new campaign's queue id (always the next unused id —
        /// announcements arrive in queue order).
        id: u32,
        /// The full campaign description.
        campaign: NamedCampaign,
    },
    /// Status client → coordinator: send me a progress snapshot. Sent
    /// as the first frame of a status connection (in place of a worker
    /// `Hello` or control `Submit`), then repeated to poll; each one is
    /// answered with a [`Message::Progress`].
    Status {
        /// The client's [`PROTOCOL_VERSION`].
        protocol: u32,
    },
    /// Coordinator → status client: one point-in-time snapshot of every
    /// campaign on the coordinator, in queue order.
    Progress {
        /// Per-campaign progress counters.
        campaigns: Vec<CampaignProgress>,
    },
}

/// One campaign's progress counters inside a [`Message::Progress`]
/// snapshot. `total = queued + running + done`; `done` includes both
/// `resumed` (journal replay) and `store_hits` (content-addressed store
/// lookups that skipped worker execution entirely).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignProgress {
    /// The campaign's submitted name.
    pub name: String,
    /// Total cells in the campaign's plan.
    pub total: u64,
    /// Cells waiting for a worker.
    pub queued: u64,
    /// Cells currently assigned to workers.
    pub running: u64,
    /// Cells with a recorded result.
    pub done: u64,
    /// Cells recovered from the campaign's journal at enqueue time.
    pub resumed: u64,
    /// Cells satisfied by the result store without worker execution.
    pub store_hits: u64,
    /// Detector-armed cells whose dummy neuron trips the ≥10% rule
    /// (derived from the plan at enqueue time — detection is a pure
    /// function of the attack, not of execution).
    pub detected: u64,
    /// Detector-armed off-nominal cells the dummy neuron stays quiet on
    /// (false negatives).
    pub missed: u64,
    /// Whether the campaign is poisoned (failed and abandoned).
    pub failed: bool,
}

const TAG_HELLO: u8 = 0;
const TAG_CAMPAIGNS: u8 = 1;
const TAG_REQUEST: u8 = 2;
const TAG_ASSIGN: u8 = 3;
const TAG_RESULTS: u8 = 4;
const TAG_FINISHED: u8 = 5;
const TAG_ABORT: u8 = 6;
const TAG_ACK: u8 = 7;
const TAG_FAILED: u8 = 8;
const TAG_SUBMIT: u8 = 9;
const TAG_SUBMIT_OK: u8 = 10;
const TAG_ANNOUNCE: u8 = 11;
const TAG_STATUS: u8 = 12;
const TAG_PROGRESS: u8 = 13;

fn encode_campaign_progress(enc: &mut Encoder, progress: &CampaignProgress) {
    enc.string(clamp_str(&progress.name, MAX_NAME_LEN));
    enc.u64(progress.total);
    enc.u64(progress.queued);
    enc.u64(progress.running);
    enc.u64(progress.done);
    enc.u64(progress.resumed);
    enc.u64(progress.store_hits);
    enc.u64(progress.detected);
    enc.u64(progress.missed);
    enc.u8(progress.failed as u8);
}

fn decode_campaign_progress(dec: &mut Decoder<'_>) -> Result<CampaignProgress, WireError> {
    Ok(CampaignProgress {
        name: dec.capped_string("campaign name", MAX_NAME_LEN)?,
        total: dec.u64()?,
        queued: dec.u64()?,
        running: dec.u64()?,
        done: dec.u64()?,
        resumed: dec.u64()?,
        store_hits: dec.u64()?,
        detected: dec.u64()?,
        missed: dec.u64()?,
        failed: match dec.u8()? {
            0 => false,
            1 => true,
            tag => {
                return Err(WireError::Invalid(format!(
                    "unknown bool tag {tag} for campaign failure flag"
                )))
            }
        },
    })
}

fn encode_layer_sel(enc: &mut Encoder, sel: LayerSel) {
    enc.u8(match sel {
        LayerSel::Excitatory => 0,
        LayerSel::Inhibitory => 1,
        LayerSel::Both => 2,
    });
}

fn decode_layer_sel(dec: &mut Decoder<'_>) -> Result<LayerSel, WireError> {
    match dec.u8()? {
        0 => Ok(LayerSel::Excitatory),
        1 => Ok(LayerSel::Inhibitory),
        2 => Ok(LayerSel::Both),
        tag => Err(WireError::Invalid(format!("unknown layer tag {tag}"))),
    }
}

fn encode_defense_sel(enc: &mut Encoder, sel: DefenseSel) {
    enc.u8(match sel {
        DefenseSel::None => 0,
        DefenseSel::RobustDriver => 1,
        DefenseSel::BandgapThreshold => 2,
        DefenseSel::SizedNeuron => 3,
        DefenseSel::Comparator => 4,
    });
}

fn decode_defense_sel(dec: &mut Decoder<'_>) -> Result<DefenseSel, WireError> {
    match dec.u8()? {
        0 => Ok(DefenseSel::None),
        1 => Ok(DefenseSel::RobustDriver),
        2 => Ok(DefenseSel::BandgapThreshold),
        3 => Ok(DefenseSel::SizedNeuron),
        4 => Ok(DefenseSel::Comparator),
        tag => Err(WireError::Invalid(format!("unknown defense tag {tag}"))),
    }
}

fn encode_detector_sel(enc: &mut Encoder, sel: DetectorSel) {
    enc.u8(match sel {
        DetectorSel::None => 0,
        DetectorSel::DummyNeuron => 1,
    });
}

fn decode_detector_sel(dec: &mut Decoder<'_>) -> Result<DetectorSel, WireError> {
    match dec.u8()? {
        0 => Ok(DetectorSel::None),
        1 => Ok(DetectorSel::DummyNeuron),
        tag => Err(WireError::Invalid(format!("unknown detector tag {tag}"))),
    }
}

fn encode_family(enc: &mut Encoder, family: AttackFamily) {
    match family {
        AttackFamily::Threshold(sel) => {
            enc.u8(0);
            encode_layer_sel(enc, sel);
        }
        AttackFamily::Theta => enc.u8(1),
        AttackFamily::Vdd => enc.u8(2),
    }
}

fn decode_family(dec: &mut Decoder<'_>) -> Result<AttackFamily, WireError> {
    match dec.u8()? {
        0 => Ok(AttackFamily::Threshold(decode_layer_sel(dec)?)),
        1 => Ok(AttackFamily::Theta),
        2 => Ok(AttackFamily::Vdd),
        tag => Err(WireError::Invalid(format!("unknown family tag {tag}"))),
    }
}

fn encode_opt_f64(enc: &mut Encoder, value: Option<f64>) {
    match value {
        None => enc.u8(0),
        Some(v) => {
            enc.u8(1);
            enc.f64(v);
        }
    }
}

fn decode_opt_f64(dec: &mut Decoder<'_>) -> Result<Option<f64>, WireError> {
    match dec.u8()? {
        0 => Ok(None),
        1 => Ok(Some(dec.f64()?)),
        tag => Err(WireError::Invalid(format!("unknown option tag {tag}"))),
    }
}

/// Encodes one resolved composite [`CellAttack`] (family, then the
/// optional threshold / theta / VDD / seed components, then the v6
/// defense/detector tags, then the v7 neuron-count component). This is
/// the job payload inside [`encode_cell_job`]; content digests hash
/// through [`encode_attack_digest`] instead, whose legacy prefix is
/// frozen.
pub fn encode_attack(enc: &mut Encoder, attack: &CellAttack) {
    encode_family(enc, attack.family);
    encode_opt_f64(enc, attack.rel_change);
    enc.f64(attack.fraction);
    encode_opt_f64(enc, attack.theta_change);
    encode_opt_f64(enc, attack.vdd);
    match attack.seed {
        None => enc.u8(0),
        Some(seed) => {
            enc.u8(1);
            enc.u64(seed);
        }
    }
    encode_defense_sel(enc, attack.defense);
    encode_detector_sel(enc, attack.detector);
    match attack.neurons {
        None => enc.u8(0),
        Some(neurons) => {
            enc.u8(1);
            enc.u64(neurons);
        }
    }
}

/// Encodes the fault-plan half of a cell's content digest. The layout
/// up to the seed component is the frozen pre-v6 [`encode_attack`]
/// stream, so every legacy (undefended, undetected) cell keeps its
/// exact store key across the protocol bump — existing stores keep
/// deduping. Cells that carry a countermeasure append a `0x01` marker
/// followed by the defense and detector tags, and cells that carry a
/// neuron-count component append a `0x02` marker followed by the count
/// (after the `0x01` block when both are present); the markers cannot
/// collide with a legacy stream's continuation because a digest stream
/// follows the attack with a seeds `seq_len` whose leading byte is
/// `0x00` for any realistic seed count (< 2^24). The golden digest
/// vectors pin all three halves of this contract.
pub fn encode_attack_digest(enc: &mut Encoder, attack: &CellAttack) {
    encode_family(enc, attack.family);
    encode_opt_f64(enc, attack.rel_change);
    enc.f64(attack.fraction);
    encode_opt_f64(enc, attack.theta_change);
    encode_opt_f64(enc, attack.vdd);
    match attack.seed {
        None => enc.u8(0),
        Some(seed) => {
            enc.u8(1);
            enc.u64(seed);
        }
    }
    if attack.defense != DefenseSel::None || attack.detector != DetectorSel::None {
        enc.u8(1);
        encode_defense_sel(enc, attack.defense);
        encode_detector_sel(enc, attack.detector);
    }
    if let Some(neurons) = attack.neurons {
        enc.u8(2);
        enc.u64(neurons);
    }
}

/// Encodes one [`CellJob`]: the slot index plus the resolved composite
/// [`CellAttack`].
pub fn encode_cell_job(enc: &mut Encoder, job: &CellJob) {
    enc.usize(job.index);
    encode_attack(enc, &job.attack);
}

/// Decodes one [`CellJob`].
///
/// # Errors
/// Fails on truncation or unknown tags.
pub fn decode_cell_job(dec: &mut Decoder<'_>) -> Result<CellJob, WireError> {
    let index = dec.usize()?;
    let family = decode_family(dec)?;
    let rel_change = decode_opt_f64(dec)?;
    let fraction = dec.f64()?;
    let theta_change = decode_opt_f64(dec)?;
    let vdd = decode_opt_f64(dec)?;
    let seed = match dec.u8()? {
        0 => None,
        1 => Some(dec.u64()?),
        tag => return Err(WireError::Invalid(format!("unknown option tag {tag}"))),
    };
    let defense = decode_defense_sel(dec)?;
    let detector = decode_detector_sel(dec)?;
    let neurons = match dec.u8()? {
        0 => None,
        1 => Some(dec.u64()?),
        tag => return Err(WireError::Invalid(format!("unknown option tag {tag}"))),
    };
    Ok(CellJob {
        index,
        attack: CellAttack {
            family,
            rel_change,
            fraction,
            theta_change,
            vdd,
            seed,
            defense,
            detector,
            neurons,
        },
    })
}

/// Encodes one [`CellResult`].
pub fn encode_cell_result(enc: &mut Encoder, result: &CellResult) {
    enc.usize(result.index);
    enc.f64(result.cell.rel_change);
    enc.f64(result.cell.fraction);
    enc.f64(result.cell.accuracy);
    enc.f64(result.cell.relative_change_percent);
}

/// Decodes one [`CellResult`].
///
/// # Errors
/// Fails on truncation.
pub fn decode_cell_result(dec: &mut Decoder<'_>) -> Result<CellResult, WireError> {
    Ok(CellResult {
        index: dec.usize()?,
        cell: SweepCell {
            rel_change: dec.f64()?,
            fraction: dec.f64()?,
            accuracy: dec.f64()?,
            relative_change_percent: dec.f64()?,
        },
    })
}

/// Encodes a resolved [`SetupSpec`] — the experiment-setup half of a
/// cell's content digest as well as part of the campaign wire layout.
pub fn encode_setup_spec(enc: &mut Encoder, spec: &SetupSpec) {
    enc.u8(match spec.base {
        SetupBase::Quick => 0,
        SetupBase::Paper => 1,
    });
    enc.u64(spec.seed);
    enc.usize(spec.n_train);
    enc.usize(spec.n_test);
    enc.f64(spec.sample_time_ms);
    match spec.assignment_window {
        None => enc.u8(0),
        Some(w) => {
            enc.u8(1);
            enc.usize(w);
        }
    }
}

fn decode_setup_spec(dec: &mut Decoder<'_>) -> Result<SetupSpec, WireError> {
    let base = match dec.u8()? {
        0 => SetupBase::Quick,
        1 => SetupBase::Paper,
        tag => return Err(WireError::Invalid(format!("unknown setup base tag {tag}"))),
    };
    let seed = dec.u64()?;
    let n_train = dec.usize()?;
    let n_test = dec.usize()?;
    let sample_time_ms = dec.f64()?;
    let assignment_window = match dec.u8()? {
        0 => None,
        1 => Some(dec.usize()?),
        tag => {
            return Err(WireError::Invalid(format!(
                "unknown option tag {tag} for assignment window"
            )))
        }
    };
    Ok(SetupSpec {
        base,
        seed,
        n_train,
        n_test,
        sample_time_ms,
        assignment_window,
    })
}

fn axis_kind_tag(kind: AxisKind) -> u8 {
    match kind {
        AxisKind::RelChange => 0,
        AxisKind::Fraction => 1,
        AxisKind::ThetaChange => 2,
        AxisKind::Vdd => 3,
        AxisKind::Layer => 4,
        AxisKind::Polarity => 5,
        AxisKind::Seed => 6,
        AxisKind::Defense => 7,
        AxisKind::Detector => 8,
        AxisKind::Neurons => 9,
    }
}

fn decode_axis_kind(dec: &mut Decoder<'_>) -> Result<AxisKind, WireError> {
    match dec.u8()? {
        0 => Ok(AxisKind::RelChange),
        1 => Ok(AxisKind::Fraction),
        2 => Ok(AxisKind::ThetaChange),
        3 => Ok(AxisKind::Vdd),
        4 => Ok(AxisKind::Layer),
        5 => Ok(AxisKind::Polarity),
        6 => Ok(AxisKind::Seed),
        7 => Ok(AxisKind::Defense),
        8 => Ok(AxisKind::Detector),
        9 => Ok(AxisKind::Neurons),
        tag => Err(WireError::Invalid(format!("unknown axis tag {tag}"))),
    }
}

fn encode_axis(enc: &mut Encoder, axis: &Axis) {
    enc.u8(axis_kind_tag(axis.kind));
    match &axis.values {
        AxisValues::Real(values) => {
            enc.seq_len(values.len());
            for &v in values {
                enc.f64(v);
            }
        }
        AxisValues::Layer(values) => {
            enc.seq_len(values.len());
            for &sel in values {
                encode_layer_sel(enc, sel);
            }
        }
        AxisValues::Seed(values) => {
            enc.seq_len(values.len());
            for &seed in values {
                enc.u64(seed);
            }
        }
        AxisValues::Defense(values) => {
            enc.seq_len(values.len());
            for &sel in values {
                encode_defense_sel(enc, sel);
            }
        }
        AxisValues::Detector(values) => {
            enc.seq_len(values.len());
            for &sel in values {
                encode_detector_sel(enc, sel);
            }
        }
        AxisValues::Neurons(values) => {
            enc.seq_len(values.len());
            for &n in values {
                enc.u64(n);
            }
        }
    }
}

/// The value representation is implied by the axis kind, so a decoded
/// axis can never carry a kind/values mismatch.
fn decode_axis(dec: &mut Decoder<'_>) -> Result<Axis, WireError> {
    let kind = decode_axis_kind(dec)?;
    let values = match kind {
        AxisKind::Layer => {
            let len = dec.seq_len(1)?;
            AxisValues::Layer(
                (0..len)
                    .map(|_| decode_layer_sel(dec))
                    .collect::<Result<Vec<_>, _>>()?,
            )
        }
        AxisKind::Seed => {
            let len = dec.seq_len(8)?;
            AxisValues::Seed((0..len).map(|_| dec.u64()).collect::<Result<Vec<_>, _>>()?)
        }
        AxisKind::Neurons => {
            let len = dec.seq_len(8)?;
            AxisValues::Neurons((0..len).map(|_| dec.u64()).collect::<Result<Vec<_>, _>>()?)
        }
        AxisKind::Defense => {
            let len = dec.seq_len(1)?;
            AxisValues::Defense(
                (0..len)
                    .map(|_| decode_defense_sel(dec))
                    .collect::<Result<Vec<_>, _>>()?,
            )
        }
        AxisKind::Detector => {
            let len = dec.seq_len(1)?;
            AxisValues::Detector(
                (0..len)
                    .map(|_| decode_detector_sel(dec))
                    .collect::<Result<Vec<_>, _>>()?,
            )
        }
        _ => {
            let len = dec.seq_len(8)?;
            AxisValues::Real((0..len).map(|_| dec.f64()).collect::<Result<Vec<_>, _>>()?)
        }
    };
    Ok(Axis { kind, values })
}

/// Encodes a full N-axis [`ScenarioSpec`]: family, axes, seeds, and the
/// optional transfer table.
pub fn encode_scenario_spec(enc: &mut Encoder, spec: &ScenarioSpec) {
    encode_family(enc, spec.family);
    enc.seq_len(spec.axes.len());
    for axis in &spec.axes {
        encode_axis(enc, axis);
    }
    enc.seq_len(spec.seeds.len());
    for &seed in &spec.seeds {
        enc.u64(seed);
    }
    match &spec.transfer {
        None => enc.u8(0),
        Some(transfer) => {
            enc.u8(1);
            enc.seq_len(transfer.len());
            for point in transfer {
                enc.f64(point.vdd);
                enc.f64(point.drive_scale);
                enc.f64(point.ah_threshold_scale);
                enc.f64(point.if_threshold_scale);
            }
        }
    }
}

/// Decodes a full [`ScenarioSpec`].
///
/// # Errors
/// Fails on truncation or unknown tags.
pub fn decode_scenario_spec(dec: &mut Decoder<'_>) -> Result<ScenarioSpec, WireError> {
    let family = decode_family(dec)?;
    // Minimum axis: 1 kind byte + 4-byte empty value list.
    let n_axes = dec.seq_len(5)?;
    let axes = (0..n_axes)
        .map(|_| decode_axis(dec))
        .collect::<Result<Vec<_>, _>>()?;
    let n_seeds = dec.seq_len(8)?;
    let seeds = (0..n_seeds)
        .map(|_| dec.u64())
        .collect::<Result<Vec<_>, _>>()?;
    let transfer = match dec.u8()? {
        0 => None,
        1 => {
            let len = dec.seq_len(32)?;
            Some(
                (0..len)
                    .map(|_| {
                        Ok(TransferPoint {
                            vdd: dec.f64()?,
                            drive_scale: dec.f64()?,
                            ah_threshold_scale: dec.f64()?,
                            if_threshold_scale: dec.f64()?,
                        })
                    })
                    .collect::<Result<Vec<_>, WireError>>()?,
            )
        }
        tag => {
            return Err(WireError::Invalid(format!(
                "unknown option tag {tag} for transfer table"
            )))
        }
    };
    Ok(ScenarioSpec {
        family,
        axes,
        seeds,
        transfer,
    })
}

/// Encodes a full [`CampaignSpec`] (also the byte stream its digest is
/// computed over).
pub fn encode_campaign_spec(enc: &mut Encoder, spec: &CampaignSpec) {
    encode_setup_spec(enc, &spec.setup);
    encode_scenario_spec(enc, &spec.scenario);
}

/// Decodes a full [`CampaignSpec`].
///
/// # Errors
/// Fails on truncation or unknown tags.
pub fn decode_campaign_spec(dec: &mut Decoder<'_>) -> Result<CampaignSpec, WireError> {
    Ok(CampaignSpec {
        setup: decode_setup_spec(dec)?,
        scenario: decode_scenario_spec(dec)?,
    })
}

/// Encodes a [`NamedCampaign`] queue entry (name, scheduling weight,
/// spec) — the v3 layout shared by `Campaigns`, `Submit`, and
/// `CampaignAnnounce` frames.
pub fn encode_named_campaign(enc: &mut Encoder, campaign: &NamedCampaign) {
    enc.string(&campaign.name);
    enc.u32(campaign.weight);
    encode_campaign_spec(enc, &campaign.spec);
}

/// Decodes a [`NamedCampaign`] queue entry.
///
/// # Errors
/// Fails on truncation or unknown tags.
pub fn decode_named_campaign(dec: &mut Decoder<'_>) -> Result<NamedCampaign, WireError> {
    Ok(NamedCampaign {
        name: dec.capped_string("campaign name", MAX_NAME_LEN)?,
        weight: dec.u32()?,
        spec: decode_campaign_spec(dec)?,
    })
}

impl Message {
    /// Encodes the message into one frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        match self {
            Message::Hello { protocol, threads } => {
                enc.u8(TAG_HELLO);
                enc.u32(*protocol);
                enc.u32(*threads);
            }
            Message::Campaigns { campaigns } => {
                enc.u8(TAG_CAMPAIGNS);
                enc.seq_len(campaigns.len());
                for campaign in campaigns {
                    encode_named_campaign(&mut enc, campaign);
                }
            }
            Message::Request { max_cells } => {
                enc.u8(TAG_REQUEST);
                enc.u32(*max_cells);
            }
            Message::Assign { campaign, jobs } => {
                enc.u8(TAG_ASSIGN);
                enc.u32(*campaign);
                enc.seq_len(jobs.len());
                for job in jobs {
                    encode_cell_job(&mut enc, job);
                }
            }
            Message::Results {
                campaign,
                baseline_accuracy,
                results,
            } => {
                enc.u8(TAG_RESULTS);
                enc.u32(*campaign);
                enc.f64(*baseline_accuracy);
                enc.seq_len(results.len());
                for result in results {
                    encode_cell_result(&mut enc, result);
                }
            }
            Message::Ack { campaign, received } => {
                enc.u8(TAG_ACK);
                enc.u32(*campaign);
                enc.u32(*received);
            }
            Message::Failed {
                campaign,
                index,
                reason,
            } => {
                enc.u8(TAG_FAILED);
                enc.u32(*campaign);
                enc.u64(*index);
                enc.string(clamp_str(reason, MAX_REASON_LEN));
            }
            Message::Finished => enc.u8(TAG_FINISHED),
            Message::Abort { reason } => {
                enc.u8(TAG_ABORT);
                enc.string(clamp_str(reason, MAX_REASON_LEN));
            }
            Message::Submit { protocol, campaign } => {
                enc.u8(TAG_SUBMIT);
                enc.u32(*protocol);
                encode_named_campaign(&mut enc, campaign);
            }
            Message::SubmitOk { id } => {
                enc.u8(TAG_SUBMIT_OK);
                enc.u32(*id);
            }
            Message::CampaignAnnounce { id, campaign } => {
                enc.u8(TAG_ANNOUNCE);
                enc.u32(*id);
                encode_named_campaign(&mut enc, campaign);
            }
            Message::Status { protocol } => {
                enc.u8(TAG_STATUS);
                enc.u32(*protocol);
            }
            Message::Progress { campaigns } => {
                enc.u8(TAG_PROGRESS);
                enc.seq_len(campaigns.len());
                for progress in campaigns {
                    encode_campaign_progress(&mut enc, progress);
                }
            }
        }
        enc.finish()
    }

    /// Decodes one message from a complete frame payload, requiring that
    /// every byte is consumed.
    ///
    /// # Errors
    /// Fails on truncation, trailing bytes, or unknown tags.
    pub fn decode(payload: &[u8]) -> Result<Message, WireError> {
        let mut dec = Decoder::new(payload);
        let message = match dec.u8()? {
            TAG_HELLO => Message::Hello {
                protocol: dec.u32()?,
                threads: dec.u32()?,
            },
            TAG_CAMPAIGNS => {
                // Minimum entry: 4-byte name prefix + 4-byte weight + the
                // smallest spec (34-byte setup + a ~15-byte axis-less
                // scenario); 8 is a safe floor.
                let len = dec.seq_len(8)?;
                let campaigns = (0..len)
                    .map(|_| decode_named_campaign(&mut dec))
                    .collect::<Result<Vec<_>, WireError>>()?;
                Message::Campaigns { campaigns }
            }
            TAG_REQUEST => Message::Request {
                max_cells: dec.u32()?,
            },
            TAG_ASSIGN => {
                let campaign = dec.u32()?;
                // Minimum job: 8-byte index + 1-byte family + the three
                // 1-byte component tags + 8-byte fraction + 1-byte seed
                // tag + the defense and detector tag bytes; 18 is a
                // safe floor.
                let len = dec.seq_len(18)?;
                let jobs = (0..len)
                    .map(|_| decode_cell_job(&mut dec))
                    .collect::<Result<Vec<_>, _>>()?;
                Message::Assign { campaign, jobs }
            }
            TAG_RESULTS => {
                let campaign = dec.u32()?;
                let baseline_accuracy = dec.f64()?;
                let len = dec.seq_len(40)?;
                let results = (0..len)
                    .map(|_| decode_cell_result(&mut dec))
                    .collect::<Result<Vec<_>, _>>()?;
                Message::Results {
                    campaign,
                    baseline_accuracy,
                    results,
                }
            }
            TAG_ACK => Message::Ack {
                campaign: dec.u32()?,
                received: dec.u32()?,
            },
            TAG_FAILED => Message::Failed {
                campaign: dec.u32()?,
                index: dec.u64()?,
                reason: dec.capped_string("failure reason", MAX_REASON_LEN)?,
            },
            TAG_FINISHED => Message::Finished,
            TAG_ABORT => Message::Abort {
                reason: dec.capped_string("abort reason", MAX_REASON_LEN)?,
            },
            TAG_SUBMIT => Message::Submit {
                protocol: dec.u32()?,
                campaign: decode_named_campaign(&mut dec)?,
            },
            TAG_SUBMIT_OK => Message::SubmitOk { id: dec.u32()? },
            TAG_ANNOUNCE => Message::CampaignAnnounce {
                id: dec.u32()?,
                campaign: decode_named_campaign(&mut dec)?,
            },
            TAG_STATUS => Message::Status {
                protocol: dec.u32()?,
            },
            TAG_PROGRESS => {
                // Minimum entry: 4-byte name prefix + eight u64
                // counters + 1-byte failure flag.
                let len = dec.seq_len(69)?;
                let campaigns = (0..len)
                    .map(|_| decode_campaign_progress(&mut dec))
                    .collect::<Result<Vec<_>, WireError>>()?;
                Message::Progress { campaigns }
            }
            tag => return Err(WireError::Invalid(format!("unknown message tag {tag}"))),
        };
        dec.expect_end()?;
        Ok(message)
    }

    /// Writes the message as one frame.
    ///
    /// # Errors
    /// Propagates framing and stream failures.
    pub fn write_to(&self, writer: &mut impl Write) -> Result<(), WireError> {
        write_frame(writer, &self.encode())
    }

    /// Reads and decodes one framed message.
    ///
    /// # Errors
    /// Propagates framing, stream, and decoding failures.
    pub fn read_from(reader: &mut impl Read) -> Result<Message, WireError> {
        Message::decode(&read_frame(reader)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample_job() -> CellJob {
        CellJob {
            index: 5,
            attack: CellAttack::threshold(Some(neurofi_core::TargetLayer::Inhibitory), -0.2, 0.75),
        }
    }

    #[test]
    fn messages_round_trip() {
        let tiny = crate::campaign::named_campaign("tiny").unwrap();
        let theta = crate::campaign::named_campaign("tiny-theta").unwrap();
        let messages = vec![
            Message::Hello {
                protocol: PROTOCOL_VERSION,
                threads: 4,
            },
            Message::Campaigns {
                campaigns: vec![
                    NamedCampaign::new("tiny", tiny),
                    NamedCampaign::new("tiny-theta", theta).with_weight(4),
                ],
            },
            Message::Request { max_cells: 3 },
            Message::Assign {
                campaign: 1,
                jobs: vec![
                    sample_job(),
                    CellJob {
                        index: 0,
                        attack: CellAttack::theta(0.1),
                    },
                    CellJob {
                        index: 1,
                        attack: CellAttack::vdd(0.8),
                    },
                    // A resolved composite cell (threshold × vdd with a
                    // pinned seed) — the v4 payload the three hardcoded
                    // planners could never express.
                    CellJob {
                        index: 2,
                        attack: CellAttack {
                            vdd: Some(0.9),
                            seed: Some(7),
                            ..CellAttack::threshold(None, -0.1, 1.0)
                        },
                    },
                    // A v6 countermeasure-bearing cell: a defended VDD
                    // attack watched by the dummy-neuron detector.
                    CellJob {
                        index: 3,
                        attack: CellAttack {
                            defense: DefenseSel::BandgapThreshold,
                            detector: DetectorSel::DummyNeuron,
                            ..CellAttack::vdd(0.85)
                        },
                    },
                    // A v7 layer-netlist cell: the VDD attack simulated
                    // against the actual 32-neuron analog layer.
                    CellJob {
                        index: 4,
                        attack: CellAttack {
                            neurons: Some(32),
                            ..CellAttack::vdd(0.85)
                        },
                    },
                ],
            },
            Message::Results {
                campaign: 0,
                baseline_accuracy: 0.55,
                results: vec![CellResult {
                    index: 5,
                    cell: SweepCell {
                        rel_change: -0.2,
                        fraction: 0.75,
                        accuracy: 0.31,
                        relative_change_percent: -43.6,
                    },
                }],
            },
            Message::Ack {
                campaign: 0,
                received: 1,
            },
            Message::Failed {
                campaign: 1,
                index: 3,
                reason: "solver diverged".into(),
            },
            Message::Finished,
            Message::Abort {
                reason: "testing".into(),
            },
            Message::Submit {
                protocol: PROTOCOL_VERSION,
                campaign: NamedCampaign::new(
                    "late",
                    crate::campaign::named_campaign("tiny-theta").unwrap(),
                )
                .with_weight(3),
            },
            Message::SubmitOk { id: 2 },
            Message::CampaignAnnounce {
                id: 2,
                campaign: NamedCampaign::new(
                    "late",
                    crate::campaign::named_campaign("tiny-theta").unwrap(),
                )
                .with_weight(3),
            },
            Message::Status {
                protocol: PROTOCOL_VERSION,
            },
            Message::Progress {
                campaigns: vec![
                    CampaignProgress {
                        name: "tiny".into(),
                        total: 6,
                        queued: 1,
                        running: 2,
                        done: 3,
                        resumed: 1,
                        store_hits: 2,
                        detected: 2,
                        missed: 1,
                        failed: false,
                    },
                    CampaignProgress {
                        name: "poisoned".into(),
                        total: 4,
                        queued: 0,
                        running: 0,
                        done: 1,
                        resumed: 0,
                        store_hits: 0,
                        detected: 0,
                        missed: 0,
                        failed: true,
                    },
                ],
            },
            Message::Progress { campaigns: vec![] },
        ];
        for message in messages {
            let decoded = Message::decode(&message.encode()).unwrap();
            assert_eq!(decoded, message);
        }
    }

    #[test]
    fn attack_digest_stream_freezes_the_legacy_prefix() {
        // The v7 job payload appends three unconditional tag bytes
        // (defense, detector, neurons option); the digest stream must
        // instead be the frozen pre-v6 layout for legacy cells, with
        // the countermeasure and neuron suffixes only when a cell
        // carries them.
        let legacy = CellAttack {
            vdd: Some(0.9),
            seed: Some(7),
            ..CellAttack::threshold(None, -0.1, 1.0)
        };
        let mut job = Encoder::new();
        encode_attack(&mut job, &legacy);
        let job = job.finish();
        let mut digest = Encoder::new();
        encode_attack_digest(&mut digest, &legacy);
        let digest = digest.finish();
        assert_eq!(digest, job[..job.len() - 3].to_vec());

        let armed = CellAttack {
            defense: DefenseSel::Comparator,
            detector: DetectorSel::DummyNeuron,
            ..legacy
        };
        let mut armed_digest = Encoder::new();
        encode_attack_digest(&mut armed_digest, &armed);
        let armed_digest = armed_digest.finish();
        let mut expected = digest.clone();
        expected.extend_from_slice(&[1, 4, 1]);
        assert_eq!(armed_digest, expected);

        // A layer cell appends the 0x02 marker + count; combined with a
        // countermeasure the 0x01 block comes first.
        let layered = CellAttack {
            neurons: Some(32),
            ..legacy
        };
        let mut layer_digest = Encoder::new();
        encode_attack_digest(&mut layer_digest, &layered);
        let mut expected = digest.clone();
        expected.extend_from_slice(&[2, 0, 0, 0, 0, 0, 0, 0, 32]);
        assert_eq!(layer_digest.finish(), expected);

        let both = CellAttack {
            defense: DefenseSel::Comparator,
            detector: DetectorSel::DummyNeuron,
            neurons: Some(32),
            ..legacy
        };
        let mut both_digest = Encoder::new();
        encode_attack_digest(&mut both_digest, &both);
        let mut expected = digest;
        expected.extend_from_slice(&[1, 4, 1, 2, 0, 0, 0, 0, 0, 0, 0, 32]);
        assert_eq!(both_digest.finish(), expected);
    }

    #[test]
    fn frames_round_trip_over_a_stream() {
        let message = Message::Request { max_cells: 9 };
        let mut buf = Vec::new();
        message.write_to(&mut buf).unwrap();
        let mut cursor = Cursor::new(buf);
        assert_eq!(Message::read_from(&mut cursor).unwrap(), message);
    }

    #[test]
    fn oversized_frame_header_is_rejected_before_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(u32::MAX).to_be_bytes());
        bytes.extend_from_slice(&[0u8; 8]);
        let mut cursor = Cursor::new(bytes);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::Oversized(_))
        ));
    }

    #[test]
    fn truncated_frames_and_payloads_fail() {
        let message = Message::Assign {
            campaign: 0,
            jobs: vec![sample_job()],
        };
        let mut framed = Vec::new();
        message.write_to(&mut framed).unwrap();
        // Cut the frame mid-payload: the stream read must fail.
        let mut cursor = Cursor::new(framed[..framed.len() - 3].to_vec());
        assert!(Message::read_from(&mut cursor).is_err());
        // Cut the decoded payload: decoding must fail, not panic.
        let payload = message.encode();
        for cut in 0..payload.len() {
            assert!(Message::decode(&payload[..cut]).is_err());
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = Message::Finished.encode();
        payload.push(0);
        assert!(matches!(
            Message::decode(&payload),
            Err(WireError::TrailingBytes(1))
        ));
    }

    #[test]
    fn hostile_sequence_lengths_cannot_allocate() {
        // An Assign frame claiming 2^32-1 jobs but carrying none: the
        // length check must reject it as truncated instead of reserving.
        let mut enc = Encoder::new();
        enc.u8(3); // TAG_ASSIGN
        enc.u32(0); // campaign id
        enc.u32(u32::MAX);
        assert!(matches!(
            Message::decode(&enc.finish()),
            Err(WireError::Truncated)
        ));
    }
}
