//! Self-contained campaign descriptions.
//!
//! A [`CampaignSpec`] is everything a worker needs to reproduce the
//! coordinator's experiment bit-for-bit: a named experiment preset plus
//! the scale knobs that matter ([`SetupSpec`]), and the sweep grid with
//! its attack family ([`SweepSpec`]). Workers never receive closures or
//! tables by reference — the spec crosses the wire whole, and its
//! [`digest`](CampaignSpec::digest) binds checkpoint journals to the
//! exact campaign they were written for.
//!
//! Per-node execution details (worker threads, batch sizes) are
//! deliberately *not* part of the spec: cell values are pure functions
//! of `(setup, job)`, so scheduling never shows up in the results.

use neurofi_analog::{PowerTransferTable, TransferPoint};
use neurofi_core::attacks::ExperimentSetup;
use neurofi_core::sweep::{
    plan_theta_sweep, plan_threshold_sweep, plan_vdd_sweep, theta_sweep_cached,
    threshold_sweep_cached, vdd_sweep_cached, SweepPlan, SweepResult,
};
use neurofi_core::{BaselineCache, Error, Parallelism, SweepConfig, TargetLayer};

use crate::wire::{encode_campaign_spec, Encoder};

/// The experiment preset a [`SetupSpec`] starts from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetupBase {
    /// [`ExperimentSetup::quick`] — the reduced protocol.
    Quick,
    /// [`ExperimentSetup::paper`] — the paper's full protocol.
    Paper,
}

/// A serializable experiment description: preset plus the scale knobs
/// campaigns actually vary. [`materialize`](SetupSpec::materialize)
/// turns it back into an [`ExperimentSetup`] on any machine.
#[derive(Debug, Clone, PartialEq)]
pub struct SetupSpec {
    /// Base preset.
    pub base: SetupBase,
    /// Experiment seed (the per-cell seeds come from the sweep).
    pub seed: u64,
    /// Training-set size.
    pub n_train: usize,
    /// Held-out evaluation-set size.
    pub n_test: usize,
    /// Per-sample exposure, milliseconds.
    pub sample_time_ms: f64,
    /// Assignment window override.
    pub assignment_window: Option<usize>,
}

impl SetupSpec {
    fn capture(base: SetupBase, setup: &ExperimentSetup, seed: u64) -> SetupSpec {
        SetupSpec {
            base,
            seed,
            n_train: setup.n_train,
            n_test: setup.n_test,
            sample_time_ms: setup.network.sample_time_ms,
            assignment_window: setup.train_options.assignment_window,
        }
    }

    /// Captures [`ExperimentSetup::quick`] at `seed`.
    pub fn quick(seed: u64) -> SetupSpec {
        SetupSpec::capture(SetupBase::Quick, &ExperimentSetup::quick(seed), seed)
    }

    /// Captures [`ExperimentSetup::paper`] at `seed`.
    pub fn paper(seed: u64) -> SetupSpec {
        SetupSpec::capture(SetupBase::Paper, &ExperimentSetup::paper(seed), seed)
    }

    /// The `repro bench` scale: the quick preset with abbreviated
    /// training, so a full grid finishes in seconds per core.
    pub fn bench(seed: u64) -> SetupSpec {
        SetupSpec {
            n_train: 40,
            n_test: 20,
            sample_time_ms: 40.0,
            assignment_window: None,
            ..SetupSpec::quick(seed)
        }
    }

    /// Reconstructs the [`ExperimentSetup`] this spec describes.
    /// Parallelism is left at the default; every node picks its own.
    pub fn materialize(&self) -> ExperimentSetup {
        let mut setup = match self.base {
            SetupBase::Quick => ExperimentSetup::quick(self.seed),
            SetupBase::Paper => ExperimentSetup::paper(self.seed),
        };
        setup.n_train = self.n_train;
        setup.n_test = self.n_test;
        setup.network.sample_time_ms = self.sample_time_ms;
        setup.train_options.assignment_window = self.assignment_window;
        setup
    }
}

/// Which attack family a campaign sweeps.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepKindSpec {
    /// Attacks 2–4 over `values × fractions` (`layer = None` is
    /// Attack 4).
    Threshold {
        /// Target layer.
        layer: Option<TargetLayer>,
    },
    /// Attack 1 over theta changes in `values`.
    Theta,
    /// Attack 5 over supply voltages in `values`, using this transfer
    /// table (serialised point-by-point so heterogeneous workers share
    /// one characterisation).
    Vdd {
        /// VDD → parameter transfer points, strictly increasing in VDD.
        transfer: Vec<TransferPoint>,
    },
}

/// The sweep grid of a campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Attack family.
    pub kind: SweepKindSpec,
    /// Primary swept values: threshold changes, theta changes, or VDDs.
    pub values: Vec<f64>,
    /// Layer fractions (threshold sweeps only; empty otherwise).
    pub fractions: Vec<f64>,
    /// Seeds each cell averages over.
    pub seeds: Vec<u64>,
}

/// A complete, wire-serializable sweep campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// The experiment every cell trains and evaluates.
    pub setup: SetupSpec,
    /// The grid to shard.
    pub sweep: SweepSpec,
}

/// One entry in a coordinator's campaign queue: a spec plus the name it
/// is scheduled, journaled, and reported under. Names must be unique
/// within one coordinator (per-campaign journal paths are derived from
/// them).
#[derive(Debug, Clone, PartialEq)]
pub struct NamedCampaign {
    /// Queue-unique human-readable name (usually the grid name).
    pub name: String,
    /// Scheduling weight under the weighted-round-robin policy: a
    /// campaign with weight `w` is served `w` consecutive batches per
    /// rotation. Ignored by FIFO scheduling and by workers (cell values
    /// are scheduling-independent); not part of the campaign digest.
    pub weight: u32,
    /// The campaign itself.
    pub spec: CampaignSpec,
}

impl NamedCampaign {
    /// Names a campaign for queueing at the default weight 1.
    pub fn new(name: impl Into<String>, spec: CampaignSpec) -> NamedCampaign {
        NamedCampaign {
            name: name.into(),
            weight: 1,
            spec,
        }
    }

    /// Sets the weighted-round-robin scheduling weight (0 is treated as
    /// 1 by the scheduler).
    pub fn with_weight(mut self, weight: u32) -> NamedCampaign {
        self.weight = weight;
        self
    }
}

impl CampaignSpec {
    /// Rejects specs that cannot run: empty grids, empty seed lists, or
    /// an unusable VDD transfer table.
    ///
    /// # Errors
    /// Returns [`Error::Invalid`] with the reason.
    pub fn validate(&self) -> Result<(), Error> {
        if self.sweep.values.is_empty() {
            return Err(Error::Invalid("campaign sweeps no values".into()));
        }
        if self.sweep.seeds.is_empty() {
            return Err(Error::Invalid("campaign has no seeds".into()));
        }
        match &self.sweep.kind {
            SweepKindSpec::Threshold { .. } if self.sweep.fractions.is_empty() => {
                Err(Error::Invalid("threshold campaign has no fractions".into()))
            }
            SweepKindSpec::Vdd { transfer } => {
                if transfer.len() < 2 {
                    return Err(Error::Invalid(
                        "vdd campaign needs at least two transfer points".into(),
                    ));
                }
                if !transfer.windows(2).all(|w| w[0].vdd < w[1].vdd) {
                    return Err(Error::Invalid(
                        "vdd transfer points must be strictly increasing".into(),
                    ));
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    /// Reconstructs the experiment setup (see [`SetupSpec::materialize`]).
    pub fn materialize(&self) -> ExperimentSetup {
        self.setup.materialize()
    }

    /// Stage-1 enumeration of every cell in the campaign.
    pub fn plan(&self) -> SweepPlan {
        match &self.sweep.kind {
            SweepKindSpec::Threshold { layer } => plan_threshold_sweep(
                *layer,
                &SweepConfig {
                    rel_changes: self.sweep.values.clone(),
                    fractions: self.sweep.fractions.clone(),
                    seeds: self.sweep.seeds.clone(),
                },
            ),
            SweepKindSpec::Theta => plan_theta_sweep(&self.sweep.values, &self.sweep.seeds),
            SweepKindSpec::Vdd { .. } => plan_vdd_sweep(&self.sweep.values, &self.sweep.seeds),
        }
    }

    /// The transfer table VDD cells execute against (`None` for other
    /// families). Call [`validate`](CampaignSpec::validate) first; an
    /// invalid table fails here too.
    ///
    /// # Errors
    /// Returns [`Error::Invalid`] for unusable tables.
    pub fn transfer_table(&self) -> Result<Option<PowerTransferTable>, Error> {
        match &self.sweep.kind {
            SweepKindSpec::Vdd { transfer } => {
                self.validate()?;
                Ok(Some(PowerTransferTable::new(transfer.clone())))
            }
            _ => Ok(None),
        }
    }

    /// FNV-1a digest over the canonical encoding — the identity that
    /// binds checkpoint journals and worker handshakes to one campaign.
    pub fn digest(&self) -> u64 {
        let mut enc = Encoder::new();
        encode_campaign_spec(&mut enc, self);
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in enc.finish() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        hash
    }

    /// Runs the whole campaign serially in this process — the reference
    /// a distributed merge must match bit-for-bit.
    ///
    /// # Errors
    /// Propagates validation and attack failures.
    pub fn run_serial(&self) -> Result<SweepResult, Error> {
        self.validate()?;
        let setup = self.materialize().with_parallelism(Parallelism::Serial);
        let cache = BaselineCache::new(&setup);
        let config = SweepConfig {
            rel_changes: self.sweep.values.clone(),
            fractions: self.sweep.fractions.clone(),
            seeds: self.sweep.seeds.clone(),
        };
        match &self.sweep.kind {
            SweepKindSpec::Threshold { layer } => threshold_sweep_cached(&cache, *layer, &config),
            SweepKindSpec::Theta => {
                theta_sweep_cached(&cache, &self.sweep.values, &self.sweep.seeds)
            }
            SweepKindSpec::Vdd { transfer } => vdd_sweep_cached(
                &cache,
                &self.sweep.values,
                &PowerTransferTable::new(transfer.clone()),
                &self.sweep.seeds,
            ),
        }
    }
}

/// Looks up a named campaign grid for the `repro` CLI and CI:
///
/// * `tiny` — 2 × 3 inhibitory-threshold grid at bench scale (6 cells;
///   the CI smoke grid).
/// * `tiny-theta` — Attack 1 (theta corruption) line at bench scale;
///   paired with `tiny` in the multi-campaign CI smoke because it is a
///   *different attack kind* over the *same setup*, so queueing both
///   exercises cross-campaign baseline sharing on each worker.
/// * `fig8-reduced` — the paper's Fig. 8b grid *shape* (4 × 6) at bench
///   scale; the distributed-vs-serial acceptance grid.
/// * `fig8` — Fig. 8b at quick fidelity.
/// * `fig8-full` — Fig. 8b at the paper's full protocol.
pub fn named_campaign(name: &str) -> Option<CampaignSpec> {
    let il = SweepKindSpec::Threshold {
        layer: Some(TargetLayer::Inhibitory),
    };
    let paper_grid = SweepConfig::paper_grid();
    match name {
        // Fractions 0.75/0.9 are where the reduced-scale IL surface has
        // visible structure; a flat surface could not catch slot
        // mix-ups in the golden comparison.
        "tiny" => Some(CampaignSpec {
            setup: SetupSpec::bench(42),
            sweep: SweepSpec {
                kind: il,
                values: vec![-0.20, 0.20],
                fractions: vec![0.0, 0.75, 0.90],
                seeds: vec![42],
            },
        }),
        // Theta changes large enough that the reduced-scale accuracy
        // line has structure (a flat line could not catch slot mix-ups
        // in the golden comparison).
        "tiny-theta" => Some(CampaignSpec {
            setup: SetupSpec::bench(42),
            sweep: SweepSpec {
                kind: SweepKindSpec::Theta,
                values: vec![-0.50, -0.20, 0.20, 0.50],
                fractions: vec![],
                seeds: vec![42],
            },
        }),
        "fig8-reduced" => Some(CampaignSpec {
            setup: SetupSpec::bench(42),
            sweep: SweepSpec {
                kind: il,
                values: paper_grid.rel_changes,
                fractions: paper_grid.fractions,
                seeds: vec![42],
            },
        }),
        "fig8" => Some(CampaignSpec {
            setup: SetupSpec::quick(42),
            sweep: SweepSpec {
                kind: il,
                values: paper_grid.rel_changes,
                fractions: paper_grid.fractions,
                seeds: vec![42],
            },
        }),
        "fig8-full" => Some(CampaignSpec {
            setup: SetupSpec::paper(42),
            sweep: SweepSpec {
                kind: il,
                values: paper_grid.rel_changes,
                fractions: paper_grid.fractions,
                seeds: vec![42],
            },
        }),
        _ => None,
    }
}

/// The campaign names [`named_campaign`] accepts, for CLI help.
pub const NAMED_CAMPAIGNS: &[&str] = &["tiny", "tiny-theta", "fig8-reduced", "fig8", "fig8-full"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_campaigns_resolve_and_validate() {
        for name in NAMED_CAMPAIGNS {
            let spec = named_campaign(name).unwrap();
            spec.validate().unwrap();
            assert!(!spec.plan().jobs.is_empty(), "{name} enumerates no cells");
        }
        assert!(named_campaign("nope").is_none());
    }

    #[test]
    fn materialized_setup_round_trips_scale_knobs() {
        let spec = SetupSpec::bench(7);
        let setup = spec.materialize();
        assert_eq!(setup.n_train, 40);
        assert_eq!(setup.n_test, 20);
        assert_eq!(setup.network.sample_time_ms, 40.0);
        assert_eq!(setup.train_options.assignment_window, None);
        assert_eq!(setup.network_seed, 7);
        // Re-capturing the materialised setup is the identity.
        let recaptured = SetupSpec::capture(SetupBase::Quick, &setup, 7);
        assert_eq!(recaptured, spec);
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let a = named_campaign("tiny").unwrap();
        let b = named_campaign("tiny").unwrap();
        assert_eq!(a.digest(), b.digest());
        let mut c = named_campaign("tiny").unwrap();
        c.sweep.seeds = vec![43];
        assert_ne!(a.digest(), c.digest());
        let mut d = named_campaign("tiny").unwrap();
        d.setup.n_train += 1;
        assert_ne!(a.digest(), d.digest());
    }

    #[test]
    fn validation_catches_degenerate_campaigns() {
        let mut spec = named_campaign("tiny").unwrap();
        spec.sweep.values.clear();
        assert!(spec.validate().is_err());

        let mut spec = named_campaign("tiny").unwrap();
        spec.sweep.seeds.clear();
        assert!(spec.validate().is_err());

        let mut spec = named_campaign("tiny").unwrap();
        spec.sweep.fractions.clear();
        assert!(spec.validate().is_err());

        let mut spec = named_campaign("tiny").unwrap();
        spec.sweep.kind = SweepKindSpec::Vdd {
            transfer: vec![TransferPoint {
                vdd: 1.0,
                drive_scale: 1.0,
                ah_threshold_scale: 1.0,
                if_threshold_scale: 1.0,
            }],
        };
        assert!(spec.validate().is_err());
        assert!(spec.transfer_table().is_err());
    }

    #[test]
    fn vdd_campaign_builds_transfer_table() {
        let points = PowerTransferTable::paper_nominal().points().to_vec();
        let spec = CampaignSpec {
            setup: SetupSpec::bench(42),
            sweep: SweepSpec {
                kind: SweepKindSpec::Vdd {
                    transfer: points.clone(),
                },
                values: vec![0.8, 1.0],
                fractions: vec![],
                seeds: vec![42],
            },
        };
        spec.validate().unwrap();
        let table = spec.transfer_table().unwrap().unwrap();
        assert_eq!(table.points(), points.as_slice());
        assert_eq!(spec.plan().jobs.len(), 2);
    }
}
