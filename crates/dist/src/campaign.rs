//! Self-contained campaign descriptions.
//!
//! A [`CampaignSpec`] is everything a worker needs to reproduce the
//! coordinator's experiment bit-for-bit: a named experiment preset plus
//! the scale knobs that matter ([`SetupSpec`]), and a declarative
//! N-axis [`ScenarioSpec`] — the attack family, the typed axes, the
//! seeds, and (for VDD components) the transfer table. Workers never
//! receive closures or tables by reference — the spec crosses the wire
//! whole, and its [`digest`](CampaignSpec::digest) binds checkpoint
//! journals to the exact campaign they were written for.
//!
//! The catalog ([`named_campaign`]) is nothing but **named presets that
//! expand to specs**; `repro submit` can enqueue arbitrary grids the
//! catalog never heard of, in the same [`ScenarioSpec`] grammar
//! (`attack = …` / `axis rel_change = …` lines), via
//! [`parse_campaign_text`].
//!
//! Per-node execution details (worker threads, batch sizes) are
//! deliberately *not* part of the spec: cell values are pure functions
//! of `(setup, job)`, so scheduling never shows up in the results.

use neurofi_core::attacks::ExperimentSetup;
use neurofi_core::scenario::{parse_spec_line, spec_lines, ScenarioSpec, SpecLine};
use neurofi_core::sweep::{scenario_sweep_cached, SweepPlan, SweepResult};
use neurofi_core::{
    BaselineCache, Error, Parallelism, PowerTransferTable, SweepConfig, TargetLayer,
};

use neurofi_core::sweep::CellAttack;

use crate::wire::{encode_attack_digest, encode_campaign_spec, encode_setup_spec, Encoder};
use crate::DistError;

/// The experiment preset a [`SetupSpec`] starts from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetupBase {
    /// [`ExperimentSetup::quick`] — the reduced protocol.
    Quick,
    /// [`ExperimentSetup::paper`] — the paper's full protocol.
    Paper,
}

/// A serializable experiment description: preset plus the scale knobs
/// campaigns actually vary. [`materialize`](SetupSpec::materialize)
/// turns it back into an [`ExperimentSetup`] on any machine.
#[derive(Debug, Clone, PartialEq)]
pub struct SetupSpec {
    /// Base preset.
    pub base: SetupBase,
    /// Experiment seed (the per-cell seeds come from the sweep).
    pub seed: u64,
    /// Training-set size.
    pub n_train: usize,
    /// Held-out evaluation-set size.
    pub n_test: usize,
    /// Per-sample exposure, milliseconds.
    pub sample_time_ms: f64,
    /// Assignment window override.
    pub assignment_window: Option<usize>,
}

impl SetupSpec {
    fn capture(base: SetupBase, setup: &ExperimentSetup, seed: u64) -> SetupSpec {
        SetupSpec {
            base,
            seed,
            n_train: setup.n_train,
            n_test: setup.n_test,
            sample_time_ms: setup.network.sample_time_ms,
            assignment_window: setup.train_options.assignment_window,
        }
    }

    /// Captures [`ExperimentSetup::quick`] at `seed`.
    pub fn quick(seed: u64) -> SetupSpec {
        SetupSpec::capture(SetupBase::Quick, &ExperimentSetup::quick(seed), seed)
    }

    /// Captures [`ExperimentSetup::paper`] at `seed`.
    pub fn paper(seed: u64) -> SetupSpec {
        SetupSpec::capture(SetupBase::Paper, &ExperimentSetup::paper(seed), seed)
    }

    /// The `repro bench` scale: the quick preset with abbreviated
    /// training, so a full grid finishes in seconds per core.
    pub fn bench(seed: u64) -> SetupSpec {
        SetupSpec {
            n_train: 40,
            n_test: 20,
            sample_time_ms: 40.0,
            assignment_window: None,
            ..SetupSpec::quick(seed)
        }
    }

    /// Looks up a setup scale by its spec-file/CLI name (`bench`,
    /// `quick`, `paper`).
    pub fn named(name: &str, seed: u64) -> Option<SetupSpec> {
        match name {
            "bench" => Some(SetupSpec::bench(seed)),
            "quick" => Some(SetupSpec::quick(seed)),
            "paper" => Some(SetupSpec::paper(seed)),
            _ => None,
        }
    }

    /// Reconstructs the [`ExperimentSetup`] this spec describes.
    /// Parallelism is left at the default; every node picks its own.
    pub fn materialize(&self) -> ExperimentSetup {
        let mut setup = match self.base {
            SetupBase::Quick => ExperimentSetup::quick(self.seed),
            SetupBase::Paper => ExperimentSetup::paper(self.seed),
        };
        setup.n_train = self.n_train;
        setup.n_test = self.n_test;
        setup.network.sample_time_ms = self.sample_time_ms;
        setup.train_options.assignment_window = self.assignment_window;
        setup
    }
}

/// A complete, wire-serializable sweep campaign: the experiment plus
/// the declarative scenario it sweeps.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// The experiment every cell trains and evaluates.
    pub setup: SetupSpec,
    /// The N-axis scenario to shard (attack family, axes, seeds,
    /// transfer table).
    pub scenario: ScenarioSpec,
}

/// One entry in a coordinator's campaign queue: a spec plus the name it
/// is scheduled, journaled, and reported under. Names must be unique
/// within one coordinator (per-campaign journal paths are derived from
/// them).
#[derive(Debug, Clone, PartialEq)]
pub struct NamedCampaign {
    /// Queue-unique human-readable name (usually the grid name).
    pub name: String,
    /// Scheduling weight under the weighted-round-robin policy: a
    /// campaign with weight `w` is served `w` consecutive batches per
    /// rotation. Ignored by FIFO scheduling and by workers (cell values
    /// are scheduling-independent); not part of the campaign digest.
    pub weight: u32,
    /// The campaign itself.
    pub spec: CampaignSpec,
}

impl NamedCampaign {
    /// Names a campaign for queueing at the default weight 1.
    pub fn new(name: impl Into<String>, spec: CampaignSpec) -> NamedCampaign {
        NamedCampaign {
            name: name.into(),
            weight: 1,
            spec,
        }
    }

    /// Sets the weighted-round-robin scheduling weight (0 is treated as
    /// 1 by the scheduler).
    pub fn with_weight(mut self, weight: u32) -> NamedCampaign {
        self.weight = weight;
        self
    }
}

impl CampaignSpec {
    /// Rejects specs that cannot run (see
    /// [`ScenarioSpec::validate`]): empty or duplicate axes, missing
    /// primary axes, out-of-range values, missing seeds, an unusable
    /// VDD transfer table, or hostile sizes.
    ///
    /// # Errors
    /// Returns [`Error::Invalid`] with the reason.
    pub fn validate(&self) -> Result<(), Error> {
        self.scenario.validate()
    }

    /// Reconstructs the experiment setup (see [`SetupSpec::materialize`]).
    pub fn materialize(&self) -> ExperimentSetup {
        self.setup.materialize()
    }

    /// Stage-1 enumeration of every cell in the campaign through the
    /// generic scenario planner.
    pub fn plan(&self) -> SweepPlan {
        self.scenario.plan()
    }

    /// The transfer table VDD components execute against (`None` when
    /// the scenario has no `vdd` axis).
    ///
    /// # Errors
    /// Returns [`Error::Invalid`] for missing or unusable tables.
    pub fn transfer_table(&self) -> Result<Option<PowerTransferTable>, Error> {
        self.scenario.transfer_table()
    }

    /// FNV-1a digest over the canonical encoding — the identity that
    /// binds checkpoint journals and worker handshakes to one campaign.
    pub fn digest(&self) -> u64 {
        let mut enc = Encoder::new();
        encode_campaign_spec(&mut enc, self);
        fnv1a(&enc.finish())
    }

    /// Content digest of one resolved cell — the cross-campaign result
    /// store's cache key. It hashes exactly what the cell's measured
    /// value depends on, and nothing it doesn't:
    ///
    /// * the resolved [`SetupSpec`] (experiment preset + scale knobs);
    /// * the resolved composite [`CellAttack`] (the fault plan,
    ///   including any per-cell seed override);
    /// * the campaign's baseline seeds (they set both the per-cell mean
    ///   and the baseline accuracy that `relative_change_percent` is
    ///   computed against);
    /// * the transfer table, but only when the cell has a VDD component
    ///   (threshold/theta cells never read it, so two campaigns
    ///   differing only in table share their non-VDD cells);
    /// * the defense/detector components, but only when the cell
    ///   carries one ([`encode_attack_digest`] appends the suffix
    ///   conditionally, so every pre-v6 cell keeps its exact key and
    ///   existing stores keep deduping).
    ///
    /// Campaign *name*, scheduling weight, axis ordering, and grid shape
    /// are deliberately absent: overlapping grids from different
    /// submitters hash their shared cells identically. The encoding is
    /// pinned by the golden digest vectors — any drift here silently
    /// repoints cache keys, which the golden test turns into a loud
    /// failure.
    pub fn cell_digest(&self, attack: &CellAttack) -> u64 {
        let mut enc = Encoder::new();
        enc.u8(1); // domain tag: cell (vs baseline)
        encode_setup_spec(&mut enc, &self.setup);
        encode_attack_digest(&mut enc, attack);
        let seeds = self.scenario.baseline_seeds();
        enc.seq_len(seeds.len());
        for &seed in seeds {
            enc.u64(seed);
        }
        match (&self.scenario.transfer, attack.vdd) {
            (Some(transfer), Some(_)) => {
                enc.u8(1);
                enc.seq_len(transfer.len());
                for point in transfer {
                    enc.f64(point.vdd);
                    enc.f64(point.drive_scale);
                    enc.f64(point.ah_threshold_scale);
                    enc.f64(point.if_threshold_scale);
                }
            }
            _ => enc.u8(0),
        }
        fnv1a(&enc.finish())
    }

    /// Content digest of the campaign's fault-free baseline accuracy —
    /// the store key for the mean baseline shared by every cell of the
    /// grid. Depends only on the resolved setup and the baseline seeds
    /// (never on attacks or the transfer table).
    pub fn baseline_digest(&self) -> u64 {
        let mut enc = Encoder::new();
        enc.u8(0); // domain tag: baseline (vs cell)
        encode_setup_spec(&mut enc, &self.setup);
        let seeds = self.scenario.baseline_seeds();
        enc.seq_len(seeds.len());
        for &seed in seeds {
            enc.u64(seed);
        }
        fnv1a(&enc.finish())
    }

    /// Runs the whole campaign serially in this process — the reference
    /// a distributed merge must match bit-for-bit.
    ///
    /// # Errors
    /// Propagates validation and attack failures.
    pub fn run_serial(&self) -> Result<SweepResult, Error> {
        let setup = self.materialize().with_parallelism(Parallelism::Serial);
        scenario_sweep_cached(&BaselineCache::new(&setup), &self.scenario)
    }
}

/// FNV-1a over canonical wire bytes — the one hash every digest in the
/// control plane (campaign identity, cell keys, baseline keys) uses.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// What [`parse_campaign_text`] extracts from a campaign spec file: the
/// optional queue name and weight, plus the campaign itself.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedCampaign {
    /// The `name = …` line, when present (callers pick their own
    /// default otherwise).
    pub name: Option<String>,
    /// The `weight = …` line (default 1).
    pub weight: u32,
    /// The campaign: `setup` / `setup-seed` lines plus the scenario
    /// grammar.
    pub spec: CampaignSpec,
}

impl ParsedCampaign {
    /// Converts into a queue entry, naming it `fallback` when the file
    /// had no `name` line.
    pub fn into_named(self, fallback: &str) -> NamedCampaign {
        let weight = self.weight;
        NamedCampaign::new(self.name.unwrap_or_else(|| fallback.to_string()), self.spec)
            .with_weight(weight)
    }
}

/// Parses a campaign spec file: the [`ScenarioSpec`] grammar plus the
/// campaign-level keys `name = …`, `weight = …`, `setup = bench|quick|paper`
/// (default `bench`), and `setup-seed = N` (default 42).
///
/// ```text
/// name = cross
/// setup = bench
/// attack = threshold-inhibitory
/// axis rel_change = -0.2, 0.2
/// axis vdd = 0.9, 1
/// seeds = 42
/// transfer = paper
/// ```
///
/// # Errors
/// Rejects malformed lines, unknown keys, and invalid scenarios (the
/// returned spec is validated).
pub fn parse_campaign_text(text: &str) -> Result<ParsedCampaign, DistError> {
    let mut name: Option<String> = None;
    let mut weight: u32 = 1;
    let mut weight_given = false;
    let mut base: Option<String> = None;
    let mut setup_seed: u64 = 42;
    let mut setup_seed_given = false;
    let mut scenario_lines: Vec<&str> = Vec::new();
    for line in spec_lines(text).map_err(DistError::Core)? {
        match parse_spec_line(line).map_err(DistError::Core)? {
            SpecLine::Other(key, value) => match key {
                "name" => {
                    if name.replace(value.to_string()).is_some() {
                        return Err(DistError::Protocol("duplicate `name` line".into()));
                    }
                }
                "weight" => {
                    if weight_given {
                        return Err(DistError::Protocol("duplicate `weight` line".into()));
                    }
                    weight_given = true;
                    weight = value
                        .parse::<u32>()
                        .map_err(|_| DistError::Protocol(format!("`{value}` is not a weight")))?;
                    if weight == 0 {
                        return Err(DistError::Protocol("weight must be >= 1".into()));
                    }
                }
                "setup" => {
                    if base.replace(value.to_string()).is_some() {
                        return Err(DistError::Protocol("duplicate `setup` line".into()));
                    }
                }
                "setup-seed" => {
                    if setup_seed_given {
                        return Err(DistError::Protocol("duplicate `setup-seed` line".into()));
                    }
                    setup_seed_given = true;
                    setup_seed = value
                        .parse::<u64>()
                        .map_err(|_| DistError::Protocol(format!("`{value}` is not a seed")))?;
                }
                other => {
                    return Err(DistError::Protocol(format!(
                        "unknown key `{other}` (keys: name, weight, setup, setup-seed, \
                         attack, axis NAME, seeds, transfer)"
                    )))
                }
            },
            _ => scenario_lines.push(line),
        }
    }
    let base = base.unwrap_or_else(|| "bench".into());
    let Some(setup) = SetupSpec::named(&base, setup_seed) else {
        return Err(DistError::Protocol(format!(
            "unknown setup `{base}` (setups: bench quick paper)"
        )));
    };
    let scenario: ScenarioSpec = scenario_lines.join("\n").parse().map_err(DistError::Core)?;
    let spec = CampaignSpec { setup, scenario };
    spec.validate().map_err(DistError::Core)?;
    Ok(ParsedCampaign { name, weight, spec })
}

/// Looks up a named campaign preset for the `repro` CLI and CI — each
/// is nothing but a [`ScenarioSpec`] with a setup scale:
///
/// * `tiny` — 2 × 3 inhibitory-threshold grid at bench scale (6 cells;
///   the CI smoke grid).
/// * `tiny-theta` — Attack 1 (theta corruption) line at bench scale;
///   paired with `tiny` in the multi-campaign CI smoke because it is a
///   *different attack kind* over the *same setup*, so queueing both
///   exercises cross-campaign baseline sharing on each worker.
/// * `fig8-reduced` — the paper's Fig. 8b grid *shape* (4 × 6) at bench
///   scale; the distributed-vs-serial acceptance grid.
/// * `fig8` — Fig. 8b at quick fidelity.
/// * `fig8-full` — Fig. 8b at the paper's full protocol.
pub fn named_campaign(name: &str) -> Option<CampaignSpec> {
    let il = Some(TargetLayer::Inhibitory);
    let paper_grid = SweepConfig::paper_grid();
    match name {
        // Fractions 0.75/0.9 are where the reduced-scale IL surface has
        // visible structure; a flat surface could not catch slot
        // mix-ups in the golden comparison.
        "tiny" => Some(CampaignSpec {
            setup: SetupSpec::bench(42),
            scenario: ScenarioSpec::threshold(
                il,
                &SweepConfig {
                    rel_changes: vec![-0.20, 0.20],
                    fractions: vec![0.0, 0.75, 0.90],
                    seeds: vec![42],
                },
            ),
        }),
        // Theta changes large enough that the reduced-scale accuracy
        // line has structure (a flat line could not catch slot mix-ups
        // in the golden comparison).
        "tiny-theta" => Some(CampaignSpec {
            setup: SetupSpec::bench(42),
            scenario: ScenarioSpec::theta(&[-0.50, -0.20, 0.20, 0.50], &[42]),
        }),
        "fig8-reduced" => Some(CampaignSpec {
            setup: SetupSpec::bench(42),
            scenario: ScenarioSpec::threshold(il, &paper_grid),
        }),
        "fig8" => Some(CampaignSpec {
            setup: SetupSpec::quick(42),
            scenario: ScenarioSpec::threshold(il, &paper_grid),
        }),
        "fig8-full" => Some(CampaignSpec {
            setup: SetupSpec::paper(42),
            scenario: ScenarioSpec::threshold(il, &paper_grid),
        }),
        _ => None,
    }
}

/// The campaign names [`named_campaign`] accepts, for CLI help.
pub const NAMED_CAMPAIGNS: &[&str] = &["tiny", "tiny-theta", "fig8-reduced", "fig8", "fig8-full"];

#[cfg(test)]
mod tests {
    use super::*;
    use neurofi_core::scenario::{AttackFamily, Axis, AxisKind, LayerSel};
    use neurofi_core::sweep::CellAttack;

    #[test]
    fn named_campaigns_resolve_and_validate() {
        for name in NAMED_CAMPAIGNS {
            let spec = named_campaign(name).unwrap();
            spec.validate().unwrap();
            assert!(!spec.plan().jobs.is_empty(), "{name} enumerates no cells");
        }
        assert!(named_campaign("nope").is_none());
    }

    /// Golden grid expansion: each catalog preset must enumerate the
    /// exact index-addressed grid it produced before the scenario
    /// redesign (coordinates bit-for-bit, slots in the same order) —
    /// journals and published figures depend on it.
    #[test]
    fn preset_expansion_matches_the_pre_redesign_grids() {
        let coords = |name: &str| -> Vec<(u64, u64)> {
            named_campaign(name)
                .unwrap()
                .plan()
                .jobs
                .iter()
                .map(|j| {
                    let (a, b) = j.attack.coordinates();
                    (a.to_bits(), b.to_bits())
                })
                .collect()
        };
        let bits = |pairs: &[(f64, f64)]| -> Vec<(u64, u64)> {
            pairs
                .iter()
                .map(|&(a, b)| (a.to_bits(), b.to_bits()))
                .collect()
        };
        assert_eq!(
            coords("tiny"),
            bits(&[
                (-0.20, 0.0),
                (-0.20, 0.75),
                (-0.20, 0.90),
                (0.20, 0.0),
                (0.20, 0.75),
                (0.20, 0.90),
            ])
        );
        assert_eq!(
            coords("tiny-theta"),
            bits(&[(-0.50, 1.0), (-0.20, 1.0), (0.20, 1.0), (0.50, 1.0)])
        );
        // The three fig8 presets share one grid shape: the paper's
        // 4 rel-changes × 6 fractions, rel-change-major.
        let mut fig8_grid = Vec::new();
        for rel in [-0.20, -0.10, 0.10, 0.20] {
            for fraction in [0.0, 0.25, 0.50, 0.75, 0.90, 1.0] {
                fig8_grid.push((rel, fraction));
            }
        }
        for name in ["fig8-reduced", "fig8", "fig8-full"] {
            assert_eq!(coords(name), bits(&fig8_grid), "{name} grid moved");
        }
        // Every preset still averages over the paper seed and reports
        // the kinds the figures were published under.
        assert_eq!(named_campaign("tiny").unwrap().plan().seeds, vec![42]);
        assert_eq!(
            named_campaign("tiny").unwrap().scenario.family,
            AttackFamily::Threshold(LayerSel::Inhibitory)
        );
        assert_eq!(
            named_campaign("tiny-theta").unwrap().scenario.family,
            AttackFamily::Theta
        );
    }

    #[test]
    fn materialized_setup_round_trips_scale_knobs() {
        let spec = SetupSpec::bench(7);
        let setup = spec.materialize();
        assert_eq!(setup.n_train, 40);
        assert_eq!(setup.n_test, 20);
        assert_eq!(setup.network.sample_time_ms, 40.0);
        assert_eq!(setup.train_options.assignment_window, None);
        assert_eq!(setup.network_seed, 7);
        // Re-capturing the materialised setup is the identity.
        let recaptured = SetupSpec::capture(SetupBase::Quick, &setup, 7);
        assert_eq!(recaptured, spec);
        // Named lookup covers every scale.
        for name in ["bench", "quick", "paper"] {
            assert!(SetupSpec::named(name, 1).is_some());
        }
        assert!(SetupSpec::named("huge", 1).is_none());
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let a = named_campaign("tiny").unwrap();
        let b = named_campaign("tiny").unwrap();
        assert_eq!(a.digest(), b.digest());
        let mut c = named_campaign("tiny").unwrap();
        c.scenario.seeds = vec![43];
        assert_ne!(a.digest(), c.digest());
        let mut d = named_campaign("tiny").unwrap();
        d.setup.n_train += 1;
        assert_ne!(a.digest(), d.digest());
        let mut e = named_campaign("tiny").unwrap();
        e.scenario.axes.push(Axis::seeds(vec![1]));
        assert_ne!(a.digest(), e.digest());
    }

    #[test]
    fn cell_digests_key_content_not_campaign() {
        let a = named_campaign("tiny").unwrap();
        // A wider grid (extra fraction value) is a *different campaign*
        // but still shares tiny's cells — the store must hit on them.
        let mut b = named_campaign("tiny").unwrap();
        b.scenario.axes[1] = Axis::real(AxisKind::Fraction, vec![0.0, 0.5, 0.75, 0.90]);
        b.validate().unwrap();
        assert_ne!(a.digest(), b.digest());
        for job in a.plan().jobs {
            assert_eq!(a.cell_digest(&job.attack), b.cell_digest(&job.attack));
        }
        assert_eq!(a.baseline_digest(), b.baseline_digest());

        // Anything the measured value depends on repoints the key.
        let attack = a.plan().jobs[3].attack;
        let mut c = named_campaign("tiny").unwrap();
        c.setup.n_train += 1;
        assert_ne!(a.cell_digest(&attack), c.cell_digest(&attack));
        assert_ne!(a.baseline_digest(), c.baseline_digest());
        let mut d = named_campaign("tiny").unwrap();
        d.scenario.seeds = vec![43];
        assert_ne!(a.cell_digest(&attack), d.cell_digest(&attack));
        assert_ne!(a.baseline_digest(), d.baseline_digest());
        let mut other = attack;
        other.fraction = 0.5;
        assert_ne!(a.cell_digest(&attack), a.cell_digest(&other));
        // Cell and baseline keyspaces never collide on equal inputs.
        assert_ne!(a.cell_digest(&attack), a.baseline_digest());
    }

    #[test]
    fn transfer_table_keys_only_vdd_cells() {
        let table = PowerTransferTable::paper_nominal();
        let a = CampaignSpec {
            setup: SetupSpec::bench(42),
            scenario: neurofi_core::ScenarioSpec::vdd(&[0.8, 1.0], &table, &[42]),
        };
        let mut b = a.clone();
        b.scenario.transfer.as_mut().unwrap()[0].drive_scale *= 1.01;
        let vdd_attack = a.plan().jobs[0].attack;
        assert_ne!(
            a.cell_digest(&vdd_attack),
            b.cell_digest(&vdd_attack),
            "vdd cells execute against the table, so its bits are key material"
        );
        let threshold_attack = CellAttack::threshold(None, -0.2, 0.75);
        assert_eq!(
            a.cell_digest(&threshold_attack),
            b.cell_digest(&threshold_attack),
            "non-vdd cells never read the table, so they share across tables"
        );
    }

    #[test]
    fn countermeasures_key_only_armed_cells() {
        use neurofi_core::scenario::{DefenseSel, DetectorSel};

        let table = PowerTransferTable::paper_nominal();
        let spec = CampaignSpec {
            setup: SetupSpec::bench(42),
            scenario: neurofi_core::ScenarioSpec::vdd(&[0.8, 1.0], &table, &[42]),
        };
        let legacy = spec.plan().jobs[0].attack;
        // The explicit none/none components are the legacy default: the
        // digest must be bit-identical so old stores keep deduping.
        assert_eq!(legacy.defense, DefenseSel::None);
        assert_eq!(legacy.detector, DetectorSel::None);
        // Arming either component repoints the key, and each
        // countermeasure gets its own keyspace.
        let defended = CellAttack {
            defense: DefenseSel::BandgapThreshold,
            ..legacy
        };
        let detected = CellAttack {
            detector: DetectorSel::DummyNeuron,
            ..legacy
        };
        let both = CellAttack {
            detector: DetectorSel::DummyNeuron,
            ..defended
        };
        let layered = CellAttack {
            neurons: Some(32),
            ..legacy
        };
        let keys = [
            spec.cell_digest(&legacy),
            spec.cell_digest(&defended),
            spec.cell_digest(&detected),
            spec.cell_digest(&both),
            spec.cell_digest(&layered),
        ];
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b, "countermeasure combinations must not collide");
            }
        }
    }

    #[test]
    fn validation_catches_degenerate_campaigns() {
        let mut spec = named_campaign("tiny").unwrap();
        spec.scenario.axes[0] = Axis::real(AxisKind::RelChange, vec![]);
        assert!(spec.validate().is_err());

        let mut spec = named_campaign("tiny").unwrap();
        spec.scenario.seeds.clear();
        assert!(spec.validate().is_err());

        let mut spec = named_campaign("tiny").unwrap();
        spec.scenario
            .axes
            .push(Axis::real(AxisKind::Vdd, vec![0.9]));
        assert!(
            spec.validate().is_err(),
            "vdd axis without a transfer table"
        );
        assert!(spec.transfer_table().is_err());
    }

    #[test]
    fn vdd_campaign_builds_transfer_table() {
        let table = PowerTransferTable::paper_nominal();
        let spec = CampaignSpec {
            setup: SetupSpec::bench(42),
            scenario: neurofi_core::ScenarioSpec::vdd(&[0.8, 1.0], &table, &[42]),
        };
        spec.validate().unwrap();
        let built = spec.transfer_table().unwrap().unwrap();
        assert_eq!(built.points(), table.points());
        assert_eq!(spec.plan().jobs.len(), 2);
        assert_eq!(spec.plan().jobs[1].attack, CellAttack::vdd(1.0));
    }

    #[test]
    fn campaign_files_parse_and_validate() {
        let parsed = parse_campaign_text(
            "# a custom cross product the catalog never heard of\n\
             name = cross\n\
             weight = 2\n\
             setup = bench\n\
             setup-seed = 7\n\
             attack = threshold-inhibitory\n\
             axis rel_change = -0.2, 0.2\n\
             axis vdd = 0.9, 1\n\
             seeds = 42\n\
             transfer = paper\n",
        )
        .unwrap();
        assert_eq!(parsed.name.as_deref(), Some("cross"));
        assert_eq!(parsed.weight, 2);
        assert_eq!(parsed.spec.setup, SetupSpec::bench(7));
        assert_eq!(parsed.spec.plan().jobs.len(), 4);
        let named = parsed.into_named("fallback");
        assert_eq!(named.name, "cross");
        assert_eq!(named.weight, 2);

        // Defaults: bench setup, seed 42, weight 1, caller-named.
        let minimal =
            parse_campaign_text("attack = theta\naxis theta_change = -0.2, 0.2\nseeds = 1\n")
                .unwrap();
        assert_eq!(minimal.spec.setup, SetupSpec::bench(42));
        assert_eq!(minimal.into_named("fallback").name, "fallback");

        // Rejections: unknown keys, unknown setups, invalid scenarios,
        // degenerate weights.
        assert!(parse_campaign_text("bogus = 1\nattack = theta\n").is_err());
        assert!(parse_campaign_text(
            "setup = huge\nattack = theta\naxis theta_change = 0.1\nseeds = 1\n"
        )
        .is_err());
        assert!(
            parse_campaign_text("attack = theta\nseeds = 1\n").is_err(),
            "no axes"
        );
        assert!(parse_campaign_text(
            "weight = 0\nattack = theta\naxis theta_change = 0.1\nseeds = 1\n"
        )
        .is_err());
        // Duplicate campaign-level lines are rejected, never last-wins
        // (a silently overridden setup-seed would change every result).
        for duplicated in ["weight = 2", "setup-seed = 7", "name = x", "setup = bench"] {
            let text = format!(
                "{duplicated}\n{duplicated}\nattack = theta\naxis theta_change = 0.1\nseeds = 1\n"
            );
            assert!(parse_campaign_text(&text).is_err(), "{duplicated} last-won");
        }
    }
}
