//! Property-based tests of the dataset substrate.

use proptest::prelude::*;

use neurofi_data::idx::{parse_images, parse_labels};
use neurofi_data::{LabeledImages, SynthDigits};

fn idx_image_bytes(count: u32, h: u32, w: u32, pixels: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&0x0000_0803u32.to_be_bytes());
    bytes.extend_from_slice(&count.to_be_bytes());
    bytes.extend_from_slice(&h.to_be_bytes());
    bytes.extend_from_slice(&w.to_be_bytes());
    bytes.extend_from_slice(pixels);
    bytes
}

fn idx_label_bytes(labels: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&0x0000_0801u32.to_be_bytes());
    bytes.extend_from_slice(&(labels.len() as u32).to_be_bytes());
    bytes.extend_from_slice(labels);
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// IDX image encode/parse round-trips arbitrary pixel payloads.
    #[test]
    fn idx_images_round_trip(
        w in 1u32..10,
        h in 1u32..10,
        count in 1u32..6,
        seed in any::<u64>(),
    ) {
        let n = (w * h * count) as usize;
        let mut state = seed;
        let pixels: Vec<u8> = (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 56) as u8
            })
            .collect();
        let bytes = idx_image_bytes(count, h, w, &pixels);
        let (pw, ph, parsed) = parse_images(&bytes).unwrap();
        prop_assert_eq!(pw as u32, w);
        prop_assert_eq!(ph as u32, h);
        prop_assert_eq!(parsed, pixels);
    }

    /// IDX label round trip for any valid digit vector.
    #[test]
    fn idx_labels_round_trip(labels in proptest::collection::vec(0u8..10, 1..50)) {
        let parsed = parse_labels(&idx_label_bytes(&labels)).unwrap();
        prop_assert_eq!(parsed, labels);
    }

    /// Truncating an IDX payload anywhere yields a Format error, never a
    /// panic or bogus success.
    #[test]
    fn idx_truncation_is_graceful(cut in 0usize..30) {
        let bytes = idx_image_bytes(2, 3, 3, &[7u8; 18]);
        let cut = cut.min(bytes.len().saturating_sub(1));
        let res = parse_images(&bytes[..cut]);
        prop_assert!(res.is_err());
    }

    /// Dataset splits partition content exactly.
    #[test]
    fn split_partitions(n in 1usize..60, at_ratio in 0.0f64..=1.0) {
        let data = SynthDigits::default().generate(n, 3);
        let at = ((n as f64) * at_ratio) as usize;
        let (a, b) = data.split(at);
        prop_assert_eq!(a.len() + b.len(), n);
        for i in 0..a.len() {
            prop_assert_eq!(a.image(i), data.image(i));
            prop_assert_eq!(a.label(i), data.label(i));
        }
        for i in 0..b.len() {
            prop_assert_eq!(b.image(i), data.image(at + i));
            prop_assert_eq!(b.label(i), data.label(at + i));
        }
    }

    /// Generation is deterministic in the seed and class-balanced for
    /// multiples of 10.
    #[test]
    fn generation_is_deterministic_and_balanced(
        decades in 1usize..8,
        seed in any::<u64>(),
    ) {
        let n = decades * 10;
        let gen = SynthDigits::default();
        let a = gen.generate(n, seed);
        let b = gen.generate(n, seed);
        prop_assert_eq!(&a, &b);
        for count in a.class_counts() {
            prop_assert_eq!(count, decades);
        }
    }

    /// Every generated image keeps a sane ink budget (neither blank nor
    /// saturated), for arbitrary seeds.
    #[test]
    fn images_have_sane_ink(seed in any::<u64>()) {
        let data = SynthDigits::default().generate(10, seed);
        for (img, label) in data.iter() {
            let bright = img.iter().filter(|&&p| p > 100).count();
            let frac = bright as f64 / img.len() as f64;
            prop_assert!(
                frac > 0.02 && frac < 0.5,
                "digit {label}: ink fraction {frac:.3}"
            );
        }
    }

    /// LabeledImages::push and iter agree for arbitrary content.
    #[test]
    fn push_iter_agreement(
        images in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 4), 0u8..10),
            0..20,
        )
    ) {
        let mut data = LabeledImages::empty(2, 2);
        for (pixels, label) in &images {
            data.push(pixels, *label);
        }
        prop_assert_eq!(data.len(), images.len());
        for (got, want) in data.iter().zip(&images) {
            prop_assert_eq!(got.0, want.0.as_slice());
            prop_assert_eq!(got.1, want.1);
        }
    }
}
