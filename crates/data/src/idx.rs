//! IDX (MNIST ubyte) file format parser.
//!
//! The format is four big-endian header fields followed by raw data:
//! magic `0x00000803` for 3-D image tensors, `0x00000801` for 1-D label
//! vectors. If you have the real MNIST files, set `NEUROFI_MNIST_DIR` and
//! use [`load_mnist_dir`]; everything downstream consumes the same
//! [`LabeledImages`] container as the synthetic generator.

use std::fmt;
use std::fs;
use std::io::Read;
use std::path::Path;

use crate::dataset::LabeledImages;

/// Errors from IDX parsing.
#[derive(Debug)]
pub enum IdxError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not valid IDX data.
    Format(String),
}

impl fmt::Display for IdxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdxError::Io(e) => write!(f, "idx i/o error: {e}"),
            IdxError::Format(msg) => write!(f, "invalid idx data: {msg}"),
        }
    }
}

impl std::error::Error for IdxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IdxError::Io(e) => Some(e),
            IdxError::Format(_) => None,
        }
    }
}

impl From<std::io::Error> for IdxError {
    fn from(e: std::io::Error) -> IdxError {
        IdxError::Io(e)
    }
}

fn read_u32(bytes: &[u8], offset: usize) -> Result<u32, IdxError> {
    bytes
        .get(offset..offset + 4)
        .map(|b| u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
        .ok_or_else(|| IdxError::Format("truncated header".into()))
}

/// Parses an IDX3 image tensor from raw bytes.
///
/// Returns `(width, height, pixels)` with images concatenated row-major.
///
/// # Errors
/// [`IdxError::Format`] on bad magic, truncation or size mismatch.
pub fn parse_images(bytes: &[u8]) -> Result<(usize, usize, Vec<u8>), IdxError> {
    let magic = read_u32(bytes, 0)?;
    if magic != 0x0000_0803 {
        return Err(IdxError::Format(format!(
            "bad image magic 0x{magic:08x} (want 0x00000803)"
        )));
    }
    let count = read_u32(bytes, 4)? as usize;
    let height = read_u32(bytes, 8)? as usize;
    let width = read_u32(bytes, 12)? as usize;
    let expected = count
        .checked_mul(width)
        .and_then(|v| v.checked_mul(height))
        .ok_or_else(|| IdxError::Format("image tensor too large".into()))?;
    let data = &bytes[16.min(bytes.len())..];
    if data.len() != expected {
        return Err(IdxError::Format(format!(
            "expected {expected} pixels, found {}",
            data.len()
        )));
    }
    Ok((width, height, data.to_vec()))
}

/// Parses an IDX1 label vector from raw bytes.
///
/// # Errors
/// [`IdxError::Format`] on bad magic, truncation or size mismatch.
pub fn parse_labels(bytes: &[u8]) -> Result<Vec<u8>, IdxError> {
    let magic = read_u32(bytes, 0)?;
    if magic != 0x0000_0801 {
        return Err(IdxError::Format(format!(
            "bad label magic 0x{magic:08x} (want 0x00000801)"
        )));
    }
    let count = read_u32(bytes, 4)? as usize;
    let data = &bytes[8.min(bytes.len())..];
    if data.len() != count {
        return Err(IdxError::Format(format!(
            "expected {count} labels, found {}",
            data.len()
        )));
    }
    if let Some(bad) = data.iter().find(|&&l| l > 9) {
        return Err(IdxError::Format(format!("label {bad} out of range 0-9")));
    }
    Ok(data.to_vec())
}

fn read_file(path: &Path) -> Result<Vec<u8>, IdxError> {
    let mut buffer = Vec::new();
    fs::File::open(path)?.read_to_end(&mut buffer)?;
    Ok(buffer)
}

/// Loads an images/labels file pair into a [`LabeledImages`] container.
///
/// # Errors
/// I/O and format errors from either file, or a count mismatch between
/// the two.
pub fn load_pair(images_path: &Path, labels_path: &Path) -> Result<LabeledImages, IdxError> {
    let (width, height, pixels) = parse_images(&read_file(images_path)?)?;
    let labels = parse_labels(&read_file(labels_path)?)?;
    if pixels.len() != labels.len() * width * height {
        return Err(IdxError::Format(format!(
            "{} images but {} labels",
            pixels.len() / (width * height).max(1),
            labels.len()
        )));
    }
    Ok(LabeledImages::new(width, height, pixels, labels))
}

/// Loads the standard MNIST train/test pairs from a directory containing
/// `train-images-idx3-ubyte`, `train-labels-idx1-ubyte`,
/// `t10k-images-idx3-ubyte`, `t10k-labels-idx1-ubyte`.
///
/// Returns `None` when the directory or any file is missing (callers fall
/// back to [`crate::synth::SynthDigits`]).
///
/// # Errors
/// Propagates format errors when the files exist but are corrupt.
pub fn load_mnist_dir(dir: &Path) -> Result<Option<(LabeledImages, LabeledImages)>, IdxError> {
    let files = [
        dir.join("train-images-idx3-ubyte"),
        dir.join("train-labels-idx1-ubyte"),
        dir.join("t10k-images-idx3-ubyte"),
        dir.join("t10k-labels-idx1-ubyte"),
    ];
    if !files.iter().all(|f| f.exists()) {
        return Ok(None);
    }
    let train = load_pair(&files[0], &files[1])?;
    let test = load_pair(&files[2], &files[3])?;
    Ok(Some((train, test)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image_bytes(count: u32, h: u32, w: u32, pixels: &[u8]) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&0x0000_0803u32.to_be_bytes());
        bytes.extend_from_slice(&count.to_be_bytes());
        bytes.extend_from_slice(&h.to_be_bytes());
        bytes.extend_from_slice(&w.to_be_bytes());
        bytes.extend_from_slice(pixels);
        bytes
    }

    fn label_bytes(labels: &[u8]) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&0x0000_0801u32.to_be_bytes());
        bytes.extend_from_slice(&(labels.len() as u32).to_be_bytes());
        bytes.extend_from_slice(labels);
        bytes
    }

    #[test]
    fn parses_round_trip() {
        let pixels: Vec<u8> = (0..2 * 2 * 3).map(|i| i as u8).collect();
        let (w, h, parsed) = parse_images(&image_bytes(3, 2, 2, &pixels)).unwrap();
        assert_eq!((w, h), (2, 2));
        assert_eq!(parsed, pixels);
        let labels = parse_labels(&label_bytes(&[1, 2, 3])).unwrap();
        assert_eq!(labels, vec![1, 2, 3]);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = image_bytes(1, 1, 1, &[0]);
        bytes[3] = 0x99;
        assert!(matches!(parse_images(&bytes), Err(IdxError::Format(_))));
        let mut bytes = label_bytes(&[1]);
        bytes[3] = 0x99;
        assert!(matches!(parse_labels(&bytes), Err(IdxError::Format(_))));
    }

    #[test]
    fn rejects_truncation() {
        let bytes = image_bytes(2, 2, 2, &[0; 7]); // want 8 pixels
        assert!(matches!(parse_images(&bytes), Err(IdxError::Format(_))));
        assert!(matches!(parse_images(&[0, 0]), Err(IdxError::Format(_))));
    }

    #[test]
    fn rejects_out_of_range_labels() {
        assert!(matches!(
            parse_labels(&label_bytes(&[3, 11])),
            Err(IdxError::Format(_))
        ));
    }

    #[test]
    fn load_pair_checks_count_consistency() {
        let dir = std::env::temp_dir().join(format!("neurofi-idx-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let img_path = dir.join("imgs");
        let lbl_path = dir.join("lbls");
        std::fs::write(&img_path, image_bytes(2, 2, 2, &[0; 8])).unwrap();
        std::fs::write(&lbl_path, label_bytes(&[1, 2, 3])).unwrap();
        assert!(load_pair(&img_path, &lbl_path).is_err());
        std::fs::write(&lbl_path, label_bytes(&[1, 2])).unwrap();
        let data = load_pair(&img_path, &lbl_path).unwrap();
        assert_eq!(data.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_mnist_dir_is_none() {
        let missing = Path::new("/definitely/not/a/real/dir");
        assert!(load_mnist_dir(missing).unwrap().is_none());
    }
}
