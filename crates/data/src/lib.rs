//! # neurofi-data
//!
//! Dataset substrate for the `neurofi` workspace.
//!
//! The paper trains its Diehl&Cook SNN on MNIST. MNIST itself is not
//! redistributable inside this repository, so the default dataset is
//! [`synth::SynthDigits`] — a procedural 28×28 digit generator (per-class
//! stroke skeletons, random affine jitter, pen-width/intensity variation,
//! pixel noise) that preserves the property the attack study actually
//! needs: a separable, 10-class image distribution for rate-coded spiking
//! classification.
//!
//! If you have real MNIST as IDX files, point `NEUROFI_MNIST_DIR` at the
//! directory containing `train-images-idx3-ubyte` etc. and use
//! [`idx::load_mnist_dir`]; every consumer in this workspace accepts either
//! source through the common [`dataset::LabeledImages`] container.
//!
//! ```
//! use neurofi_data::synth::SynthDigits;
//!
//! let data = SynthDigits::default().generate(100, 42);
//! assert_eq!(data.len(), 100);
//! assert_eq!(data.image(0).len(), 28 * 28);
//! let (train, test) = data.split(80);
//! assert_eq!(train.len(), 80);
//! assert_eq!(test.len(), 20);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod dataset;
pub mod idx;
pub mod synth;

pub use dataset::LabeledImages;
pub use synth::SynthDigits;
