//! Common labelled-image container shared by synthetic and IDX sources.

/// A set of same-sized grayscale images with class labels.
///
/// Pixels are stored row-major, one byte per pixel (0 = background,
/// 255 = full ink), images concatenated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabeledImages {
    width: usize,
    height: usize,
    pixels: Vec<u8>,
    labels: Vec<u8>,
}

impl LabeledImages {
    /// Builds a container from raw parts.
    ///
    /// # Panics
    /// Panics if `pixels.len() != labels.len() * width * height`, if a
    /// label is ≥ 10, or if `width`/`height` is zero.
    pub fn new(width: usize, height: usize, pixels: Vec<u8>, labels: Vec<u8>) -> LabeledImages {
        assert!(width > 0 && height > 0, "image dimensions must be non-zero");
        assert_eq!(
            pixels.len(),
            labels.len() * width * height,
            "pixel buffer does not match image count"
        );
        assert!(
            labels.iter().all(|&l| l < 10),
            "labels must be digit classes 0-9"
        );
        LabeledImages {
            width,
            height,
            pixels,
            labels,
        }
    }

    /// Creates an empty container with the given image dimensions.
    pub fn empty(width: usize, height: usize) -> LabeledImages {
        LabeledImages::new(width, height, Vec::new(), Vec::new())
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of images.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the container holds no images.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Pixels of image `index`, row-major.
    ///
    /// # Panics
    /// Panics if `index` is out of bounds.
    pub fn image(&self, index: usize) -> &[u8] {
        let stride = self.width * self.height;
        &self.pixels[index * stride..(index + 1) * stride]
    }

    /// Label of image `index`.
    ///
    /// # Panics
    /// Panics if `index` is out of bounds.
    pub fn label(&self, index: usize) -> u8 {
        self.labels[index]
    }

    /// All labels in order.
    pub fn labels(&self) -> &[u8] {
        &self.labels
    }

    /// Iterator over `(pixels, label)` pairs.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            data: self,
            index: 0,
        }
    }

    /// Appends an image.
    ///
    /// # Panics
    /// Panics if the pixel count does not match the container dimensions
    /// or `label >= 10`.
    pub fn push(&mut self, pixels: &[u8], label: u8) {
        assert_eq!(
            pixels.len(),
            self.width * self.height,
            "pixel count mismatch"
        );
        assert!(label < 10, "labels must be digit classes 0-9");
        self.pixels.extend_from_slice(pixels);
        self.labels.push(label);
    }

    /// Splits into `(first_n, rest)`.
    ///
    /// # Panics
    /// Panics if `n > len()`.
    pub fn split(&self, n: usize) -> (LabeledImages, LabeledImages) {
        assert!(n <= self.len(), "split point beyond dataset");
        let stride = self.width * self.height;
        let first = LabeledImages::new(
            self.width,
            self.height,
            self.pixels[..n * stride].to_vec(),
            self.labels[..n].to_vec(),
        );
        let rest = LabeledImages::new(
            self.width,
            self.height,
            self.pixels[n * stride..].to_vec(),
            self.labels[n..].to_vec(),
        );
        (first, rest)
    }

    /// Returns a new container with only the first `n` images.
    ///
    /// # Panics
    /// Panics if `n > len()`.
    pub fn take(&self, n: usize) -> LabeledImages {
        self.split(n).0
    }

    /// Number of images per class (index = digit).
    pub fn class_counts(&self) -> [usize; 10] {
        let mut counts = [0usize; 10];
        for &l in &self.labels {
            counts[l as usize] += 1;
        }
        counts
    }

    /// Mean pixel intensity over the whole set (0–255 scale).
    pub fn mean_intensity(&self) -> f64 {
        if self.pixels.is_empty() {
            return 0.0;
        }
        self.pixels.iter().map(|&p| p as f64).sum::<f64>() / self.pixels.len() as f64
    }
}

/// Iterator returned by [`LabeledImages::iter`].
#[derive(Debug)]
pub struct Iter<'a> {
    data: &'a LabeledImages,
    index: usize,
}

impl<'a> Iterator for Iter<'a> {
    type Item = (&'a [u8], u8);

    fn next(&mut self) -> Option<Self::Item> {
        if self.index >= self.data.len() {
            return None;
        }
        let item = (self.data.image(self.index), self.data.label(self.index));
        self.index += 1;
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = self.data.len() - self.index;
        (rest, Some(rest))
    }
}

impl<'a> ExactSizeIterator for Iter<'a> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LabeledImages {
        let mut d = LabeledImages::empty(2, 2);
        d.push(&[0, 1, 2, 3], 7);
        d.push(&[4, 5, 6, 7], 3);
        d.push(&[8, 9, 10, 11], 7);
        d
    }

    #[test]
    fn accessors() {
        let d = tiny();
        assert_eq!(d.len(), 3);
        assert_eq!(d.image(1), &[4, 5, 6, 7]);
        assert_eq!(d.label(1), 3);
        assert_eq!(d.width(), 2);
        assert_eq!(d.height(), 2);
    }

    #[test]
    fn iterator_yields_all() {
        let d = tiny();
        let collected: Vec<u8> = d.iter().map(|(_, l)| l).collect();
        assert_eq!(collected, vec![7, 3, 7]);
        assert_eq!(d.iter().len(), 3);
    }

    #[test]
    fn split_preserves_content() {
        let d = tiny();
        let (a, b) = d.split(2);
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 1);
        assert_eq!(b.image(0), &[8, 9, 10, 11]);
        assert_eq!(b.label(0), 7);
    }

    #[test]
    fn class_counts() {
        let counts = tiny().class_counts();
        assert_eq!(counts[7], 2);
        assert_eq!(counts[3], 1);
        assert_eq!(counts[0], 0);
    }

    #[test]
    fn mean_intensity() {
        let d = tiny();
        let expect = (0..12).sum::<i32>() as f64 / 12.0;
        assert!((d.mean_intensity() - expect).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "pixel buffer")]
    fn mismatched_buffer_rejected() {
        LabeledImages::new(2, 2, vec![0; 7], vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "digit classes")]
    fn bad_label_rejected() {
        LabeledImages::new(1, 1, vec![0], vec![10]);
    }
}
