//! SynthDigits: procedural 28×28 digit images.
//!
//! Each digit class is defined by a stroke skeleton (polylines in a unit
//! box). A sample is produced by jittering the skeleton with a random
//! affine transform (rotation, anisotropic scale, shear, translation),
//! rendering with a randomised pen width via distance-to-segment
//! anti-aliasing, and adding pixel noise — yielding an MNIST-like,
//! separable 10-class distribution suitable for rate-coded SNN
//! classification.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::LabeledImages;

/// Configuration for the synthetic digit generator.
///
/// [`Default`] produces MNIST-like variability. All random quantities are
/// drawn from the seed passed to [`SynthDigits::generate`], so datasets are
/// fully reproducible.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthDigits {
    /// Output image side length in pixels (28, as in MNIST).
    pub size: usize,
    /// Mean pen half-width in skeleton units (≈1.3 px at 28×28).
    pub pen_half_width: f64,
    /// Relative pen-width jitter (±fraction).
    pub pen_jitter: f64,
    /// Maximum rotation magnitude, radians.
    pub max_rotation: f64,
    /// Maximum anisotropic scale deviation (±fraction).
    pub max_scale_jitter: f64,
    /// Maximum shear coefficient.
    pub max_shear: f64,
    /// Maximum translation, skeleton units.
    pub max_translation: f64,
    /// Additive Gaussian pixel-noise standard deviation (0–255 scale).
    pub noise_sigma: f64,
    /// Minimum per-image intensity scale (1.0 = full ink).
    pub min_intensity: f64,
}

impl Default for SynthDigits {
    fn default() -> SynthDigits {
        SynthDigits {
            size: 28,
            pen_half_width: 0.048,
            pen_jitter: 0.25,
            max_rotation: 0.18,
            max_scale_jitter: 0.12,
            max_shear: 0.12,
            max_translation: 0.06,
            noise_sigma: 6.0,
            min_intensity: 0.82,
        }
    }
}

impl SynthDigits {
    /// Generates `n` images with balanced classes (class of sample `i`
    /// cycles through 0–9; the affine jitter makes every sample unique).
    ///
    /// # Panics
    /// Panics if `size` is zero.
    pub fn generate(&self, n: usize, seed: u64) -> LabeledImages {
        assert!(self.size > 0, "image size must be non-zero");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = LabeledImages::empty(self.size, self.size);
        let mut buffer = vec![0u8; self.size * self.size];
        for i in 0..n {
            let label = (i % 10) as u8;
            self.render_into(label, &mut rng, &mut buffer);
            out.push(&buffer, label);
        }
        out
    }

    /// Renders a single digit with the given per-sample RNG.
    pub fn render(&self, label: u8, rng: &mut StdRng) -> Vec<u8> {
        let mut buffer = vec![0u8; self.size * self.size];
        self.render_into(label, rng, &mut buffer);
        buffer
    }

    fn render_into(&self, label: u8, rng: &mut StdRng, buffer: &mut [u8]) {
        assert!(label < 10, "labels must be digit classes 0-9");
        let strokes = skeleton(label);

        // Random affine about the box centre.
        let theta = rng.gen_range(-self.max_rotation..=self.max_rotation);
        let sx = 1.0 + rng.gen_range(-self.max_scale_jitter..=self.max_scale_jitter);
        let sy = 1.0 + rng.gen_range(-self.max_scale_jitter..=self.max_scale_jitter);
        let shear = rng.gen_range(-self.max_shear..=self.max_shear);
        let tx = rng.gen_range(-self.max_translation..=self.max_translation);
        let ty = rng.gen_range(-self.max_translation..=self.max_translation);
        let (sin, cos) = theta.sin_cos();
        let map = |p: (f64, f64)| -> (f64, f64) {
            let (mut x, mut y) = (p.0 - 0.5, p.1 - 0.5);
            x *= sx;
            y *= sy;
            x += shear * y;
            let (rx, ry) = (cos * x - sin * y, sin * x + cos * y);
            (rx + 0.5 + tx, ry + 0.5 + ty)
        };
        let transformed: Vec<Vec<(f64, f64)>> = strokes
            .iter()
            .map(|s| s.iter().map(|&p| map(p)).collect())
            .collect();

        let pen = self.pen_half_width * (1.0 + rng.gen_range(-self.pen_jitter..=self.pen_jitter));
        let softness = 0.55 * pen;
        let ink = 255.0 * rng.gen_range(self.min_intensity..=1.0);

        let size = self.size as f64;
        for py in 0..self.size {
            for px in 0..self.size {
                let point = ((px as f64 + 0.5) / size, (py as f64 + 0.5) / size);
                let d = transformed
                    .iter()
                    .map(|s| distance_to_polyline(point, s))
                    .fold(f64::INFINITY, f64::min);
                // Smooth pen profile: full ink inside the pen radius,
                // anti-aliased falloff over `softness`.
                let coverage = ((pen + softness - d) / softness).clamp(0.0, 1.0);
                let mut value = ink * coverage;
                if self.noise_sigma > 0.0 {
                    value += self.noise_sigma * gaussian(rng);
                }
                buffer[py * self.size + px] = value.clamp(0.0, 255.0) as u8;
            }
        }
    }
}

/// Standard normal via Box–Muller.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Distance from `p` to the nearest point of a polyline.
fn distance_to_polyline(p: (f64, f64), polyline: &[(f64, f64)]) -> f64 {
    if polyline.is_empty() {
        return f64::INFINITY;
    }
    if polyline.len() == 1 {
        let (dx, dy) = (p.0 - polyline[0].0, p.1 - polyline[0].1);
        return (dx * dx + dy * dy).sqrt();
    }
    polyline
        .windows(2)
        .map(|seg| distance_to_segment(p, seg[0], seg[1]))
        .fold(f64::INFINITY, f64::min)
}

fn distance_to_segment(p: (f64, f64), a: (f64, f64), b: (f64, f64)) -> f64 {
    let (abx, aby) = (b.0 - a.0, b.1 - a.1);
    let (apx, apy) = (p.0 - a.0, p.1 - a.1);
    let len2 = abx * abx + aby * aby;
    let t = if len2 <= f64::MIN_POSITIVE {
        0.0
    } else {
        ((apx * abx + apy * aby) / len2).clamp(0.0, 1.0)
    };
    let (cx, cy) = (a.0 + t * abx, a.1 + t * aby);
    let (dx, dy) = (p.0 - cx, p.1 - cy);
    (dx * dx + dy * dy).sqrt()
}

/// Samples an elliptical arc as a polyline. Angles in radians; `a0 > a1`
/// sweeps clockwise.
fn arc(cx: f64, cy: f64, rx: f64, ry: f64, a0: f64, a1: f64, n: usize) -> Vec<(f64, f64)> {
    (0..=n)
        .map(|i| {
            let a = a0 + (a1 - a0) * i as f64 / n as f64;
            (cx + rx * a.cos(), cy + ry * a.sin())
        })
        .collect()
}

/// Stroke skeletons for each digit class in a unit box (x right, y down).
fn skeleton(label: u8) -> Vec<Vec<(f64, f64)>> {
    use std::f64::consts::PI;
    match label {
        0 => vec![arc(0.5, 0.5, 0.24, 0.34, 0.0, 2.0 * PI, 28)],
        1 => vec![vec![(0.36, 0.3), (0.52, 0.14), (0.52, 0.86)]],
        2 => {
            let mut top = arc(0.5, 0.34, 0.23, 0.20, PI, 2.0 * PI + 0.45, 16);
            top.push((0.27, 0.84));
            top.push((0.75, 0.84));
            vec![top]
        }
        3 => vec![
            arc(0.48, 0.32, 0.21, 0.18, -0.8 * PI, 0.5 * PI, 16),
            arc(0.48, 0.67, 0.23, 0.20, -0.5 * PI, 0.8 * PI, 16),
        ],
        4 => vec![
            vec![(0.58, 0.12), (0.24, 0.58), (0.80, 0.58)],
            vec![(0.60, 0.34), (0.60, 0.88)],
        ],
        5 => {
            let mut path = vec![(0.72, 0.14), (0.32, 0.14), (0.30, 0.45)];
            path.extend(arc(0.48, 0.64, 0.22, 0.21, -0.5 * PI, 0.75 * PI, 16));
            vec![path]
        }
        6 => {
            let mut path = vec![(0.64, 0.12)];
            path.extend(arc(0.47, 0.45, 0.20, 0.33, -0.5 * PI - 0.5, -PI, 10));
            path.extend(arc(0.5, 0.66, 0.21, 0.20, PI, -PI, 22));
            vec![path]
        }
        7 => vec![vec![(0.25, 0.15), (0.76, 0.15), (0.42, 0.88)]],
        8 => vec![
            arc(0.5, 0.31, 0.18, 0.17, 0.0, 2.0 * PI, 20),
            arc(0.5, 0.68, 0.22, 0.20, 0.0, 2.0 * PI, 20),
        ],
        9 => {
            let mut tail = vec![(0.68, 0.33), (0.66, 0.60), (0.56, 0.88)];
            let mut strokes = vec![arc(0.5, 0.33, 0.19, 0.19, 0.0, 2.0 * PI, 20)];
            strokes.push(std::mem::take(&mut tail));
            strokes
        }
        _ => panic!("labels must be digit classes 0-9, got {label}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_with_balanced_classes() {
        let data = SynthDigits::default().generate(200, 1);
        assert_eq!(data.len(), 200);
        for (digit, count) in data.class_counts().iter().enumerate() {
            assert_eq!(*count, 20, "class {digit}");
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = SynthDigits::default().generate(30, 99);
        let b = SynthDigits::default().generate(30, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SynthDigits::default().generate(30, 1);
        let b = SynthDigits::default().generate(30, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn images_have_ink_and_background() {
        let data = SynthDigits::default().generate(20, 7);
        for (img, label) in data.iter() {
            let max = *img.iter().max().unwrap();
            let dark = img.iter().filter(|&&p| p < 40).count();
            assert!(max > 150, "digit {label} too faint (max {max})");
            assert!(
                dark > img.len() / 3,
                "digit {label} background too bright ({dark} dark pixels)"
            );
        }
    }

    #[test]
    fn ink_fraction_is_mnist_like() {
        // MNIST images have roughly 10-25% inked pixels.
        let data = SynthDigits::default().generate(100, 3);
        let inked: f64 = (0..data.len())
            .map(|i| {
                data.image(i).iter().filter(|&&p| p > 80).count() as f64
                    / data.image(i).len() as f64
            })
            .sum::<f64>()
            / data.len() as f64;
        assert!(inked > 0.06 && inked < 0.35, "inked fraction {inked:.3}");
    }

    #[test]
    fn classes_are_separable_by_pixel_distance() {
        // Nearest-centroid classification on raw pixels should beat chance
        // by a wide margin — a floor under what the SNN must achieve.
        let gen = SynthDigits::default();
        let train = gen.generate(400, 11);
        let test = gen.generate(100, 12);
        let dim = 28 * 28;
        let mut centroids = vec![[0.0f64; 784]; 10];
        let counts = train.class_counts();
        for (img, label) in train.iter() {
            for (k, &p) in img.iter().enumerate() {
                centroids[label as usize][k] += p as f64;
            }
        }
        for (c, centroid) in centroids.iter_mut().enumerate() {
            for v in centroid.iter_mut().take(dim) {
                *v /= counts[c].max(1) as f64;
            }
        }
        let mut correct = 0;
        for (img, label) in test.iter() {
            let best = (0..10)
                .min_by(|&a, &b| {
                    let da: f64 = img
                        .iter()
                        .enumerate()
                        .map(|(k, &p)| (p as f64 - centroids[a][k]).powi(2))
                        .sum();
                    let db: f64 = img
                        .iter()
                        .enumerate()
                        .map(|(k, &p)| (p as f64 - centroids[b][k]).powi(2))
                        .sum();
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap();
            if best == label as usize {
                correct += 1;
            }
        }
        let accuracy = correct as f64 / test.len() as f64;
        assert!(
            accuracy > 0.8,
            "nearest-centroid accuracy {accuracy:.2} too low — classes not separable"
        );
    }

    #[test]
    fn distance_to_segment_basics() {
        let d = distance_to_segment((0.0, 1.0), (-1.0, 0.0), (1.0, 0.0));
        assert!((d - 1.0).abs() < 1e-12);
        // Beyond the endpoint, distance is to the endpoint.
        let d = distance_to_segment((2.0, 0.0), (-1.0, 0.0), (1.0, 0.0));
        assert!((d - 1.0).abs() < 1e-12);
        // Degenerate segment.
        let d = distance_to_segment((3.0, 4.0), (0.0, 0.0), (0.0, 0.0));
        assert!((d - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "digit classes")]
    fn render_rejects_bad_label() {
        let mut rng = StdRng::seed_from_u64(0);
        SynthDigits::default().render(11, &mut rng);
    }
}
