//! A hand-rolled Rust token scanner — the same std-only discipline as
//! the wire codec: no syn, no proc-macro2, no dependencies.
//!
//! The linter does not need types or full syntax, only a faithful token
//! stream: identifiers, punctuation, and literals with their line
//! numbers, with comments and string *contents* reliably skipped so a
//! doc comment mentioning `unwrap()` or a format string containing
//! `HashMap` can never produce a finding. The tricky cases are exactly
//! the ones that break grep-based linting: nested block comments, raw
//! strings (`r#"…"#`), byte strings, and the lifetime-vs-char-literal
//! ambiguity (`'a` vs `'a'`).

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `HashMap`, `unwrap`, …).
    Ident,
    /// A single punctuation character (`.`, `[`, `::` arrives as two).
    Punct,
    /// A string or byte-string literal (contents discarded).
    Str,
    /// A character or byte literal.
    Char,
    /// A numeric literal.
    Num,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
}

/// One lexed token with its 1-indexed source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// The lexeme kind.
    pub kind: TokKind,
    /// The token text: the identifier itself, the punctuation
    /// character, or a placeholder for literals.
    pub text: String,
    /// 1-indexed line the token starts on.
    pub line: u32,
}

impl Token {
    /// Whether this token is the identifier `text`.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// Whether this token is the punctuation character `ch`.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(ch)
    }
}

struct Scanner<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Scanner<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn eat_line_comment(&mut self) {
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
    }

    fn eat_block_comment(&mut self) {
        // `/*` already consumed; block comments nest in Rust.
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some(b'*'), Some(b'/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    /// Consumes a `"…"` string body (opening quote already consumed),
    /// honouring `\"` and `\\` escapes.
    fn eat_string(&mut self) {
        while let Some(b) = self.bump() {
            match b {
                b'\\' => {
                    self.bump();
                }
                b'"' => break,
                _ => {}
            }
        }
    }

    /// Consumes a raw string starting at the `r` prefix's hashes:
    /// `r##"…"##` closes only on `"` followed by the same number of
    /// hashes. Returns false if this is not a raw string after all.
    fn eat_raw_string(&mut self) -> bool {
        let mut hashes = 0usize;
        while self.peek(hashes) == Some(b'#') {
            hashes += 1;
        }
        if self.peek(hashes) != Some(b'"') {
            return false;
        }
        for _ in 0..=hashes {
            self.bump();
        }
        loop {
            match self.bump() {
                Some(b'"') => {
                    if (0..hashes).all(|i| self.peek(i) == Some(b'#')) {
                        for _ in 0..hashes {
                            self.bump();
                        }
                        return true;
                    }
                }
                Some(_) => {}
                None => return true,
            }
        }
    }

    /// Disambiguates `'` between a char literal and a lifetime.
    fn eat_quote(&mut self) -> TokKind {
        // `'\…'` is always a char literal.
        if self.peek(0) == Some(b'\\') {
            self.bump();
            self.bump(); // the escape head (u, n, ', …)
            while let Some(b) = self.peek(0) {
                self.bump();
                if b == b'\'' {
                    break;
                }
            }
            return TokKind::Char;
        }
        // `'X'` (one char then a closing quote) is a char literal;
        // `'ident` with no closing quote right after is a lifetime.
        if self
            .peek(0)
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
        {
            let mut len = 1;
            while self
                .peek(len)
                .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
            {
                len += 1;
            }
            if len == 1 && self.peek(1) == Some(b'\'') {
                self.bump();
                self.bump();
                return TokKind::Char;
            }
            for _ in 0..len {
                self.bump();
            }
            return TokKind::Lifetime;
        }
        // `'('`-style punctuation char literal.
        self.bump();
        if self.peek(0) == Some(b'\'') {
            self.bump();
        }
        TokKind::Char
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lexes `src` into a token stream, discarding comments, whitespace,
/// and literal contents but keeping line numbers.
pub fn lex(src: &str) -> Vec<Token> {
    let mut s = Scanner {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut tokens = Vec::new();
    while let Some(b) = s.peek(0) {
        let line = s.line;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                s.bump();
            }
            b'/' if s.peek(1) == Some(b'/') => s.eat_line_comment(),
            b'/' if s.peek(1) == Some(b'*') => {
                s.bump();
                s.bump();
                s.eat_block_comment();
            }
            b'"' => {
                s.bump();
                s.eat_string();
                tokens.push(Token {
                    kind: TokKind::Str,
                    text: String::new(),
                    line,
                });
            }
            b'\'' => {
                s.bump();
                let kind = s.eat_quote();
                tokens.push(Token {
                    kind,
                    text: String::new(),
                    line,
                });
            }
            _ if is_ident_start(b) => {
                let start = s.pos;
                while s.peek(0).is_some_and(is_ident_continue) {
                    s.bump();
                }
                let text = &src[start..s.pos];
                // `r"…"` / `r#"…"#` / `b"…"` / `br#"…"#` string prefixes.
                if matches!(text, "r" | "b" | "br" | "rb") {
                    match s.peek(0) {
                        Some(b'"') if text == "b" => {
                            s.bump();
                            s.eat_string();
                            tokens.push(Token {
                                kind: TokKind::Str,
                                text: String::new(),
                                line,
                            });
                            continue;
                        }
                        // The guard consumes the raw string on success;
                        // on a false start (`r` not followed by a raw
                        // string) nothing is consumed and the prefix
                        // falls through as an ordinary identifier.
                        Some(b'"') | Some(b'#') if text != "b" && s.eat_raw_string() => {
                            tokens.push(Token {
                                kind: TokKind::Str,
                                text: String::new(),
                                line,
                            });
                            continue;
                        }
                        Some(b'\'') if text == "b" => {
                            s.bump();
                            s.eat_quote();
                            tokens.push(Token {
                                kind: TokKind::Char,
                                text: String::new(),
                                line,
                            });
                            continue;
                        }
                        _ => {}
                    }
                }
                tokens.push(Token {
                    kind: TokKind::Ident,
                    text: text.to_string(),
                    line,
                });
            }
            _ if b.is_ascii_digit() => {
                while s.peek(0).is_some_and(is_ident_continue) {
                    s.bump();
                }
                // A decimal point only when followed by another digit,
                // so `0..len` lexes as `0`, `.`, `.`, `len`.
                if s.peek(0) == Some(b'.') && s.peek(1).is_some_and(|c| c.is_ascii_digit()) {
                    s.bump();
                    while s.peek(0).is_some_and(is_ident_continue) {
                        s.bump();
                    }
                }
                tokens.push(Token {
                    kind: TokKind::Num,
                    text: String::new(),
                    line,
                });
            }
            _ => {
                s.bump();
                tokens.push(Token {
                    kind: TokKind::Punct,
                    text: (b as char).to_string(),
                    line,
                });
            }
        }
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_their_contents() {
        let src = r###"
            // HashMap unwrap() in a line comment
            /* nested /* HashMap */ still comment */
            let s = "HashMap.unwrap()";
            let r = r#"unwrap() "quoted" HashMap"#;
            let b = b"HashMap";
            real_ident();
        "###;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "HashMap" || i == "unwrap"));
        assert!(ids.iter().any(|i| i == "real_ident"));
    }

    #[test]
    fn lifetimes_and_char_literals_disambiguate() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; }");
        let lifetimes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let chars = toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!((lifetimes, chars), (2, 2));
    }

    #[test]
    fn ranges_do_not_swallow_dots() {
        let toks = lex("for i in 0..len {}");
        assert!(toks.iter().any(|t| t.is_ident("len")));
        assert_eq!(toks.iter().filter(|t| t.is_punct('.')).count(), 2);
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let toks = lex("/* a\nb\nc */ x\n\"s\ntring\" y");
        let x = toks.iter().find(|t| t.is_ident("x")).unwrap();
        let y = toks.iter().find(|t| t.is_ident("y")).unwrap();
        assert_eq!(x.line, 3);
        assert_eq!(y.line, 5);
    }
}
