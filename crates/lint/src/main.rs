//! CLI for the workspace invariant checker.
//!
//! ```text
//! cargo run -p lint                        # report (exit 0)
//! cargo run -p lint -- --deny-all         # CI mode: exit 2 on violations
//! cargo run -p lint -- --update-baseline  # bless panic-count reductions
//! cargo run -p lint -- --report lint.txt  # also write the report to a file
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: lint [--deny-all] [--update-baseline] [--root PATH] [--report PATH]\n\
         \n\
         --deny-all         exit 2 if any violation remains\n\
         --update-baseline  rewrite crates/lint/panic_baseline.txt from current counts\n\
         --root PATH        workspace root (default: ancestor of this crate)\n\
         --report PATH      also write the rendered report to PATH"
    );
    std::process::exit(64);
}

fn main() -> ExitCode {
    let mut deny_all = false;
    let mut update_baseline = false;
    let mut root: Option<PathBuf> = None;
    let mut report_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-all" => deny_all = true,
            "--update-baseline" => update_baseline = true,
            "--root" => root = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--report" => report_path = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            _ => usage(),
        }
    }
    // Default root: two levels up from this crate's manifest dir —
    // works from any cwd under `cargo run -p lint`.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|e| {
                eprintln!("lint: cannot resolve workspace root: {e}");
                std::process::exit(74);
            })
    });

    let report = match lint::lint_tree(&root, update_baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: {e}");
            return ExitCode::from(74);
        }
    };
    let rendered = report.render();
    print!("{rendered}");
    if let Some(p) = report_path {
        if let Err(e) = std::fs::write(&p, &rendered) {
            eprintln!("lint: cannot write report {}: {e}", p.display());
            return ExitCode::from(74);
        }
    }
    if deny_all && !report.violations.is_empty() {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}
