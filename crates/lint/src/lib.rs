//! repro-lint: a dependency-free invariant checker for this workspace.
//!
//! Clippy checks Rust; this checks *the repro*. The properties that
//! make the system trustworthy — bit-identical results across serial/
//! pooled/distributed execution, a panic-free coordinator ack path, a
//! deadlock-free lock order, a fully-covered wire protocol, and
//! allocation-capped decodes — are workspace-specific and invisible to
//! generic tooling. Each is encoded here as a rule over a hand-rolled
//! token stream (no syn, no proc-macro2: the container is offline and
//! the workspace vendors no parser), so the whole analyzer is std-only
//! and runs as both `cargo run -p lint` and a tier-1 integration test.
//!
//! Rules:
//! * `determinism` — no unordered collections / clocks / ambient
//!   randomness in the deterministic zones ([`rules::determinism`]).
//! * `panic-ratchet` — per-file panic-site counts in `dist`/`store`/
//!   `solver`/`spice` only go down ([`rules::panics`]).
//! * `lock-order` — the coordinator's Mutex graph stays acyclic
//!   ([`rules::locks`]).
//! * `wire-coverage` — every `Message` variant encodes, decodes, and is
//!   property-tested ([`rules::wire_cov`]).
//! * `capped-reads` — every wire decode flows through an allocation
//!   guard ([`rules::capped`]).
//!
//! Exceptions are not comments scattered through the tree: they live in
//! [`ALLOWLIST`], each with the file, the token, and a written reason,
//! so the full set of waived hazards is reviewable in one place.

pub mod lexer;
pub mod model;
pub mod rules;

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use model::FileModel;

/// One rule violation (or allowlisted hazard) at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id (`determinism`, `panic-ratchet`, …).
    pub rule: &'static str,
    /// Workspace-relative `/`-separated path.
    pub file: String,
    /// 1-indexed line (0 when the finding is about the whole file).
    pub line: u32,
    /// The offending identifier, when there is one.
    pub token: String,
    /// What is wrong and what to do instead.
    pub message: String,
}

/// A blessed exception: rule + file suffix + token, with the reason the
/// hazard is acceptable there.
pub struct Allow {
    pub rule: &'static str,
    pub file_suffix: &'static str,
    pub token: &'static str,
    pub reason: &'static str,
}

/// Every waived hazard in the workspace. Additions need a reason that
/// explains why the invariant is not at risk.
pub const ALLOWLIST: &[Allow] = &[
    Allow {
        rule: "determinism",
        file_suffix: "crates/store/src/lib.rs",
        token: "SystemTime",
        reason: "eviction freshness stamps; stripped before digesting, never merged or sent",
    },
    Allow {
        rule: "determinism",
        file_suffix: "crates/dist/src/coordinator.rs",
        token: "Instant",
        reason: "scheduler timeout/lease bookkeeping; compared locally, never serialized",
    },
    Allow {
        rule: "determinism",
        file_suffix: "crates/bench/src/perf.rs",
        token: "Instant",
        reason: "perf harness wall-time measurement; reported, not digested",
    },
    Allow {
        rule: "determinism",
        file_suffix: "crates/bench/src/orchestrate.rs",
        token: "SystemTime",
        reason: "human-facing report timestamps; outside the result byte stream",
    },
    Allow {
        rule: "determinism",
        file_suffix: "crates/bench/src/orchestrate.rs",
        token: "Instant",
        reason: "campaign wall-time accounting; reported, not digested",
    },
    Allow {
        rule: "determinism",
        file_suffix: "crates/bench/src/bin/repro.rs",
        token: "Instant",
        reason: "CLI progress/elapsed display; human-facing only",
    },
    Allow {
        rule: "capped-reads",
        file_suffix: "crates/dist/src/checkpoint.rs",
        token: "read_to_string",
        reason: "replays the local on-disk journal, not peer-controlled wire input",
    },
];

/// Result of linting a tree: hard violations, waived hazards (with
/// their reasons), and informational notes.
#[derive(Debug, Default)]
pub struct Report {
    pub violations: Vec<Finding>,
    pub allowed: Vec<(Finding, &'static str)>,
    pub notes: Vec<String>,
}

impl Report {
    /// Sorts, then splits raw findings into violations and waived ones.
    fn absorb(&mut self, mut findings: Vec<Finding>) {
        findings.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
        });
        for f in findings {
            match ALLOWLIST.iter().find(|a| {
                a.rule == f.rule
                    && f.file.ends_with(a.file_suffix)
                    && (a.token == "*" || a.token == f.token)
            }) {
                Some(a) => self.allowed.push((f, a.reason)),
                None => self.violations.push(f),
            }
        }
    }

    /// Human/CI-readable rendering; also the snapshot format.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for f in &self.violations {
            let _ = writeln!(
                s,
                "deny {}: {}:{} `{}` {}",
                f.rule, f.file, f.line, f.token, f.message
            );
        }
        for (f, reason) in &self.allowed {
            let _ = writeln!(
                s,
                "allow {}: {}:{} `{}` ({reason})",
                f.rule, f.file, f.line, f.token
            );
        }
        for n in &self.notes {
            let _ = writeln!(s, "note: {n}");
        }
        let _ = writeln!(
            s,
            "{} violation(s), {} allowlisted, {} note(s)",
            self.violations.len(),
            self.allowed.len(),
            self.notes.len()
        );
        s
    }
}

/// Recursively collects `.rs` files under `dir`, sorted for
/// deterministic report order.
fn rs_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&d)?
            .map(|e| e.map(|e| e.path()))
            .collect::<io::Result<_>>()?;
        entries.sort();
        for p in entries {
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn rel(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .to_string_lossy()
        .replace('\\', "/")
}

fn load_model(root: &Path, p: &Path) -> io::Result<FileModel> {
    Ok(FileModel::parse(rel(root, p), &fs::read_to_string(p)?))
}

/// Parses `panic_baseline.txt` (`<count> <path>` per line, `#` comments).
pub fn load_baseline(path: &Path) -> io::Result<BTreeMap<String, usize>> {
    let mut out = BTreeMap::new();
    for line in fs::read_to_string(path)?.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (count, file) = line.split_once(' ').ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad baseline line: {line}"),
            )
        })?;
        let count = count.parse::<usize>().map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad baseline count: {line}"),
            )
        })?;
        out.insert(file.trim().to_string(), count);
    }
    Ok(out)
}

fn render_baseline(counts: &BTreeMap<String, Vec<rules::panics::PanicSite>>) -> String {
    let mut s = String::from(
        "# Panic-freedom ratchet: per-file unwrap/expect/index counts in non-test\n\
         # dist/store/solver/spice source. This file only goes DOWN. Bless\n\
         # intentional reductions with `cargo run -p lint -- --update-baseline`.\n",
    );
    for (file, sites) in counts {
        if !sites.is_empty() {
            let _ = writeln!(s, "{} {}", sites.len(), file);
        }
    }
    s
}

/// The crates whose `src/` trees form the deterministic zone.
const DETERMINISM_ZONE: &[&str] = &["core", "dist", "store", "bench", "solver"];
/// The crates under the panic ratchet.
const PANIC_ZONE: &[&str] = &["dist", "store", "solver", "spice"];

/// Lints the real workspace rooted at `root`. With `update_baseline`
/// the panic baseline file is rewritten from the current counts instead
/// of being enforced.
pub fn lint_tree(root: &Path, update_baseline: bool) -> io::Result<Report> {
    let mut report = Report::default();
    let mut findings = Vec::new();

    // determinism: every src file in the zone crates.
    for krate in DETERMINISM_ZONE {
        let src = root.join("crates").join(krate).join("src");
        for p in rs_files(&src)? {
            let model = load_model(root, &p)?;
            rules::determinism::check(&model, &mut findings);
        }
    }

    // panic-ratchet: per-file counts across dist/store/solver/spice src.
    let mut counts: BTreeMap<String, Vec<rules::panics::PanicSite>> = BTreeMap::new();
    for krate in PANIC_ZONE {
        let src = root.join("crates").join(krate).join("src");
        for p in rs_files(&src)? {
            let model = load_model(root, &p)?;
            counts.insert(model.rel.clone(), rules::panics::sites(&model));
        }
    }
    let baseline_path = root.join("crates/lint/panic_baseline.txt");
    if update_baseline {
        fs::write(&baseline_path, render_baseline(&counts))?;
        report.notes.push(format!(
            "panic baseline rewritten: {}",
            rel(root, &baseline_path)
        ));
    } else {
        let baseline = load_baseline(&baseline_path)?;
        rules::panics::ratchet(&counts, &baseline, &mut findings);
    }
    let total: usize = counts.values().map(Vec::len).sum();
    report.notes.push(format!(
        "panic-ratchet: {total} site(s) across {} file(s)",
        counts.values().filter(|v| !v.is_empty()).count()
    ));

    // capped-reads: the wire layer (all of dist src).
    for p in rs_files(&root.join("crates/dist/src"))? {
        let model = load_model(root, &p)?;
        rules::capped::check(&model, &mut findings);
    }

    // lock-order: the coordinator.
    let coordinator = root.join("crates/dist/src/coordinator.rs");
    rules::locks::check(&load_model(root, &coordinator)?, &mut findings);

    // wire-coverage: the Message enum vs its codec and property tests.
    let wire = load_model(root, &root.join("crates/dist/src/wire.rs"))?;
    let props = fs::read_to_string(root.join("crates/dist/tests/properties.rs"))?;
    rules::wire_cov::check(&wire, Some(&props), &mut findings);

    report.absorb(findings);
    Ok(report)
}

/// Lints a fixture directory: every rule runs on every file, with an
/// empty panic baseline and no property-test leg for wire coverage.
/// Used by the self-test corpus under `tests/fixtures/`.
pub fn lint_fixture_dir(dir: &Path) -> io::Result<Report> {
    let mut report = Report::default();
    let mut findings = Vec::new();
    let mut counts: BTreeMap<String, Vec<rules::panics::PanicSite>> = BTreeMap::new();
    for p in rs_files(dir)? {
        let model = load_model(dir, &p)?;
        rules::determinism::check(&model, &mut findings);
        rules::capped::check(&model, &mut findings);
        rules::locks::check(&model, &mut findings);
        rules::wire_cov::check(&model, None, &mut findings);
        let sites = rules::panics::sites(&model);
        if !sites.is_empty() {
            counts.insert(model.rel.clone(), sites);
        }
    }
    rules::panics::ratchet(&counts, &BTreeMap::new(), &mut findings);
    report.absorb(findings);
    Ok(report)
}
