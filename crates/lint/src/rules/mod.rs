//! The five invariant rules. Each exposes a `check`/`sites` entry point
//! over a [`crate::model::FileModel`] and pushes [`crate::Finding`]s.

pub mod capped;
pub mod determinism;
pub mod locks;
pub mod panics;
pub mod wire_cov;
