//! Rule `capped-reads`: every variable-length decode in the wire layer
//! must flow through an allocation guard.
//!
//! PRs 4 and 6 hardened the codec so a hostile or corrupt length prefix
//! can never provoke an outsized allocation: text fields decode through
//! `capped_string(what, max)` (which names the field and refuses the
//! length *before* allocating) and collection lengths through
//! `seq_len(min_item_bytes)` (which cross-checks the bytes actually
//! present). A new frame added without those guards silently re-opens
//! the bug class. This rule flags, in non-test `dist` source:
//!
//! * zero-argument `.string()` decode calls — the legacy convenience
//!   that neither names the field nor applies the field's own cap;
//! * direct `from_utf8` conversions outside `capped_string` itself —
//!   the sign of a by-hand text decode bypassing the guard;
//! * unbounded reads (`read_to_end` / `read_to_string`) on peers;
//! * length-driven allocations (`vec![…; len]`, `with_capacity(len)`,
//!   `reserve(len)`) inside decode-context functions with no visible
//!   `MAX_*` comparison or `seq_len` call guarding the length.

use crate::lexer::TokKind;
use crate::model::{FileModel, FnSpan};
use crate::Finding;

/// Whether the function body looks like a decode context (touches raw
/// incoming bytes).
fn decode_context(model: &FileModel, f: &FnSpan) -> bool {
    model.tokens[f.body_open..=f.body_close]
        .iter()
        .any(|t| t.is_ident("Decoder") || t.is_ident("from_be_bytes") || t.is_ident("read_exact"))
}

/// Whether `len_ident` is guarded within the function: compared against
/// a `MAX_*` constant, or the function uses `seq_len` at all.
fn guarded(model: &FileModel, f: &FnSpan, len_ident: &str) -> bool {
    let body = &model.tokens[f.body_open..=f.body_close];
    if body.iter().any(|t| t.is_ident("seq_len")) {
        return true;
    }
    body.windows(3).any(|w| {
        let max_cmp =
            |t: &crate::lexer::Token| t.kind == TokKind::Ident && t.text.starts_with("MAX_");
        (w[0].is_ident(len_ident) && (w[1].is_punct('>') || w[1].is_punct('<')) && max_cmp(&w[2]))
            || (max_cmp(&w[0])
                && (w[1].is_punct('>') || w[1].is_punct('<'))
                && w[2].is_ident(len_ident))
    })
}

/// Scans one wire-layer file.
pub fn check(model: &FileModel, out: &mut Vec<Finding>) {
    let toks = &model.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if model.in_tests(i) {
            continue;
        }
        // `.string()` with zero arguments: a decode (encode-side
        // `.string(v)` calls carry the value argument).
        if tok.is_ident("string")
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(')'))
        {
            out.push(Finding {
                rule: "capped-reads",
                file: model.rel.clone(),
                line: tok.line,
                token: "string".into(),
                message: "uncapped text decode: use capped_string(\"<field>\", MAX_…) so the \
                          field is named and its own cap applies before allocation"
                    .into(),
            });
        }
        // Raw `from_utf8` outside the shared guard.
        if (tok.is_ident("from_utf8") || tok.is_ident("from_utf8_lossy"))
            && model
                .enclosing_fn(i)
                .is_none_or(|f| f.name != "capped_string")
        {
            out.push(Finding {
                rule: "capped-reads",
                file: model.rel.clone(),
                line: tok.line,
                token: tok.text.clone(),
                message: "text decoded outside capped_string: route every wire string through \
                          the shared allocation guard"
                    .into(),
            });
        }
        // Unbounded reads from a peer.
        if tok.is_ident("read_to_end") || tok.is_ident("read_to_string") {
            out.push(Finding {
                rule: "capped-reads",
                file: model.rel.clone(),
                line: tok.line,
                token: tok.text.clone(),
                message: "unbounded read: wire input must be length-prefixed and capped \
                          (read_frame / MAX_FRAME_LEN)"
                    .into(),
            });
        }
        // Length-driven allocations in decode contexts.
        let alloc_len: Option<&str> = if (tok.is_ident("with_capacity") || tok.is_ident("reserve"))
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 2).is_some_and(|t| t.kind == TokKind::Ident)
            && toks.get(i + 3).is_some_and(|t| t.is_punct(')'))
        {
            Some(toks[i + 2].text.as_str())
        } else if tok.is_ident("vec")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('['))
            && toks.get(i + 4).is_some_and(|t| t.is_punct(';'))
            && toks.get(i + 5).is_some_and(|t| t.kind == TokKind::Ident)
            && toks.get(i + 6).is_some_and(|t| t.is_punct(']'))
        {
            Some(toks[i + 5].text.as_str())
        } else {
            None
        };
        if let Some(len_ident) = alloc_len {
            if let Some(f) = model.enclosing_fn(i) {
                if decode_context(model, f) && !guarded(model, f, len_ident) {
                    out.push(Finding {
                        rule: "capped-reads",
                        file: model.rel.clone(),
                        line: tok.line,
                        token: len_ident.to_string(),
                        message: format!(
                            "allocation sized by decoded `{len_ident}` with no MAX_* bound or \
                             seq_len guard in scope: a corrupt length prefix can exhaust memory"
                        ),
                    });
                }
            }
        }
    }
}
