//! Rule `lock-order`: the coordinator's Mutex acquisition graph must be
//! acyclic.
//!
//! `coordinator.rs` documents a strict order — `state` before `store`,
//! and `conns` never held across another acquisition — but nothing
//! enforced it; a deadlock introduced by a refactor would only show up
//! as a hung soak run. This rule rebuilds the acquisition graph from
//! the token stream: it tracks which guards are live at each point in a
//! function (let-bound guards scoped to their block, statement
//! temporaries dropped at `;`, explicit `drop(g)`, and guard-consuming
//! calls like `wait_changed(state, …)`), records an edge `A → B`
//! whenever lock B is taken while a guard on A is live, propagates
//! edges through calls to other functions in the same file, and fails
//! on any cycle. Re-acquiring a lock already held is flagged directly
//! (self-deadlock with std's non-reentrant Mutex).

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::TokKind;
use crate::model::{FileModel, FnSpan};
use crate::Finding;

/// Helper functions that *return a live guard* on a named lock.
const ACQUIRERS: &[(&str, &str)] = &[
    ("lock_state", "state"),
    ("wait_changed", "state"),
    ("lock_conns", "conns"),
    ("lock_store", "store"),
];

/// Helper functions that acquire and release a named lock internally:
/// they order against locks held by the caller but leave no live guard.
const TRANSIENT: &[(&str, &str)] = &[("register_conn", "conns"), ("cancel_all_conns", "conns")];

#[derive(Debug, Clone)]
struct Guard {
    lock: String,
    /// Brace depth at acquisition; the guard dies when the block closes.
    depth: usize,
    /// `Some(name)` for `let name = …` bindings, `None` for statement
    /// temporaries (which die at the next `;`).
    binding: Option<String>,
}

/// An acquisition-order edge with one witness line.
type Edges = BTreeMap<(String, String), u32>;

/// The lock a call at token `i` acquires: `(lock, leaves_live_guard)`.
fn acquired_lock(model: &FileModel, i: usize) -> Option<(String, bool)> {
    let toks = &model.tokens;
    let tok = &toks[i];
    if tok.kind != TokKind::Ident || !toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
        return None;
    }
    if let Some((_, lock)) = ACQUIRERS.iter().find(|(f, _)| tok.is_ident(f)) {
        return Some(((*lock).to_string(), true));
    }
    if let Some((_, lock)) = TRANSIENT.iter().find(|(f, _)| tok.is_ident(f)) {
        return Some(((*lock).to_string(), false));
    }
    // Generic `<name> . lock ( … )` — the lock is named by the receiver.
    if tok.is_ident("lock")
        && i >= 2
        && toks[i - 1].is_punct('.')
        && toks[i - 2].kind == TokKind::Ident
    {
        return Some((toks[i - 2].text.clone(), true));
    }
    None
}

/// The binding name of the statement containing token `i`, if the
/// statement is `let name = …` / `let (name, …) = …` / `name = …`.
fn statement_binding(model: &FileModel, i: usize) -> Option<String> {
    let toks = &model.tokens;
    // Walk back to the start of the statement.
    let mut j = i;
    while j > 0 {
        let t = &toks[j - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        j -= 1;
    }
    if toks[j].is_ident("let") {
        let mut k = j + 1;
        if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
            k += 1;
        }
        if toks.get(k).is_some_and(|t| t.is_punct('(')) {
            k += 1;
        }
        if toks.get(k).is_some_and(|t| t.kind == TokKind::Ident) {
            return Some(toks[k].text.clone());
        }
        return None;
    }
    if toks[j].kind == TokKind::Ident && toks.get(j + 1).is_some_and(|t| t.is_punct('=')) {
        return Some(toks[j].text.clone());
    }
    None
}

/// Identifiers appearing in the argument list starting at the `(` at
/// index `open`.
fn call_args(model: &FileModel, open: usize) -> Vec<String> {
    let toks = &model.tokens;
    let mut depth = 0usize;
    let mut args = Vec::new();
    for tok in toks.iter().skip(open) {
        if tok.is_punct('(') {
            depth += 1;
        } else if tok.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if tok.kind == TokKind::Ident {
            args.push(tok.text.clone());
        }
    }
    args
}

/// Walks one function body, collecting order edges and same-lock
/// re-acquisitions. `fn_locks` maps local function names to the locks
/// they (transitively) acquire, for call-through edges.
fn walk_fn(
    model: &FileModel,
    f: &FnSpan,
    fn_locks: &BTreeMap<String, BTreeSet<String>>,
    edges: &mut Edges,
    out: &mut Vec<Finding>,
) {
    let toks = &model.tokens;
    let mut live: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let mut i = f.body_open;
    while i <= f.body_close {
        let tok = &toks[i];
        if tok.is_punct('{') {
            depth += 1;
        } else if tok.is_punct('}') {
            live.retain(|g| g.depth < depth);
            depth = depth.saturating_sub(1);
        } else if tok.is_punct(';') {
            live.retain(|g| g.binding.is_some());
        } else if tok.is_ident("drop")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 2).is_some_and(|t| t.kind == TokKind::Ident)
            && toks.get(i + 3).is_some_and(|t| t.is_punct(')'))
        {
            let dropped = &toks[i + 2].text;
            live.retain(|g| g.binding.as_deref() != Some(dropped));
            i += 3;
        } else if let Some((lock, leaves_guard)) = acquired_lock(model, i) {
            // A guard passed into the acquiring call is consumed by it
            // (e.g. `wait_changed(state, timeout)` re-yields the state
            // guard rather than double-locking).
            let args = call_args(model, i + 1);
            let consumed: Vec<String> = live
                .iter()
                .filter(|g| {
                    g.binding
                        .as_deref()
                        .is_some_and(|b| args.iter().any(|a| a == b))
                })
                .map(|g| g.lock.clone())
                .collect();
            live.retain(|g| {
                !g.binding
                    .as_deref()
                    .is_some_and(|b| args.iter().any(|a| a == b))
            });
            for g in &live {
                if g.lock == lock {
                    out.push(Finding {
                        rule: "lock-order",
                        file: model.rel.clone(),
                        line: tok.line,
                        token: lock.clone(),
                        message: format!(
                            "`{}` re-acquires `{lock}` while already holding it: std Mutex is \
                             not reentrant, this self-deadlocks",
                            f.name
                        ),
                    });
                } else {
                    edges
                        .entry((g.lock.clone(), lock.clone()))
                        .or_insert(tok.line);
                }
            }
            let _ = consumed;
            if leaves_guard {
                live.push(Guard {
                    lock,
                    depth,
                    binding: statement_binding(model, i),
                });
            }
        } else if tok.kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && !toks.get(i.wrapping_sub(1)).is_some_and(|t| t.is_punct('.'))
        {
            // Call to another function in this file: every lock it
            // transitively takes orders after every guard live here.
            if let Some(callee_locks) = fn_locks.get(&tok.text) {
                for g in &live {
                    for lock in callee_locks {
                        if &g.lock != lock {
                            edges
                                .entry((g.lock.clone(), lock.clone()))
                                .or_insert(tok.line);
                        }
                    }
                }
            }
        }
        i += 1;
    }
}

/// The set of locks each function acquires directly, then propagated
/// through same-file calls to a fixed point.
fn transitive_fn_locks(model: &FileModel) -> BTreeMap<String, BTreeSet<String>> {
    let toks = &model.tokens;
    let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for f in &model.fns {
        let mut locks = BTreeSet::new();
        for i in f.body_open..=f.body_close {
            if let Some((lock, _)) = acquired_lock(model, i) {
                locks.insert(lock);
            }
        }
        direct.insert(f.name.clone(), locks);
    }
    // Propagate through calls until stable.
    loop {
        let mut changed = false;
        for f in &model.fns {
            let mut add = BTreeSet::new();
            for i in f.body_open..=f.body_close {
                let tok = &toks[i];
                if tok.kind == TokKind::Ident
                    && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                    && tok.text != f.name
                {
                    if let Some(callee) = direct.get(&tok.text) {
                        add.extend(callee.iter().cloned());
                    }
                }
            }
            let own = direct.entry(f.name.clone()).or_default();
            for lock in add {
                changed |= own.insert(lock);
            }
        }
        if !changed {
            break;
        }
    }
    direct
}

/// DFS cycle search over the edge set; returns one cycle as a path.
fn find_cycle(edges: &Edges) -> Option<Vec<String>> {
    let nodes: BTreeSet<&String> = edges.keys().flat_map(|(a, b)| [a, b]).collect();
    let succ = |n: &String| -> Vec<&String> {
        edges
            .keys()
            .filter(|(a, _)| a == n)
            .map(|(_, b)| b)
            .collect()
    };
    fn dfs<'a>(
        n: &'a String,
        succ: &dyn Fn(&String) -> Vec<&'a String>,
        path: &mut Vec<&'a String>,
        done: &mut BTreeSet<&'a String>,
    ) -> Option<Vec<String>> {
        if let Some(pos) = path.iter().position(|p| *p == n) {
            let mut cycle: Vec<String> = path[pos..].iter().map(|s| (*s).clone()).collect();
            cycle.push(n.clone());
            return Some(cycle);
        }
        if done.contains(n) {
            return None;
        }
        path.push(n);
        for m in succ(n) {
            if let Some(c) = dfs(m, succ, path, done) {
                return Some(c);
            }
        }
        path.pop();
        done.insert(n);
        None
    }
    let mut done = BTreeSet::new();
    for n in nodes {
        if let Some(c) = dfs(n, &succ, &mut Vec::new(), &mut done) {
            return Some(c);
        }
    }
    None
}

/// Scans one coordinator-shaped file for ordering cycles.
pub fn check(model: &FileModel, out: &mut Vec<Finding>) {
    let fn_locks = transitive_fn_locks(model);
    let mut edges: Edges = BTreeMap::new();
    for f in &model.fns {
        if model.in_tests(f.fn_idx) {
            continue;
        }
        walk_fn(model, f, &fn_locks, &mut edges, out);
    }
    if let Some(cycle) = find_cycle(&edges) {
        let line = edges
            .iter()
            .find(|((a, b), _)| *a == cycle[0] && Some(b) == cycle.get(1))
            .map_or(0, |(_, &l)| l);
        out.push(Finding {
            rule: "lock-order",
            file: model.rel.clone(),
            line,
            token: cycle[0].clone(),
            message: format!(
                "lock acquisition cycle {}: two threads taking these locks in opposite order \
                 deadlock; pick one global order and stick to it",
                cycle.join(" -> ")
            ),
        });
    }
}
