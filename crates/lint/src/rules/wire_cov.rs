//! Rule `wire-coverage`: every `Message` variant must have an encode
//! site, a decode site, and property-test coverage.
//!
//! The wire protocol is versioned and frozen per release; a variant
//! that encodes but never decodes (or vice versa) is a protocol hole
//! that only surfaces when a peer actually sends it, and a variant
//! absent from `properties.rs` has no round-trip/fuzz coverage pinning
//! its byte layout. This rule parses the `enum Message` declaration,
//! then requires each variant name to appear inside `fn encode`, inside
//! `fn decode`, and anywhere in the property-test source.

use crate::lexer::TokKind;
use crate::model::{match_brace, FileModel};
use crate::Finding;

/// Variant names of `enum Message { … }`, with declaration lines.
fn message_variants(model: &FileModel) -> Vec<(String, u32)> {
    let toks = &model.tokens;
    let Some(enum_idx) = toks
        .windows(2)
        .position(|w| w[0].is_ident("enum") && w[1].is_ident("Message"))
    else {
        return Vec::new();
    };
    let Some(open) = (enum_idx..toks.len()).find(|&i| toks[i].is_punct('{')) else {
        return Vec::new();
    };
    let close = match_brace(toks, open);
    let mut variants = Vec::new();
    let mut depth = 0usize; // nested braces/parens/brackets inside variant payloads
    let mut i = open + 1;
    let mut at_variant_start = true;
    while i < close {
        let tok = &toks[i];
        if tok.is_punct('{') || tok.is_punct('(') || tok.is_punct('[') {
            depth += 1;
        } else if tok.is_punct('}') || tok.is_punct(')') || tok.is_punct(']') {
            depth = depth.saturating_sub(1);
        } else if depth == 0 {
            if tok.is_punct('#') {
                // Skip the attribute body.
                if toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
                    let mut d = 0usize;
                    while i < close {
                        if toks[i].is_punct('[') {
                            d += 1;
                        } else if toks[i].is_punct(']') {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        i += 1;
                    }
                }
            } else if tok.is_punct(',') {
                at_variant_start = true;
            } else if at_variant_start && tok.kind == TokKind::Ident {
                variants.push((tok.text.clone(), tok.line));
                at_variant_start = false;
            }
        }
        i += 1;
    }
    variants
}

/// Whether `name` appears as an identifier inside the body of any
/// function called `fn_name`.
fn mentioned_in_fn(model: &FileModel, fn_name: &str, name: &str) -> bool {
    model.fns.iter().filter(|f| f.name == fn_name).any(|f| {
        model.tokens[f.body_open..=f.body_close]
            .iter()
            .any(|t| t.is_ident(name))
    })
}

/// Checks the wire file's `Message` enum. `properties_src` is the raw
/// property-test source when available (`None` in fixture mode skips
/// that leg).
pub fn check(model: &FileModel, properties_src: Option<&str>, out: &mut Vec<Finding>) {
    let variants = message_variants(model);
    let prop_tokens = properties_src.map(crate::lexer::lex);
    for (name, line) in variants {
        let mut missing = Vec::new();
        if !mentioned_in_fn(model, "encode", &name) {
            missing.push("an encode site (fn encode)");
        }
        if !mentioned_in_fn(model, "decode", &name) {
            missing.push("a decode site (fn decode)");
        }
        if let Some(props) = &prop_tokens {
            if !props.iter().any(|t| t.is_ident(&name)) {
                missing.push("property-test coverage (tests/properties.rs)");
            }
        }
        if !missing.is_empty() {
            out.push(Finding {
                rule: "wire-coverage",
                file: model.rel.clone(),
                line,
                token: name.clone(),
                message: format!(
                    "Message::{name} lacks {}: every wire variant needs all three before it \
                     can ship",
                    missing.join(" and ")
                ),
            });
        }
    }
}
