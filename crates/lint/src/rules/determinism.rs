//! Rule `determinism`: no unordered collections or ambient
//! nondeterminism in code that can reach bytes which get digested,
//! journaled, stored, or sent.
//!
//! The repro's core guarantee is that serial, pooled, and distributed
//! runs of any scenario are *bit*-identical, and that content digests
//! key a persistent cross-campaign store. One `HashMap` iteration
//! feeding a digest, one `SystemTime` stamp inside a journaled record,
//! or one thread-id-seeded value in a wire payload silently breaks
//! every one of those properties. Inside the declared deterministic
//! zones this rule flags *any* use of the forbidden identifiers —
//! imports included — so the hazard is visible at the point where it
//! becomes reachable, not only where it is misused. Legitimate uses
//! (perf timing, eviction stamps) go through the allowlist, which
//! requires a written reason.

use crate::model::FileModel;
use crate::Finding;

/// Identifiers forbidden inside deterministic zones, each with the
/// invariant it would break.
pub const FORBIDDEN: &[(&str, &str)] = &[
    (
        "HashMap",
        "iteration order is randomized per process; use BTreeMap or sort before bytes leave",
    ),
    (
        "HashSet",
        "iteration order is randomized per process; use BTreeSet or sort before bytes leave",
    ),
    (
        "RandomState",
        "per-process random hasher seeds; deterministic zones must not observe them",
    ),
    (
        "SystemTime",
        "wall-clock values differ per run; they must never reach digested/journaled bytes",
    ),
    (
        "Instant",
        "monotonic-clock values differ per run; they must never reach digested/journaled bytes",
    ),
    (
        "thread_rng",
        "ambient randomness; deterministic zones derive everything from explicit seeds",
    ),
    (
        "ThreadId",
        "thread identity varies with scheduling; results must not depend on it",
    ),
];

/// Scans one in-zone file for forbidden identifiers (non-test code
/// only).
pub fn check(model: &FileModel, out: &mut Vec<Finding>) {
    for (i, tok) in model.tokens.iter().enumerate() {
        if model.in_tests(i) {
            continue;
        }
        if let Some((name, why)) = FORBIDDEN.iter().find(|(name, _)| tok.is_ident(name)) {
            out.push(Finding {
                rule: "determinism",
                file: model.rel.clone(),
                line: tok.line,
                token: (*name).to_string(),
                message: format!("`{name}` in a deterministic zone: {why}"),
            });
        }
    }
}
