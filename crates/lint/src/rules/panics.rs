//! Rule `panic-ratchet`: panic sites in non-test `dist`/`store` code
//! may only ever decrease.
//!
//! A panic on the coordinator's ack path tears scheduler state mid-
//! update (the lock-poison recovery then fails the whole run), and a
//! panic in the store corrupts the in-memory index behind every
//! campaign's dedup. Eliminating all ~hundred existing sites in one PR
//! is not realistic, so this rule is a *ratchet*: the committed
//! baseline (`crates/lint/panic_baseline.txt`) records today's per-file
//! counts, any increase fails, and intentional decreases are blessed
//! with `--update-baseline` so the slack cannot be spent elsewhere.
//!
//! A "panic site" is an `unwrap()` call, an `expect(…)` call, or an
//! index expression (`xs[i]`, `&buf[a..b]` — both panic on
//! out-of-bounds). Array-type syntax, attributes, and macro brackets
//! are not index expressions and are not counted.

use std::collections::BTreeMap;

use crate::lexer::TokKind;
use crate::model::FileModel;
use crate::Finding;

/// One detected panic site.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// 1-indexed source line.
    pub line: u32,
    /// `unwrap`, `expect`, or `index`.
    pub kind: &'static str,
}

/// Keywords that may directly precede `[` without making it an index
/// expression (`let [a, b] = …`, `for x in [1, 2]`, `return [0; 4]`).
const NON_INDEX_PREFIX: &[&str] = &[
    "let", "mut", "ref", "in", "return", "break", "if", "else", "match", "move", "as", "const",
    "static", "box", "yield",
];

/// Collects the panic sites in one file's non-test code.
pub fn sites(model: &FileModel) -> Vec<PanicSite> {
    let toks = &model.tokens;
    let mut out = Vec::new();
    for (i, tok) in toks.iter().enumerate() {
        if model.in_tests(i) {
            continue;
        }
        // `.unwrap()` / `.expect(` calls.
        if tok.kind == TokKind::Ident
            && (tok.text == "unwrap" || tok.text == "expect")
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            out.push(PanicSite {
                line: tok.line,
                kind: if tok.text == "unwrap" {
                    "unwrap"
                } else {
                    "expect"
                },
            });
            continue;
        }
        // Index expressions: `[` directly after an expression tail
        // (identifier, `)`, `]`, or `?`) — not after `!` (macros),
        // `#` (attributes), punctuation, or statement keywords.
        if tok.is_punct('[') && i > 0 {
            let prev = &toks[i - 1];
            let is_expr_tail = match prev.kind {
                TokKind::Ident => !NON_INDEX_PREFIX.contains(&prev.text.as_str()),
                TokKind::Punct => prev.is_punct(')') || prev.is_punct(']') || prev.is_punct('?'),
                _ => false,
            };
            if is_expr_tail {
                out.push(PanicSite {
                    line: tok.line,
                    kind: "index",
                });
            }
        }
    }
    out
}

/// Compares per-file counts against the committed baseline. Both
/// directions fail under `--deny-all`: an increase is a new panic site;
/// a decrease is unclaimed slack that must be blessed (otherwise a
/// later regression could hide inside it).
pub fn ratchet(
    counts: &BTreeMap<String, Vec<PanicSite>>,
    baseline: &BTreeMap<String, usize>,
    out: &mut Vec<Finding>,
) {
    for (file, sites) in counts {
        let allowed = baseline.get(file).copied();
        let n = sites.len();
        match allowed {
            None if n > 0 => out.push(Finding {
                rule: "panic-ratchet",
                file: file.clone(),
                line: sites[0].line,
                token: String::new(),
                message: format!(
                    "{n} panic site(s) in a file absent from the baseline; \
                     remove them or bless with --update-baseline"
                ),
            }),
            Some(limit) if n > limit => {
                // Point at the last sites — new code lands at the end
                // more often than not, and the count names the real
                // contract either way.
                let line = sites.last().map_or(0, |s| s.line);
                out.push(Finding {
                    rule: "panic-ratchet",
                    file: file.clone(),
                    line,
                    token: String::new(),
                    message: format!(
                        "{n} panic sites exceed the baseline of {limit}; convert the new \
                         unwrap/expect/index to recoverable errors (the ratchet only goes down)"
                    ),
                });
            }
            Some(limit) if n < limit => out.push(Finding {
                rule: "panic-ratchet",
                file: file.clone(),
                line: 0,
                token: String::new(),
                message: format!(
                    "{n} panic sites, below the baseline of {limit}: good — lock in the \
                     improvement with --update-baseline"
                ),
            }),
            _ => {}
        }
    }
    for file in baseline.keys() {
        if !counts.contains_key(file) {
            out.push(Finding {
                rule: "panic-ratchet",
                file: file.clone(),
                line: 0,
                token: String::new(),
                message: "baselined file no longer exists; refresh with --update-baseline".into(),
            });
        }
    }
}
