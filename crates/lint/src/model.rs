//! A lightweight structural model over the token stream: matched
//! braces, `#[cfg(test)]` / `#[test]` item spans (excluded from every
//! rule), and function bodies (the unit of the lock-order and
//! capped-read analyses).

use crate::lexer::{TokKind, Token};

/// One function with its body's token range.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Token index of the `fn` keyword.
    pub fn_idx: usize,
    /// Token index of the body's opening `{`.
    pub body_open: usize,
    /// Token index of the body's closing `}`.
    pub body_close: usize,
}

/// A lexed file plus the structural facts every rule needs.
#[derive(Debug)]
pub struct FileModel {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// Token ranges (inclusive) covered by `#[cfg(test)]` or `#[test]`
    /// items.
    pub test_spans: Vec<(usize, usize)>,
    /// Every function with a body, in source order (nested functions
    /// appear both inside their parent's range and as their own entry).
    pub fns: Vec<FnSpan>,
}

/// Finds the matching `}` for the `{` at `open`, or the last token if
/// unbalanced.
pub fn match_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, tok) in tokens.iter().enumerate().skip(open) {
        if tok.is_punct('{') {
            depth += 1;
        } else if tok.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// Finds the matching `]` for the `[` at `open` (attribute bodies).
fn match_bracket(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, tok) in tokens.iter().enumerate().skip(open) {
        if tok.is_punct('[') {
            depth += 1;
        } else if tok.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// Whether the attribute starting at `#` (index `i`) is `#[cfg(test)]`
/// or `#[test]`. Returns the index of the closing `]` when it is.
fn test_attr(tokens: &[Token], i: usize) -> Option<usize> {
    if !tokens[i].is_punct('#') || !tokens.get(i + 1)?.is_punct('[') {
        return None;
    }
    let close = match_bracket(tokens, i + 1);
    let body: Vec<&str> = tokens[i + 2..close]
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    match body.as_slice() {
        ["test"] => Some(close),
        ["cfg", rest @ ..] if rest.contains(&"test") => Some(close),
        _ => None,
    }
}

/// Computes the token spans covered by test-gated items: from a
/// `#[cfg(test)]`/`#[test]` attribute through the end of the item it
/// gates (the matching `}` of its first block, or the terminating `;`
/// for blockless items).
fn find_test_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans: Vec<(usize, usize)> = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if let Some(mut close) = test_attr(tokens, i) {
            // Skip any further attributes between the test gate and the
            // item itself.
            let mut j = close + 1;
            while j < tokens.len() && tokens[j].is_punct('#') {
                if let Some(t) = tokens.get(j + 1) {
                    if t.is_punct('[') {
                        j = match_bracket(tokens, j + 1) + 1;
                        continue;
                    }
                }
                break;
            }
            // The gated item ends at its first block's matching brace,
            // or at `;` for items with no block (`use`, `mod foo;`).
            while j < tokens.len() {
                if tokens[j].is_punct('{') {
                    close = match_brace(tokens, j);
                    break;
                }
                if tokens[j].is_punct(';') {
                    close = j;
                    break;
                }
                j += 1;
            }
            spans.push((i, close));
            i = close + 1;
        } else {
            i += 1;
        }
    }
    spans
}

/// Collects every `fn name … { body }` in the stream. Trait-method
/// declarations (`fn f(…);`) have no body and are skipped.
fn find_fns(tokens: &[Token]) -> Vec<FnSpan> {
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i + 1 < tokens.len() {
        if tokens[i].is_ident("fn") && tokens[i + 1].kind == TokKind::Ident {
            let name = tokens[i + 1].text.clone();
            let mut j = i + 2;
            let mut body = None;
            while j < tokens.len() {
                if tokens[j].is_punct('{') {
                    body = Some(j);
                    break;
                }
                if tokens[j].is_punct(';') {
                    break;
                }
                j += 1;
            }
            if let Some(open) = body {
                fns.push(FnSpan {
                    name,
                    fn_idx: i,
                    body_open: open,
                    body_close: match_brace(tokens, open),
                });
            }
            i = j;
        }
        i += 1;
    }
    fns
}

impl FileModel {
    /// Lexes and models one source file.
    pub fn parse(rel: impl Into<String>, src: &str) -> FileModel {
        let tokens = crate::lexer::lex(src);
        let test_spans = find_test_spans(&tokens);
        let fns = find_fns(&tokens);
        FileModel {
            rel: rel.into(),
            tokens,
            test_spans,
            fns,
        }
    }

    /// Whether token `i` lies inside a test-gated item.
    pub fn in_tests(&self, i: usize) -> bool {
        self.test_spans.iter().any(|&(a, b)| a <= i && i <= b)
    }

    /// The innermost function whose body contains token `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.body_open <= i && i <= f.body_close)
            .min_by_key(|f| f.body_close - f.body_open)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mods_are_spanned() {
        let model = FileModel::parse(
            "x.rs",
            "fn live() { a.unwrap(); }\n\
             #[cfg(test)]\nmod tests {\n fn t() { b.unwrap(); }\n}\n\
             fn after() {}",
        );
        let unwraps: Vec<usize> = model
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!model.in_tests(unwraps[0]));
        assert!(model.in_tests(unwraps[1]));
        assert!(model.fns.iter().any(|f| f.name == "after"));
    }

    #[test]
    fn cfg_test_on_blockless_items_stops_at_semicolon() {
        let model = FileModel::parse("x.rs", "#[cfg(test)]\nuse foo::bar;\nfn live() {}");
        let live = model
            .tokens
            .iter()
            .position(|t| t.is_ident("live"))
            .unwrap();
        assert!(!model.in_tests(live));
    }

    #[test]
    fn nested_fns_resolve_to_the_innermost() {
        let model = FileModel::parse("x.rs", "fn outer() { fn inner() { x(); } y(); }");
        let x = model.tokens.iter().position(|t| t.is_ident("x")).unwrap();
        let y = model.tokens.iter().position(|t| t.is_ident("y")).unwrap();
        assert_eq!(model.enclosing_fn(x).unwrap().name, "inner");
        assert_eq!(model.enclosing_fn(y).unwrap().name, "outer");
    }
}
