//! Self-test corpus: every bad fixture must be flagged with the exact
//! rule/file/line recorded in the golden snapshot, and every good
//! fixture must come out clean.
//!
//! Bless intentional output changes with `UPDATE_GOLDEN=1 cargo test -p
//! lint --test fixtures_snapshot` (same convention as the dist crate's
//! golden_digests vectors) and review the diff like any other code
//! change.

use std::path::{Path, PathBuf};

fn fixtures(sub: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(sub)
}

fn golden_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/fixtures.txt")
}

#[test]
fn bad_fixtures_are_flagged_and_good_fixtures_are_clean() {
    let bad = lint::lint_fixture_dir(&fixtures("bad")).expect("bad fixtures lint");
    let good = lint::lint_fixture_dir(&fixtures("good")).expect("good fixtures lint");

    // Hard requirements independent of the snapshot: nothing waived in
    // fixture mode, every bad file caught, every good file silent.
    assert!(bad.allowed.is_empty() && good.allowed.is_empty());
    assert_eq!(
        good.violations.len(),
        0,
        "good fixtures must be clean:\n{}",
        good.render()
    );
    for rule in [
        "determinism",
        "panic-ratchet",
        "lock-order",
        "wire-coverage",
        "capped-reads",
    ] {
        assert!(
            bad.violations.iter().any(|f| f.rule == rule),
            "no bad fixture exercised rule `{rule}`:\n{}",
            bad.render()
        );
    }

    let rendered = format!("== bad ==\n{}== good ==\n{}", bad.render(), good.render());
    let golden = golden_path();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&golden, &rendered).expect("write golden snapshot");
        return;
    }
    let committed = std::fs::read_to_string(&golden).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); bless with UPDATE_GOLDEN=1",
            golden.display()
        )
    });
    assert_eq!(
        committed, rendered,
        "lint output diverged from the committed snapshot; if intentional, \
         bless with UPDATE_GOLDEN=1 and review the diff"
    );
}
