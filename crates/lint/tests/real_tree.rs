//! Tier-1 enforcement: the real workspace must lint clean. This is the
//! same check CI runs as `cargo run -p lint -- --deny-all`, wired into
//! `cargo test` so the invariants hold on every local run too.

use std::path::Path;

#[test]
fn workspace_has_no_invariant_violations() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let report = lint::lint_tree(&root, false).expect("workspace lints");
    assert!(
        report.violations.is_empty(),
        "invariant violations in the workspace:\n{}",
        report.render()
    );
}
