// BAD: `Quit` encodes but has no decode arm — a protocol hole that
// only surfaces when a peer actually sends it.
pub enum Message {
    Ping { nonce: u32 },
    Pong { nonce: u32 },
    Quit,
}

impl Message {
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Message::Ping { nonce } => frame(0, *nonce),
            Message::Pong { nonce } => frame(1, *nonce),
            Message::Quit => frame(2, 0),
        }
    }

    pub fn decode(buf: &[u8]) -> Option<Message> {
        match buf.first()? {
            0 => Some(Message::Ping { nonce: 0 }),
            1 => Some(Message::Pong { nonce: 0 }),
            _ => None,
        }
    }
}
