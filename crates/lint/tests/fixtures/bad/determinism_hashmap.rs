// BAD: HashMap iteration order feeds an accumulator that leaves as
// bytes — the canonical determinism break.
use std::collections::HashMap;

fn digest_entries(map: &HashMap<u64, u64>) -> u64 {
    let mut acc = 0u64;
    for (k, v) in map {
        acc = acc.wrapping_mul(31).wrapping_add(k ^ v);
    }
    acc
}
