// BAD: wall/monotonic clock values inside a deterministic zone.
use std::time::{Instant, SystemTime};

fn stamp() -> u64 {
    let _start = Instant::now();
    match SystemTime::now().duration_since(SystemTime::UNIX_EPOCH) {
        Ok(d) => d.as_secs(),
        Err(_) => 0,
    }
}
