// BAD: two functions acquire the same two locks in opposite orders —
// the textbook deadlock.
fn take_both_forward(shared: &Shared) {
    let state = lock_state(shared);
    let conns = lock_conns(shared);
    drop(conns);
    drop(state);
}

fn take_both_backward(shared: &Shared) {
    let conns = lock_conns(shared);
    let state = lock_state(shared);
    drop(state);
    drop(conns);
}
