// BAD: a zero-argument `.string()` decode and a by-hand UTF-8
// conversion outside the shared guard.
fn decode_name(dec: &mut Decoder) -> Result<String, WireError> {
    dec.string()
}

fn by_hand(bytes: &[u8]) -> String {
    String::from_utf8_lossy(bytes).into_owned()
}
