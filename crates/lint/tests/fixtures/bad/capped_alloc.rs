// BAD: an allocation sized by a decoded length with no MAX_* bound or
// seq_len guard anywhere in the function.
fn decode_payload(bytes: &[u8]) -> Option<Vec<u8>> {
    let mut dec = Decoder::new(bytes);
    let len = dec.u32().ok()? as usize;
    let mut buf = vec![0u8; len];
    dec.read_exact(&mut buf).ok()?;
    Some(buf)
}
