// BAD: three panic sites (unwrap, expect, slice index) in non-test
// code, with no baseline to absorb them.
fn read_parts(xs: &[u64], table: &[u64]) -> u64 {
    let first = xs.first().copied().unwrap();
    let second = xs.get(1).copied().expect("short slice");
    first + second + table[2]
}
