//! GOOD: trigger words inside comments, strings, and raw strings must
//! never produce findings — HashMap, unwrap(), SystemTime::now().

/* block comment: Instant::now().unwrap() /* nested HashMap */ still */
pub fn describe() -> &'static str {
    "call .unwrap() on a HashMap<Instant, SystemTime>"
}

pub fn raw() -> &'static str {
    r#"thread_rng() and xs[2] and vec![0u8; len] with "quotes""#
}

pub fn bytes() -> &'static [u8] {
    b"HashSet iteration .expect(panic)"
}
