// GOOD: the decoded length is bounds-checked against a MAX_* cap
// before the allocation, and raw UTF-8 conversion lives only inside
// the shared `capped_string` guard.
fn decode_payload(bytes: &[u8]) -> Option<Vec<u8>> {
    let mut dec = Decoder::new(bytes);
    let len = dec.u32().ok()? as usize;
    if len > MAX_FRAME_LEN {
        return None;
    }
    let mut buf = vec![0u8; len];
    dec.read_exact(&mut buf).ok()?;
    Some(buf)
}

fn capped_string(bytes: &[u8]) -> Option<String> {
    String::from_utf8(bytes.to_vec()).ok()
}
