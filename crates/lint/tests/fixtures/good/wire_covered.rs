// GOOD: every variant has both an encode and a decode site.
pub enum Message {
    Ping { nonce: u32 },
    Quit,
}

impl Message {
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Message::Ping { nonce } => frame(0, *nonce),
            Message::Quit => frame(1, 0),
        }
    }

    pub fn decode(buf: &[u8]) -> Option<Message> {
        match buf.first()? {
            0 => Some(Message::Ping { nonce: 0 }),
            1 => Some(Message::Quit),
            _ => None,
        }
    }
}
