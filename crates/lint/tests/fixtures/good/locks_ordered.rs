// GOOD: every function acquires in the same global order
// (state before conns), and transient helpers order consistently too.
fn forward_one(shared: &Shared) {
    let state = lock_state(shared);
    let conns = lock_conns(shared);
    drop(conns);
    drop(state);
}

fn forward_two(shared: &Shared) {
    let state = lock_state(shared);
    register_conn(shared);
    drop(state);
}
