// GOOD: hazards confined to test-gated items are invisible to every
// rule — tests may unwrap and hash to their heart's content.
pub fn live() -> u64 {
    7
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn hazards_here_are_fine() {
        let mut m = HashMap::new();
        m.insert(1u64, 2u64);
        assert_eq!(m.get(&1).copied().unwrap(), 2);
        let v = vec![1, 2, 3];
        assert_eq!(v[0], 1);
    }
}
