// GOOD: fallible access stays fallible — get/first/?, no unwraps, no
// bare indexing.
fn read_parts(xs: &[u64]) -> Option<u64> {
    let first = xs.first().copied()?;
    let third = xs.get(2).copied()?;
    Some(first.wrapping_add(third))
}
