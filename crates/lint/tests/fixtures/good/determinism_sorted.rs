// GOOD: ordered collections — iteration order is part of the type.
use std::collections::{BTreeMap, BTreeSet};

fn digest_entries(map: &BTreeMap<u64, u64>, set: &BTreeSet<u64>) -> u64 {
    let mut acc = 0u64;
    for (k, v) in map {
        acc = acc.wrapping_mul(31).wrapping_add(k ^ v);
    }
    for s in set {
        acc = acc.wrapping_mul(31).wrapping_add(*s);
    }
    acc
}
