//! Property-based tests of the solver crate's numerical control logic:
//! the adaptive step controller's accept/reject invariants and the
//! sparse LU's residuals under pattern reuse.

use proptest::prelude::*;

use neurofi_solver::{LinearSolver, SparseWorkspace, StepControl, StepDecision};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `decide` accepts exactly when the error ratio is ≤ 1, and an
    /// accepted step satisfies every per-unknown error weight.
    #[test]
    fn accept_iff_error_weights_satisfied(
        seed in any::<u64>(),
        n in 1usize..12,
        h in 1.0e-12f64..1.0e-6,
    ) {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let ctrl = StepControl::default();
        let corrected: Vec<f64> = (0..n).map(|_| next()).collect();
        let predicted: Vec<f64> = corrected
            .iter()
            .map(|c| c + next() * 1.0e-4)
            .collect();
        let reference: Vec<f64> = (0..n).map(|_| next()).collect();
        let ratio = ctrl.error_ratio(&corrected, &predicted, &reference);
        prop_assert!(ratio.is_finite() && ratio >= 0.0);
        match ctrl.decide(h, ratio) {
            StepDecision::Accept { next_h } => {
                prop_assert!(ratio <= 1.0, "accepted with ratio {ratio}");
                // Accepted ⇒ every unknown's local error fits its weight.
                for ((&c, &p), &r) in corrected.iter().zip(&predicted).zip(&reference) {
                    let weight = ctrl.reltol * c.abs().max(r.abs()) + ctrl.abstol;
                    prop_assert!((c - p).abs() <= weight * (1.0 + 1e-12));
                }
                prop_assert!(next_h >= ctrl.h_min && next_h <= h * ctrl.grow_max * (1.0 + 1e-12));
            }
            StepDecision::Reject { .. } => {
                prop_assert!(ratio > 1.0, "rejected with ratio {ratio}");
            }
        }
    }

    /// Every rejection shrinks the step strictly and monotonically in
    /// the error ratio, down to the `h_min` floor.
    #[test]
    fn reject_shrinks_strictly_and_monotonically(
        h_exp in -12.0f64..-6.0,
        ratio_a in 1.0001f64..1.0e6,
        ratio_mul in 1.0001f64..1.0e3,
    ) {
        let ctrl = StepControl::default();
        let h = 10f64.powf(h_exp);
        let ratio_b = ratio_a * ratio_mul;
        let retry = |ratio: f64| match ctrl.decide(h, ratio) {
            StepDecision::Reject { retry_h } => retry_h,
            StepDecision::Accept { .. } => panic!("ratio {ratio} > 1 must reject"),
        };
        let ra = retry(ratio_a);
        let rb = retry(ratio_b);
        prop_assert!(ra < h, "retry {ra} did not shrink from {h}");
        prop_assert!(rb < h);
        // Larger error never yields a larger retry step.
        prop_assert!(rb <= ra * (1.0 + 1e-12), "{rb} > {ra}");
        // And both honour the floor.
        prop_assert!(ra >= ctrl.h_min && rb >= ctrl.h_min);
    }

    /// Non-finite corrector values always reject, never panic.
    #[test]
    fn non_finite_corrections_reject(
        h in 1.0e-12f64..1.0e-6,
        pick in 0usize..3,
    ) {
        let poison = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY][pick];
        let ctrl = StepControl::default();
        let ratio = ctrl.error_ratio(&[0.5, poison], &[0.5, 0.5], &[0.5, 0.5]);
        prop_assert!(ratio.is_infinite());
        match ctrl.decide(h, ratio) {
            StepDecision::Reject { retry_h } => prop_assert!(retry_h < h),
            StepDecision::Accept { .. } => prop_assert!(false, "must reject"),
        }
    }

    /// The sparse LU solves random diagonally-dominant systems to tight
    /// residuals, including re-solves that exercise the frozen-pattern
    /// refactorisation path.
    #[test]
    fn sparse_lu_residual_small_with_pattern_reuse(
        n in 2usize..24,
        seed in any::<u64>(),
    ) {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        // Random banded-ish sparse system: diagonal plus a few
        // off-diagonals per row.
        let mut entries: Vec<(usize, usize, f64)> = Vec::new();
        for i in 0..n {
            let mut sum = 0.0;
            for dj in 1..4usize {
                let j = (i + dj * 3) % n;
                if j != i {
                    let v = next();
                    entries.push((i, j, v));
                    sum += v.abs();
                }
            }
            entries.push((i, i, sum + 1.0 + next().abs()));
        }
        let mut ws = SparseWorkspace::new(n);
        for round in 0..2 {
            // Second round: same pattern, perturbed values (refactor path).
            let scale = 1.0 + 0.25 * round as f64;
            ws.begin();
            for &(i, j, v) in &entries {
                ws.add(i, j, if i == j { v * scale } else { v });
            }
            let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() + 0.1).collect();
            for (i, &bi) in b.iter().enumerate() {
                ws.rhs_add(i, bi);
            }
            let x = ws.solve().unwrap().to_vec();
            for (i, &bi) in b.iter().enumerate() {
                let mut row = 0.0;
                for &(r, c, v) in &entries {
                    if r == i {
                        row += if r == c { v * scale } else { v } * x[c];
                    }
                }
                prop_assert!((row - bi).abs() < 1e-8, "residual {} at row {i}", row - bi);
            }
        }
        let stats = ws.stats();
        prop_assert_eq!(stats.solves, 2);
        prop_assert_eq!(stats.pattern_rebuilds, 1);
        prop_assert_eq!(stats.refactorizations, 1);
    }
}
