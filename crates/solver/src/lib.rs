//! # neurofi-solver
//!
//! Dependency-free linear-solver engines for modified nodal analysis,
//! plus the numerical control logic that surrounds them: deterministic
//! DC homotopy schedules and an error-weighted adaptive timestep
//! controller.
//!
//! The crate exists so `neurofi-spice` can scale past the paper's
//! ~25-unknown neuron cells to whole-layer netlists (hundreds of
//! neurons, supply-rail parasitics) without giving up the bit-exact
//! dense path those small circuits are regression-locked to:
//!
//! * [`LinearSolver`] — the stamping abstraction every analysis driver
//!   writes into. The dense `SolverWorkspace` in `neurofi-spice`
//!   implements it by forwarding to its existing partial-pivot LU, so
//!   the dense engine performs byte-for-byte the same floating-point
//!   operations as before this trait existed.
//! * [`sparse::SparseWorkspace`] — sparse CSC assembly with a
//!   hand-rolled right-looking LU using Markowitz pivoting. The stamp
//!   *pattern* is learned on the first assembly and frozen, so later
//!   Newton iterations scatter in O(1) per stamp; the pivot order and
//!   fill pattern from the first factorisation are reused by a
//!   KLU-style numeric refactorisation on every subsequent solve.
//! * [`step::StepControl`] — error-weighted step accept/reject for
//!   transient analysis: a step is accepted iff the
//!   predictor/corrector difference is within `reltol·|x| + abstol`
//!   weights, and rejected steps shrink strictly monotonically.
//! * [`homotopy`] — the gmin-stepping and source-stepping schedules
//!   used by robust DC operating-point solves, as deterministic value
//!   iterators.
//!
//! No external dependencies, no unordered collections, no clocks: the
//! crate is part of the workspace determinism zone enforced by
//! `repro-lint`.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod homotopy;
pub mod sparse;
pub mod step;

pub use homotopy::{GminSchedule, SourceSchedule};
pub use sparse::SparseWorkspace;
pub use step::{StepControl, StepDecision};

use std::fmt;

/// Error from a linear solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverError {
    /// Elimination found no acceptable pivot at step `row` — in MNA
    /// terms almost always a floating node or a loop of ideal voltage
    /// sources.
    Singular {
        /// Elimination step (pivot row) where factorisation broke down.
        row: usize,
    },
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::Singular { row } => {
                write!(f, "singular matrix at pivot row {row}")
            }
        }
    }
}

impl std::error::Error for SolverError {}

/// Cumulative counters a [`LinearSolver`] keeps about its own work,
/// surfaced in transient results and `BENCH_sweep.json` (schema v6).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// System dimension (number of unknowns).
    pub dim: usize,
    /// Structural nonzeros in the assembled matrix (dense engines
    /// report `dim²`).
    pub nnz: usize,
    /// Nonzeros in the L+U factors including the diagonal — `lu_nnz -
    /// nnz` is the fill-in (dense engines report `dim²`).
    pub lu_nnz: usize,
    /// Times the stamp pattern changed and symbolic state was rebuilt.
    pub pattern_rebuilds: u64,
    /// Full factorisations with fresh pivoting.
    pub full_factorizations: u64,
    /// Numeric-only refactorisations reusing the recorded pivot order
    /// and fill pattern.
    pub refactorizations: u64,
    /// Completed solves.
    pub solves: u64,
}

impl SolverStats {
    /// Fill-in ratio `lu_nnz / nnz` (1.0 means no fill; 0.0 when
    /// nothing has been assembled yet).
    pub fn fill_ratio(&self) -> f64 {
        if self.nnz == 0 {
            0.0
        } else {
            self.lu_nnz as f64 / self.nnz as f64
        }
    }
}

/// The stamping abstraction circuit analyses write into.
///
/// One Newton iteration is exactly: [`begin`](LinearSolver::begin),
/// a sequence of [`add`](LinearSolver::add) /
/// [`rhs_add`](LinearSolver::rhs_add) / [`rhs_set`](LinearSolver::rhs_set)
/// stamps, then [`solve`](LinearSolver::solve). Implementations may
/// exploit that the stamp sequence is identical across iterations of
/// the same analysis (the sparse engine freezes the pattern after the
/// first assembly); they must tolerate the sequence changing between
/// analyses (DC stamps differ from transient stamps).
pub trait LinearSolver {
    /// The system dimension this solver is sized for.
    fn dim(&self) -> usize;

    /// Starts a fresh assembly: conceptually zeroes the matrix and the
    /// right-hand side.
    fn begin(&mut self);

    /// Adds `value` to matrix entry (`row`, `col`) — the stamp
    /// operation.
    fn add(&mut self, row: usize, col: usize, value: f64);

    /// Adds `value` to right-hand-side entry `row`.
    fn rhs_add(&mut self, row: usize, value: f64);

    /// Overwrites right-hand-side entry `row` (used by branch
    /// constraint rows, which are stamped exactly once).
    fn rhs_set(&mut self, row: usize, value: f64);

    /// Factors the assembled matrix and solves it against the
    /// assembled right-hand side, returning the solution vector.
    ///
    /// # Errors
    /// [`SolverError::Singular`] when elimination finds no acceptable
    /// pivot.
    fn solve(&mut self) -> Result<&[f64], SolverError>;

    /// Cumulative work counters.
    fn stats(&self) -> SolverStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_mentions_row() {
        let e = SolverError::Singular { row: 7 };
        assert!(e.to_string().contains('7'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<SolverError>();
    }

    #[test]
    fn fill_ratio_handles_empty() {
        assert_eq!(SolverStats::default().fill_ratio(), 0.0);
        let s = SolverStats {
            nnz: 10,
            lu_nnz: 15,
            ..Default::default()
        };
        assert!((s.fill_ratio() - 1.5).abs() < 1e-12);
    }
}
