//! Deterministic homotopy schedules for robust DC operating points.
//!
//! When plain Newton fails, SPICE engines walk the circuit onto the
//! solution manifold: first by starting with a large gmin (every node
//! strongly tied to ground) and relaxing it toward the target
//! ([`GminSchedule`]), then — if that also fails — by ramping all
//! source values up from zero ([`SourceSchedule`]). Both schedules are
//! pure value iterators so the sequences are identical on every run
//! and host, and the DC driver in `neurofi-spice` consumes them
//! verbatim; the schedules reproduce the exact sequences the dense
//! engine has always used, keeping its golden vectors byte-identical.

/// Relaxation schedule for gmin stepping: `10^-start … 10^-end` in
/// decade steps, floored at the caller's target gmin.
#[derive(Debug, Clone, PartialEq)]
pub struct GminSchedule {
    /// First exponent (largest gmin, strongest damping).
    pub start_exponent: f64,
    /// Last exponent (smallest scheduled gmin).
    pub end_exponent: f64,
    /// The analysis target gmin; scheduled values never go below it.
    pub floor: f64,
}

impl GminSchedule {
    /// The classic 3 → 12 decade ramp used by the DC driver.
    pub fn standard(floor: f64) -> GminSchedule {
        GminSchedule {
            start_exponent: 3.0,
            end_exponent: 12.0,
            floor,
        }
    }

    /// The gmin values to solve at, strongest damping first.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        let steps = if self.end_exponent >= self.start_exponent {
            (self.end_exponent - self.start_exponent) as usize + 1
        } else {
            0
        };
        (0..steps).map(move |k| {
            let exponent = self.start_exponent + k as f64;
            10.0f64.powf(-exponent).max(self.floor)
        })
    }
}

/// Ramp schedule for source stepping: scales every independent source
/// from `1/steps` up to 1 in equal increments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceSchedule {
    /// Number of ramp points (the last scale is exactly 1.0).
    pub steps: usize,
}

impl SourceSchedule {
    /// The 20-point ramp used by the DC driver.
    pub fn standard() -> SourceSchedule {
        SourceSchedule { steps: 20 }
    }

    /// The source scale factors, ascending, ending at exactly 1.0.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        let steps = self.steps;
        (1..=steps).map(move |k| k as f64 / steps as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmin_standard_matches_legacy_sequence() {
        // The dense DC driver historically ran exponent 3.0..=12.0 in
        // 1.0 steps with `10^-e  max  floor`; the schedule must
        // reproduce it exactly for bit-identical golden vectors.
        let floor = 1.0e-12;
        let got: Vec<f64> = GminSchedule::standard(floor).values().collect();
        let mut want = Vec::new();
        let mut exponent = 3.0f64;
        while exponent <= 12.0 {
            want.push(10.0f64.powf(-exponent).max(floor));
            exponent += 1.0;
        }
        assert_eq!(got, want);
        assert_eq!(got.len(), 10);
    }

    #[test]
    fn gmin_respects_floor() {
        let got: Vec<f64> = GminSchedule::standard(1.0e-6).values().collect();
        assert!(got.iter().all(|&g| g >= 1.0e-6));
        assert_eq!(*got.last().unwrap(), 1.0e-6);
    }

    #[test]
    fn source_standard_matches_legacy_sequence() {
        let got: Vec<f64> = SourceSchedule::standard().values().collect();
        let want: Vec<f64> = (1..=20).map(|k| k as f64 / 20.0).collect();
        assert_eq!(got, want);
        assert_eq!(*got.last().unwrap(), 1.0);
    }

    #[test]
    fn schedules_are_deterministic() {
        let a: Vec<f64> = GminSchedule::standard(1.0e-12).values().collect();
        let b: Vec<f64> = GminSchedule::standard(1.0e-12).values().collect();
        assert_eq!(a, b);
    }
}
