//! Sparse CSC assembly and a hand-rolled sparse LU with Markowitz
//! pivoting and KLU-style numeric refactorisation.
//!
//! The workspace is built around one observation about circuit
//! simulation: the *sequence* of stamps a Newton iteration performs is
//! a pure function of the circuit topology and analysis mode, so it is
//! identical across all iterations of an analysis. The first assembly
//! therefore records the `(row, col)` stream, compresses it into a CSC
//! pattern, and maps every stamp to its value slot; every later
//! assembly is an O(1)-per-stamp scatter. When the stream changes
//! (e.g. a DC operating point followed by a transient adds companion
//! stamps), the pattern is rebuilt once and re-frozen.
//!
//! Factorisation follows the same two-phase split. The first solve of
//! a pattern runs a right-looking elimination with Markowitz pivoting
//! (minimise `(row_nnz-1)·(col_nnz-1)` among numerically acceptable
//! pivots), which both produces the factors and *records* the pivot
//! order and the full fill pattern of L+U. Subsequent solves replay a
//! left-looking numeric refactorisation on that frozen structure — no
//! pivot search, no allocation — falling back to a fresh full
//! factorisation only if a frozen pivot becomes numerically tiny.

use crate::{LinearSolver, SolverError, SolverStats};
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;

/// Absolute magnitude below which a pivot is rejected (matches the
/// dense engine's threshold).
const PIVOT_FLOOR: f64 = 1.0e-300;

/// Relative threshold for Markowitz pivot admissibility: a candidate
/// must be at least this fraction of the largest magnitude in its row.
const PIVOT_THRESHOLD: f64 = 1.0e-3;

/// A sparse [`LinearSolver`]: pattern-learning CSC assembly over a
/// Markowitz LU with symbolic reuse.
#[derive(Debug, Clone)]
pub struct SparseWorkspace {
    n: usize,
    rhs: Vec<f64>,
    sol: Vec<f64>,
    work: Vec<f64>,
    /// Stamp stream of the assembly in progress.
    stamp_rows: Vec<u32>,
    stamp_cols: Vec<u32>,
    stamp_vals: Vec<f64>,
    /// The frozen stamp stream the current pattern was learned from.
    frozen_rows: Vec<u32>,
    frozen_cols: Vec<u32>,
    /// Stamp index → CSC value slot, valid for the frozen stream.
    slots: Vec<u32>,
    /// CSC pattern (columns sorted, rows sorted within each column).
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
    lu: Option<SparseLu>,
    stats: SolverStats,
}

impl SparseWorkspace {
    /// Creates a workspace for systems of `n` unknowns.
    pub fn new(n: usize) -> SparseWorkspace {
        SparseWorkspace {
            n,
            rhs: vec![0.0; n],
            sol: vec![0.0; n],
            work: vec![0.0; n],
            stamp_rows: Vec::new(),
            stamp_cols: Vec::new(),
            stamp_vals: Vec::new(),
            frozen_rows: Vec::new(),
            frozen_cols: Vec::new(),
            slots: Vec::new(),
            col_ptr: vec![0; n + 1],
            row_idx: Vec::new(),
            values: Vec::new(),
            lu: None,
            stats: SolverStats {
                dim: n,
                ..Default::default()
            },
        }
    }

    /// Learns the CSC pattern from the current stamp stream and freezes
    /// it; invalidates any factorisation of the old pattern.
    fn rebuild_pattern(&mut self) {
        let m = self.stamp_rows.len();
        let mut order: Vec<u32> = (0..m as u32).collect();
        order.sort_unstable_by_key(|&k| {
            let k = k as usize;
            (self.stamp_cols[k], self.stamp_rows[k])
        });
        self.slots.clear();
        self.slots.resize(m, 0);
        self.col_ptr.clear();
        self.col_ptr.resize(self.n + 1, 0);
        self.row_idx.clear();
        let mut last: Option<(u32, u32)> = None;
        for &k in &order {
            let k = k as usize;
            let rc = (self.stamp_cols[k], self.stamp_rows[k]);
            if last != Some(rc) {
                self.col_ptr[rc.0 as usize + 1] += 1;
                self.row_idx.push(rc.1 as usize);
                last = Some(rc);
            }
            self.slots[k] = (self.row_idx.len() - 1) as u32;
        }
        for c in 0..self.n {
            self.col_ptr[c + 1] += self.col_ptr[c];
        }
        self.values.clear();
        self.values.resize(self.row_idx.len(), 0.0);
        self.frozen_rows.clone_from(&self.stamp_rows);
        self.frozen_cols.clone_from(&self.stamp_cols);
        self.lu = None;
        self.stats.pattern_rebuilds += 1;
        self.stats.nnz = self.row_idx.len();
    }
}

impl LinearSolver for SparseWorkspace {
    fn dim(&self) -> usize {
        self.n
    }

    fn begin(&mut self) {
        self.stamp_rows.clear();
        self.stamp_cols.clear();
        self.stamp_vals.clear();
        self.rhs.fill(0.0);
    }

    fn add(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < self.n && col < self.n);
        self.stamp_rows.push(row as u32);
        self.stamp_cols.push(col as u32);
        self.stamp_vals.push(value);
    }

    fn rhs_add(&mut self, row: usize, value: f64) {
        if let Some(slot) = self.rhs.get_mut(row) {
            *slot += value;
        }
    }

    fn rhs_set(&mut self, row: usize, value: f64) {
        if let Some(slot) = self.rhs.get_mut(row) {
            *slot = value;
        }
    }

    fn solve(&mut self) -> Result<&[f64], SolverError> {
        if self.stamp_rows != self.frozen_rows || self.stamp_cols != self.frozen_cols {
            self.rebuild_pattern();
        }
        self.values.fill(0.0);
        for (k, &v) in self.stamp_vals.iter().enumerate() {
            if let Some(slot) = self.values.get_mut(self.slots[k] as usize) {
                *slot += v;
            }
        }
        let refactored = match &mut self.lu {
            Some(lu) => lu
                .refactor(&self.col_ptr, &self.row_idx, &self.values)
                .is_ok(),
            None => false,
        };
        if refactored {
            self.stats.refactorizations += 1;
        } else {
            let lu = SparseLu::factorize(self.n, &self.col_ptr, &self.row_idx, &self.values)?;
            self.lu = Some(lu);
            self.stats.full_factorizations += 1;
        }
        let Some(lu) = &self.lu else {
            // Unreachable: the branch above always installs a
            // factorisation or returns the error.
            return Err(SolverError::Singular { row: 0 });
        };
        self.stats.lu_nnz = lu.nnz();
        lu.solve(&self.rhs, &mut self.work, &mut self.sol);
        self.stats.solves += 1;
        Ok(&self.sol)
    }

    fn stats(&self) -> SolverStats {
        self.stats
    }
}

/// LU factors of a row/column-permuted matrix `P·A·Q = L·U`, with the
/// pivot order and fill pattern frozen for numeric refactorisation.
///
/// `L` (unit lower) and `U` (upper, diagonal split out) are stored
/// column-wise in permuted coordinates, rows ascending within each
/// column.
#[derive(Debug, Clone)]
struct SparseLu {
    n: usize,
    /// Pivot row (original index) used at elimination step `k`.
    perm_row: Vec<usize>,
    /// Pivot column (original index) eliminated at step `k`.
    perm_col: Vec<usize>,
    /// Original row → elimination step.
    inv_row: Vec<usize>,
    u_col_ptr: Vec<usize>,
    u_row: Vec<usize>,
    u_val: Vec<f64>,
    l_col_ptr: Vec<usize>,
    l_row: Vec<usize>,
    l_val: Vec<f64>,
    diag: Vec<f64>,
    /// Dense scratch for refactorisation, allocated once.
    scratch: Vec<f64>,
}

impl SparseLu {
    /// Nonzeros in L+U including the diagonal.
    fn nnz(&self) -> usize {
        self.diag.len() + self.u_row.len() + self.l_row.len()
    }

    /// Full factorisation with Markowitz pivoting: at every step pick
    /// the admissible entry minimising `(row_nnz-1)·(col_nnz-1)`, ties
    /// broken by lowest (row, col) for determinism. Admissible means
    /// at least [`PIVOT_THRESHOLD`] of the entry's row maximum and
    /// above [`PIVOT_FLOOR`] absolutely.
    fn factorize(
        n: usize,
        col_ptr: &[usize],
        row_idx: &[usize],
        values: &[f64],
    ) -> Result<SparseLu, SolverError> {
        // Row-wise working form of the active submatrix.
        let mut rows: Vec<BTreeMap<usize, f64>> = vec![BTreeMap::new(); n];
        for col in 0..n {
            for s in col_ptr[col]..col_ptr[col + 1] {
                rows[row_idx[s]].insert(col, values[s]);
            }
        }
        let mut col_count = vec![0usize; n];
        for row in &rows {
            for &col in row.keys() {
                col_count[col] += 1;
            }
        }
        let mut row_active = vec![true; n];
        let mut perm_row = Vec::with_capacity(n);
        let mut perm_col = Vec::with_capacity(n);
        let mut diag = Vec::with_capacity(n);
        // Triplets in original coordinates; permuted and sorted below
        // once the full pivot order is known.
        let mut u_trip: Vec<(usize, usize, f64)> = Vec::new(); // (step, orig col, val)
        let mut l_trip: Vec<(usize, usize, f64)> = Vec::new(); // (orig row, step, factor)

        for step in 0..n {
            // Markowitz pivot search over the active submatrix.
            let mut best: Option<(usize, usize, usize)> = None; // (cost, row, col)
            for (i, row) in rows.iter().enumerate() {
                if !row_active[i] || row.is_empty() {
                    continue;
                }
                let row_max = row.values().fold(0.0f64, |m, v| m.max(v.abs()));
                if row_max < PIVOT_FLOOR {
                    continue;
                }
                let rc = row.len();
                for (&j, &v) in row {
                    if v.abs() < PIVOT_FLOOR || v.abs() < PIVOT_THRESHOLD * row_max {
                        continue;
                    }
                    let cost = (rc - 1) * (col_count[j] - 1);
                    let cand = (cost, i, j);
                    if best.is_none_or(|b| cand < b) {
                        best = Some(cand);
                    }
                }
            }
            let Some((_, pi, pj)) = best else {
                return Err(SolverError::Singular { row: step });
            };

            let pivot_row = std::mem::take(&mut rows[pi]);
            row_active[pi] = false;
            for &j in pivot_row.keys() {
                col_count[j] -= 1;
            }
            let pivot_val = pivot_row.get(&pj).copied().unwrap_or(0.0);
            perm_row.push(pi);
            perm_col.push(pj);
            diag.push(pivot_val);
            for (&j, &v) in &pivot_row {
                if j != pj {
                    u_trip.push((step, j, v));
                }
            }

            // Eliminate the pivot column from every remaining row.
            // Structural updates happen even for an exactly-zero
            // factor: the recorded pattern must be the symbolic fill,
            // or later refactorisations would drop true fill-in.
            for (i, row) in rows.iter_mut().enumerate() {
                if !row_active[i] {
                    continue;
                }
                let Some(aij) = row.remove(&pj) else {
                    continue;
                };
                let factor = aij / pivot_val;
                l_trip.push((i, step, factor));
                for (&j, &uv) in &pivot_row {
                    if j == pj {
                        continue;
                    }
                    match row.entry(j) {
                        Entry::Occupied(mut e) => *e.get_mut() -= factor * uv,
                        Entry::Vacant(e) => {
                            e.insert(-factor * uv);
                            col_count[j] += 1;
                        }
                    }
                }
            }
        }

        let mut inv_row = vec![0usize; n];
        let mut inv_col = vec![0usize; n];
        for (step, (&r, &c)) in perm_row.iter().zip(&perm_col).enumerate() {
            inv_row[r] = step;
            inv_col[c] = step;
        }

        // U: (step, orig col, val) → permuted (row=step, col=inv_col).
        let mut u_perm: Vec<(usize, usize, f64)> = u_trip
            .into_iter()
            .map(|(step, j, v)| (inv_col[j], step, v))
            .collect();
        u_perm.sort_unstable_by_key(|&(col, row, _)| (col, row));
        // L: (orig row, step, factor) → permuted (row=inv_row, col=step).
        let mut l_perm: Vec<(usize, usize, f64)> = l_trip
            .into_iter()
            .map(|(i, step, f)| (step, inv_row[i], f))
            .collect();
        l_perm.sort_unstable_by_key(|&(col, row, _)| (col, row));

        let build_csc = |trips: &[(usize, usize, f64)]| {
            let mut cp = vec![0usize; n + 1];
            let mut ri = Vec::with_capacity(trips.len());
            let mut vals = Vec::with_capacity(trips.len());
            for &(col, row, v) in trips {
                cp[col + 1] += 1;
                ri.push(row);
                vals.push(v);
            }
            for c in 0..n {
                cp[c + 1] += cp[c];
            }
            (cp, ri, vals)
        };
        let (u_col_ptr, u_row, u_val) = build_csc(&u_perm);
        let (l_col_ptr, l_row, l_val) = build_csc(&l_perm);

        Ok(SparseLu {
            n,
            perm_row,
            perm_col,
            inv_row,
            u_col_ptr,
            u_row,
            u_val,
            l_col_ptr,
            l_row,
            l_val,
            diag,
            scratch: vec![0.0; n],
        })
    }

    /// Numeric refactorisation on the frozen pivot order and fill
    /// pattern (left-looking, column by column, no pivot search).
    ///
    /// # Errors
    /// `Err(())` when a frozen pivot falls below [`PIVOT_FLOOR`]; the
    /// caller falls back to a full factorisation with fresh pivoting.
    fn refactor(
        &mut self,
        a_col_ptr: &[usize],
        a_row_idx: &[usize],
        a_values: &[f64],
    ) -> Result<(), ()> {
        let n = self.n;
        let mut scratch = std::mem::take(&mut self.scratch);
        let result = (|| {
            for j in 0..n {
                // Zero exactly this column's pattern positions.
                for s in self.u_col_ptr[j]..self.u_col_ptr[j + 1] {
                    scratch[self.u_row[s]] = 0.0;
                }
                scratch[j] = 0.0;
                for s in self.l_col_ptr[j]..self.l_col_ptr[j + 1] {
                    scratch[self.l_row[s]] = 0.0;
                }
                // Scatter the corresponding original column of A.
                let q = self.perm_col[j];
                for s in a_col_ptr[q]..a_col_ptr[q + 1] {
                    scratch[self.inv_row[a_row_idx[s]]] += a_values[s];
                }
                // Left-looking update: ascending U rows of this column.
                for s in self.u_col_ptr[j]..self.u_col_ptr[j + 1] {
                    let k = self.u_row[s];
                    let ukj = scratch[k];
                    self.u_val[s] = ukj;
                    if ukj != 0.0 {
                        for t in self.l_col_ptr[k]..self.l_col_ptr[k + 1] {
                            scratch[self.l_row[t]] -= ukj * self.l_val[t];
                        }
                    }
                }
                let d = scratch[j];
                // A NaN pivot must fail too, not just a tiny one.
                if d.is_nan() || d.abs() < PIVOT_FLOOR {
                    return Err(());
                }
                self.diag[j] = d;
                for s in self.l_col_ptr[j]..self.l_col_ptr[j + 1] {
                    self.l_val[s] = scratch[self.l_row[s]] / d;
                }
            }
            Ok(())
        })();
        self.scratch = scratch;
        result
    }

    /// Solves `A·x = b` using the current factors: permute, forward-
    /// substitute through unit-lower L, back-substitute through U,
    /// unpermute.
    fn solve(&self, b: &[f64], work: &mut [f64], out: &mut [f64]) {
        let n = self.n;
        for k in 0..n {
            work[k] = b[self.perm_row[k]];
        }
        for j in 0..n {
            let t = work[j];
            if t != 0.0 {
                for s in self.l_col_ptr[j]..self.l_col_ptr[j + 1] {
                    work[self.l_row[s]] -= self.l_val[s] * t;
                }
            }
        }
        for j in (0..n).rev() {
            let t = work[j] / self.diag[j];
            work[j] = t;
            if t != 0.0 {
                for s in self.u_col_ptr[j]..self.u_col_ptr[j + 1] {
                    work[self.u_row[s]] -= self.u_val[s] * t;
                }
            }
        }
        for j in 0..n {
            out[self.perm_col[j]] = work[j];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Stamps a dense matrix + rhs into the workspace the way the
    /// circuit engine would, and solves.
    fn stamp_and_solve(ws: &mut SparseWorkspace, a: &[Vec<f64>], b: &[f64]) -> Vec<f64> {
        ws.begin();
        for (i, row) in a.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    ws.add(i, j, v);
                }
            }
        }
        for (i, &v) in b.iter().enumerate() {
            ws.rhs_add(i, v);
        }
        ws.solve().expect("solvable").to_vec()
    }

    #[test]
    fn solves_identity() {
        let mut ws = SparseWorkspace::new(2);
        let x = stamp_and_solve(&mut ws, &[vec![1.0, 0.0], vec![0.0, 1.0]], &[3.0, -4.0]);
        assert_eq!(x, vec![3.0, -4.0]);
    }

    #[test]
    fn solves_2x2_and_reuses_pattern() {
        let mut ws = SparseWorkspace::new(2);
        let a = vec![vec![2.0, 1.0], vec![1.0, -1.0]];
        let x = stamp_and_solve(&mut ws, &a, &[5.0, 1.0]);
        assert!((x[0] - 2.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
        assert_eq!(ws.stats().full_factorizations, 1);
        assert_eq!(ws.stats().pattern_rebuilds, 1);
        // Same pattern, new values: must refactor, not re-pivot.
        let a2 = vec![vec![4.0, 1.0], vec![1.0, -2.0]];
        let x2 = stamp_and_solve(&mut ws, &a2, &[9.0, 0.0]);
        assert!((x2[0] - 2.0).abs() < 1e-12 && (x2[1] - 1.0).abs() < 1e-12);
        assert_eq!(ws.stats().full_factorizations, 1);
        assert_eq!(ws.stats().refactorizations, 1);
        assert_eq!(ws.stats().pattern_rebuilds, 1);
    }

    #[test]
    fn zero_diagonal_needs_off_diagonal_pivot() {
        // The MNA branch-row shape: structurally zero diagonal.
        let mut ws = SparseWorkspace::new(2);
        let x = stamp_and_solve(&mut ws, &[vec![0.0, 1.0], vec![1.0, 0.0]], &[2.0, 7.0]);
        assert!((x[0] - 7.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_stamps_accumulate() {
        let mut ws = SparseWorkspace::new(1);
        ws.begin();
        ws.add(0, 0, 1.0);
        ws.add(0, 0, 2.5);
        ws.rhs_add(0, 7.0);
        let x = ws.solve().unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let mut ws = SparseWorkspace::new(2);
        ws.begin();
        ws.add(0, 0, 1.0);
        ws.add(0, 1, 2.0);
        ws.add(1, 0, 2.0);
        ws.add(1, 1, 4.0);
        ws.rhs_set(0, 1.0);
        ws.rhs_set(1, 2.0);
        assert!(matches!(ws.solve(), Err(SolverError::Singular { .. })));
    }

    #[test]
    fn pattern_change_triggers_rebuild() {
        let mut ws = SparseWorkspace::new(2);
        let x = stamp_and_solve(&mut ws, &[vec![1.0, 0.0], vec![0.0, 1.0]], &[1.0, 2.0]);
        assert_eq!(x, vec![1.0, 2.0]);
        // Different pattern (off-diagonals appear), like DC → transient.
        let x2 = stamp_and_solve(&mut ws, &[vec![2.0, -1.0], vec![-1.0, 2.0]], &[1.0, 4.0]);
        assert!((x2[0] - 2.0).abs() < 1e-12 && (x2[1] - 3.0).abs() < 1e-12);
        assert_eq!(ws.stats().pattern_rebuilds, 2);
        assert_eq!(ws.stats().full_factorizations, 2);
    }

    #[test]
    fn tiny_pivot_during_refactor_falls_back_to_full() {
        let full = |ws: &mut SparseWorkspace, vals: [f64; 4], b: [f64; 2]| {
            ws.begin();
            ws.add(0, 0, vals[0]);
            ws.add(0, 1, vals[1]);
            ws.add(1, 0, vals[2]);
            ws.add(1, 1, vals[3]);
            ws.rhs_add(0, b[0]);
            ws.rhs_add(1, b[1]);
            ws.solve().expect("solvable").to_vec()
        };
        let mut ws = SparseWorkspace::new(2);
        // First assembly: diagonal dominant, pivots on the diagonal.
        let x = full(&mut ws, [1.0, 1.0e-6, 1.0e-6, 1.0], [1.0, 1.0]);
        assert!((x[0] - 1.0).abs() < 1e-5);
        // Same stamp pattern, but the recorded pivot position goes to
        // zero: the refactor must detect it and a full re-pivot with
        // fresh ordering must recover.
        let x2 = full(&mut ws, [0.0, 1.0, 1.0, 0.0], [3.0, 4.0]);
        assert!((x2[0] - 4.0).abs() < 1e-12 && (x2[1] - 3.0).abs() < 1e-12);
        assert_eq!(ws.stats().pattern_rebuilds, 1);
        assert_eq!(ws.stats().full_factorizations, 2);
    }

    #[test]
    fn fill_in_is_tracked() {
        // Arrow matrix: dense last row/col forces fill under naive
        // orderings; Markowitz should keep it modest, and lu_nnz must
        // be at least the assembled nnz.
        let n = 8;
        let mut a = vec![vec![0.0; n]; n];
        for (i, row) in a.iter_mut().enumerate() {
            row[i] = 4.0;
            row[n - 1] = 1.0;
        }
        for v in &mut a[n - 1] {
            *v = 1.0;
        }
        a[n - 1][n - 1] = 4.0;
        let b: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut ws = SparseWorkspace::new(n);
        let x = stamp_and_solve(&mut ws, &a, &b);
        // Residual check.
        for (i, row) in a.iter().enumerate() {
            let ax: f64 = row.iter().zip(&x).map(|(aij, xj)| aij * xj).sum();
            assert!((ax - b[i]).abs() < 1e-9, "row {i}: {ax} vs {}", b[i]);
        }
        let stats = ws.stats();
        assert!(stats.nnz > 0);
        assert!(stats.lu_nnz >= stats.nnz, "{stats:?}");
        assert!(stats.fill_ratio() >= 1.0);
    }

    #[test]
    fn large_tridiagonal_has_no_fill() {
        let n = 200;
        let mut ws = SparseWorkspace::new(n);
        ws.begin();
        for i in 0..n {
            ws.add(i, i, 2.0);
            if i > 0 {
                ws.add(i, i - 1, -1.0);
                ws.add(i - 1, i, -1.0);
            }
            ws.rhs_add(i, 1.0);
        }
        let x = ws.solve().unwrap().to_vec();
        // Residual of the tridiagonal system.
        for i in 0..n {
            let mut ax = 2.0 * x[i];
            if i > 0 {
                ax -= x[i - 1];
            }
            if i + 1 < n {
                ax -= x[i + 1];
            }
            assert!((ax - 1.0).abs() < 1e-9, "row {i}");
        }
        let stats = ws.stats();
        // A tridiagonal matrix factors with zero fill under min-degree
        // style ordering.
        assert_eq!(stats.lu_nnz, stats.nnz, "{stats:?}");
    }
}
