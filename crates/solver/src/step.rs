//! Error-weighted adaptive timestep control for transient analysis.
//!
//! The controller implements the classic predictor/corrector scheme:
//! the transient driver extrapolates the previous solution forward
//! ([`extrapolate`]), solves the implicit corrector step, and asks the
//! controller whether the difference between the two — the local
//! truncation error estimate — fits inside the per-unknown error
//! weight `reltol·|x| + abstol`. Accepted steps may grow the next
//! step, rejected steps shrink *strictly monotonically* until either
//! the step fits or `h_min` is reached.
//!
//! The arithmetic is pure and allocation-free so the invariants can be
//! property-tested directly: for any finite inputs, `decide` accepts
//! iff the error ratio is ≤ 1, and every rejection returns a strictly
//! smaller retry step (down to the `h_min` floor).

/// Tuning knobs for the adaptive step controller.
#[derive(Debug, Clone, PartialEq)]
pub struct StepControl {
    /// Relative error weight per unknown.
    pub reltol: f64,
    /// Absolute error-weight floor per unknown.
    pub abstol: f64,
    /// Smallest step the controller will return; the driver treats a
    /// rejection at `h_min` as a hard convergence failure.
    pub h_min: f64,
    /// Largest step the controller will return.
    pub h_max: f64,
    /// Safety factor applied to the optimal-step estimate (< 1).
    pub safety: f64,
    /// Maximum per-accept step growth factor.
    pub grow_max: f64,
    /// Minimum per-reject shrink factor (a reject multiplies the step
    /// by a factor in `[shrink_min, safety)`).
    pub shrink_min: f64,
}

impl Default for StepControl {
    fn default() -> StepControl {
        StepControl {
            reltol: 1.0e-3,
            abstol: 1.0e-6,
            h_min: 1.0e-15,
            h_max: f64::INFINITY,
            safety: 0.9,
            grow_max: 2.0,
            shrink_min: 0.1,
        }
    }
}

/// Outcome of [`StepControl::decide`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepDecision {
    /// The step satisfied the error weights; advance and use `next_h`
    /// for the following step.
    Accept {
        /// Step size to try next, already clamped to `[h_min, h_max]`.
        next_h: f64,
    },
    /// The step violated the error weights; retry the same time point
    /// with the strictly smaller `retry_h`.
    Reject {
        /// Shrunk step size, floored at `h_min`.
        retry_h: f64,
    },
}

impl StepControl {
    /// The worst per-unknown ratio of estimated local error to its
    /// error weight: `max_i |corrected_i − predicted_i| /
    /// (reltol·max(|corrected_i|, |reference_i|) + abstol)`.
    ///
    /// `reference` is the solution at the previous accepted step, so a
    /// fast-moving unknown is weighted by its recent magnitude rather
    /// than only the new value. Non-finite arithmetic yields
    /// `f64::INFINITY` (always rejected), never NaN.
    pub fn error_ratio(&self, corrected: &[f64], predicted: &[f64], reference: &[f64]) -> f64 {
        debug_assert_eq!(corrected.len(), predicted.len());
        debug_assert_eq!(corrected.len(), reference.len());
        let mut worst = 0.0f64;
        for ((&c, &p), &r) in corrected.iter().zip(predicted).zip(reference) {
            let weight = self.reltol * c.abs().max(r.abs()) + self.abstol;
            let ratio = (c - p).abs() / weight;
            if !ratio.is_finite() {
                return f64::INFINITY;
            }
            if ratio > worst {
                worst = ratio;
            }
        }
        worst
    }

    /// Accept/reject decision for a step of size `h` whose error ratio
    /// was `ratio` (from [`error_ratio`](StepControl::error_ratio)).
    ///
    /// The step-size update uses the first-order (backward Euler)
    /// truncation model `err ∝ h²`: the optimal factor is
    /// `safety / √ratio`, clamped to `[shrink_min, grow_max]`. Because
    /// `safety < 1`, any `ratio > 1` shrinks the step strictly.
    pub fn decide(&self, h: f64, ratio: f64) -> StepDecision {
        if ratio <= 1.0 {
            let factor = if ratio > 0.0 {
                (self.safety / ratio.sqrt()).min(self.grow_max)
            } else {
                self.grow_max
            };
            StepDecision::Accept {
                next_h: (h * factor.max(self.safety)).clamp(self.h_min, self.h_max),
            }
        } else {
            // ratio > 1 or non-finite (NaN compares false above).
            let factor = if ratio.is_finite() {
                (self.safety / ratio.sqrt()).max(self.shrink_min)
            } else {
                self.shrink_min
            };
            StepDecision::Reject {
                retry_h: (h * factor).max(self.h_min),
            }
        }
    }
}

/// Linear predictor: extrapolates from the previous two accepted
/// solutions (`x_prev` at distance `h_prev` behind `x_curr`) forward
/// by `h_next`, writing into `out`.
pub fn extrapolate(x_prev: &[f64], x_curr: &[f64], h_prev: f64, h_next: f64, out: &mut [f64]) {
    debug_assert_eq!(x_prev.len(), x_curr.len());
    debug_assert_eq!(x_prev.len(), out.len());
    let r = if h_prev > 0.0 { h_next / h_prev } else { 0.0 };
    for ((o, &c), &p) in out.iter_mut().zip(x_curr).zip(x_prev) {
        *o = c + (c - p) * r;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_grows_step() {
        let ctrl = StepControl::default();
        let ratio = ctrl.error_ratio(&[1.0, 2.0], &[1.0, 2.0], &[1.0, 2.0]);
        assert_eq!(ratio, 0.0);
        match ctrl.decide(1.0e-9, ratio) {
            StepDecision::Accept { next_h } => {
                assert!((next_h - 2.0e-9).abs() < 1e-24, "{next_h}");
            }
            StepDecision::Reject { .. } => panic!("zero error must accept"),
        }
    }

    #[test]
    fn large_error_rejects_and_shrinks() {
        let ctrl = StepControl::default();
        let ratio = ctrl.error_ratio(&[1.0], &[2.0], &[1.0]);
        assert!(ratio > 1.0);
        match ctrl.decide(1.0e-9, ratio) {
            StepDecision::Reject { retry_h } => assert!(retry_h < 1.0e-9),
            StepDecision::Accept { .. } => panic!("must reject"),
        }
    }

    #[test]
    fn boundary_ratio_one_accepts_without_growing() {
        let ctrl = StepControl::default();
        match ctrl.decide(1.0e-9, 1.0) {
            StepDecision::Accept { next_h } => {
                // factor = max(safety/1, safety) = 0.9: mild shrink is
                // allowed on a barely-passing step, growth is not.
                assert!(next_h <= 1.0e-9);
                assert!(next_h >= 0.8e-9);
            }
            StepDecision::Reject { .. } => panic!("ratio == 1 accepts"),
        }
    }

    #[test]
    fn nan_error_is_rejected_with_floor_shrink() {
        let ctrl = StepControl::default();
        let ratio = ctrl.error_ratio(&[f64::NAN], &[0.0], &[0.0]);
        assert!(ratio.is_infinite());
        match ctrl.decide(1.0e-9, ratio) {
            StepDecision::Reject { retry_h } => {
                assert!((retry_h - 1.0e-10).abs() < 1e-24);
            }
            StepDecision::Accept { .. } => panic!("NaN must reject"),
        }
    }

    #[test]
    fn h_min_floors_the_retry() {
        let ctrl = StepControl {
            h_min: 1.0e-12,
            ..Default::default()
        };
        match ctrl.decide(1.5e-12, 1.0e6) {
            StepDecision::Reject { retry_h } => assert_eq!(retry_h, 1.0e-12),
            StepDecision::Accept { .. } => panic!("must reject"),
        }
    }

    #[test]
    fn h_max_caps_growth() {
        let ctrl = StepControl {
            h_max: 1.0e-8,
            ..Default::default()
        };
        match ctrl.decide(9.0e-9, 0.0) {
            StepDecision::Accept { next_h } => assert_eq!(next_h, 1.0e-8),
            StepDecision::Reject { .. } => panic!("must accept"),
        }
    }

    #[test]
    fn extrapolate_is_linear() {
        let mut out = vec![0.0; 2];
        extrapolate(&[0.0, 10.0], &[1.0, 8.0], 1.0e-9, 2.0e-9, &mut out);
        assert!((out[0] - 3.0).abs() < 1e-12);
        assert!((out[1] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn extrapolate_degenerate_h_prev_holds_value() {
        let mut out = vec![0.0];
        extrapolate(&[5.0], &[7.0], 0.0, 1.0e-9, &mut out);
        assert_eq!(out[0], 7.0);
    }
}
