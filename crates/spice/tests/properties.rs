//! Property-based tests of the circuit-simulation substrate.

#![allow(clippy::needless_range_loop)] // index pairs build random matrices

use proptest::prelude::*;

use neurofi_spice::device::MosModel;
use neurofi_spice::mna::DenseMatrix;
use neurofi_spice::units::parse_spice_number;
use neurofi_spice::{Engine, Netlist, TranSpec, Waveform};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// LU solves random diagonally-dominant systems to tight residuals.
    #[test]
    fn lu_solver_residual_is_small(
        n in 2usize..20,
        seed in any::<u64>(),
    ) {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut a = vec![vec![0.0f64; n]; n];
        for i in 0..n {
            let mut sum = 0.0;
            for j in 0..n {
                if i != j {
                    a[i][j] = next();
                    sum += a[i][j].abs();
                }
            }
            a[i][i] = sum + 1.0 + next().abs();
        }
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let mut m = DenseMatrix::new(n);
        for i in 0..n {
            for j in 0..n {
                m.set(i, j, a[i][j]);
            }
        }
        let mut x = b.clone();
        m.solve_in_place(&mut x).unwrap();
        for i in 0..n {
            let row: f64 = (0..n).map(|j| a[i][j] * x[j]).sum();
            prop_assert!((row - b[i]).abs() < 1e-8, "residual {} at row {i}", row - b[i]);
        }
    }

    /// The MOSFET model is continuous: nearby inputs give nearby currents
    /// across all operating regions, including the region boundaries.
    #[test]
    fn mosfet_model_is_continuous(
        vg in 0.0f64..1.2,
        vd in 0.0f64..1.2,
        vs in 0.0f64..0.6,
    ) {
        let m = MosModel::ptm65_nmos();
        let e0 = m.eval(1.0e-6, 65.0e-9, vg, vd, vs, 0.0);
        let h = 1.0e-6;
        let e1 = m.eval(1.0e-6, 65.0e-9, vg + h, vd + h, vs + h, 0.0);
        // Lipschitz-ish bound: currents are at most mA-scale, slopes at
        // most tens of mS, so a 1 µV triple-step moves id < 1 µA.
        prop_assert!((e1.id - e0.id).abs() < 1.0e-6);
        prop_assert!(e0.id.is_finite() && e0.did_dvg.is_finite());
    }

    /// Drain current never flows against vds for a gate-side device
    /// (passivity of the channel).
    #[test]
    fn mosfet_channel_is_passive(
        vg in 0.0f64..1.2,
        vds in -1.2f64..1.2,
    ) {
        let m = MosModel::ptm65_nmos();
        let e = m.eval(1.0e-6, 65.0e-9, vg, vds.max(0.0) + vds.min(0.0), 0.0, 0.0);
        // id and vds share sign (or id == 0).
        prop_assert!(e.id * vds >= -1e-18, "id {} vs vds {}", e.id, vds);
    }

    /// Engineering-notation parsing accepts what it prints (scale suffix
    /// round trip through a known grid).
    #[test]
    fn spice_number_suffix_scaling(mantissa in 0.001f64..999.0) {
        for (suffix, scale) in [
            ("f", 1e-15), ("p", 1e-12), ("n", 1e-9), ("u", 1e-6),
            ("m", 1e-3), ("k", 1e3), ("meg", 1e6), ("g", 1e9),
        ] {
            let text = format!("{mantissa}{suffix}");
            let parsed = parse_spice_number(&text).unwrap();
            let expect = mantissa * scale;
            prop_assert!(
                ((parsed - expect) / expect).abs() < 1e-12,
                "{text} -> {parsed} != {expect}"
            );
        }
    }

    /// RC step responses match the analytic exponential for random R and
    /// C over two decades each.
    #[test]
    fn rc_transient_matches_analytic(
        r_exp in 0.0f64..2.0,
        c_exp in 0.0f64..2.0,
    ) {
        let r = 1.0e3 * 10f64.powf(r_exp);
        let c = 1.0e-10 * 10f64.powf(c_exp);
        let tau = r * c;
        let mut net = Netlist::new();
        let vin = net.node("in");
        let out = net.node("out");
        net.vsource("V1", vin, Netlist::GROUND, Waveform::Dc(1.0)).unwrap();
        net.resistor("R1", vin, out, r).unwrap();
        net.capacitor("C1", out, Netlist::GROUND, c).unwrap();
        let spec = TranSpec::new(2.0 * tau, tau / 100.0).with_uic();
        let res = net.compile().unwrap().tran(&spec).unwrap();
        let v = res.voltage(out);
        for (idx, &t) in res.times().iter().enumerate().step_by(17) {
            let expect = 1.0 - (-t / tau).exp();
            prop_assert!(
                (v[idx] - expect).abs() < 8.0e-3,
                "t={t:.3e}: {} vs {expect}",
                v[idx]
            );
        }
    }

    /// Pulse waveforms never exceed their endpoint values and honour the
    /// delay.
    #[test]
    fn pulse_bounds_and_delay(
        delay in 0.0f64..1.0e-6,
        width in 1.0e-9f64..1.0e-6,
        t in 0.0f64..5.0e-6,
    ) {
        let w = Waveform::Pulse {
            v1: 0.2,
            v2: 0.9,
            delay,
            rise: 1.0e-9,
            fall: 1.0e-9,
            width,
            period: 2.0 * width + 10.0e-9,
        };
        let v = w.value(t);
        prop_assert!((0.2..=0.9).contains(&v));
        if t < delay {
            prop_assert_eq!(v, 0.2);
        }
    }

    /// A resistive divider's operating point is exact for arbitrary
    /// resistor pairs (the solver introduces no bias on linear circuits).
    #[test]
    fn divider_op_is_exact(
        r1_exp in 1.0f64..6.0,
        r2_exp in 1.0f64..6.0,
        vsrc in 0.1f64..5.0,
    ) {
        let r1 = 10f64.powf(r1_exp);
        let r2 = 10f64.powf(r2_exp);
        let mut net = Netlist::new();
        let a = net.node("a");
        let mid = net.node("mid");
        net.vsource("V1", a, Netlist::GROUND, Waveform::Dc(vsrc)).unwrap();
        net.resistor("R1", a, mid, r1).unwrap();
        net.resistor("R2", mid, Netlist::GROUND, r2).unwrap();
        let op = net.compile().unwrap().op(&Default::default()).unwrap();
        let expect = vsrc * r2 / (r1 + r2);
        prop_assert!(
            (op.voltage(mid) - expect).abs() < 1e-6 * vsrc + 1e-9,
            "{} vs {expect}",
            op.voltage(mid)
        );
    }

    /// The sparse engine agrees with the dense engine within 1e-9
    /// relative on random resistive-ladder operating points.
    #[test]
    fn sparse_op_matches_dense_on_random_ladders(
        n in 2usize..16,
        seed in any::<u64>(),
        vsrc in 0.2f64..3.0,
    ) {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f64 / (1u64 << 31) as f64 + 0.05
        };
        let mut net = Netlist::new();
        let nodes: Vec<_> = (0..n).map(|i| net.node(&format!("n{i}"))).collect();
        net.vsource("V1", nodes[0], Netlist::GROUND, Waveform::Dc(vsrc)).unwrap();
        for i in 1..n {
            // Series rung plus a shunt to ground: always well-posed.
            net.resistor(&format!("Rs{i}"), nodes[i - 1], nodes[i], 1.0e3 * next())
                .unwrap();
            net.resistor(&format!("Rg{i}"), nodes[i], Netlist::GROUND, 1.0e4 * next())
                .unwrap();
        }
        let circuit = net.compile().unwrap();
        let opts = Default::default();
        let dense = circuit.op_with_engine(Engine::Dense, &opts).unwrap();
        let sparse = circuit.op_with_engine(Engine::Sparse, &opts).unwrap();
        for &node in &nodes {
            let d = dense.voltage(node);
            let s = sparse.voltage(node);
            prop_assert!(
                (d - s).abs() <= 1e-9 * d.abs().max(s.abs()).max(1.0),
                "node {node:?}: dense {d} vs sparse {s}"
            );
        }
    }

    /// Sparse and dense transients agree within 1e-9 relative on RC
    /// networks (same fixed-step schedule, different LU).
    #[test]
    fn sparse_tran_matches_dense_on_rc(
        r_exp in 0.0f64..2.0,
        c_exp in 0.0f64..2.0,
    ) {
        let r = 1.0e3 * 10f64.powf(r_exp);
        let c = 1.0e-10 * 10f64.powf(c_exp);
        let tau = r * c;
        let mut net = Netlist::new();
        let vin = net.node("in");
        let out = net.node("out");
        net.vsource("V1", vin, Netlist::GROUND, Waveform::Dc(1.0)).unwrap();
        net.resistor("R1", vin, out, r).unwrap();
        net.capacitor("C1", out, Netlist::GROUND, c).unwrap();
        let circuit = net.compile().unwrap();
        let spec = TranSpec::new(2.0 * tau, tau / 50.0).with_uic();
        let dense = circuit.tran_with_engine(Engine::Dense, &spec).unwrap();
        let sparse = circuit.tran_with_engine(Engine::Sparse, &spec).unwrap();
        prop_assert_eq!(dense.len(), sparse.len());
        let vd = dense.voltage(out);
        let vs = sparse.voltage(out);
        for (i, (d, s)) in vd.iter().zip(&vs).enumerate() {
            prop_assert!(
                (d - s).abs() <= 1e-9 * d.abs().max(s.abs()).max(1.0),
                "point {i}: dense {d} vs sparse {s}"
            );
        }
        // The sparse engine reused its pattern across the analysis.
        let st = sparse.stats().solver;
        prop_assert!(st.refactorizations > 0, "{st:?}");
        prop_assert!(st.nnz < st.dim * st.dim || st.dim <= 2);
    }
}
