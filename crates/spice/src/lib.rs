//! # neurofi-spice
//!
//! A compact, self-contained analog circuit simulator in the spirit of
//! SPICE, purpose-built for the neuromorphic fault-injection studies in the
//! `neurofi` workspace (reproduction of *"Analysis of Power-Oriented Fault
//! Injection Attacks on Spiking Neural Networks"*, DATE 2022).
//!
//! The paper characterises its analog neuron circuits with HSPICE on PTM
//! 65 nm model cards. Neither is redistributable, so this crate provides the
//! closest open equivalent:
//!
//! * **Modified nodal analysis** (MNA) over pluggable linear engines
//!   ([`circuit::Engine`]): a dense partial-pivot LU — the regression-locked
//!   default, optimal below ~25 unknowns — and the sparse Markowitz LU from
//!   `neurofi-solver` for whole-layer netlists with hundreds of unknowns.
//! * **Newton–Raphson** nonlinear iteration with voltage-step limiting,
//!   `gmin` stepping and source stepping fall-backs.
//! * **Transient analysis** using backward-Euler or trapezoidal companion
//!   models, with automatic step halving when Newton fails to converge, and
//!   optional error-weighted adaptive timestep control
//!   ([`TranSpec::with_adaptive`]).
//! * An **EKV-style MOSFET compact model** ([`device::MosModel`]): a single
//!   smooth equation covering subthreshold, triode and saturation, with
//!   analytic derivatives (crucial for the slow membrane-voltage ramps of
//!   integrate-and-fire neurons, which sweep straight through the inverter
//!   transition region).
//! * A **SPICE-subset netlist parser** ([`parse`]) and waveform sources
//!   (DC / PULSE / PWL / SIN).
//! * **Measurement helpers** ([`measure`]): spike detection, threshold
//!   crossings, period extraction, averages — the quantities the paper
//!   reports.
//!
//! ## Quickstart: an RC low-pass step response
//!
//! ```
//! use neurofi_spice::{Netlist, Waveform, TranSpec};
//!
//! # fn main() -> Result<(), neurofi_spice::Error> {
//! let mut net = Netlist::new();
//! let vin = net.node("in");
//! let vout = net.node("out");
//! net.vsource("V1", vin, Netlist::GROUND, Waveform::Dc(1.0));
//! net.resistor("R1", vin, vout, 1.0e3);
//! net.capacitor("C1", vout, Netlist::GROUND, 1.0e-9);
//!
//! let result = net.compile()?.tran(&TranSpec::new(10.0e-6, 2.0e-9).with_uic())?;
//! let v_end = *result.voltage(vout).last().unwrap();
//! assert!((v_end - 1.0).abs() < 1e-3); // fully charged after 10 tau
//! # Ok(())
//! # }
//! ```
//!
//! ## Module map
//!
//! | module | contents |
//! |---|---|
//! | [`netlist`] | circuit description & builder API |
//! | [`device`] | MOSFET compact model and model cards |
//! | [`waveform`] | time-dependent source values |
//! | [`circuit`] | compiled circuit, DC and transient engines |
//! | [`mna`] | dense matrix + LU solver |
//! | [`parse`] | SPICE-subset text netlist parser |
//! | [`measure`] | waveform measurement utilities |
//! | [`units`] | engineering-notation helpers |

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod circuit;
pub mod device;
pub mod error;
pub mod export;
pub mod measure;
pub mod mna;
pub mod netlist;
pub mod parse;
pub mod units;
pub mod waveform;

pub use circuit::{Circuit, Engine, OpPoint, SolveOptions, TranResult, TranSpec, TranStats};
pub use device::{MosModel, MosType};
pub use error::Error;
pub use netlist::{Element, Netlist, NodeId};
pub use waveform::Waveform;
