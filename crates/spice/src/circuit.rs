//! Compiled circuits and the DC / transient analysis engines.

use crate::device::MosModel;
use crate::error::{Error, Result};
use crate::mna::SolverWorkspace;
use crate::netlist::{Element, Netlist, NodeId};
use crate::waveform::Waveform;
use neurofi_solver::{
    GminSchedule, LinearSolver, SolverStats, SourceSchedule, SparseWorkspace, StepControl,
    StepDecision,
};

/// Which linear-solver engine an analysis runs on.
///
/// [`Engine::Dense`] is the default and the regression-locked path:
/// every analysis entry point without an explicit engine
/// ([`Circuit::op`], [`Circuit::tran`], [`Circuit::dc_sweep`])
/// monomorphises the same driver code over the dense workspace, so
/// paper-size circuits produce byte-identical results to the
/// pre-engine-trait implementation. [`Engine::Sparse`] switches the
/// same drivers onto [`SparseWorkspace`] — pattern-learning CSC
/// assembly over a Markowitz LU with symbolic reuse — which wins once
/// circuits grow past a few hundred unknowns (whole-layer netlists).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Dense partial-pivot LU (the bit-exact default for paper-size
    /// circuits).
    #[default]
    Dense,
    /// Sparse Markowitz LU with frozen-pattern refactorisation.
    Sparse,
}

/// Nonlinear-solver tuning knobs.
///
/// The defaults converge for every circuit in this workspace; they mirror
/// classic SPICE settings (RELTOL / VNTOL / ABSTOL / GMIN).
#[derive(Debug, Clone, PartialEq)]
pub struct SolveOptions {
    /// Maximum Newton iterations per solve.
    pub max_iter: usize,
    /// Absolute node-voltage convergence tolerance, volts.
    pub vntol: f64,
    /// Relative convergence tolerance.
    pub reltol: f64,
    /// Absolute branch-current convergence tolerance, amperes.
    pub abstol: f64,
    /// Maximum per-iteration change applied to any node voltage, volts
    /// (Newton damping; essential for the positive-feedback neuron loops).
    pub vstep_limit: f64,
    /// Conductance from every node to ground, siemens. Keeps gate-only and
    /// capacitor-only nodes well-posed.
    pub gmin: f64,
}

impl Default for SolveOptions {
    fn default() -> SolveOptions {
        SolveOptions {
            max_iter: 80,
            vntol: 1.0e-6,
            reltol: 1.0e-3,
            abstol: 1.0e-12,
            vstep_limit: 0.4,
            gmin: 1.0e-12,
        }
    }
}

/// Numerical integration method for transient analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Integration {
    /// Backward Euler: L-stable, mildly dissipative. The default — the
    /// neuron circuits contain strong positive feedback where trapezoidal
    /// ringing is unwelcome.
    #[default]
    BackwardEuler,
    /// Trapezoidal: second-order accurate, can ring on discontinuities.
    Trapezoidal,
}

/// Transient analysis request.
#[derive(Debug, Clone, PartialEq)]
pub struct TranSpec {
    /// Stop time, seconds.
    pub tstop: f64,
    /// Base (maximum) time step, seconds. The engine lands exactly on
    /// waveform breakpoints and halves the step when Newton struggles.
    pub dt: f64,
    /// Skip the initial DC operating point and start from capacitor initial
    /// conditions instead (SPICE `UIC`).
    pub uic: bool,
    /// Record every n-th accepted step (1 = record all).
    pub record_every: usize,
    /// Integration method.
    pub method: Integration,
    /// Solver options.
    pub options: SolveOptions,
    /// Error-weighted adaptive timestep control. `None` (the default)
    /// keeps the classic fixed-step engine: base step `dt`, halving
    /// only on Newton failure — the bit-exact path every golden vector
    /// is locked to. `Some` enables predictor/corrector step
    /// accept/reject: `dt` becomes the *initial* step and the
    /// controller grows or shrinks within `[h_min, h_max]`.
    pub adaptive: Option<StepControl>,
}

impl TranSpec {
    /// Creates a spec with the given stop time and base step.
    ///
    /// # Panics
    /// Panics if `tstop` or `dt` is not positive and finite, or `dt > tstop`.
    pub fn new(tstop: f64, dt: f64) -> TranSpec {
        assert!(
            tstop.is_finite() && tstop > 0.0,
            "tstop must be positive, got {tstop}"
        );
        assert!(
            dt.is_finite() && dt > 0.0 && dt <= tstop,
            "dt must be in (0, tstop], got {dt}"
        );
        TranSpec {
            tstop,
            dt,
            uic: false,
            record_every: 1,
            method: Integration::BackwardEuler,
            options: SolveOptions::default(),
            adaptive: None,
        }
    }

    /// Starts from initial conditions instead of a DC operating point.
    #[must_use]
    pub fn with_uic(mut self) -> TranSpec {
        self.uic = true;
        self
    }

    /// Uses trapezoidal integration.
    #[must_use]
    pub fn with_trapezoidal(mut self) -> TranSpec {
        self.method = Integration::Trapezoidal;
        self
    }

    /// Records only every n-th step to bound memory on long runs.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    #[must_use]
    pub fn with_record_every(mut self, n: usize) -> TranSpec {
        assert!(n > 0, "record_every must be at least 1");
        self.record_every = n;
        self
    }

    /// Replaces the solver options.
    #[must_use]
    pub fn with_options(mut self, options: SolveOptions) -> TranSpec {
        self.options = options;
        self
    }

    /// Enables error-weighted adaptive timestepping with the given
    /// controller; `dt` becomes the initial step instead of the fixed
    /// step.
    #[must_use]
    pub fn with_adaptive(mut self, control: StepControl) -> TranSpec {
        self.adaptive = Some(control);
        self
    }
}

#[derive(Debug, Clone)]
struct CapElem {
    p: usize, // node index, 0 = ground
    n: usize,
    c: f64,
    ic: Option<f64>,
}

#[derive(Debug, Clone)]
struct ResElem {
    p: usize,
    n: usize,
    g: f64,
}

#[derive(Debug, Clone)]
struct VsrcElem {
    p: usize,
    n: usize,
    wave: Waveform,
    branch: usize,
    name: String,
}

#[derive(Debug, Clone)]
struct IsrcElem {
    p: usize,
    n: usize,
    wave: Waveform,
}

#[derive(Debug, Clone)]
struct MosElem {
    d: usize,
    g: usize,
    s: usize,
    b: usize,
    model: MosModel,
    w: f64,
    l: f64,
}

#[derive(Debug, Clone)]
struct VcvsElem {
    p: usize,
    n: usize,
    cp: usize,
    cn: usize,
    gain: f64,
    branch: usize,
}

#[derive(Debug, Clone)]
struct VccsElem {
    p: usize,
    n: usize,
    cp: usize,
    cn: usize,
    gm: f64,
}

/// A compiled, simulatable circuit produced by [`Netlist::compile`].
///
/// Compilation assigns every non-ground node an unknown index and every
/// voltage-defined element (V source, VCVS) a branch-current unknown.
#[derive(Debug, Clone)]
pub struct Circuit {
    node_count: usize, // including ground
    n_branch: usize,
    caps: Vec<CapElem>,
    resistors: Vec<ResElem>,
    vsources: Vec<VsrcElem>,
    isources: Vec<IsrcElem>,
    mosfets: Vec<MosElem>,
    vcvs: Vec<VcvsElem>,
    vccs: Vec<VccsElem>,
}

/// Per-capacitor dynamic state for the companion models.
#[derive(Debug, Clone)]
struct DynState {
    /// Voltage across each capacitor at the previous accepted step.
    v_prev: Vec<f64>,
    /// Current through each capacitor at the previous accepted step
    /// (trapezoidal only).
    i_prev: Vec<f64>,
}

impl Circuit {
    pub(crate) fn compile(netlist: &Netlist) -> Result<Circuit> {
        if netlist.elements().is_empty() {
            return Err(Error::Netlist("netlist contains no elements".into()));
        }
        let mut circuit = Circuit {
            node_count: netlist.node_count(),
            n_branch: 0,
            caps: Vec::new(),
            resistors: Vec::new(),
            vsources: Vec::new(),
            isources: Vec::new(),
            mosfets: Vec::new(),
            vcvs: Vec::new(),
            vccs: Vec::new(),
        };
        for element in netlist.elements() {
            match element {
                Element::Resistor { p, n, r, .. } => circuit.resistors.push(ResElem {
                    p: p.index(),
                    n: n.index(),
                    g: 1.0 / r,
                }),
                Element::Capacitor { p, n, c, ic, .. } => circuit.caps.push(CapElem {
                    p: p.index(),
                    n: n.index(),
                    c: *c,
                    ic: *ic,
                }),
                Element::VSource { name, p, n, wave } => {
                    let branch = circuit.n_branch;
                    circuit.n_branch += 1;
                    circuit.vsources.push(VsrcElem {
                        p: p.index(),
                        n: n.index(),
                        wave: wave.clone(),
                        branch,
                        name: name.clone(),
                    });
                }
                Element::ISource { p, n, wave, .. } => circuit.isources.push(IsrcElem {
                    p: p.index(),
                    n: n.index(),
                    wave: wave.clone(),
                }),
                Element::Mosfet {
                    d,
                    g,
                    s,
                    b,
                    model,
                    w,
                    l,
                    ..
                } => circuit.mosfets.push(MosElem {
                    d: d.index(),
                    g: g.index(),
                    s: s.index(),
                    b: b.index(),
                    model: model.clone(),
                    w: *w,
                    l: *l,
                }),
                Element::Vcvs {
                    p, n, cp, cn, gain, ..
                } => {
                    let branch = circuit.n_branch;
                    circuit.n_branch += 1;
                    circuit.vcvs.push(VcvsElem {
                        p: p.index(),
                        n: n.index(),
                        cp: cp.index(),
                        cn: cn.index(),
                        gain: *gain,
                        branch,
                    });
                }
                Element::Vccs {
                    p, n, cp, cn, gm, ..
                } => circuit.vccs.push(VccsElem {
                    p: p.index(),
                    n: n.index(),
                    cp: cp.index(),
                    cn: cn.index(),
                    gm: *gm,
                }),
            }
        }
        Ok(circuit)
    }

    /// Number of MNA unknowns (non-ground node voltages + branch currents).
    pub fn unknown_count(&self) -> usize {
        (self.node_count - 1) + self.n_branch
    }

    #[inline]
    fn node_unknown(&self, node: usize) -> Option<usize> {
        if node == 0 {
            None
        } else {
            Some(node - 1)
        }
    }

    #[inline]
    fn branch_unknown(&self, branch: usize) -> usize {
        (self.node_count - 1) + branch
    }

    #[inline]
    fn v_at(&self, x: &[f64], node: usize) -> f64 {
        if node == 0 {
            0.0
        } else {
            x[node - 1]
        }
    }

    /// Stamps the linearised system `A·x_new = b` at the operating point
    /// `x` into any [`LinearSolver`]. `dyn_state` selects DC (None:
    /// capacitors open) or transient (Some: companion models with step
    /// `h`). The stamp sequence is a pure function of topology and
    /// mode, which the sparse engine exploits to freeze its pattern.
    #[allow(clippy::too_many_arguments)]
    fn stamp<S: LinearSolver>(
        &self,
        ws: &mut S,
        x: &[f64],
        t: f64,
        gmin: f64,
        src_scale: f64,
        dyn_state: Option<(&DynState, f64, Integration)>,
    ) {
        ws.begin();

        // gmin from every node to ground keeps the matrix well-posed.
        for node in 1..self.node_count {
            let i = node - 1;
            ws.add(i, i, gmin);
        }

        for r in &self.resistors {
            let (pi, ni) = (self.node_unknown(r.p), self.node_unknown(r.n));
            if let Some(i) = pi {
                ws.add(i, i, r.g);
            }
            if let Some(i) = ni {
                ws.add(i, i, r.g);
            }
            if let (Some(i), Some(j)) = (pi, ni) {
                ws.add(i, j, -r.g);
                ws.add(j, i, -r.g);
            }
        }

        if let Some((state, h, method)) = dyn_state {
            for ((cap, &v_prev), &i_prev) in self.caps.iter().zip(&state.v_prev).zip(&state.i_prev)
            {
                let (geq, ieq) = match method {
                    Integration::BackwardEuler => {
                        let geq = cap.c / h;
                        (geq, geq * v_prev)
                    }
                    Integration::Trapezoidal => {
                        let geq = 2.0 * cap.c / h;
                        (geq, geq * v_prev + i_prev)
                    }
                };
                let (pi, ni) = (self.node_unknown(cap.p), self.node_unknown(cap.n));
                if let Some(i) = pi {
                    ws.add(i, i, geq);
                    ws.rhs_add(i, ieq);
                }
                if let Some(i) = ni {
                    ws.add(i, i, geq);
                    ws.rhs_add(i, -ieq);
                }
                if let (Some(i), Some(j)) = (pi, ni) {
                    ws.add(i, j, -geq);
                    ws.add(j, i, -geq);
                }
            }
        }

        for vs in &self.vsources {
            let value = vs.wave.value(t) * src_scale;
            let k = self.branch_unknown(vs.branch);
            let (pi, ni) = (self.node_unknown(vs.p), self.node_unknown(vs.n));
            if let Some(i) = pi {
                ws.add(i, k, 1.0);
                ws.add(k, i, 1.0);
            }
            if let Some(i) = ni {
                ws.add(i, k, -1.0);
                ws.add(k, i, -1.0);
            }
            ws.rhs_set(k, value);
        }

        for is in &self.isources {
            let value = is.wave.value(t) * src_scale;
            if let Some(i) = self.node_unknown(is.p) {
                ws.rhs_add(i, -value);
            }
            if let Some(i) = self.node_unknown(is.n) {
                ws.rhs_add(i, value);
            }
        }

        for e in &self.vcvs {
            let k = self.branch_unknown(e.branch);
            let (pi, ni) = (self.node_unknown(e.p), self.node_unknown(e.n));
            if let Some(i) = pi {
                ws.add(i, k, 1.0);
                ws.add(k, i, 1.0);
            }
            if let Some(i) = ni {
                ws.add(i, k, -1.0);
                ws.add(k, i, -1.0);
            }
            if let Some(i) = self.node_unknown(e.cp) {
                ws.add(k, i, -e.gain);
            }
            if let Some(i) = self.node_unknown(e.cn) {
                ws.add(k, i, e.gain);
            }
        }

        for e in &self.vccs {
            let (pi, ni) = (self.node_unknown(e.p), self.node_unknown(e.n));
            let (cpi, cni) = (self.node_unknown(e.cp), self.node_unknown(e.cn));
            if let Some(i) = pi {
                if let Some(j) = cpi {
                    ws.add(i, j, e.gm);
                }
                if let Some(j) = cni {
                    ws.add(i, j, -e.gm);
                }
            }
            if let Some(i) = ni {
                if let Some(j) = cpi {
                    ws.add(i, j, -e.gm);
                }
                if let Some(j) = cni {
                    ws.add(i, j, e.gm);
                }
            }
        }

        for m in &self.mosfets {
            let vg = self.v_at(x, m.g);
            let vd = self.v_at(x, m.d);
            let vs = self.v_at(x, m.s);
            let vb = self.v_at(x, m.b);
            let e = m.model.eval(m.w, m.l, vg, vd, vs, vb);
            // Linearised drain current:
            //   id ≈ ieq + Σ_t (∂id/∂v_t)·v_t
            let ieq = e.id - e.did_dvg * vg - e.did_dvd * vd - e.did_dvs * vs - e.did_dvb * vb;
            let terminals = [
                (m.g, e.did_dvg),
                (m.d, e.did_dvd),
                (m.s, e.did_dvs),
                (m.b, e.did_dvb),
            ];
            if let Some(di) = self.node_unknown(m.d) {
                for (node, gpart) in terminals {
                    if let Some(j) = self.node_unknown(node) {
                        ws.add(di, j, gpart);
                    }
                }
                ws.rhs_add(di, -ieq);
            }
            if let Some(si) = self.node_unknown(m.s) {
                for (node, gpart) in terminals {
                    if let Some(j) = self.node_unknown(node) {
                        ws.add(si, j, -gpart);
                    }
                }
                ws.rhs_add(si, ieq);
            }
        }
    }

    /// Runs damped Newton iteration at time `t`, stamping and solving in
    /// the caller's [`LinearSolver`] workspace (no allocation per
    /// solve). On success, `x` holds the converged solution; returns the
    /// number of iterations used.
    #[allow(clippy::too_many_arguments)]
    fn newton<S: LinearSolver>(
        &self,
        ws: &mut S,
        x: &mut [f64],
        t: f64,
        gmin: f64,
        src_scale: f64,
        dyn_state: Option<(&DynState, f64, Integration)>,
        opts: &SolveOptions,
        context: &str,
    ) -> Result<usize> {
        let n = self.unknown_count();
        let n_nodes = self.node_count - 1;
        debug_assert_eq!(ws.dim(), n, "workspace sized for a different circuit");
        // Progressive damping: steep regenerative loops (the Axon Hillock
        // feedback flip) can trap clamped Newton in a 2-cycle; shrinking the
        // voltage clamp every 25 iterations breaks the cycle while leaving
        // well-behaved solves untouched.
        let mut vlimit = opts.vstep_limit;
        for iter in 0..opts.max_iter {
            if iter > 0 && iter % 25 == 0 {
                vlimit = (vlimit * 0.5).max(0.01);
            }
            self.stamp(ws, x, t, gmin, src_scale, dyn_state);
            let sol = ws.solve()?;
            if iter + 10 >= opts.max_iter && std::env::var_os("NEUROFI_SPICE_DEBUG").is_some() {
                let row: Vec<String> = x
                    .iter()
                    .zip(sol)
                    .take(8)
                    .map(|(xi, si)| format!("{xi:+.4}->{si:+.4}"))
                    .collect();
                eprintln!("  t={t:.4e} it={iter} [{}]", row.join(", "));
            }
            let mut converged = true;
            for (i, (xi, &new)) in x.iter_mut().zip(sol).enumerate().take(n) {
                if !new.is_finite() {
                    return Err(Error::Convergence {
                        context: format!("{context} (non-finite solution)"),
                        iterations: iter,
                    });
                }
                let mut delta = new - *xi;
                let tol = if i < n_nodes {
                    opts.vntol + opts.reltol * new.abs().max(xi.abs())
                } else {
                    opts.abstol + opts.reltol * new.abs().max(xi.abs())
                };
                if delta.abs() > tol {
                    converged = false;
                }
                if i < n_nodes && delta.abs() > vlimit {
                    delta = delta.signum() * vlimit;
                    converged = false;
                }
                *xi += delta;
            }
            if converged && iter > 0 {
                return Ok(iter + 1);
            }
        }
        Err(Error::Convergence {
            context: context.to_string(),
            iterations: opts.max_iter,
        })
    }

    /// Computes the DC operating point with sources evaluated at `t = 0`
    /// on the dense engine.
    ///
    /// Tries plain Newton first, then gmin stepping, then source stepping.
    ///
    /// # Errors
    /// [`Error::Convergence`] if all strategies fail; [`Error::Singular`]
    /// for structurally broken circuits.
    pub fn op(&self, opts: &SolveOptions) -> Result<OpPoint> {
        let mut ws = SolverWorkspace::new(self.unknown_count());
        self.op_with(&mut ws, opts)
    }

    /// [`Circuit::op`] on the chosen [`Engine`].
    pub fn op_with_engine(&self, engine: Engine, opts: &SolveOptions) -> Result<OpPoint> {
        match engine {
            Engine::Dense => self.op(opts),
            Engine::Sparse => {
                let mut ws = SparseWorkspace::new(self.unknown_count());
                self.op_with(&mut ws, opts)
            }
        }
    }

    /// [`Circuit::op`] reusing the caller's solver workspace (the sweep and
    /// transient drivers call this so every strategy shares one allocation).
    fn op_with<S: LinearSolver>(&self, ws: &mut S, opts: &SolveOptions) -> Result<OpPoint> {
        let mut x = self.initial_guess();
        if self
            .newton(
                ws,
                &mut x,
                0.0,
                opts.gmin,
                1.0,
                None,
                opts,
                "dc operating point",
            )
            .is_ok()
        {
            return Ok(self.make_op(x));
        }

        // gmin stepping: start heavily damped, relax toward the real gmin.
        let mut x = self.initial_guess();
        let mut ok = true;
        for gmin in GminSchedule::standard(opts.gmin).values() {
            if self
                .newton(ws, &mut x, 0.0, gmin, 1.0, None, opts, "gmin stepping")
                .is_err()
            {
                ok = false;
                break;
            }
        }
        // Finish at the caller's actual gmin (which may be below the floor
        // of the stepping ramp, or zero).
        if ok
            && self
                .newton(
                    ws,
                    &mut x,
                    0.0,
                    opts.gmin,
                    1.0,
                    None,
                    opts,
                    "dc operating point",
                )
                .is_ok()
        {
            return Ok(self.make_op(x));
        }

        // Source stepping.
        let mut x = vec![0.0; self.unknown_count()];
        for scale in SourceSchedule::standard().values() {
            self.newton(
                ws,
                &mut x,
                0.0,
                opts.gmin.max(1.0e-9),
                scale,
                None,
                opts,
                "source stepping",
            )?;
        }
        self.newton(
            ws,
            &mut x,
            0.0,
            opts.gmin,
            1.0,
            None,
            opts,
            "dc operating point",
        )?;
        Ok(self.make_op(x))
    }

    /// DC transfer sweep: repeatedly solves the operating point while
    /// overriding the waveform of source `source_name` with each DC value,
    /// warm-starting each solve from the previous solution.
    ///
    /// Returns one [`OpPoint`] per sweep value.
    ///
    /// # Errors
    /// Propagates the first solve failure, or [`Error::Netlist`] if the
    /// named source does not exist. (The override is local to the sweep;
    /// the circuit itself is not modified.)
    pub fn dc_sweep(
        &self,
        source_name: &str,
        values: &[f64],
        opts: &SolveOptions,
    ) -> Result<Vec<OpPoint>> {
        let mut ws = SolverWorkspace::new(self.unknown_count());
        self.dc_sweep_with(&mut ws, source_name, values, opts)
    }

    /// [`Circuit::dc_sweep`] on the chosen [`Engine`].
    pub fn dc_sweep_with_engine(
        &self,
        engine: Engine,
        source_name: &str,
        values: &[f64],
        opts: &SolveOptions,
    ) -> Result<Vec<OpPoint>> {
        match engine {
            Engine::Dense => self.dc_sweep(source_name, values, opts),
            Engine::Sparse => {
                let mut ws = SparseWorkspace::new(self.unknown_count());
                self.dc_sweep_with(&mut ws, source_name, values, opts)
            }
        }
    }

    fn dc_sweep_with<S: LinearSolver>(
        &self,
        ws: &mut S,
        source_name: &str,
        values: &[f64],
        opts: &SolveOptions,
    ) -> Result<Vec<OpPoint>> {
        let mut sweep = self.clone();
        let idx = sweep
            .vsources
            .iter()
            .position(|v| v.name.eq_ignore_ascii_case(source_name))
            .ok_or_else(|| Error::Netlist(format!("no voltage source named '{source_name}'")))?;
        let mut out = Vec::with_capacity(values.len());
        let mut warm: Option<Vec<f64>> = None;
        for &value in values {
            if let Some(vs) = sweep.vsources.get_mut(idx) {
                vs.wave = Waveform::Dc(value);
            }
            let mut x = warm.clone().unwrap_or_else(|| sweep.initial_guess());
            if sweep
                .newton(
                    ws,
                    &mut x,
                    0.0,
                    opts.gmin,
                    1.0,
                    None,
                    opts,
                    "dc sweep point",
                )
                .is_err()
            {
                // Fall back to the full strategy chain for this point.
                let op = sweep.op_with(ws, opts)?;
                warm = Some(op.x.clone());
                out.push(op);
                continue;
            }
            warm = Some(x.clone());
            out.push(sweep.make_op(x));
        }
        Ok(out)
    }

    fn initial_guess(&self) -> Vec<f64> {
        let mut x = vec![0.0; self.unknown_count()];
        // Nodes directly driven by voltage sources start at the source value;
        // everything else at 0. This is enough to put rails in place.
        for vs in &self.vsources {
            let v = vs.wave.value(0.0);
            if vs.n == 0 {
                if let Some(i) = self.node_unknown(vs.p) {
                    x[i] = v;
                }
            } else if vs.p == 0 {
                if let Some(i) = self.node_unknown(vs.n) {
                    x[i] = -v;
                }
            }
        }
        x
    }

    fn make_op(&self, x: Vec<f64>) -> OpPoint {
        OpPoint {
            node_count: self.node_count,
            branch_names: self.vsources.iter().map(|v| v.name.clone()).collect(),
            branch_offsets: self.vsources.iter().map(|v| v.branch).collect(),
            x,
        }
    }

    /// Runs a transient analysis on the dense engine.
    ///
    /// # Errors
    /// [`Error::Convergence`] if a step fails even at the minimum step size;
    /// [`Error::Singular`] for structurally broken circuits.
    pub fn tran(&self, spec: &TranSpec) -> Result<TranResult> {
        // One workspace for the whole analysis: every timestep's Newton
        // solves (including step-halving retries) stamp into the same
        // Jacobian/RHS buffers.
        let mut ws = SolverWorkspace::new(self.unknown_count());
        self.tran_impl(&mut ws, spec)
    }

    /// [`Circuit::tran`] on the chosen [`Engine`].
    pub fn tran_with_engine(&self, engine: Engine, spec: &TranSpec) -> Result<TranResult> {
        match engine {
            Engine::Dense => self.tran(spec),
            Engine::Sparse => {
                let mut ws = SparseWorkspace::new(self.unknown_count());
                self.tran_impl(&mut ws, spec)
            }
        }
    }

    fn tran_impl<S: LinearSolver>(&self, ws: &mut S, spec: &TranSpec) -> Result<TranResult> {
        let opts = &spec.options;
        let mut stats = TranStats::default();
        let mut state = DynState {
            v_prev: vec![0.0; self.caps.len()],
            i_prev: vec![0.0; self.caps.len()],
        };

        let mut x;
        if spec.uic {
            x = self.initial_guess();
            for (cap, v_prev) in self.caps.iter().zip(state.v_prev.iter_mut()) {
                *v_prev = cap.ic.unwrap_or(0.0);
            }
            // Consistent-start solve: with a vanishing step the capacitor
            // companions become stiff voltage sources at their ICs, so this
            // settles every non-capacitor node (inverter outputs, bias
            // rails) onto the operating point implied by the ICs. Without
            // it, the first real step launches from an all-zeros state and
            // regenerative circuits may not converge.
            let h0 = 1.0e-15;
            self.newton(
                ws,
                &mut x,
                0.0,
                opts.gmin,
                1.0,
                Some((&state, h0, Integration::BackwardEuler)),
                opts,
                "uic initialisation",
            )?;
        } else {
            let op = self.op_with(ws, opts)?;
            x = op.x.clone();
            for (cap, v_prev) in self.caps.iter().zip(state.v_prev.iter_mut()) {
                *v_prev = self.v_at(&x, cap.p) - self.v_at(&x, cap.n);
            }
        }

        // Collect breakpoints from every source waveform.
        let mut breakpoints: Vec<f64> = Vec::new();
        for vs in &self.vsources {
            breakpoints.extend(vs.wave.breakpoints(spec.tstop));
        }
        for is in &self.isources {
            breakpoints.extend(is.wave.breakpoints(spec.tstop));
        }
        breakpoints.sort_by(f64::total_cmp);
        breakpoints.dedup_by(|a, b| (*a - *b).abs() < 1.0e-15);
        let mut bp_cursor = 0usize;

        let mut result = TranResult {
            node_count: self.node_count,
            branch_names: self.vsources.iter().map(|v| v.name.clone()).collect(),
            branch_offsets: self.vsources.iter().map(|v| v.branch).collect(),
            times: Vec::new(),
            data: Vec::new(),
            unknowns: self.unknown_count(),
            stats: TranStats::default(),
        };
        result.push(0.0, &x);

        let dt_min = spec.dt / 1024.0;
        let mut t = 0.0;
        let mut accepted = 0usize;
        // Adaptive-control history: the previous accepted solution and
        // its step, feeding the linear predictor.
        let mut x_prev = x.clone();
        let mut h_prev = 0.0f64;
        let mut predicted = vec![0.0; x.len()];
        let mut h_next = spec.dt;
        while t < spec.tstop - 1.0e-18 {
            // Next target time: base step, clipped to the next breakpoint.
            while breakpoints
                .get(bp_cursor)
                .is_some_and(|&bp| bp <= t + 1.0e-15)
            {
                bp_cursor += 1;
            }
            let mut h = match &spec.adaptive {
                None => spec.dt.min(spec.tstop - t),
                Some(ctrl) => h_next.clamp(ctrl.h_min, ctrl.h_max).min(spec.tstop - t),
            };
            if let Some(&bp) = breakpoints.get(bp_cursor) {
                let to_bp = bp - t;
                if to_bp > 1.0e-15 && to_bp < h {
                    h = to_bp;
                }
            }

            // Attempt the step. Fixed mode halves on convergence
            // failure; adaptive mode additionally rejects accepted
            // Newton solves whose local-truncation-error estimate
            // violates the controller's error weights. The very first
            // step always uses backward Euler: under `uic` the stored
            // capacitor currents are unknown, and trapezoidal would turn
            // that startup error into a persistent oscillation.
            let method = if accepted == 0 {
                Integration::BackwardEuler
            } else {
                spec.method
            };
            let mut step = h;
            loop {
                let mut x_try = x.clone();
                match self.newton(
                    ws,
                    &mut x_try,
                    t + step,
                    opts.gmin,
                    1.0,
                    Some((&state, step, method)),
                    opts,
                    "transient step",
                ) {
                    Ok(iterations) => {
                        stats.newton_iterations += iterations as u64;
                        if let Some(ctrl) = &spec.adaptive {
                            // Predictor/corrector error control. The
                            // first accepted step has no history and is
                            // accepted as-is.
                            if h_prev > 0.0 {
                                neurofi_solver::step::extrapolate(
                                    &x_prev,
                                    &x,
                                    h_prev,
                                    step,
                                    &mut predicted,
                                );
                                let ratio = ctrl.error_ratio(&x_try, &predicted, &x);
                                match ctrl.decide(step, ratio) {
                                    StepDecision::Accept { next_h } => h_next = next_h,
                                    StepDecision::Reject { retry_h } => {
                                        stats.rejected_steps += 1;
                                        if retry_h >= step {
                                            return Err(Error::Convergence {
                                                context: format!(
                                                    "adaptive transient step at t={t:.3e}s \
                                                     (minimum step reached)"
                                                ),
                                                iterations: opts.max_iter,
                                            });
                                        }
                                        step = retry_h;
                                        continue;
                                    }
                                }
                            } else {
                                h_next = step;
                            }
                        }
                        // Update companion state from the accepted solution.
                        for ((cap, v_prev), i_prev) in self
                            .caps
                            .iter()
                            .zip(state.v_prev.iter_mut())
                            .zip(state.i_prev.iter_mut())
                        {
                            let v_new = self.v_at(&x_try, cap.p) - self.v_at(&x_try, cap.n);
                            let i_new = match method {
                                Integration::BackwardEuler => cap.c / step * (v_new - *v_prev),
                                Integration::Trapezoidal => {
                                    2.0 * cap.c / step * (v_new - *v_prev) - *i_prev
                                }
                            };
                            *v_prev = v_new;
                            *i_prev = i_new;
                        }
                        t += step;
                        h_prev = step;
                        std::mem::swap(&mut x_prev, &mut x);
                        x = x_try;
                        accepted += 1;
                        if accepted.is_multiple_of(spec.record_every) {
                            result.push(t, &x);
                        }
                        break;
                    }
                    Err(err) => {
                        stats.rejected_steps += 1;
                        step *= 0.5;
                        let floor = match &spec.adaptive {
                            None => dt_min,
                            Some(ctrl) => ctrl.h_min,
                        };
                        if step < floor {
                            return Err(match err {
                                Error::Convergence { iterations, .. } => Error::Convergence {
                                    context: format!(
                                        "transient step at t={t:.3e}s (minimum step reached)"
                                    ),
                                    iterations,
                                },
                                other => other,
                            });
                        }
                    }
                }
            }
        }
        // Always record the final point.
        if result.times.last().copied().unwrap_or(0.0) < t {
            result.push(t, &x);
        }
        stats.accepted_steps = accepted as u64;
        stats.solver = ws.stats();
        result.stats = stats;
        Ok(result)
    }
}

/// A solved DC operating point.
#[derive(Debug, Clone)]
pub struct OpPoint {
    node_count: usize,
    branch_names: Vec<String>,
    branch_offsets: Vec<usize>,
    x: Vec<f64>,
}

impl OpPoint {
    /// Voltage at `node` (0 V for ground; 0 V for out-of-range nodes,
    /// which can only come from a foreign netlist).
    pub fn voltage(&self, node: NodeId) -> f64 {
        if node.index() == 0 {
            0.0
        } else {
            self.x.get(node.index() - 1).copied().unwrap_or(0.0)
        }
    }

    /// Current through the named voltage source (positive flowing from the
    /// `p` terminal through the source to `n`), or `None` if no such source.
    pub fn source_current(&self, name: &str) -> Option<f64> {
        let idx = self
            .branch_names
            .iter()
            .position(|n| n.eq_ignore_ascii_case(name))?;
        let offset = self.branch_offsets.get(idx)?;
        self.x.get((self.node_count - 1) + offset).copied()
    }
}

/// Work counters accumulated over one transient analysis, including
/// the linear engine's own [`SolverStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TranStats {
    /// Total Newton iterations across all step attempts.
    pub newton_iterations: u64,
    /// Steps accepted and advanced.
    pub accepted_steps: u64,
    /// Step attempts rejected — Newton convergence failures plus (in
    /// adaptive mode) local-truncation-error rejections.
    pub rejected_steps: u64,
    /// Counters from the linear engine that ran the analysis.
    pub solver: SolverStats,
}

/// Recorded transient waveforms.
#[derive(Debug, Clone)]
pub struct TranResult {
    node_count: usize,
    branch_names: Vec<String>,
    branch_offsets: Vec<usize>,
    unknowns: usize,
    /// Accepted time points, seconds.
    times: Vec<f64>,
    /// Flattened unknown vectors, `times.len() × unknowns`.
    data: Vec<f64>,
    /// Work counters for the whole analysis.
    stats: TranStats,
}

impl TranResult {
    fn push(&mut self, t: f64, x: &[f64]) {
        self.times.push(t);
        self.data.extend_from_slice(x);
    }

    /// The recorded time points, seconds.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of recorded points.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when nothing was recorded (cannot normally happen).
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Work counters for the analysis that produced this result.
    pub fn stats(&self) -> &TranStats {
        &self.stats
    }

    /// The waveform of `node` as an owned vector aligned with [`times`].
    ///
    /// [`times`]: TranResult::times
    pub fn voltage(&self, node: NodeId) -> Vec<f64> {
        if node.index() == 0 {
            return vec![0.0; self.times.len()];
        }
        let col = node.index() - 1;
        (0..self.times.len())
            .map(|row| {
                self.data
                    .get(row * self.unknowns + col)
                    .copied()
                    .unwrap_or(0.0)
            })
            .collect()
    }

    /// The current waveform through the named voltage source, or `None` if
    /// no such source exists.
    pub fn source_current(&self, name: &str) -> Option<Vec<f64>> {
        let idx = self
            .branch_names
            .iter()
            .position(|n| n.eq_ignore_ascii_case(name))?;
        let col = (self.node_count - 1) + self.branch_offsets.get(idx)?;
        Some(
            (0..self.times.len())
                .map(|row| {
                    self.data
                        .get(row * self.unknowns + col)
                        .copied()
                        .unwrap_or(0.0)
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;
    use crate::units::{MEGA, NANO, PICO};

    #[test]
    fn resistive_divider_op() {
        let mut net = Netlist::new();
        let vin = net.node("in");
        let mid = net.node("mid");
        net.vsource("V1", vin, Netlist::GROUND, Waveform::Dc(2.0))
            .unwrap();
        net.resistor("R1", vin, mid, 1.0e3).unwrap();
        net.resistor("R2", mid, Netlist::GROUND, 1.0e3).unwrap();
        let op = net.compile().unwrap().op(&Default::default()).unwrap();
        assert!((op.voltage(mid) - 1.0).abs() < 1e-6);
        // Source current: 2V across 2k => 1 mA flowing p->through->n,
        // which by MNA convention is -1 mA (current enters the + terminal).
        let i = op.source_current("V1").unwrap();
        assert!((i + 1.0e-3).abs() < 1e-9, "i={i}");
    }

    #[test]
    fn empty_netlist_rejected() {
        let net = Netlist::new();
        assert!(net.compile().is_err());
    }

    #[test]
    fn rc_charge_matches_analytic() {
        let mut net = Netlist::new();
        let vin = net.node("in");
        let out = net.node("out");
        net.vsource("V1", vin, Netlist::GROUND, Waveform::Dc(1.0))
            .unwrap();
        net.resistor("R1", vin, out, 1.0e3).unwrap();
        net.capacitor("C1", out, Netlist::GROUND, 1.0e-9).unwrap();
        let tau = 1.0e-6;
        let spec = TranSpec::new(3.0 * tau, tau / 200.0).with_uic();
        let res = net.compile().unwrap().tran(&spec).unwrap();
        let v = res.voltage(out);
        for (idx, &t) in res.times().iter().enumerate() {
            let expect = 1.0 - (-t / tau).exp();
            assert!(
                (v[idx] - expect).abs() < 5.0e-3,
                "t={t:.2e}: {} vs {}",
                v[idx],
                expect
            );
        }
    }

    #[test]
    fn adaptive_rc_matches_analytic_with_fewer_steps() {
        let build = || {
            let mut net = Netlist::new();
            let vin = net.node("in");
            let out = net.node("out");
            net.vsource("V1", vin, Netlist::GROUND, Waveform::Dc(1.0))
                .unwrap();
            net.resistor("R1", vin, out, 1.0e3).unwrap();
            net.capacitor("C1", out, Netlist::GROUND, 1.0e-9).unwrap();
            net.compile().unwrap()
        };
        let tau = 1.0e-6;
        let fixed = build()
            .tran(&TranSpec::new(3.0 * tau, tau / 500.0).with_uic())
            .unwrap();
        let ctrl = StepControl {
            reltol: 1.0e-3,
            abstol: 1.0e-6,
            h_max: tau / 10.0,
            ..Default::default()
        };
        let adaptive = build()
            .tran(
                &TranSpec::new(3.0 * tau, tau / 500.0)
                    .with_uic()
                    .with_adaptive(ctrl),
            )
            .unwrap();
        // Still accurate against the analytic exponential...
        let v = adaptive.voltage(NodeId(2));
        for (idx, &t) in adaptive.times().iter().enumerate() {
            let expect = 1.0 - (-t / tau).exp();
            assert!(
                (v[idx] - expect).abs() < 1.0e-2,
                "t={t:.2e}: {} vs {expect}",
                v[idx]
            );
        }
        // ...while taking far fewer steps than the fixed schedule.
        let fs = fixed.stats();
        let st = adaptive.stats();
        assert!(
            st.accepted_steps * 4 < fs.accepted_steps,
            "adaptive {} vs fixed {}",
            st.accepted_steps,
            fs.accepted_steps
        );
        assert!(st.newton_iterations > 0);
        assert_eq!(st.solver.dim, 3);
        assert!(st.solver.solves >= st.newton_iterations);
    }

    #[test]
    fn tran_stats_populated_on_fixed_path() {
        let mut net = Netlist::new();
        let vin = net.node("in");
        let out = net.node("out");
        net.vsource("V1", vin, Netlist::GROUND, Waveform::Dc(1.0))
            .unwrap();
        net.resistor("R1", vin, out, 1.0e3).unwrap();
        net.capacitor("C1", out, Netlist::GROUND, 1.0e-9).unwrap();
        let res = net
            .compile()
            .unwrap()
            .tran(&TranSpec::new(1.0e-6, 1.0e-8).with_uic())
            .unwrap();
        let st = res.stats();
        assert_eq!(st.accepted_steps, 100);
        assert_eq!(st.rejected_steps, 0);
        assert!(st.newton_iterations >= st.accepted_steps);
        // Dense engine: every solve is a full factorisation of an n² matrix.
        assert_eq!(st.solver.nnz, st.solver.dim * st.solver.dim);
        assert_eq!(st.solver.full_factorizations, st.solver.solves);
    }

    #[test]
    fn sparse_engine_matches_dense_on_cmos_inverter_sweep() {
        let build = || {
            let mut net = Netlist::new();
            let vdd = net.node("vdd");
            let vin = net.node("in");
            let out = net.node("out");
            net.vsource("VDD", vdd, Netlist::GROUND, Waveform::Dc(1.0))
                .unwrap();
            net.vsource("VIN", vin, Netlist::GROUND, Waveform::Dc(0.5))
                .unwrap();
            net.mosfet(
                "MN",
                out,
                vin,
                Netlist::GROUND,
                Netlist::GROUND,
                MosModel::ptm65_nmos(),
                1.0e-6,
                65.0e-9,
            )
            .unwrap();
            net.mosfet(
                "MP",
                out,
                vin,
                vdd,
                vdd,
                MosModel::ptm65_pmos(),
                2.5e-6,
                65.0e-9,
            )
            .unwrap();
            net.compile().unwrap()
        };
        let values: Vec<f64> = (0..=20).map(|i| i as f64 / 20.0).collect();
        let opts = SolveOptions::default();
        let circuit = build();
        let dense = circuit
            .dc_sweep_with_engine(Engine::Dense, "VIN", &values, &opts)
            .unwrap();
        let sparse = circuit
            .dc_sweep_with_engine(Engine::Sparse, "VIN", &values, &opts)
            .unwrap();
        let out = NodeId(3);
        for (d, s) in dense.iter().zip(&sparse) {
            let (vd, vs) = (d.voltage(out), s.voltage(out));
            assert!(
                (vd - vs).abs() <= 1e-9 * vd.abs().max(vs.abs()).max(1.0),
                "dense {vd} vs sparse {vs}"
            );
        }
    }

    #[test]
    fn rc_trapezoidal_is_more_accurate_than_be() {
        let build = || {
            let mut net = Netlist::new();
            let vin = net.node("in");
            let out = net.node("out");
            net.vsource("V1", vin, Netlist::GROUND, Waveform::Dc(1.0))
                .unwrap();
            net.resistor("R1", vin, out, 1.0e3).unwrap();
            net.capacitor("C1", out, Netlist::GROUND, 1.0e-9).unwrap();
            net.compile().unwrap()
        };
        let tau = 1.0e-6;
        let coarse = tau / 20.0;
        let err = |res: &TranResult| {
            let v = res.voltage(NodeId(2));
            res.times()
                .iter()
                .zip(&v)
                .map(|(&t, &vv)| (vv - (1.0 - (-t / tau).exp())).abs())
                .fold(0.0f64, f64::max)
        };
        let be = build()
            .tran(&TranSpec::new(tau, coarse).with_uic())
            .unwrap();
        let tr = build()
            .tran(&TranSpec::new(tau, coarse).with_uic().with_trapezoidal())
            .unwrap();
        assert!(err(&tr) < err(&be), "trap {} vs be {}", err(&tr), err(&be));
    }

    #[test]
    fn capacitor_initial_condition_respected() {
        let mut net = Netlist::new();
        let out = net.node("out");
        net.resistor("R1", out, Netlist::GROUND, 1.0e3).unwrap();
        net.capacitor_ic("C1", out, Netlist::GROUND, 1.0e-9, 0.8)
            .unwrap();
        let spec = TranSpec::new(1.0e-6, 5.0e-9).with_uic();
        let res = net.compile().unwrap().tran(&spec).unwrap();
        let v = res.voltage(out);
        // Discharges from 0.8 V with tau = 1 us.
        let end = *v.last().unwrap();
        let expect = 0.8 * (-1.0f64).exp();
        assert!((end - expect).abs() < 5e-3, "{end} vs {expect}");
    }

    #[test]
    fn nmos_inverter_transfer() {
        // NMOS common-source with resistive load: output must swing from
        // VDD (input low) to near 0 (input high).
        let mut net = Netlist::new();
        let vdd = net.node("vdd");
        let vin = net.node("in");
        let out = net.node("out");
        net.vsource("VDD", vdd, Netlist::GROUND, Waveform::Dc(1.0))
            .unwrap();
        net.vsource("VIN", vin, Netlist::GROUND, Waveform::Dc(0.0))
            .unwrap();
        net.resistor("RL", vdd, out, 1.0 * MEGA).unwrap();
        net.mosfet(
            "M1",
            out,
            vin,
            Netlist::GROUND,
            Netlist::GROUND,
            MosModel::ptm65_nmos(),
            1.0e-6,
            65.0e-9,
        )
        .unwrap();
        let circuit = net.compile().unwrap();
        let ops = circuit
            .dc_sweep("VIN", &[0.0, 0.2, 0.5, 0.8, 1.0], &Default::default())
            .unwrap();
        let vouts: Vec<f64> = ops.iter().map(|o| o.voltage(out)).collect();
        assert!(vouts[0] > 0.95, "off: {}", vouts[0]);
        assert!(vouts[4] < 0.1, "on: {}", vouts[4]);
        // Monotone decreasing.
        for pair in vouts.windows(2) {
            assert!(pair[1] <= pair[0] + 1e-9);
        }
    }

    #[test]
    fn cmos_inverter_switching_threshold_near_half_vdd() {
        let mut net = Netlist::new();
        let vdd = net.node("vdd");
        let vin = net.node("in");
        let out = net.node("out");
        net.vsource("VDD", vdd, Netlist::GROUND, Waveform::Dc(1.0))
            .unwrap();
        net.vsource("VIN", vin, Netlist::GROUND, Waveform::Dc(0.5))
            .unwrap();
        net.mosfet(
            "MN",
            out,
            vin,
            Netlist::GROUND,
            Netlist::GROUND,
            MosModel::ptm65_nmos(),
            1.0e-6,
            65.0e-9,
        )
        .unwrap();
        net.mosfet(
            "MP",
            out,
            vin,
            vdd,
            vdd,
            MosModel::ptm65_pmos(),
            2.5e-6,
            65.0e-9,
        )
        .unwrap();
        let circuit = net.compile().unwrap();
        let values: Vec<f64> = (0..=40).map(|i| i as f64 / 40.0).collect();
        let ops = circuit
            .dc_sweep("VIN", &values, &Default::default())
            .unwrap();
        // Find where vout crosses vdd/2.
        let mut vsw = None;
        for w in ops.windows(2) {
            let (v0, v1) = (w[0].voltage(out), w[1].voltage(out));
            if v0 >= 0.5 && v1 < 0.5 {
                vsw = Some(0.5 * (w[0].voltage(vin) + w[1].voltage(vin)));
            }
        }
        let vsw = vsw.expect("inverter must switch");
        assert!(vsw > 0.3 && vsw < 0.7, "vsw={vsw}");
    }

    #[test]
    fn current_source_charges_capacitor_linearly() {
        // The core of every I&F neuron: Iin integrating on Cmem.
        let mut net = Netlist::new();
        let mem = net.node("mem");
        net.isource("IIN", Netlist::GROUND, mem, Waveform::Dc(200.0 * NANO))
            .unwrap();
        net.capacitor("CMEM", mem, Netlist::GROUND, 1.0 * PICO)
            .unwrap();
        let spec = TranSpec::new(2.0e-6, 2.0e-9).with_uic();
        let res = net.compile().unwrap().tran(&spec).unwrap();
        let v = res.voltage(mem);
        let t_end = *res.times().last().unwrap();
        // dv/dt = I/C = 200 kV/s => 0.4 V at 2 us.
        let expect = 200.0e-9 / 1.0e-12 * t_end;
        let got = *v.last().unwrap();
        assert!((got - expect).abs() / expect < 1e-3, "{got} vs {expect}");
    }

    #[test]
    fn vcvs_amplifies() {
        let mut net = Netlist::new();
        let a = net.node("a");
        let y = net.node("y");
        net.vsource("V1", a, Netlist::GROUND, Waveform::Dc(0.01))
            .unwrap();
        net.vcvs("E1", y, Netlist::GROUND, a, Netlist::GROUND, 100.0)
            .unwrap();
        net.resistor("RL", y, Netlist::GROUND, 1.0e3).unwrap();
        let op = net.compile().unwrap().op(&Default::default()).unwrap();
        assert!((op.voltage(y) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn vccs_converts() {
        let mut net = Netlist::new();
        let a = net.node("a");
        let y = net.node("y");
        net.vsource("V1", a, Netlist::GROUND, Waveform::Dc(0.5))
            .unwrap();
        net.vccs("G1", Netlist::GROUND, y, a, Netlist::GROUND, 1.0e-3)
            .unwrap();
        net.resistor("RL", y, Netlist::GROUND, 1.0e3).unwrap();
        let op = net.compile().unwrap().op(&Default::default()).unwrap();
        // 0.5 V * 1 mS = 0.5 mA injected into y through 1k => 0.5 V.
        assert!((op.voltage(y) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn pulse_source_transient_tracks_waveform() {
        let mut net = Netlist::new();
        let a = net.node("a");
        net.vsource(
            "V1",
            a,
            Netlist::GROUND,
            Waveform::Pulse {
                v1: 0.0,
                v2: 1.0,
                delay: 100.0e-9,
                rise: 10.0e-9,
                fall: 10.0e-9,
                width: 80.0e-9,
                period: 200.0e-9,
            },
        )
        .unwrap();
        net.resistor("R1", a, Netlist::GROUND, 1.0e3).unwrap();
        let res = net
            .compile()
            .unwrap()
            .tran(&TranSpec::new(500.0e-9, 5.0e-9))
            .unwrap();
        let v = res.voltage(a);
        let at = |tq: f64| {
            let idx = res
                .times()
                .iter()
                .position(|&t| (t - tq).abs() < 2.6e-9)
                .unwrap_or_else(|| panic!("no sample near {tq}"));
            v[idx]
        };
        assert!(at(50.0e-9) < 0.01); // before the first pulse
        assert!(at(150.0e-9) > 0.99); // flat top (pulse spans 100-190 ns)
        assert!(at(205.0e-9) < 0.05); // after the fall edge
        assert!(at(350.0e-9) > 0.99); // second period flat top
    }

    #[test]
    fn record_every_decimates() {
        let mut net = Netlist::new();
        let a = net.node("a");
        net.vsource("V1", a, Netlist::GROUND, Waveform::Dc(1.0))
            .unwrap();
        net.resistor("R1", a, Netlist::GROUND, 1.0e3).unwrap();
        let full = net
            .compile()
            .unwrap()
            .tran(&TranSpec::new(1.0e-6, 1.0e-9))
            .unwrap();
        let thin = net
            .compile()
            .unwrap()
            .tran(&TranSpec::new(1.0e-6, 1.0e-9).with_record_every(10))
            .unwrap();
        assert!(thin.len() < full.len() / 5);
    }

    #[test]
    fn floating_node_reports_singular_without_gmin() {
        let mut net = Netlist::new();
        let a = net.node("a");
        let b = net.node("b");
        net.vsource("V1", a, Netlist::GROUND, Waveform::Dc(1.0))
            .unwrap();
        net.resistor("R1", a, Netlist::GROUND, 1.0e3).unwrap();
        // Node b floats entirely.
        net.capacitor("C1", b, b, 1.0e-12).unwrap();
        let opts = SolveOptions {
            gmin: 0.0,
            ..Default::default()
        };
        let res = net.compile().unwrap().op(&opts);
        assert!(res.is_err());
        // With default gmin it is fine (b pinned to ground).
        let op = net.compile().unwrap().op(&Default::default()).unwrap();
        assert_eq!(op.voltage(b), 0.0);
    }
}
