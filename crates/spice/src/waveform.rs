//! Time-dependent values for independent voltage and current sources.

/// A source waveform, evaluated lazily at each transient time point.
///
/// Mirrors the SPICE source syntax the paper's test benches need: constant
/// bias rails (`Dc`), the spike trains driving the neurons (`Pulse`),
/// arbitrary piecewise-linear stimuli (`Pwl`) and sinusoids (`Sin`).
#[derive(Debug, Clone, PartialEq)]
pub enum Waveform {
    /// Constant value (volts or amperes).
    Dc(f64),
    /// Periodic trapezoidal pulse, identical to SPICE
    /// `PULSE(v1 v2 delay rise fall width period)`.
    Pulse {
        /// Initial / off value.
        v1: f64,
        /// Pulsed / on value.
        v2: f64,
        /// Time before the first pulse begins, in seconds.
        delay: f64,
        /// Rise time (0 is allowed and treated as one solver step).
        rise: f64,
        /// Fall time.
        fall: f64,
        /// Time spent at `v2`, excluding edges.
        width: f64,
        /// Repetition period; `f64::INFINITY` for a single pulse.
        period: f64,
    },
    /// Piecewise-linear waveform through the given `(time, value)` points.
    /// Holds the first value before the first point and the last value after
    /// the last point.
    Pwl(Vec<(f64, f64)>),
    /// Damped sinusoid, identical to SPICE `SIN(offset ampl freq delay damping)`.
    Sin {
        /// DC offset.
        offset: f64,
        /// Amplitude.
        ampl: f64,
        /// Frequency in hertz.
        freq: f64,
        /// Start delay in seconds.
        delay: f64,
        /// Exponential damping factor in 1/seconds.
        damping: f64,
    },
}

impl Waveform {
    /// Builds the spike train used throughout the paper: rectangular pulses
    /// of `amplitude` with 1 ns edges, `width` flat-top seconds, repeating
    /// every `period` seconds, starting at `delay`.
    ///
    /// ```
    /// use neurofi_spice::Waveform;
    /// use neurofi_spice::units::NANO;
    /// // 200 nA spikes, 25 ns wide, 40 MHz rate:
    /// let train = Waveform::spike_train(200.0 * NANO, 25.0 * NANO, 25.0 * NANO, 0.0);
    /// assert!(train.value(10.0 * NANO) > 0.0);
    /// ```
    pub fn spike_train(amplitude: f64, width: f64, period: f64, delay: f64) -> Waveform {
        let edge = (width * 0.05).clamp(1.0e-12, 1.0e-9);
        Waveform::Pulse {
            v1: 0.0,
            v2: amplitude,
            delay,
            rise: edge,
            fall: edge,
            width: (width - 2.0 * edge).max(edge),
            period,
        }
    }

    /// Evaluates the waveform at time `t` (seconds).
    pub fn value(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Pulse {
                v1,
                v2,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                if t < *delay {
                    return *v1;
                }
                let mut tau = t - delay;
                if period.is_finite() && *period > 0.0 {
                    tau %= period;
                }
                let rise = rise.max(1.0e-15);
                let fall = fall.max(1.0e-15);
                if tau < rise {
                    v1 + (v2 - v1) * (tau / rise)
                } else if tau < rise + width {
                    *v2
                } else if tau < rise + width + fall {
                    v2 + (v1 - v2) * ((tau - rise - width) / fall)
                } else {
                    *v1
                }
            }
            Waveform::Pwl(points) => {
                let (Some(&(t_first, v_first)), Some(&(_, v_last))) =
                    (points.first(), points.last())
                else {
                    return 0.0;
                };
                if t <= t_first {
                    return v_first;
                }
                for pair in points.windows(2) {
                    let &[(t0, v0), (t1, v1)] = pair else {
                        continue;
                    };
                    if t <= t1 {
                        if t1 <= t0 {
                            return v1;
                        }
                        return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
                    }
                }
                v_last
            }
            Waveform::Sin {
                offset,
                ampl,
                freq,
                delay,
                damping,
            } => {
                if t < *delay {
                    *offset
                } else {
                    let tau = t - delay;
                    offset
                        + ampl
                            * (-damping * tau).exp()
                            * (2.0 * std::f64::consts::PI * freq * tau).sin()
                }
            }
        }
    }

    /// Returns the times (within `[0, tstop]`) at which the waveform has a
    /// slope discontinuity. The transient engine shrinks its step near these
    /// *breakpoints* so that nanosecond spike edges are never skipped over.
    pub fn breakpoints(&self, tstop: f64) -> Vec<f64> {
        let mut out = Vec::new();
        match self {
            Waveform::Dc(_) | Waveform::Sin { .. } => {}
            Waveform::Pulse {
                delay,
                rise,
                fall,
                width,
                period,
                ..
            } => {
                let rise = rise.max(1.0e-15);
                let fall = fall.max(1.0e-15);
                let cycle = [0.0, rise, rise + width, rise + width + fall];
                if period.is_finite() && *period > 0.0 {
                    let mut base = *delay;
                    while base < tstop {
                        for off in cycle {
                            let t = base + off;
                            if t <= tstop {
                                out.push(t);
                            }
                        }
                        base += period;
                    }
                } else {
                    for off in cycle {
                        let t = delay + off;
                        if t <= tstop {
                            out.push(t);
                        }
                    }
                }
            }
            Waveform::Pwl(points) => {
                out.extend(points.iter().map(|p| p.0).filter(|t| *t <= tstop));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_constant() {
        let w = Waveform::Dc(1.5);
        assert_eq!(w.value(0.0), 1.5);
        assert_eq!(w.value(1.0e9), 1.5);
    }

    #[test]
    fn pulse_shape() {
        let w = Waveform::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 10.0,
            rise: 1.0,
            fall: 1.0,
            width: 5.0,
            period: 20.0,
        };
        assert_eq!(w.value(0.0), 0.0);
        assert_eq!(w.value(9.99), 0.0);
        assert!((w.value(10.5) - 0.5).abs() < 1e-12); // mid-rise
        assert_eq!(w.value(13.0), 1.0); // flat top
        assert!((w.value(16.5) - 0.5).abs() < 1e-12); // mid-fall
        assert_eq!(w.value(19.0), 0.0); // off
        assert_eq!(w.value(33.0), 1.0); // second period flat top
    }

    #[test]
    fn pulse_without_period_fires_once() {
        let w = Waveform::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 0.0,
            rise: 1.0,
            fall: 1.0,
            width: 1.0,
            period: f64::INFINITY,
        };
        assert_eq!(w.value(1.5), 1.0);
        assert_eq!(w.value(100.0), 0.0);
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let w = Waveform::Pwl(vec![(1.0, 0.0), (2.0, 10.0), (4.0, -10.0)]);
        assert_eq!(w.value(0.0), 0.0); // clamp before
        assert_eq!(w.value(1.5), 5.0);
        assert_eq!(w.value(3.0), 0.0);
        assert_eq!(w.value(9.0), -10.0); // clamp after
    }

    #[test]
    fn pwl_empty_is_zero() {
        assert_eq!(Waveform::Pwl(vec![]).value(1.0), 0.0);
    }

    #[test]
    fn sin_basics() {
        let w = Waveform::Sin {
            offset: 1.0,
            ampl: 2.0,
            freq: 1.0,
            delay: 0.0,
            damping: 0.0,
        };
        assert!((w.value(0.25) - 3.0).abs() < 1e-9);
        assert!((w.value(0.75) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn spike_train_has_expected_amplitude_and_rate() {
        let w = Waveform::spike_train(200.0e-9, 25.0e-9, 50.0e-9, 0.0);
        // Sample a full period densely; max should be the amplitude and the
        // duty cycle roughly width/period.
        let mut max = 0.0f64;
        let mut on = 0usize;
        let n = 1000;
        for i in 0..n {
            let v = w.value(i as f64 * 50.0e-9 / n as f64);
            max = max.max(v);
            if v > 100.0e-9 {
                on += 1;
            }
        }
        assert!((max - 200.0e-9).abs() < 1.0e-12);
        let duty = on as f64 / n as f64;
        assert!(duty > 0.40 && duty < 0.60, "duty={duty}");
    }

    #[test]
    fn pulse_breakpoints_cover_edges() {
        let w = Waveform::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 5.0,
            rise: 1.0,
            fall: 1.0,
            width: 2.0,
            period: 10.0,
        };
        let bps = w.breakpoints(20.0);
        assert!(bps.contains(&5.0));
        assert!(bps.contains(&6.0));
        assert!(bps.contains(&8.0));
        assert!(bps.contains(&9.0));
        assert!(bps.contains(&15.0));
    }
}
