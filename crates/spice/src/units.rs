//! Engineering-notation helpers and physical constants.
//!
//! All quantities in this crate are plain SI `f64`s (volts, amperes, ohms,
//! farads, seconds). These helpers keep netlist-building code legible:
//!
//! ```
//! use neurofi_spice::units::{NANO, PICO, MEGA};
//! let c_mem = 1.0 * PICO;      // 1 pF
//! let i_spike = 200.0 * NANO;  // 200 nA
//! let r1 = 2.66 * MEGA;        // 2.66 MΩ
//! ```

/// 10⁻¹⁵ (femto).
pub const FEMTO: f64 = 1.0e-15;
/// 10⁻¹² (pico).
pub const PICO: f64 = 1.0e-12;
/// 10⁻⁹ (nano).
pub const NANO: f64 = 1.0e-9;
/// 10⁻⁶ (micro).
pub const MICRO: f64 = 1.0e-6;
/// 10⁻³ (milli).
pub const MILLI: f64 = 1.0e-3;
/// 10³ (kilo).
pub const KILO: f64 = 1.0e3;
/// 10⁶ (mega).
pub const MEGA: f64 = 1.0e6;
/// 10⁹ (giga).
pub const GIGA: f64 = 1.0e9;
/// 10¹² (tera).
pub const TERA: f64 = 1.0e12;

/// Thermal voltage kT/q at room temperature (300 K), in volts.
pub const VT_ROOM: f64 = 0.025852;

/// Parses a SPICE-style number with an optional engineering suffix.
///
/// Supported suffixes (case-insensitive): `f p n u m k meg g t`, plus
/// `mil` is deliberately unsupported (it is a length, not a scale). Any
/// trailing unit letters after the suffix are ignored, as in SPICE
/// (`10pF` == `10p`). Returns `None` if the mantissa does not parse.
///
/// ```
/// use neurofi_spice::units::parse_spice_number;
/// assert_eq!(parse_spice_number("2.5k"), Some(2.5e3));
/// assert_eq!(parse_spice_number("100n"), Some(100.0 * 1.0e-9));
/// assert_eq!(parse_spice_number("3meg"), Some(3.0e6));
/// assert_eq!(parse_spice_number("10pF"), Some(10.0e-12));
/// assert_eq!(parse_spice_number("1e-9"), Some(1.0e-9));
/// assert_eq!(parse_spice_number("volts"), None);
/// ```
pub fn parse_spice_number(text: &str) -> Option<f64> {
    let t = text.trim();
    if t.is_empty() {
        return None;
    }
    // Longest prefix that parses as a plain float.
    let mut split = 0usize;
    for (idx, _) in t.char_indices().chain(std::iter::once((t.len(), ' '))) {
        if idx == 0 {
            continue;
        }
        if t.get(..idx).is_some_and(|p| p.parse::<f64>().is_ok()) {
            split = idx;
        }
    }
    if split == 0 {
        return None;
    }
    let mantissa: f64 = t.get(..split)?.parse().ok()?;
    let suffix = t.get(split..)?.to_ascii_lowercase();
    let scale = if suffix.starts_with("meg") {
        MEGA
    } else {
        match suffix.chars().next() {
            None => 1.0,
            Some('f') => FEMTO,
            Some('p') => PICO,
            Some('n') => NANO,
            Some('u') => MICRO,
            Some('m') => MILLI,
            Some('k') => KILO,
            Some('g') => GIGA,
            Some('t') => TERA,
            // Unknown letter: treat as a unit annotation (e.g. "10V").
            Some(_) => 1.0,
        }
    };
    Some(mantissa * scale)
}

/// Formats a value with an engineering suffix for human-readable reports.
///
/// ```
/// use neurofi_spice::units::format_si;
/// assert_eq!(format_si(2.0e-7, "A"), "200.00nA");
/// assert_eq!(format_si(1.0, "V"), "1.00V");
/// ```
pub fn format_si(value: f64, unit: &str) -> String {
    let a = value.abs();
    let (scale, prefix) = if a == 0.0 {
        (1.0, "")
    } else if a >= TERA {
        (TERA, "T")
    } else if a >= GIGA {
        (GIGA, "G")
    } else if a >= MEGA {
        (MEGA, "M")
    } else if a >= KILO {
        (KILO, "k")
    } else if a >= 1.0 {
        (1.0, "")
    } else if a >= MILLI {
        (MILLI, "m")
    } else if a >= MICRO {
        (MICRO, "u")
    } else if a >= NANO {
        (NANO, "n")
    } else if a >= PICO {
        (PICO, "p")
    } else {
        (FEMTO, "f")
    };
    format!("{:.2}{}{}", value / scale, prefix, unit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_numbers() {
        assert_eq!(parse_spice_number("1.5"), Some(1.5));
        assert_eq!(parse_spice_number("-3"), Some(-3.0));
        assert_eq!(parse_spice_number("2e3"), Some(2000.0));
    }

    #[test]
    fn parses_all_suffixes() {
        let cases = [
            ("1f", 1e-15),
            ("1p", 1e-12),
            ("1n", 1e-9),
            ("1u", 1e-6),
            ("1m", 1e-3),
            ("1k", 1e3),
            ("1meg", 1e6),
            ("1g", 1e9),
            ("1t", 1e12),
        ];
        for (text, expect) in cases {
            let got = parse_spice_number(text).unwrap();
            assert!(
                (got - expect).abs() <= 1e-20 + 1e-12 * expect.abs(),
                "{text}: {got} != {expect}"
            );
        }
    }

    #[test]
    fn meg_is_not_milli() {
        assert_eq!(parse_spice_number("2MEG"), Some(2.0e6));
        assert_eq!(parse_spice_number("2M"), Some(2.0e-3));
    }

    #[test]
    fn trailing_units_ignored() {
        assert_eq!(parse_spice_number("10pF"), Some(10.0e-12));
        assert_eq!(parse_spice_number("5V"), Some(5.0));
        assert_eq!(parse_spice_number("1kOhm"), Some(1.0e3));
    }

    #[test]
    fn garbage_is_rejected_gracefully() {
        assert_eq!(parse_spice_number(""), None);
        assert_eq!(parse_spice_number("abc"), None);
        assert_eq!(parse_spice_number("--1"), None);
    }

    #[test]
    fn format_si_covers_ranges() {
        assert_eq!(format_si(0.0, "V"), "0.00V");
        assert_eq!(format_si(1.5e3, "Hz"), "1.50kHz");
        assert_eq!(format_si(2.2e-12, "F"), "2.20pF");
        assert_eq!(format_si(-4.0e-9, "A"), "-4.00nA");
    }
}
