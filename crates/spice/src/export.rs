//! Netlist → SPICE-deck text export.
//!
//! The inverse of [`crate::parse`]: renders a programmatically-built
//! [`Netlist`] as a SPICE-subset deck, so the neuron circuits assembled by
//! `neurofi-analog` can be inspected, diffed, or simulated in external
//! tools. Decks produced here parse back losslessly (see the round-trip
//! tests), with one caveat: every MOSFET gets its own `.model` card since
//! builder-constructed devices carry independent model structs.

use std::fmt::Write as _;

use crate::circuit::TranSpec;
use crate::device::MosModel;
use crate::netlist::{Element, Netlist};
use crate::waveform::Waveform;

/// Formats a number compactly with engineering precision (SPICE decks
/// conventionally use plain scientific notation; parsers accept it).
fn num(value: f64) -> String {
    if value == 0.0 {
        "0".to_string()
    } else if value.is_infinite() {
        // PULSE with no repetition: encode as a huge period.
        "1e30".to_string()
    } else {
        format!("{value:.6e}")
    }
}

fn waveform(wave: &Waveform) -> String {
    match wave {
        Waveform::Dc(v) => format!("DC {}", num(*v)),
        Waveform::Pulse {
            v1,
            v2,
            delay,
            rise,
            fall,
            width,
            period,
        } => format!(
            "PULSE({} {} {} {} {} {} {})",
            num(*v1),
            num(*v2),
            num(*delay),
            num(*rise),
            num(*fall),
            num(*width),
            num(*period)
        ),
        Waveform::Pwl(points) => {
            let body: Vec<String> = points
                .iter()
                .flat_map(|(t, v)| [num(*t), num(*v)])
                .collect();
            format!("PWL({})", body.join(" "))
        }
        Waveform::Sin {
            offset,
            ampl,
            freq,
            delay,
            damping,
        } => format!(
            "SIN({} {} {} {} {})",
            num(*offset),
            num(*ampl),
            num(*freq),
            num(*delay),
            num(*damping)
        ),
    }
}

/// SPICE cards dispatch on the first letter of the element name; builder
/// names carry no such constraint, so prepend the type letter when
/// missing (e.g. capacitor `ah_CMEM` → `Cah_CMEM`).
fn card_name(kind: char, name: &str) -> String {
    if name
        .chars()
        .next()
        .is_some_and(|c| c.eq_ignore_ascii_case(&kind))
    {
        name.to_string()
    } else {
        format!("{}{name}", kind.to_ascii_uppercase())
    }
}

fn model_card(name: &str, model: &MosModel) -> String {
    format!(
        ".model {name} {} vt0={} kp={} lambda={} n={}",
        model.mos_type,
        num(model.vt0),
        num(model.kp),
        num(model.lambda),
        num(model.n)
    )
}

/// Renders a netlist (and optional transient directive) as a SPICE deck.
///
/// ```
/// use neurofi_spice::{Netlist, Waveform};
/// use neurofi_spice::export::to_deck;
///
/// let mut net = Netlist::new();
/// let a = net.node("in");
/// net.vsource("V1", a, Netlist::GROUND, Waveform::Dc(1.0))?;
/// net.resistor("R1", a, Netlist::GROUND, 1.0e3)?;
/// let deck = to_deck("my bench", &net, None);
/// assert!(deck.contains("R1 in 0 1.000000e3"));
/// # Ok::<(), neurofi_spice::Error>(())
/// ```
pub fn to_deck(title: &str, netlist: &Netlist, tran: Option<&TranSpec>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", if title.is_empty() { "untitled" } else { title });
    let node = |id| netlist.node_name(id);
    let mut model_counter = 0usize;
    let mut models: Vec<String> = Vec::new();
    for element in netlist.elements() {
        match element {
            Element::Resistor { name, p, n, r } => {
                let name = card_name('r', name);
                let _ = writeln!(out, "{name} {} {} {}", node(*p), node(*n), num(*r));
            }
            Element::Capacitor { name, p, n, c, ic } => {
                let name = card_name('c', name);
                match ic {
                    Some(v) => {
                        let _ = writeln!(
                            out,
                            "{name} {} {} {} IC={}",
                            node(*p),
                            node(*n),
                            num(*c),
                            num(*v)
                        );
                    }
                    None => {
                        let _ = writeln!(out, "{name} {} {} {}", node(*p), node(*n), num(*c));
                    }
                }
            }
            Element::VSource { name, p, n, wave } => {
                let name = card_name('v', name);
                let _ = writeln!(out, "{name} {} {} {}", node(*p), node(*n), waveform(wave));
            }
            Element::ISource { name, p, n, wave } => {
                let name = card_name('i', name);
                let _ = writeln!(out, "{name} {} {} {}", node(*p), node(*n), waveform(wave));
            }
            Element::Mosfet {
                name,
                d,
                g,
                s,
                b,
                model,
                w,
                l,
            } => {
                model_counter += 1;
                let name = card_name('m', name);
                let model_name = format!("mod{model_counter}_{}", model.mos_type);
                models.push(model_card(&model_name, model));
                let _ = writeln!(
                    out,
                    "{name} {} {} {} {} {model_name} W={} L={}",
                    node(*d),
                    node(*g),
                    node(*s),
                    node(*b),
                    num(*w),
                    num(*l)
                );
            }
            Element::Vcvs {
                name,
                p,
                n,
                cp,
                cn,
                gain,
            } => {
                let name = card_name('e', name);
                let _ = writeln!(
                    out,
                    "{name} {} {} {} {} {}",
                    node(*p),
                    node(*n),
                    node(*cp),
                    node(*cn),
                    num(*gain)
                );
            }
            Element::Vccs {
                name,
                p,
                n,
                cp,
                cn,
                gm,
            } => {
                let name = card_name('g', name);
                let _ = writeln!(
                    out,
                    "{name} {} {} {} {} {}",
                    node(*p),
                    node(*n),
                    node(*cp),
                    node(*cn),
                    num(*gm)
                );
            }
        }
    }
    for card in models {
        let _ = writeln!(out, "{card}");
    }
    if let Some(spec) = tran {
        let _ = writeln!(
            out,
            ".tran {} {}{}",
            num(spec.dt),
            num(spec.tstop),
            if spec.uic { " uic" } else { "" }
        );
    }
    let _ = writeln!(out, ".end");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_deck;
    use crate::units::{NANO, PICO};

    fn rc_netlist() -> Netlist {
        let mut net = Netlist::new();
        let a = net.node("in");
        let b = net.node("out");
        net.vsource("V1", a, Netlist::GROUND, Waveform::Dc(1.0))
            .unwrap();
        net.resistor("R1", a, b, 2.2e3).unwrap();
        net.capacitor_ic("C1", b, Netlist::GROUND, 4.7e-9, 0.25)
            .unwrap();
        net
    }

    #[test]
    fn exports_basic_cards() {
        let deck = to_deck("rc", &rc_netlist(), None);
        assert!(deck.starts_with("rc\n"));
        assert!(deck.contains("V1 in 0 DC 1"));
        assert!(deck.contains("R1 in out 2.200000e3"));
        assert!(deck.contains("IC=2.500000e-1"));
        assert!(deck.trim_end().ends_with(".end"));
    }

    #[test]
    fn round_trips_through_the_parser() {
        let original = rc_netlist();
        let deck = to_deck(
            "round trip",
            &original,
            Some(&TranSpec::new(1e-6, 1e-9).with_uic()),
        );
        let parsed = parse_deck(&deck).unwrap();
        assert_eq!(parsed.netlist.elements().len(), original.elements().len());
        assert!(parsed.tran.unwrap().uic);
        // Values survive the text round trip.
        match parsed.netlist.find_element("C1").unwrap() {
            Element::Capacitor { c, ic, .. } => {
                assert!((c - 4.7e-9).abs() < 1e-15);
                assert_eq!(*ic, Some(0.25));
            }
            other => panic!("wrong element {other:?}"),
        }
    }

    #[test]
    fn mosfet_export_includes_model_cards() {
        let mut net = Netlist::new();
        let d = net.node("d");
        let g = net.node("g");
        net.vsource("VD", d, Netlist::GROUND, Waveform::Dc(1.0))
            .unwrap();
        net.vsource("VG", g, Netlist::GROUND, Waveform::Dc(0.6))
            .unwrap();
        net.mosfet(
            "M1",
            d,
            g,
            Netlist::GROUND,
            Netlist::GROUND,
            MosModel::ptm65_nmos(),
            1.0e-6,
            65.0 * NANO,
        )
        .unwrap();
        let deck = to_deck("mos", &net, None);
        assert!(deck.contains(".model mod1_nmos nmos"));
        let parsed = parse_deck(&deck).unwrap();
        match parsed.netlist.find_element("M1").unwrap() {
            Element::Mosfet { model, .. } => {
                assert!((model.vt0 - 0.423).abs() < 1e-9);
            }
            other => panic!("wrong element {other:?}"),
        }
    }

    #[test]
    fn exported_neuron_scale_deck_parses_and_runs() {
        // Integrator with a pulse source: export, parse, simulate.
        let mut net = Netlist::new();
        let mem = net.node("mem");
        net.isource(
            "IIN",
            Netlist::GROUND,
            mem,
            Waveform::spike_train(200.0 * NANO, 12.5 * NANO, 25.0 * NANO, 0.0),
        )
        .unwrap();
        net.capacitor("CMEM", mem, Netlist::GROUND, 1.0 * PICO)
            .unwrap();
        let deck = to_deck(
            "integrator",
            &net,
            Some(&TranSpec::new(2.0e-6, 5.0e-9).with_uic()),
        );
        let parsed = parse_deck(&deck).unwrap();
        let res = parsed
            .netlist
            .compile()
            .unwrap()
            .tran(&parsed.tran.unwrap())
            .unwrap();
        let v = res.voltage(parsed.netlist.find_node("mem").unwrap());
        assert!(
            *v.last().unwrap() > 0.1,
            "integrated {:.3}",
            v.last().unwrap()
        );
    }

    #[test]
    fn infinite_period_is_encoded_finite() {
        let mut net = Netlist::new();
        let a = net.node("a");
        net.vsource(
            "V1",
            a,
            Netlist::GROUND,
            Waveform::Pulse {
                v1: 0.0,
                v2: 1.0,
                delay: 0.0,
                rise: 1e-9,
                fall: 1e-9,
                width: 1e-6,
                period: f64::INFINITY,
            },
        )
        .unwrap();
        net.resistor("R1", a, Netlist::GROUND, 1e3).unwrap();
        let deck = to_deck("oneshot", &net, None);
        assert!(!deck.contains("inf"));
        assert!(parse_deck(&deck).is_ok());
    }
}
