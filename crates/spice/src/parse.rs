//! SPICE-subset text netlist parser.
//!
//! Supports the cards needed to express every circuit in the paper:
//!
//! ```text
//! * comment lines and trailing comments ($ or ;)
//! R<name> n+ n- value
//! C<name> n+ n- value [IC=v]
//! V<name> n+ n- DC v | PULSE(v1 v2 td tr tf pw per) | PWL(t1 v1 ...) | SIN(o a f [td [df]])
//! I<name> n+ n- <same source syntax>
//! M<name> d g s b modelname W=.. L=..
//! E<name> p n cp cn gain        (VCVS)
//! G<name> p n cp cn gm          (VCCS)
//! .model <name> nmos|pmos [vt0=..] [kp=..] [lambda=..] [n=..]
//! .tran <dt> <tstop> [uic]
//! .ic v(node)=value ...
//! .end
//! + continuation lines
//! ```
//!
//! Engineering suffixes (`p`, `n`, `u`, `m`, `k`, `meg`, ...) are accepted
//! on every number. The first line of a deck is a title (SPICE tradition)
//! unless it parses as a card.

use std::collections::HashMap;

use crate::circuit::TranSpec;
use crate::device::MosModel;
use crate::error::{Error, Result};
use crate::netlist::Netlist;
use crate::units::parse_spice_number;
use crate::waveform::Waveform;

/// The outcome of parsing a text deck: a netlist plus any analysis
/// directives found in the file.
#[derive(Debug, Clone)]
pub struct ParsedDeck {
    /// Deck title (first line, when it is not itself a card).
    pub title: String,
    /// The parsed circuit.
    pub netlist: Netlist,
    /// `.tran` directive, if present.
    pub tran: Option<TranSpec>,
    /// `.ic` node initial conditions: `(node_name, volts)`.
    pub initial_conditions: Vec<(String, f64)>,
}

/// Parses a SPICE-subset deck.
///
/// # Errors
/// Returns [`Error::Parse`] with a 1-based line number for any malformed
/// card, unknown model reference, or bad number.
///
/// ```
/// use neurofi_spice::parse::parse_deck;
/// let deck = parse_deck(
///     "rc lowpass\n\
///      V1 in 0 DC 1\n\
///      R1 in out 1k\n\
///      C1 out 0 1n\n\
///      .tran 1n 5u uic\n\
///      .end\n",
/// )?;
/// assert_eq!(deck.title, "rc lowpass");
/// assert!(deck.tran.is_some());
/// # Ok::<(), neurofi_spice::Error>(())
/// ```
pub fn parse_deck(text: &str) -> Result<ParsedDeck> {
    // Join continuation lines first, tracking original line numbers.
    let mut logical: Vec<(usize, String)> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = strip_comment(raw);
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.trim_start().strip_prefix('+') {
            match logical.last_mut() {
                Some((_, prev)) => {
                    prev.push(' ');
                    prev.push_str(rest);
                }
                None => {
                    return Err(Error::Parse {
                        line: idx + 1,
                        message: "continuation line with nothing to continue".into(),
                    })
                }
            }
        } else {
            logical.push((idx + 1, line.to_string()));
        }
    }

    let mut deck = ParsedDeck {
        title: String::new(),
        netlist: Netlist::new(),
        tran: None,
        initial_conditions: Vec::new(),
    };
    let mut models: HashMap<String, MosModel> = HashMap::new();
    // Pre-scan for .model cards so M lines can appear before their model.
    for (lineno, line) in &logical {
        let lower = line.to_ascii_lowercase();
        if lower.starts_with(".model") {
            let (name, model) = parse_model_card(line, *lineno)?;
            models.insert(name, model);
        }
    }

    let mut first = true;
    for (lineno, line) in &logical {
        let lineno = *lineno;
        let lower = line.trim().to_ascii_lowercase();
        if first {
            first = false;
            if !looks_like_card(&lower) {
                deck.title = line.trim().to_string();
                continue;
            }
        }
        if lower.starts_with(".model") || lower.starts_with(".end") {
            continue;
        }
        if lower.starts_with(".tran") {
            deck.tran = Some(parse_tran_card(line, lineno)?);
            continue;
        }
        if lower.starts_with(".ic") {
            parse_ic_card(line, lineno, &mut deck.initial_conditions)?;
            continue;
        }
        if lower.starts_with('.') {
            return Err(Error::Parse {
                line: lineno,
                message: format!("unsupported directive '{}'", first_token(line)),
            });
        }
        parse_element_card(line, lineno, &mut deck.netlist, &models)?;
    }
    Ok(deck)
}

fn strip_comment(line: &str) -> &str {
    let line = line.trim_end();
    if line.trim_start().starts_with('*') {
        return "";
    }
    let cut = line
        .find(';')
        .into_iter()
        .chain(line.find('$'))
        .min()
        .unwrap_or(line.len());
    &line[..cut]
}

fn looks_like_card(lower: &str) -> bool {
    lower.starts_with('.')
        || matches!(
            lower.chars().next(),
            Some('r' | 'c' | 'v' | 'i' | 'm' | 'e' | 'g')
        ) && lower.split_whitespace().count() >= 3
}

fn first_token(line: &str) -> &str {
    line.split_whitespace().next().unwrap_or("")
}

fn number(token: &str, lineno: usize) -> Result<f64> {
    parse_spice_number(token).ok_or_else(|| Error::Parse {
        line: lineno,
        message: format!("cannot parse number '{token}'"),
    })
}

fn parse_model_card(line: &str, lineno: usize) -> Result<(String, MosModel)> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    if tokens.len() < 3 {
        return Err(Error::Parse {
            line: lineno,
            message: ".model needs a name and a type".into(),
        });
    }
    let name = tokens[1].to_ascii_lowercase();
    let mut model = match tokens[2].to_ascii_lowercase().as_str() {
        "nmos" => MosModel::ptm65_nmos(),
        "pmos" => MosModel::ptm65_pmos(),
        other => {
            return Err(Error::Parse {
                line: lineno,
                message: format!("unknown model type '{other}' (want nmos or pmos)"),
            })
        }
    };
    for token in &tokens[3..] {
        let (key, value) = split_assignment(token, lineno)?;
        let value = number(&value, lineno)?;
        match key.as_str() {
            "vt0" | "vto" | "vth" => model.vt0 = value,
            "kp" => model.kp = value,
            "lambda" => model.lambda = value,
            "n" => model.n = value,
            other => {
                return Err(Error::Parse {
                    line: lineno,
                    message: format!("unknown model parameter '{other}'"),
                })
            }
        }
    }
    Ok((name, model))
}

fn split_assignment(token: &str, lineno: usize) -> Result<(String, String)> {
    let mut parts = token.splitn(2, '=');
    let key = parts.next().unwrap_or("").to_ascii_lowercase();
    let value = parts
        .next()
        .ok_or_else(|| Error::Parse {
            line: lineno,
            message: format!("expected key=value, got '{token}'"),
        })?
        .to_string();
    Ok((key, value))
}

fn parse_tran_card(line: &str, lineno: usize) -> Result<TranSpec> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    if tokens.len() < 3 {
        return Err(Error::Parse {
            line: lineno,
            message: ".tran needs <dt> <tstop>".into(),
        });
    }
    let dt = number(tokens[1], lineno)?;
    let tstop = number(tokens[2], lineno)?;
    let valid = dt > 0.0 && tstop > 0.0 && dt <= tstop;
    if !valid {
        return Err(Error::Parse {
            line: lineno,
            message: format!(".tran times out of range (dt={dt}, tstop={tstop})"),
        });
    }
    let mut spec = TranSpec::new(tstop, dt);
    if tokens.iter().any(|t| t.eq_ignore_ascii_case("uic")) {
        spec = spec.with_uic();
    }
    Ok(spec)
}

fn parse_ic_card(line: &str, lineno: usize, out: &mut Vec<(String, f64)>) -> Result<()> {
    // .ic v(node)=value v(node2)=value2
    for token in line.split_whitespace().skip(1) {
        let lower = token.to_ascii_lowercase();
        let inner = lower
            .strip_prefix("v(")
            .and_then(|rest| rest.split_once(')'))
            .ok_or_else(|| Error::Parse {
                line: lineno,
                message: format!("expected v(node)=value, got '{token}'"),
            })?;
        let node = inner.0.to_string();
        let value_str = inner.1.strip_prefix('=').ok_or_else(|| Error::Parse {
            line: lineno,
            message: format!("expected '=' in '{token}'"),
        })?;
        out.push((node, number(value_str, lineno)?));
    }
    Ok(())
}

fn parse_source_waveform(tokens: &[&str], lineno: usize) -> Result<Waveform> {
    if tokens.is_empty() {
        return Err(Error::Parse {
            line: lineno,
            message: "source needs a value".into(),
        });
    }
    let joined = tokens.join(" ");
    let lower = joined.trim().to_ascii_lowercase();
    if let Some(rest) = lower.strip_prefix("dc") {
        return number(rest.trim(), lineno).map(Waveform::Dc);
    }
    if lower.starts_with("pulse") {
        let args = paren_args(&joined, lineno)?;
        if args.len() != 7 {
            return Err(Error::Parse {
                line: lineno,
                message: format!("PULSE needs 7 arguments, got {}", args.len()),
            });
        }
        return Ok(Waveform::Pulse {
            v1: args[0],
            v2: args[1],
            delay: args[2],
            rise: args[3],
            fall: args[4],
            width: args[5],
            period: args[6],
        });
    }
    if lower.starts_with("pwl") {
        let args = paren_args(&joined, lineno)?;
        if args.len() % 2 != 0 || args.is_empty() {
            return Err(Error::Parse {
                line: lineno,
                message: "PWL needs an even, non-zero number of arguments".into(),
            });
        }
        let points = args.chunks(2).map(|c| (c[0], c[1])).collect();
        return Ok(Waveform::Pwl(points));
    }
    if lower.starts_with("sin") {
        let args = paren_args(&joined, lineno)?;
        if args.len() < 3 {
            return Err(Error::Parse {
                line: lineno,
                message: "SIN needs at least 3 arguments".into(),
            });
        }
        return Ok(Waveform::Sin {
            offset: args[0],
            ampl: args[1],
            freq: args[2],
            delay: args.get(3).copied().unwrap_or(0.0),
            damping: args.get(4).copied().unwrap_or(0.0),
        });
    }
    // Bare number means DC.
    number(tokens[0], lineno).map(Waveform::Dc)
}

fn paren_args(text: &str, lineno: usize) -> Result<Vec<f64>> {
    let open = text.find('(').ok_or_else(|| Error::Parse {
        line: lineno,
        message: "expected '('".into(),
    })?;
    let close = text.rfind(')').ok_or_else(|| Error::Parse {
        line: lineno,
        message: "expected ')'".into(),
    })?;
    text[open + 1..close]
        .split([' ', ',', '\t'])
        .filter(|s| !s.is_empty())
        .map(|tok| number(tok, lineno))
        .collect()
}

fn parse_element_card(
    line: &str,
    lineno: usize,
    netlist: &mut Netlist,
    models: &HashMap<String, MosModel>,
) -> Result<()> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let name = tokens[0];
    let kind = name
        .chars()
        .next()
        .map(|c| c.to_ascii_lowercase())
        .unwrap_or(' ');
    let need = |n: usize| -> Result<()> {
        if tokens.len() < n {
            Err(Error::Parse {
                line: lineno,
                message: format!("'{name}' needs at least {} fields", n - 1),
            })
        } else {
            Ok(())
        }
    };
    let map_err = |e: Error| match e {
        Error::Netlist(msg) => Error::Parse {
            line: lineno,
            message: msg,
        },
        other => other,
    };
    match kind {
        'r' => {
            need(4)?;
            let (p, n) = (netlist.node(tokens[1]), netlist.node(tokens[2]));
            let value = number(tokens[3], lineno)?;
            netlist.resistor(name, p, n, value).map_err(map_err)?;
        }
        'c' => {
            need(4)?;
            let (p, n) = (netlist.node(tokens[1]), netlist.node(tokens[2]));
            let value = number(tokens[3], lineno)?;
            let mut ic = None;
            for token in &tokens[4..] {
                let (key, val) = split_assignment(token, lineno)?;
                if key == "ic" {
                    ic = Some(number(&val, lineno)?);
                } else {
                    return Err(Error::Parse {
                        line: lineno,
                        message: format!("unknown capacitor parameter '{key}'"),
                    });
                }
            }
            match ic {
                Some(v) => netlist
                    .capacitor_ic(name, p, n, value, v)
                    .map_err(map_err)?,
                None => netlist.capacitor(name, p, n, value).map_err(map_err)?,
            };
        }
        'v' | 'i' => {
            need(4)?;
            let (p, n) = (netlist.node(tokens[1]), netlist.node(tokens[2]));
            let wave = parse_source_waveform(&tokens[3..], lineno)?;
            if kind == 'v' {
                netlist.vsource(name, p, n, wave).map_err(map_err)?;
            } else {
                netlist.isource(name, p, n, wave).map_err(map_err)?;
            }
        }
        'm' => {
            need(6)?;
            let d = netlist.node(tokens[1]);
            let g = netlist.node(tokens[2]);
            let s = netlist.node(tokens[3]);
            let b = netlist.node(tokens[4]);
            let model_name = tokens[5].to_ascii_lowercase();
            let model = models
                .get(&model_name)
                .cloned()
                .ok_or_else(|| Error::Parse {
                    line: lineno,
                    message: format!("unknown model '{}'", tokens[5]),
                })?;
            let mut w = 1.0e-6;
            let mut l = 65.0e-9;
            for token in &tokens[6..] {
                let (key, val) = split_assignment(token, lineno)?;
                match key.as_str() {
                    "w" => w = number(&val, lineno)?,
                    "l" => l = number(&val, lineno)?,
                    other => {
                        return Err(Error::Parse {
                            line: lineno,
                            message: format!("unknown mosfet parameter '{other}'"),
                        })
                    }
                }
            }
            netlist
                .mosfet(name, d, g, s, b, model, w, l)
                .map_err(map_err)?;
        }
        'e' | 'g' => {
            need(6)?;
            let p = netlist.node(tokens[1]);
            let n = netlist.node(tokens[2]);
            let cp = netlist.node(tokens[3]);
            let cn = netlist.node(tokens[4]);
            let value = number(tokens[5], lineno)?;
            if kind == 'e' {
                netlist.vcvs(name, p, n, cp, cn, value).map_err(map_err)?;
            } else {
                netlist.vccs(name, p, n, cp, cn, value).map_err(map_err)?;
            }
        }
        other => {
            return Err(Error::Parse {
                line: lineno,
                message: format!("unknown element kind '{other}'"),
            })
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Element;

    #[test]
    fn parses_rc_deck_and_runs() {
        let deck = parse_deck(
            "rc lowpass\n\
             V1 in 0 DC 1\n\
             R1 in out 1k\n\
             C1 out 0 1n\n\
             .tran 5n 5u uic\n\
             .end\n",
        )
        .unwrap();
        assert_eq!(deck.title, "rc lowpass");
        let spec = deck.tran.clone().unwrap();
        assert!(spec.uic);
        let res = deck.netlist.compile().unwrap().tran(&spec).unwrap();
        let out = deck.netlist.find_node("out").unwrap();
        let v = res.voltage(out);
        assert!((v.last().unwrap() - 1.0).abs() < 1e-2);
    }

    #[test]
    fn title_line_is_optional_when_first_line_is_card() {
        let deck = parse_deck("V1 a 0 DC 1\nR1 a 0 1k\n").unwrap();
        assert_eq!(deck.title, "");
        assert_eq!(deck.netlist.elements().len(), 2);
    }

    #[test]
    fn comments_and_continuations() {
        let deck = parse_deck(
            "* full-line comment\n\
             V1 a 0 PULSE(0 1 0\n\
             + 1n 1n 10n 20n) ; trailing comment\n\
             R1 a 0 1k $ another\n",
        )
        .unwrap();
        match deck.netlist.find_element("V1").unwrap() {
            Element::VSource { wave, .. } => match wave {
                Waveform::Pulse { v2, period, .. } => {
                    assert_eq!(*v2, 1.0);
                    assert!((period - 20.0e-9).abs() < 1e-18);
                }
                other => panic!("wrong waveform {other:?}"),
            },
            _ => panic!("wrong element"),
        }
    }

    #[test]
    fn mosfet_card_with_model() {
        let deck = parse_deck(
            "test\n\
             .model mynmos nmos vt0=0.4 kp=150u lambda=0.1\n\
             VDD vdd 0 DC 1\n\
             M1 vdd vdd 0 0 mynmos W=2u L=130n\n",
        )
        .unwrap();
        match deck.netlist.find_element("M1").unwrap() {
            Element::Mosfet { model, w, l, .. } => {
                assert_eq!(model.vt0, 0.4);
                assert!((model.kp - 150.0e-6).abs() < 1e-12);
                assert!((w - 2.0e-6).abs() < 1e-15);
                assert!((l - 130.0e-9).abs() < 1e-15);
            }
            _ => panic!("wrong element"),
        }
    }

    #[test]
    fn model_can_appear_after_use() {
        let deck =
            parse_deck("t\nM1 d g 0 0 late W=1u L=65n\n.model late nmos\nVD d 0 1\nVG g 0 1\n")
                .unwrap();
        assert_eq!(deck.netlist.elements().len(), 3);
    }

    #[test]
    fn unknown_model_is_error_with_line() {
        let err = parse_deck("t\nM1 d g 0 0 nope W=1u L=1u\n").unwrap_err();
        match err {
            Error::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("nope"));
            }
            other => panic!("wrong error {other}"),
        }
    }

    #[test]
    fn pwl_and_sin_sources() {
        let deck = parse_deck(
            "t\n\
             V1 a 0 PWL(0 0 1u 1 2u 0)\n\
             V2 b 0 SIN(0.5 0.5 1meg)\n\
             R1 a b 1k\n",
        )
        .unwrap();
        assert!(matches!(
            deck.netlist.find_element("V1").unwrap(),
            Element::VSource {
                wave: Waveform::Pwl(_),
                ..
            }
        ));
        match deck.netlist.find_element("V2").unwrap() {
            Element::VSource {
                wave: Waveform::Sin { freq, .. },
                ..
            } => assert_eq!(*freq, 1.0e6),
            _ => panic!("wrong element"),
        }
    }

    #[test]
    fn ic_directive() {
        let deck = parse_deck("t\nC1 x 0 1p\nR1 x 0 1k\n.ic v(x)=0.7\n").unwrap();
        assert_eq!(deck.initial_conditions, vec![("x".to_string(), 0.7)]);
    }

    #[test]
    fn capacitor_ic_parameter() {
        let deck = parse_deck("t\nC1 x 0 1p IC=0.4\nR1 x 0 1k\n").unwrap();
        match deck.netlist.find_element("C1").unwrap() {
            Element::Capacitor { ic, .. } => assert_eq!(*ic, Some(0.4)),
            _ => panic!("wrong element"),
        }
    }

    #[test]
    fn bad_number_reports_line() {
        let err = parse_deck("t\nR1 a 0 henry\n").unwrap_err();
        match err {
            Error::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("wrong error {other}"),
        }
    }

    #[test]
    fn unsupported_directive_rejected() {
        assert!(parse_deck("t\n.ac dec 10 1 1meg\n").is_err());
    }

    #[test]
    fn bare_number_source_is_dc() {
        let deck = parse_deck("t\nV1 a 0 1.5\nR1 a 0 1k\n").unwrap();
        match deck.netlist.find_element("V1").unwrap() {
            Element::VSource { wave, .. } => assert_eq!(*wave, Waveform::Dc(1.5)),
            _ => panic!("wrong element"),
        }
    }

    #[test]
    fn duplicate_elements_error_includes_line() {
        let err = parse_deck("t\nR1 a 0 1k\nR1 a 0 2k\n").unwrap_err();
        assert!(matches!(err, Error::Parse { line: 3, .. }));
    }
}
