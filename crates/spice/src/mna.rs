//! Dense matrix storage and LU factorisation for modified nodal analysis.
//!
//! The neuron circuits in this workspace have at most a few dozen unknowns,
//! a regime where a cache-friendly dense partial-pivot LU outperforms any
//! sparse approach. The Jacobian and right-hand side live in a
//! [`SolverWorkspace`] owned by the analysis drivers (DC operating point,
//! DC sweep, transient): the buffers are allocated once per analysis and
//! re-stamped in place on every Newton iteration of every timestep —
//! [`DenseMatrix::reset`] zeroes without reallocating, so the solver hot
//! loop performs no heap allocation at all.
//!
//! The workspace implements [`neurofi_solver::LinearSolver`] by pure
//! forwarding — `begin` is `reset` + `fill(0.0)`, `add` is the dense
//! stamp, `solve` is the in-place LU — so the trait-generic analysis
//! drivers in [`crate::circuit`] monomorphise to exactly the
//! floating-point operation sequence this engine has always performed,
//! keeping all regression-locked vectors byte-identical.

use crate::error::{Error, Result};
use neurofi_solver::{LinearSolver, SolverError, SolverStats};

/// Reusable Newton-solver scratch: the MNA Jacobian and RHS vector.
///
/// The analysis drivers construct one workspace per analysis and thread it
/// through every Newton solve, so repeated solves (sweep points, transient
/// timesteps, step-halving retries) reuse the same allocation.
#[derive(Debug, Clone)]
pub struct SolverWorkspace {
    /// The stamped/linearised system matrix.
    pub a: DenseMatrix,
    /// The right-hand side; [`DenseMatrix::solve_in_place`] overwrites it
    /// with the solution.
    pub rhs: Vec<f64>,
    /// Completed solves, for [`LinearSolver::stats`].
    solves: u64,
}

impl SolverWorkspace {
    /// Creates a workspace for systems of `n` unknowns.
    pub fn new(n: usize) -> SolverWorkspace {
        SolverWorkspace {
            a: DenseMatrix::new(n),
            rhs: vec![0.0; n],
            solves: 0,
        }
    }

    /// The system dimension this workspace is sized for.
    pub fn dim(&self) -> usize {
        self.a.dim()
    }
}

impl LinearSolver for SolverWorkspace {
    fn dim(&self) -> usize {
        self.a.dim()
    }

    fn begin(&mut self) {
        self.a.reset();
        self.rhs.fill(0.0);
    }

    #[inline]
    fn add(&mut self, row: usize, col: usize, value: f64) {
        self.a.add(row, col, value);
    }

    #[inline]
    fn rhs_add(&mut self, row: usize, value: f64) {
        self.rhs[row] += value;
    }

    #[inline]
    fn rhs_set(&mut self, row: usize, value: f64) {
        self.rhs[row] = value;
    }

    fn solve(&mut self) -> std::result::Result<&[f64], SolverError> {
        self.a.solve_in_place(&mut self.rhs).map_err(|e| match e {
            Error::Singular { row } => SolverError::Singular { row },
            // solve_in_place only reports singularity.
            _ => SolverError::Singular { row: 0 },
        })?;
        self.solves += 1;
        Ok(&self.rhs)
    }

    fn stats(&self) -> SolverStats {
        let n = self.a.dim();
        SolverStats {
            dim: n,
            nnz: n * n,
            lu_nnz: n * n,
            pattern_rebuilds: 0,
            full_factorizations: self.solves,
            refactorizations: 0,
            solves: self.solves,
        }
    }
}

/// A dense, row-major square matrix used as the MNA Jacobian.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates an `n`×`n` zero matrix.
    pub fn new(n: usize) -> DenseMatrix {
        DenseMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Zeroes every entry without reallocating.
    pub fn reset(&mut self) {
        self.data.fill(0.0);
    }

    /// Returns the entry at (`row`, `col`).
    ///
    /// # Panics
    /// Panics if either index is out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.data[row * self.n + col]
    }

    /// Adds `value` to the entry at (`row`, `col`) — the *stamp* operation.
    ///
    /// # Panics
    /// Panics if either index is out of bounds.
    #[inline]
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        self.data[row * self.n + col] += value;
    }

    /// Overwrites the entry at (`row`, `col`).
    ///
    /// # Panics
    /// Panics if either index is out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        self.data[row * self.n + col] = value;
    }

    /// Solves `A·x = b` in place (`b` becomes `x`) by partial-pivot Gaussian
    /// elimination, destroying the matrix contents.
    ///
    /// # Errors
    /// Returns [`Error::Singular`] when no acceptable pivot exists, which in
    /// circuit terms almost always means a floating node or a loop of ideal
    /// voltage sources.
    pub fn solve_in_place(&mut self, b: &mut [f64]) -> Result<()> {
        assert_eq!(b.len(), self.n, "rhs length must equal matrix dimension");
        let n = self.n;
        for col in 0..n {
            // Partial pivoting: pick the largest magnitude in this column.
            let mut pivot_row = col;
            let mut pivot_mag = self.get(col, col).abs();
            for row in (col + 1)..n {
                let mag = self.get(row, col).abs();
                if mag > pivot_mag {
                    pivot_mag = mag;
                    pivot_row = row;
                }
            }
            if pivot_mag < 1.0e-300 {
                return Err(Error::Singular { row: col });
            }
            if pivot_row != col {
                for k in 0..n {
                    self.data.swap(col * n + k, pivot_row * n + k);
                }
                b.swap(col, pivot_row);
            }
            let pivot = self.get(col, col);
            for row in (col + 1)..n {
                let factor = self.get(row, col) / pivot;
                if factor == 0.0 {
                    continue;
                }
                // Row update: row := row - factor * pivot_row.
                let (pivot_slice, row_slice) = {
                    let (head, tail) = self.data.split_at_mut(row * n);
                    (&head[col * n + col..col * n + n], &mut tail[col..n])
                };
                for (r, p) in row_slice.iter_mut().zip(pivot_slice.iter()) {
                    *r -= factor * p;
                }
                b[row] -= factor * b[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut acc = b[col];
            for (k, bk) in b.iter().enumerate().take(n).skip(col + 1) {
                acc -= self.get(col, k) * bk;
            }
            b[col] = acc / self.get(col, col);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(a: &[&[f64]], b: &[f64]) -> Vec<f64> {
        let n = b.len();
        let mut m = DenseMatrix::new(n);
        for (i, row) in a.iter().enumerate() {
            for (j, v) in row.iter().enumerate() {
                m.set(i, j, *v);
            }
        }
        let mut x = b.to_vec();
        m.solve_in_place(&mut x).unwrap();
        x
    }

    #[test]
    fn solves_identity() {
        let x = solve(&[&[1.0, 0.0], &[0.0, 1.0]], &[3.0, -4.0]);
        assert_eq!(x, vec![3.0, -4.0]);
    }

    #[test]
    fn solves_2x2() {
        // 2x + y = 5; x - y = 1  => x = 2, y = 1
        let x = solve(&[&[2.0, 1.0], &[1.0, -1.0]], &[5.0, 1.0]);
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // First diagonal entry zero; naive elimination would divide by zero.
        let x = solve(&[&[0.0, 1.0], &[1.0, 0.0]], &[2.0, 7.0]);
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let mut m = DenseMatrix::new(2);
        m.set(0, 0, 1.0);
        m.set(0, 1, 2.0);
        m.set(1, 0, 2.0);
        m.set(1, 1, 4.0);
        let mut b = vec![1.0, 2.0];
        assert!(matches!(
            m.solve_in_place(&mut b),
            Err(Error::Singular { .. })
        ));
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = DenseMatrix::new(3);
        m.add(1, 2, 5.0);
        m.reset();
        assert_eq!(m.get(1, 2), 0.0);
    }

    #[test]
    fn stamps_accumulate() {
        let mut m = DenseMatrix::new(2);
        m.add(0, 0, 1.0);
        m.add(0, 0, 2.5);
        assert_eq!(m.get(0, 0), 3.5);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // index pairs build the matrix
    fn larger_system_roundtrip() {
        // Build a random-ish diagonally dominant system, solve, verify Ax=b.
        let n = 12;
        let mut a = vec![vec![0.0f64; n]; n];
        let mut state = 0x12345678u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for i in 0..n {
            let mut rowsum = 0.0;
            for j in 0..n {
                if i != j {
                    a[i][j] = next();
                    rowsum += a[i][j].abs();
                }
            }
            a[i][i] = rowsum + 1.0;
        }
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 3.0).collect();
        let b: Vec<f64> = (0..n)
            .map(|i| (0..n).map(|j| a[i][j] * x_true[j]).sum())
            .collect();
        let rows: Vec<&[f64]> = a.iter().map(|r| r.as_slice()).collect();
        let x = solve(&rows, &b);
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
    }
}
