//! Error types for circuit construction, parsing and simulation.

use std::fmt;

/// Any error produced by this crate.
///
/// Implements [`std::error::Error`] and is `Send + Sync + 'static`, so it can
/// be boxed, wrapped and transported across threads freely.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The netlist itself is malformed (dangling node, duplicate element
    /// name, non-positive component value, ...).
    Netlist(String),
    /// The nonlinear solver failed to converge.
    Convergence {
        /// Human-readable description of which analysis failed.
        context: String,
        /// Newton iterations spent in the final attempt.
        iterations: usize,
    },
    /// The MNA matrix became singular (e.g. a floating node).
    Singular {
        /// Index of the pivot row where elimination broke down.
        row: usize,
    },
    /// Text netlist could not be parsed.
    Parse {
        /// 1-based line number in the source deck.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An analysis was requested with invalid parameters (e.g. negative
    /// stop time).
    InvalidAnalysis(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Netlist(msg) => write!(f, "invalid netlist: {msg}"),
            Error::Convergence {
                context,
                iterations,
            } => write!(
                f,
                "newton iteration did not converge during {context} (after {iterations} iterations)"
            ),
            Error::Singular { row } => {
                write!(f, "singular MNA matrix at pivot row {row} (floating node?)")
            }
            Error::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            Error::InvalidAnalysis(msg) => write!(f, "invalid analysis request: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<neurofi_solver::SolverError> for Error {
    fn from(e: neurofi_solver::SolverError) -> Error {
        match e {
            neurofi_solver::SolverError::Singular { row } => Error::Singular { row },
        }
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = Error::Netlist("resistor R1 has non-positive value".into());
        let msg = e.to_string();
        assert!(msg.starts_with("invalid netlist"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn convergence_display_mentions_context() {
        let e = Error::Convergence {
            context: "transient step".into(),
            iterations: 50,
        };
        assert!(e.to_string().contains("transient step"));
        assert!(e.to_string().contains("50"));
    }

    #[test]
    fn parse_display_mentions_line() {
        let e = Error::Parse {
            line: 42,
            message: "unknown card".into(),
        };
        assert!(e.to_string().contains("42"));
    }
}
