//! Waveform measurement utilities.
//!
//! These free functions operate on `(times, values)` slice pairs as produced
//! by [`TranResult::voltage`](crate::TranResult::voltage) and implement the
//! quantities the paper reports: threshold-crossing times, spike counts,
//! time-to-first-spike, inter-spike periods and window averages.

/// Which edge of a level crossing to detect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Edge {
    /// Value crosses the level from below.
    Rising,
    /// Value crosses the level from above.
    Falling,
}

/// Times at which `values` crosses `level` on the given `edge`, linearly
/// interpolated between samples.
///
/// # Panics
/// Panics if `times` and `values` have different lengths.
pub fn crossings(times: &[f64], values: &[f64], level: f64, edge: Edge) -> Vec<f64> {
    assert_eq!(times.len(), values.len(), "times/values length mismatch");
    let mut out = Vec::new();
    for (tw, vw) in times.windows(2).zip(values.windows(2)) {
        let (&[t0, t1], &[v0, v1]) = (tw, vw) else {
            continue;
        };
        // NaN samples compare false on both edges, so a non-finite
        // glitch in the waveform never fabricates a crossing.
        let hit = match edge {
            Edge::Rising => v0 < level && v1 >= level,
            Edge::Falling => v0 > level && v1 <= level,
        };
        if hit {
            let frac = if (v1 - v0).abs() < f64::MIN_POSITIVE {
                0.0
            } else {
                (level - v0) / (v1 - v0)
            };
            out.push(t0 + frac * (t1 - t0));
        }
    }
    out
}

/// Rising-edge spike times: crossings of `threshold` from below.
pub fn spike_times(times: &[f64], values: &[f64], threshold: f64) -> Vec<f64> {
    crossings(times, values, threshold, Edge::Rising)
}

/// Number of spikes (rising crossings of `threshold`) in `[t0, t1]`.
pub fn spike_count_in(times: &[f64], values: &[f64], threshold: f64, t0: f64, t1: f64) -> usize {
    spike_times(times, values, threshold)
        .into_iter()
        .filter(|&t| t >= t0 && t <= t1)
        .count()
}

/// Time of the first rising crossing of `threshold`, if any.
pub fn time_to_first_spike(times: &[f64], values: &[f64], threshold: f64) -> Option<f64> {
    spike_times(times, values, threshold).into_iter().next()
}

/// Mean period between consecutive spikes, if at least two spikes exist.
pub fn mean_spike_period(times: &[f64], values: &[f64], threshold: f64) -> Option<f64> {
    let spikes = spike_times(times, values, threshold);
    if spikes.len() < 2 {
        return None;
    }
    let (first, last) = (spikes.first()?, spikes.last()?);
    Some((last - first) / (spikes.len() - 1) as f64)
}

/// Largest finite-comparable sample value (`f64::max` skips NaN, so a
/// NaN glitch never poisons the result; an empty slice yields `-∞`).
pub fn maximum(values: &[f64]) -> f64 {
    values.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Smallest finite-comparable sample value (`f64::min` skips NaN; an
/// empty slice yields `+∞`).
pub fn minimum(values: &[f64]) -> f64 {
    values.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Trapezoidal time-average of `values` over `[t0, t1]`.
///
/// Returns `None` when the window contains fewer than two samples.
pub fn average_in(times: &[f64], values: &[f64], t0: f64, t1: f64) -> Option<f64> {
    assert_eq!(times.len(), values.len(), "times/values length mismatch");
    let mut area = 0.0;
    let mut span = 0.0;
    for (tw, vw) in times.windows(2).zip(values.windows(2)) {
        let (&[ta, tb], &[va, vb]) = (tw, vw) else {
            continue;
        };
        if tb <= t0 || ta >= t1 {
            continue;
        }
        let lo = ta.max(t0);
        let hi = tb.min(t1);
        if hi <= lo {
            continue;
        }
        // Linear interpolation of the segment endpoints onto [lo, hi].
        let f = |t: f64| {
            if tb == ta {
                vb
            } else {
                va + (vb - va) * (t - ta) / (tb - ta)
            }
        };
        area += 0.5 * (f(lo) + f(hi)) * (hi - lo);
        span += hi - lo;
    }
    if span > 0.0 {
        Some(area / span)
    } else {
        None
    }
}

/// Relative change `(value - reference) / reference`, in percent.
///
/// Degenerate inputs never panic: a zero reference yields `0.0` when
/// the value is also zero and a signed infinity otherwise, and any
/// non-finite input yields `NaN` — which compares false against every
/// threshold, so downstream comparisons fail closed rather than
/// reporting a spurious change.
pub fn percent_change(value: f64, reference: f64) -> f64 {
    if !value.is_finite() || !reference.is_finite() {
        return f64::NAN;
    }
    if reference == 0.0 {
        return if value == 0.0 {
            0.0
        } else {
            f64::INFINITY.copysign(value)
        };
    }
    (value - reference) / reference * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> (Vec<f64>, Vec<f64>) {
        let times: Vec<f64> = (0..=10).map(|i| i as f64).collect();
        let values: Vec<f64> = times.iter().map(|&t| t * 0.1).collect();
        (times, values)
    }

    #[test]
    fn rising_crossing_interpolates() {
        let (t, v) = ramp();
        let c = crossings(&t, &v, 0.55, Edge::Rising);
        assert_eq!(c.len(), 1);
        assert!((c[0] - 5.5).abs() < 1e-12);
    }

    #[test]
    fn falling_crossing() {
        let times: Vec<f64> = (0..=10).map(|i| i as f64).collect();
        let values: Vec<f64> = times.iter().map(|&t| 1.0 - t * 0.1).collect();
        let c = crossings(&times, &values, 0.35, Edge::Falling);
        assert_eq!(c.len(), 1);
        assert!((c[0] - 6.5).abs() < 1e-12);
    }

    #[test]
    fn spike_counting_square_wave() {
        // Three pulses.
        let mut t = Vec::new();
        let mut v = Vec::new();
        for i in 0..300 {
            t.push(i as f64);
            v.push(if (i / 50) % 2 == 1 { 1.0 } else { 0.0 });
        }
        assert_eq!(spike_times(&t, &v, 0.5).len(), 3);
        // Rising edges near t = 50, 150, 250; [0, 160] holds the first two.
        assert_eq!(spike_count_in(&t, &v, 0.5, 0.0, 160.0), 2);
        let period = mean_spike_period(&t, &v, 0.5).unwrap();
        assert!((period - 100.0).abs() < 1.0);
    }

    #[test]
    fn first_spike_time() {
        let (t, v) = ramp();
        assert!(time_to_first_spike(&t, &v, 0.95).is_some());
        assert!(time_to_first_spike(&t, &v, 2.0).is_none());
    }

    #[test]
    fn min_max() {
        let v = [1.0, -3.0, 2.0];
        assert_eq!(maximum(&v), 2.0);
        assert_eq!(minimum(&v), -3.0);
    }

    #[test]
    fn average_of_constant() {
        let t: Vec<f64> = (0..=10).map(|i| i as f64).collect();
        let v = vec![2.0; 11];
        let a = average_in(&t, &v, 2.0, 8.0).unwrap();
        assert!((a - 2.0).abs() < 1e-12);
    }

    #[test]
    fn average_of_ramp_over_window() {
        let (t, v) = ramp();
        // Average of 0.1*t over [0,10] = 0.5.
        let a = average_in(&t, &v, 0.0, 10.0).unwrap();
        assert!((a - 0.5).abs() < 1e-12);
        // Over [4,6]: mean value = 0.5 as well.
        let a = average_in(&t, &v, 4.0, 6.0).unwrap();
        assert!((a - 0.5).abs() < 1e-12);
    }

    #[test]
    fn average_outside_window_is_none() {
        let (t, v) = ramp();
        assert!(average_in(&t, &v, 100.0, 200.0).is_none());
    }

    #[test]
    fn percent_change_signs() {
        assert!((percent_change(1.2, 1.0) - 20.0).abs() < 1e-12);
        assert!((percent_change(0.8, 1.0) + 20.0).abs() < 1e-12);
    }

    #[test]
    fn percent_change_degenerate_inputs() {
        assert_eq!(percent_change(0.0, 0.0), 0.0);
        assert_eq!(percent_change(1.0, 0.0), f64::INFINITY);
        assert_eq!(percent_change(-1.0, 0.0), f64::NEG_INFINITY);
        assert!(percent_change(f64::NAN, 1.0).is_nan());
        assert!(percent_change(1.0, f64::NAN).is_nan());
        assert!(percent_change(f64::INFINITY, 1.0).is_nan());
        // NaN fails closed against thresholds: incomparable, not less
        // or greater.
        assert_eq!(percent_change(f64::NAN, 1.0).partial_cmp(&5.0), None);
        assert_eq!(percent_change(f64::NAN, 1.0).partial_cmp(&-5.0), None);
    }

    #[test]
    fn nan_glitch_never_fabricates_crossings() {
        let t: Vec<f64> = (0..6).map(|i| i as f64).collect();
        let v = [0.0, f64::NAN, 0.0, 0.0, 1.0, 1.0];
        // Only the genuine 0→1 edge at t ∈ [3,4] is reported.
        let c = crossings(&t, &v, 0.5, Edge::Rising);
        assert_eq!(c.len(), 1);
        assert!((c[0] - 3.5).abs() < 1e-12);
        assert!(crossings(&t, &v, 0.5, Edge::Falling).is_empty());
    }

    #[test]
    fn min_max_skip_nan_and_handle_empty() {
        let v = [1.0, f64::NAN, 2.0];
        assert_eq!(maximum(&v), 2.0);
        assert_eq!(minimum(&v), 1.0);
        assert_eq!(maximum(&[]), f64::NEG_INFINITY);
        assert_eq!(minimum(&[]), f64::INFINITY);
    }

    #[test]
    fn degenerate_waveforms_dont_panic() {
        // Empty and single-sample waveforms flow through every helper.
        assert!(crossings(&[], &[], 0.5, Edge::Rising).is_empty());
        assert!(mean_spike_period(&[0.0], &[1.0], 0.5).is_none());
        assert!(time_to_first_spike(&[], &[], 0.5).is_none());
        assert!(average_in(&[0.0], &[1.0], 0.0, 1.0).is_none());
        // Reversed window: no overlap, None rather than garbage.
        let (t, v) = ramp();
        assert!(average_in(&t, &v, 8.0, 2.0).is_none());
    }
}
