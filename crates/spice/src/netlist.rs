//! Circuit description: nodes, elements, and the builder API.

use std::collections::HashMap;

use crate::circuit::Circuit;
use crate::device::MosModel;
use crate::error::{Error, Result};
use crate::waveform::Waveform;

/// Opaque identifier of a circuit node.
///
/// Obtained from [`Netlist::node`]; [`Netlist::GROUND`] is the reference
/// node. A `NodeId` is only meaningful for the netlist that created it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Raw index of this node (0 is ground).
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A circuit element.
///
/// Most users build these through the [`Netlist`] methods rather than
/// constructing variants directly; the enum is public so that analysis and
/// reporting code can introspect a netlist.
#[derive(Debug, Clone, PartialEq)]
pub enum Element {
    /// Linear resistor between `p` and `n`.
    Resistor {
        /// Element name (unique within the netlist).
        name: String,
        /// Positive terminal.
        p: NodeId,
        /// Negative terminal.
        n: NodeId,
        /// Resistance in ohms (> 0).
        r: f64,
    },
    /// Linear capacitor between `p` and `n`.
    Capacitor {
        /// Element name.
        name: String,
        /// Positive terminal.
        p: NodeId,
        /// Negative terminal.
        n: NodeId,
        /// Capacitance in farads (> 0).
        c: f64,
        /// Optional initial voltage (volts across `p`−`n`) applied when the
        /// transient starts with `uic` or when the DC solve is skipped.
        ic: Option<f64>,
    },
    /// Independent voltage source from `p` to `n` (adds a branch-current
    /// unknown to the MNA system).
    VSource {
        /// Element name.
        name: String,
        /// Positive terminal.
        p: NodeId,
        /// Negative terminal.
        n: NodeId,
        /// Source value over time.
        wave: Waveform,
    },
    /// Independent current source; positive current flows from `p` through
    /// the source to `n` (SPICE convention: it *extracts* from `p` and
    /// *injects* into `n`).
    ISource {
        /// Element name.
        name: String,
        /// Positive terminal.
        p: NodeId,
        /// Negative terminal.
        n: NodeId,
        /// Source value over time.
        wave: Waveform,
    },
    /// MOSFET with explicit bulk terminal.
    Mosfet {
        /// Element name.
        name: String,
        /// Drain.
        d: NodeId,
        /// Gate.
        g: NodeId,
        /// Source.
        s: NodeId,
        /// Bulk/body.
        b: NodeId,
        /// Compact-model card.
        model: MosModel,
        /// Channel width in meters (> 0).
        w: f64,
        /// Channel length in meters (> 0).
        l: f64,
    },
    /// Voltage-controlled voltage source: `V(p,n) = gain · V(cp,cn)`
    /// (adds a branch-current unknown). The building block for behavioural
    /// op-amp macromodels.
    Vcvs {
        /// Element name.
        name: String,
        /// Positive output terminal.
        p: NodeId,
        /// Negative output terminal.
        n: NodeId,
        /// Positive controlling terminal.
        cp: NodeId,
        /// Negative controlling terminal.
        cn: NodeId,
        /// Voltage gain (dimensionless).
        gain: f64,
    },
    /// Voltage-controlled current source: current `gm · V(cp,cn)` flows
    /// from `p` through the source to `n`.
    Vccs {
        /// Element name.
        name: String,
        /// Positive terminal.
        p: NodeId,
        /// Negative terminal.
        n: NodeId,
        /// Positive controlling terminal.
        cp: NodeId,
        /// Negative controlling terminal.
        cn: NodeId,
        /// Transconductance in siemens.
        gm: f64,
    },
}

impl Element {
    /// The element's unique name.
    pub fn name(&self) -> &str {
        match self {
            Element::Resistor { name, .. }
            | Element::Capacitor { name, .. }
            | Element::VSource { name, .. }
            | Element::ISource { name, .. }
            | Element::Mosfet { name, .. }
            | Element::Vcvs { name, .. }
            | Element::Vccs { name, .. } => name,
        }
    }
}

/// A circuit under construction.
///
/// `Netlist` is a non-consuming builder ([C-BUILDER]): create nodes with
/// [`Netlist::node`], add elements with the typed methods, then call
/// [`Netlist::compile`] to obtain a simulatable [`Circuit`].
///
/// ```
/// use neurofi_spice::{Netlist, Waveform};
/// # fn main() -> Result<(), neurofi_spice::Error> {
/// let mut net = Netlist::new();
/// let vdd = net.node("vdd");
/// net.vsource("VDD", vdd, Netlist::GROUND, Waveform::Dc(1.0));
/// net.resistor("R1", vdd, Netlist::GROUND, 1.0e6);
/// let op = net.compile()?.op(&Default::default())?;
/// assert!((op.voltage(vdd) - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
///
/// [C-BUILDER]: https://rust-lang.github.io/api-guidelines/type-safety.html#c-builder
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    node_names: Vec<String>,
    name_to_node: HashMap<String, NodeId>,
    elements: Vec<Element>,
    element_names: HashMap<String, usize>,
}

impl Netlist {
    /// The reference (ground) node, always node 0.
    pub const GROUND: NodeId = NodeId(0);

    /// Creates an empty netlist containing only the ground node.
    pub fn new() -> Netlist {
        let mut nl = Netlist {
            node_names: vec!["0".to_string()],
            name_to_node: HashMap::new(),
            elements: Vec::new(),
            element_names: HashMap::new(),
        };
        nl.name_to_node.insert("0".into(), NodeId(0));
        nl.name_to_node.insert("gnd".into(), NodeId(0));
        nl
    }

    /// Returns the node with the given name, creating it if needed.
    /// Names `"0"` and `"gnd"` (case-insensitive) always map to ground.
    pub fn node(&mut self, name: &str) -> NodeId {
        let key = name.to_ascii_lowercase();
        if let Some(id) = self.name_to_node.get(&key) {
            return *id;
        }
        let id = NodeId(self.node_names.len());
        self.node_names.push(key.clone());
        self.name_to_node.insert(key, id);
        id
    }

    /// Creates a fresh anonymous internal node (useful for subcircuit
    /// builders that must not collide with user node names).
    pub fn internal_node(&mut self, hint: &str) -> NodeId {
        let name = format!("_{}_{}", hint, self.node_names.len());
        self.node(&name)
    }

    /// Looks up a node by name without creating it.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.name_to_node.get(&name.to_ascii_lowercase()).copied()
    }

    /// Name of a node.
    ///
    /// # Panics
    /// Panics if `id` did not come from this netlist.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id.0]
    }

    /// Number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// The elements added so far, in insertion order.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Finds an element by name.
    pub fn find_element(&self, name: &str) -> Option<&Element> {
        self.element_names
            .get(&name.to_ascii_lowercase())
            .map(|idx| &self.elements[*idx])
    }

    fn push(&mut self, element: Element) -> Result<&mut Netlist> {
        let key = element.name().to_ascii_lowercase();
        if key.is_empty() {
            return Err(Error::Netlist("element name must not be empty".into()));
        }
        if self.element_names.contains_key(&key) {
            return Err(Error::Netlist(format!(
                "duplicate element name '{}'",
                element.name()
            )));
        }
        self.element_names.insert(key, self.elements.len());
        self.elements.push(element);
        Ok(self)
    }

    fn check_positive(value: f64, what: &str, name: &str) -> Result<()> {
        let positive = value > 0.0 && value.is_finite();
        if !positive {
            return Err(Error::Netlist(format!(
                "{what} of '{name}' must be positive and finite, got {value}"
            )));
        }
        Ok(())
    }

    /// Adds a resistor.
    ///
    /// # Errors
    /// Returns [`Error::Netlist`] if `r` is not positive/finite or the name
    /// is already taken.
    pub fn resistor(&mut self, name: &str, p: NodeId, n: NodeId, r: f64) -> Result<&mut Netlist> {
        Self::check_positive(r, "resistance", name)?;
        self.push(Element::Resistor {
            name: name.into(),
            p,
            n,
            r,
        })
    }

    /// Adds a capacitor (no initial condition).
    ///
    /// # Errors
    /// Returns [`Error::Netlist`] if `c` is not positive/finite or the name
    /// is already taken.
    pub fn capacitor(&mut self, name: &str, p: NodeId, n: NodeId, c: f64) -> Result<&mut Netlist> {
        Self::check_positive(c, "capacitance", name)?;
        self.push(Element::Capacitor {
            name: name.into(),
            p,
            n,
            c,
            ic: None,
        })
    }

    /// Adds a capacitor with an initial voltage used by `uic` transients.
    ///
    /// # Errors
    /// Returns [`Error::Netlist`] if `c` is not positive/finite or the name
    /// is already taken.
    pub fn capacitor_ic(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        c: f64,
        ic: f64,
    ) -> Result<&mut Netlist> {
        Self::check_positive(c, "capacitance", name)?;
        self.push(Element::Capacitor {
            name: name.into(),
            p,
            n,
            c,
            ic: Some(ic),
        })
    }

    /// Adds an independent voltage source.
    ///
    /// # Errors
    /// Returns [`Error::Netlist`] on duplicate names.
    pub fn vsource(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        wave: Waveform,
    ) -> Result<&mut Netlist> {
        self.push(Element::VSource {
            name: name.into(),
            p,
            n,
            wave,
        })
    }

    /// Adds an independent current source (positive current `p` → `n`
    /// through the source).
    ///
    /// # Errors
    /// Returns [`Error::Netlist`] on duplicate names.
    pub fn isource(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        wave: Waveform,
    ) -> Result<&mut Netlist> {
        self.push(Element::ISource {
            name: name.into(),
            p,
            n,
            wave,
        })
    }

    /// Adds a MOSFET.
    ///
    /// # Errors
    /// Returns [`Error::Netlist`] if `w` or `l` is not positive/finite or
    /// the name is already taken.
    #[allow(clippy::too_many_arguments)]
    pub fn mosfet(
        &mut self,
        name: &str,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        b: NodeId,
        model: MosModel,
        w: f64,
        l: f64,
    ) -> Result<&mut Netlist> {
        Self::check_positive(w, "channel width", name)?;
        Self::check_positive(l, "channel length", name)?;
        self.push(Element::Mosfet {
            name: name.into(),
            d,
            g,
            s,
            b,
            model,
            w,
            l,
        })
    }

    /// Adds a voltage-controlled voltage source.
    ///
    /// # Errors
    /// Returns [`Error::Netlist`] on duplicate names.
    #[allow(clippy::too_many_arguments)]
    pub fn vcvs(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        cp: NodeId,
        cn: NodeId,
        gain: f64,
    ) -> Result<&mut Netlist> {
        self.push(Element::Vcvs {
            name: name.into(),
            p,
            n,
            cp,
            cn,
            gain,
        })
    }

    /// Adds a voltage-controlled current source.
    ///
    /// # Errors
    /// Returns [`Error::Netlist`] on duplicate names.
    #[allow(clippy::too_many_arguments)]
    pub fn vccs(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        cp: NodeId,
        cn: NodeId,
        gm: f64,
    ) -> Result<&mut Netlist> {
        self.push(Element::Vccs {
            name: name.into(),
            p,
            n,
            cp,
            cn,
            gm,
        })
    }

    /// Replaces the waveform of an existing V or I source (used by sweep
    /// drivers to re-run the same circuit at different supply voltages).
    ///
    /// # Errors
    /// Returns [`Error::Netlist`] if no source with that name exists.
    pub fn set_source(&mut self, name: &str, wave: Waveform) -> Result<()> {
        let idx = *self
            .element_names
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| Error::Netlist(format!("no element named '{name}'")))?;
        match &mut self.elements[idx] {
            Element::VSource { wave: w, .. } | Element::ISource { wave: w, .. } => {
                *w = wave;
                Ok(())
            }
            _ => Err(Error::Netlist(format!("element '{name}' is not a source"))),
        }
    }

    /// Compiles into a simulatable [`Circuit`], assigning MNA unknowns.
    ///
    /// # Errors
    /// Returns [`Error::Netlist`] for structurally broken circuits (no
    /// elements, for instance). Floating-node problems surface later as
    /// [`Error::Singular`] during a solve.
    pub fn compile(&self) -> Result<Circuit> {
        Circuit::compile(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_aliases() {
        let mut nl = Netlist::new();
        assert_eq!(nl.node("0"), Netlist::GROUND);
        assert_eq!(nl.node("gnd"), Netlist::GROUND);
        assert_eq!(nl.node("GND"), Netlist::GROUND);
    }

    #[test]
    fn nodes_are_deduplicated_case_insensitively() {
        let mut nl = Netlist::new();
        let a = nl.node("Vdd");
        let b = nl.node("VDD");
        assert_eq!(a, b);
        assert_eq!(nl.node_count(), 2);
    }

    #[test]
    fn internal_nodes_are_unique() {
        let mut nl = Netlist::new();
        let a = nl.internal_node("x");
        let b = nl.internal_node("x");
        assert_ne!(a, b);
    }

    #[test]
    fn duplicate_element_names_rejected() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.resistor("R1", a, Netlist::GROUND, 1.0).unwrap();
        let err = nl.resistor("r1", a, Netlist::GROUND, 2.0).unwrap_err();
        assert!(matches!(err, Error::Netlist(_)));
    }

    #[test]
    fn non_positive_values_rejected() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        assert!(nl.resistor("R1", a, Netlist::GROUND, 0.0).is_err());
        assert!(nl.resistor("R2", a, Netlist::GROUND, -5.0).is_err());
        assert!(nl.capacitor("C1", a, Netlist::GROUND, f64::NAN).is_err());
        assert!(nl
            .mosfet(
                "M1",
                a,
                a,
                Netlist::GROUND,
                Netlist::GROUND,
                crate::device::MosModel::ptm65_nmos(),
                -1.0,
                1.0
            )
            .is_err());
    }

    #[test]
    fn find_element_is_case_insensitive() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.capacitor("Cmem", a, Netlist::GROUND, 1.0e-12).unwrap();
        assert!(nl.find_element("cmem").is_some());
        assert!(nl.find_element("CMEM").is_some());
        assert!(nl.find_element("nope").is_none());
    }

    #[test]
    fn set_source_replaces_waveform() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource("V1", a, Netlist::GROUND, Waveform::Dc(1.0))
            .unwrap();
        nl.set_source("v1", Waveform::Dc(2.0)).unwrap();
        match nl.find_element("V1").unwrap() {
            Element::VSource { wave, .. } => assert_eq!(*wave, Waveform::Dc(2.0)),
            _ => panic!("wrong element kind"),
        }
        assert!(nl.set_source("missing", Waveform::Dc(0.0)).is_err());
    }

    #[test]
    fn set_source_rejects_non_sources() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.resistor("R1", a, Netlist::GROUND, 1.0).unwrap();
        assert!(nl.set_source("R1", Waveform::Dc(0.0)).is_err());
    }
}
