//! MOSFET compact model (EKV-style) and technology model cards.
//!
//! The paper simulates its neuron circuits on PTM 65 nm HSPICE cards. Those
//! cards are BSIM4 decks we cannot redistribute; what the experiments
//! actually exercise is (a) square-law strong-inversion behaviour of
//! current mirrors and inverters, (b) subthreshold leakage (the VAIF
//! neuron's leak transistor operates at VGS = 0.2 V, well below
//! threshold), and (c) channel-length modulation (the robust current driver
//! explicitly uses long channels to suppress it).
//!
//! The EKV first-order model captures all three in one smooth, infinitely
//! differentiable equation — ideal for Newton iteration on circuits whose
//! membrane nodes ramp slowly through the transition region:
//!
//! ```text
//! id = 2·n·β·VT² · (1 + λ·|vds|smooth) · [ F(xf) − F(xr) ]
//! F(x) = ln²(1 + exp(x/2))
//! xf = (vp − vsb)/VT,   xr = (vp − vdb)/VT,   vp = (vgb − vt0)/n
//! ```
//!
//! `F` limits to `x²/4` in strong inversion (square law) and to `exp(x)` in
//! weak inversion (subthreshold exponential).

use crate::units::VT_ROOM;

/// MOSFET polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MosType {
    /// N-channel device.
    Nmos,
    /// P-channel device.
    Pmos,
}

impl std::fmt::Display for MosType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MosType::Nmos => write!(f, "nmos"),
            MosType::Pmos => write!(f, "pmos"),
        }
    }
}

/// A MOSFET model card.
///
/// Construct via [`MosModel::ptm65_nmos`] / [`MosModel::ptm65_pmos`] for the
/// calibrated defaults used throughout the workspace, or build custom cards
/// with the `with_*` methods:
///
/// ```
/// use neurofi_spice::device::MosModel;
/// let slow = MosModel::ptm65_nmos().with_vt0(0.5).with_lambda(0.0);
/// assert_eq!(slow.vt0, 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MosModel {
    /// Polarity.
    pub mos_type: MosType,
    /// Zero-bias threshold voltage magnitude in volts (positive for both
    /// polarities; the evaluation applies the sign).
    pub vt0: f64,
    /// Transconductance parameter µ·Cox in A/V².
    pub kp: f64,
    /// Subthreshold slope factor (dimensionless, typically 1.2–1.5).
    pub n: f64,
    /// Channel-length modulation in 1/V (at the reference length; scaled by
    /// `l_ref / l` for longer devices, which is how long channels suppress
    /// it).
    pub lambda: f64,
    /// Reference channel length for the `lambda` scaling, in meters.
    pub l_ref: f64,
    /// Thermal voltage kT/q in volts.
    pub vt_thermal: f64,
}

impl MosModel {
    /// PTM-65nm-like NMOS card: |Vt0| = 0.423 V, kp = 200 µA/V².
    ///
    /// The threshold voltages match the published PTM 65 nm bulk CMOS
    /// values; kp and λ are calibrated so that the paper's circuit-level
    /// observations hold (200 nA driver current at VDD = 1 V, inverter
    /// switching threshold 0.5 V, ±32% driver amplitude swing over
    /// VDD ∈ [0.8, 1.2]).
    pub fn ptm65_nmos() -> MosModel {
        MosModel {
            mos_type: MosType::Nmos,
            vt0: 0.423,
            kp: 200.0e-6,
            n: 1.25,
            lambda: 0.15,
            l_ref: 65.0e-9,
            vt_thermal: VT_ROOM,
        }
    }

    /// PTM-65nm-like PMOS card: |Vt0| = 0.365 V, kp = 80 µA/V².
    pub fn ptm65_pmos() -> MosModel {
        MosModel {
            mos_type: MosType::Pmos,
            vt0: 0.365,
            kp: 80.0e-6,
            n: 1.25,
            lambda: 0.18,
            l_ref: 65.0e-9,
            vt_thermal: VT_ROOM,
        }
    }

    /// Returns a copy with a different threshold voltage magnitude.
    #[must_use]
    pub fn with_vt0(mut self, vt0: f64) -> MosModel {
        self.vt0 = vt0;
        self
    }

    /// Returns a copy with a different transconductance parameter.
    #[must_use]
    pub fn with_kp(mut self, kp: f64) -> MosModel {
        self.kp = kp;
        self
    }

    /// Returns a copy with a different channel-length-modulation parameter.
    #[must_use]
    pub fn with_lambda(mut self, lambda: f64) -> MosModel {
        self.lambda = lambda;
        self
    }

    /// Returns a copy with a different subthreshold slope factor.
    #[must_use]
    pub fn with_n(mut self, n: f64) -> MosModel {
        self.n = n;
        self
    }

    /// Evaluates drain current and its partial derivatives with respect to
    /// the *terminal node voltages* (gate, drain, source, bulk), all
    /// referenced to ground.
    ///
    /// Returns [`MosEval`] with `id` = current flowing **into the drain
    /// terminal** (out of the source), which is negative for PMOS devices in
    /// normal operation. Handing back ∂id/∂v_terminal directly makes the MNA
    /// stamp polarity-agnostic and lets unit tests check the derivatives by
    /// finite differences.
    pub fn eval(&self, w: f64, l: f64, vg: f64, vd: f64, vs: f64, vb: f64) -> MosEval {
        // For PMOS evaluate the mirrored NMOS and flip current + derivative
        // signs via the chain rule: id_p(v) = -id_n(-v), so
        // d id_p / d v = + d id_n / d v' evaluated at v' = -v ... with an
        // extra -1 from the outer negation and -1 from the inner mirror,
        // i.e. derivatives keep the same magnitude and overall sign flips
        // once for the current and cancel for the Jacobian entries.
        match self.mos_type {
            MosType::Nmos => self.eval_nmos(w, l, vg, vd, vs, vb),
            MosType::Pmos => {
                let m = self.eval_nmos(w, l, -vg, -vd, -vs, -vb);
                MosEval {
                    id: -m.id,
                    did_dvg: m.did_dvg,
                    did_dvd: m.did_dvd,
                    did_dvs: m.did_dvs,
                    did_dvb: m.did_dvb,
                }
            }
        }
    }

    fn eval_nmos(&self, w: f64, l: f64, vg: f64, vd: f64, vs: f64, vb: f64) -> MosEval {
        let vt = self.vt_thermal;
        let n = self.n;
        let beta = self.kp * w / l;
        let i_s = 2.0 * n * beta * vt * vt; // specific current scale

        let vgb = vg - vb;
        let vsb = vs - vb;
        let vdb = vd - vb;
        let vp = (vgb - self.vt0) / n;

        let xf = (vp - vsb) / vt;
        let xr = (vp - vdb) / vt;
        let (ff, dff) = ekv_f(xf);
        let (fr, dfr) = ekv_f(xr);

        // Channel-length modulation, smooth and symmetric in vds.
        let lambda = self.lambda * (self.l_ref / l).min(1.0);
        let vds = vd - vs;
        let u = vds / (2.0 * vt);
        let tanh_u = u.tanh();
        let s = vds * tanh_u; // smooth |vds|
        let ds_dvds = tanh_u + vds * (1.0 - tanh_u * tanh_u) / (2.0 * vt);
        let m = 1.0 + lambda * s;
        let dm_dvds = lambda * ds_dvds;

        let core = i_s * (ff - fr);
        let id = core * m;

        // Partials of core w.r.t. terminal voltages.
        //   xf depends on vg (+1/(n·vt)), vs (−1/vt), vb ((1/vt)(1 − 1/n))
        //   xr depends on vg (+1/(n·vt)), vd (−1/vt), vb ((1/vt)(1 − 1/n))
        // (vp falls with vb by 1/n while vsb/vdb fall by 1, so the combined
        // bulk sensitivity is dxf/dvb = dxr/dvb = (1 − 1/n)/vt ≥ 0.)
        let dx_dvb = (1.0 - 1.0 / n) / vt;
        let dcore_dvg = i_s * (dff - dfr) / (n * vt);
        let dcore_dvs = i_s * (-dff) / vt;
        let dcore_dvd = i_s * dfr / vt;
        let dcore_dvb = i_s * (dff - dfr) * dx_dvb;

        // vds-dependence of the CLM multiplier: vds = vd - vs.
        let did_dvg = dcore_dvg * m;
        let did_dvd = dcore_dvd * m + core * dm_dvds;
        let did_dvs = dcore_dvs * m - core * dm_dvds;
        let did_dvb = dcore_dvb * m;

        MosEval {
            id,
            did_dvg,
            did_dvd,
            did_dvs,
            did_dvb,
        }
    }
}

/// Drain current and Jacobian entries returned by [`MosModel::eval`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosEval {
    /// Current into the drain terminal, in amperes.
    pub id: f64,
    /// ∂id/∂vg.
    pub did_dvg: f64,
    /// ∂id/∂vd.
    pub did_dvd: f64,
    /// ∂id/∂vs.
    pub did_dvs: f64,
    /// ∂id/∂vb.
    pub did_dvb: f64,
}

/// The EKV interpolation function `F(x) = ln²(1+e^{x/2})` and its
/// derivative, computed overflow-safely for large |x|.
fn ekv_f(x: f64) -> (f64, f64) {
    // ln(1+e^{x/2}): for large x this is ~x/2; for very negative x, ~e^{x/2}.
    let half = 0.5 * x;
    let lse = if half > 30.0 {
        half
    } else if half < -30.0 {
        half.exp()
    } else {
        half.exp().ln_1p()
    };
    let f = lse * lse;
    // dF/dx = 2·lse·σ(x/2)·(1/2) = lse·σ(x/2)
    let sigma = if half > 30.0 {
        1.0
    } else if half < -30.0 {
        half.exp()
    } else {
        1.0 / (1.0 + (-half).exp())
    };
    (f, lse * sigma)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fd_check(model: &MosModel, vg: f64, vd: f64, vs: f64, vb: f64) {
        let w = 1.0e-6;
        let l = 65.0e-9;
        let e = model.eval(w, l, vg, vd, vs, vb);
        let h = 1.0e-7;
        let fd = |f: &dyn Fn(f64) -> f64| (f(h) - f(-h)) / (2.0 * h);
        let dg = fd(&|dv| model.eval(w, l, vg + dv, vd, vs, vb).id);
        let dd = fd(&|dv| model.eval(w, l, vg, vd + dv, vs, vb).id);
        let ds = fd(&|dv| model.eval(w, l, vg, vd, vs + dv, vb).id);
        let db = fd(&|dv| model.eval(w, l, vg, vd, vs, vb + dv).id);
        let tol = |a: f64| 1.0e-9 + 1.0e-4 * a.abs();
        assert!(
            (e.did_dvg - dg).abs() < tol(dg),
            "gate: {} vs {}",
            e.did_dvg,
            dg
        );
        assert!(
            (e.did_dvd - dd).abs() < tol(dd),
            "drain: {} vs {}",
            e.did_dvd,
            dd
        );
        assert!(
            (e.did_dvs - ds).abs() < tol(ds),
            "source: {} vs {}",
            e.did_dvs,
            ds
        );
        assert!(
            (e.did_dvb - db).abs() < tol(db),
            "bulk: {} vs {}",
            e.did_dvb,
            db
        );
    }

    #[test]
    fn nmos_derivatives_match_finite_differences() {
        let m = MosModel::ptm65_nmos();
        for (vg, vd, vs) in [
            (0.6, 1.0, 0.0),   // saturation
            (0.9, 0.1, 0.0),   // triode
            (0.2, 1.0, 0.0),   // subthreshold
            (0.6, 0.0, 0.0),   // vds = 0
            (0.6, -0.3, 0.0),  // reverse
            (0.423, 0.5, 0.0), // right at threshold
        ] {
            fd_check(&m, vg, vd, vs, 0.0);
        }
    }

    #[test]
    fn pmos_derivatives_match_finite_differences() {
        let m = MosModel::ptm65_pmos();
        for (vg, vd, vs) in [
            (0.3, 0.0, 1.0), // saturation (vsg = 0.7)
            (0.0, 0.9, 1.0), // triode
            (0.8, 0.0, 1.0), // subthreshold
        ] {
            fd_check(&m, vg, vd, vs, 1.0);
        }
    }

    #[test]
    fn nmos_current_is_zeroish_below_threshold() {
        let m = MosModel::ptm65_nmos();
        let e = m.eval(1.0e-6, 65.0e-9, 0.0, 1.0, 0.0, 0.0);
        assert!(e.id > 0.0);
        assert!(e.id < 1.0e-9, "leakage too large: {}", e.id);
    }

    #[test]
    fn nmos_square_law_in_saturation() {
        // In strong inversion + saturation, id should grow roughly
        // quadratically with overdrive.
        let m = MosModel::ptm65_nmos().with_lambda(0.0);
        let i1 = m.eval(1.0e-6, 65.0e-9, 0.423 + 0.2, 1.2, 0.0, 0.0).id;
        let i2 = m.eval(1.0e-6, 65.0e-9, 0.423 + 0.4, 1.2, 0.0, 0.0).id;
        let ratio = i2 / i1;
        assert!(ratio > 3.0 && ratio < 4.6, "ratio={ratio}");
    }

    #[test]
    fn current_is_source_drain_antisymmetric() {
        let m = MosModel::ptm65_nmos().with_lambda(0.0);
        let fwd = m.eval(1.0e-6, 65.0e-9, 0.8, 0.3, 0.1, 0.0).id;
        let rev = m.eval(1.0e-6, 65.0e-9, 0.8, 0.1, 0.3, 0.0).id;
        assert!((fwd + rev).abs() < 1.0e-12 * fwd.abs().max(1.0));
    }

    #[test]
    fn pmos_conducts_with_negative_vgs() {
        let m = MosModel::ptm65_pmos();
        // Source at VDD=1, gate at 0: strongly on, current flows source->drain,
        // i.e. *out of* the drain terminal => negative id by our convention.
        let e = m.eval(1.0e-6, 65.0e-9, 0.0, 0.0, 1.0, 1.0);
        assert!(e.id < -1.0e-6, "id={}", e.id);
    }

    #[test]
    fn vds_zero_gives_zero_current() {
        let m = MosModel::ptm65_nmos();
        let e = m.eval(1.0e-6, 65.0e-9, 1.0, 0.4, 0.4, 0.0);
        assert!(e.id.abs() < 1.0e-15);
    }

    #[test]
    fn longer_channel_reduces_output_conductance() {
        let m = MosModel::ptm65_nmos();
        let short = m.eval(1.0e-6, 65.0e-9, 0.8, 1.0, 0.0, 0.0);
        let long = m.eval(8.0e-6, 520.0e-9, 0.8, 1.0, 0.0, 0.0); // same W/L
                                                                 // Same W/L => similar current, but gds (did_dvd) must shrink.
        assert!((short.id - long.id).abs() / short.id < 0.15);
        assert!(long.did_dvd < short.did_dvd * 0.4);
    }

    #[test]
    fn subthreshold_slope_is_exponential() {
        let m = MosModel::ptm65_nmos();
        let i1 = m.eval(1.0e-6, 65.0e-9, 0.20, 1.0, 0.0, 0.0).id;
        let i2 = m.eval(1.0e-6, 65.0e-9, 0.26, 1.0, 0.0, 0.0).id;
        // Subthreshold slope is n·VT·ln(10) ≈ 74 mV/decade for n = 1.25,
        // so a 60 mV gate step is ≈ 0.81 decades.
        let decades = (i2 / i1).log10();
        assert!(decades > 0.6 && decades < 1.1, "decades={decades}");
    }

    #[test]
    fn ekv_f_limits() {
        // Strong inversion: F(x) -> (x/2)^2.
        let (f, _) = super::ekv_f(40.0);
        assert!((f - 400.0).abs() / 400.0 < 0.01);
        // Weak inversion: F(x) -> e^x (since ln(1+e^{x/2}) ~ e^{x/2}).
        let (f, _) = super::ekv_f(-20.0);
        assert!((f - (-20.0f64).exp()).abs() / (-20.0f64).exp() < 0.01);
        // No overflow at extreme arguments.
        let (f, df) = super::ekv_f(1.0e4);
        assert!(f.is_finite() && df.is_finite());
        let (f, df) = super::ekv_f(-1.0e4);
        assert!(f >= 0.0 && df >= 0.0);
    }

    #[test]
    fn model_card_builders() {
        let m = MosModel::ptm65_nmos()
            .with_vt0(0.5)
            .with_kp(100.0e-6)
            .with_lambda(0.0)
            .with_n(1.5);
        assert_eq!(m.vt0, 0.5);
        assert_eq!(m.kp, 100.0e-6);
        assert_eq!(m.lambda, 0.0);
        assert_eq!(m.n, 1.5);
    }
}
