//! CLI backends for the distributed-sweep subcommands:
//! `repro coordinate` (shard campaigns over TCP workers), `repro work`
//! (join as a worker), `repro submit` (enqueue a campaign on a *running*
//! coordinator), `repro serve` (a coordinator that outlives queue drain
//! and accepts submissions indefinitely), `repro status` (query a
//! running coordinator's per-campaign progress over the v5 control
//! plane), and `repro store` (offline stat/compact of the
//! content-addressed result store).
//!
//! All return a process exit code and print human-oriented progress to
//! stderr, results to stdout — any failed cell, failed worker, or
//! failed verification exits nonzero so CI catches silent regressions.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, SystemTime};

use neurofi_core::{cell_countermeasures, AxisKind, Parallelism, SweepResult, Table};
use neurofi_dist::{
    named_campaign, query_status, run_local_cluster, run_worker, submit_campaign_retrying,
    CampaignProgress, CampaignSpec, CampaignSweep, Coordinator, CoordinatorConfig,
    LocalClusterConfig, NamedCampaign, PolicyKind, RetryPolicy, WorkerConfig, NAMED_CAMPAIGNS,
};
use neurofi_store::{EvictionPolicy, Store};

fn coordinate_usage() -> String {
    format!(
        "usage: repro coordinate [--grid NAME]... [--spec FILE]... [--workers N] \
         [--bind ADDR] [--journal PATH] [--store PATH] [--fair] [--weight GRID=W]... \
         [--verify-serial] [--idle-timeout SECS] [--worker-max-cells K] [--out DIR]\n\
         grids: {} (repeat --grid to queue several campaigns on one \
         coordinator/fleet; each keeps its own journal `PATH.<grid>`; --spec \
         queues a custom scenario file in the axis grammar — see `repro sweep \
         --help`; more campaigns can be enqueued live with `repro submit`)\n\
         --fair  weighted round-robin across campaigns instead of FIFO \
         (a campaign with --weight GRID=W gets W consecutive batches per \
         rotation; default weight 1)\n\
         --workers N  spawn N local workers (over localhost TCP); with 0 \
         (default when --bind is given) the coordinator waits for external \
         `repro work --connect` peers\n\
         --worker-max-cells K  preempt each local worker after K cells \
         (exercises the requeue/resume path; mainly for CI)\n\
         --store PATH  content-addressed result store: cells already \
         present (from *any* earlier campaign, under any name) are filled \
         as store hits before workers are assigned, and newly computed \
         cells are recorded for future runs",
        NAMED_CAMPAIGNS.join(" ")
    )
}

fn serve_usage() -> String {
    format!(
        "usage: repro serve --bind ADDR [--store PATH] [--journal PATH] \
         [--grid NAME]... [--spec FILE]... [--fair] [--weight GRID=W]...\n\
         grids: {}\n\
         A persistent coordinator: binds ADDR, serves `repro work` peers, \
         and keeps accepting `repro submit` campaigns indefinitely — it \
         does NOT exit when the queue drains (stop it with a signal). \
         Results land in per-campaign journals (`--journal` base) and, \
         with --store, in the content-addressed store shared across every \
         campaign ever submitted. Poll it with `repro status --to ADDR`.",
        NAMED_CAMPAIGNS.join(" ")
    )
}

fn status_usage() -> &'static str {
    "usage: repro status --to HOST:PORT [--campaign NAME]\n\
     One progress snapshot per campaign on the running coordinator \
     (queued / running / done / resumed / store-hit cell counts plus \
     the dummy-neuron detection hit/miss counters, in queue order); \
     --campaign restricts the report to one name. Exits nonzero if a \
     reported campaign has failed."
}

fn store_usage() -> &'static str {
    "usage: repro store <stat|compact> --store PATH [--max-records N] [--max-age-days D]\n\
     Offline maintenance of a content-addressed result store (no \
     coordinator needed; do not run against a store a live `repro serve` \
     has open).\n\
     stat     print record counts, file size, and stamp range\n\
     compact  rewrite the store dropping evicted records: --max-age-days \
     drops records older than D days, --max-records keeps only the N \
     newest (both optional; with neither, compaction just rewrites \
     the file dropping dead bytes)"
}

fn work_usage() -> &'static str {
    "usage: repro work --connect HOST:PORT [--threads N] [--max-cells K] \
     [--batch N] [--ack-window N] [--retry N] [--backoff MS]\n\
     --retry N  give up after N consecutive failed dials/sessions \
     (default 4; a completed handshake resets the count, so a long-lived \
     worker rides through any number of separated link flaps; a worker \
     started before its coordinator binds keeps dialling)\n\
     --backoff MS  base reconnect delay, doubled per consecutive failure \
     and jittered (default 250, capped at 5000)"
}

fn submit_usage() -> String {
    format!(
        "usage: repro submit (--grid NAME | --spec FILE | --attack FAMILY --axis \
         NAME=VALUES...) --to HOST:PORT [--seeds LIST] [--setup bench|quick|paper] \
         [--setup-seed N] [--transfer paper|POINTS] [--weight W] [--name NAME]\n\
         grids: {}\n\
         Enqueues the scenario on a *running* coordinator (started with \
         `repro coordinate`) — a catalog preset, a spec file, or an inline \
         axis grammar (arbitrary grids, not just catalog names; see \
         `repro sweep --help` for the grammar). The campaign is journaled \
         and scheduled exactly like a bind-time campaign; --name overrides \
         the queue name, --weight sets its --fair round-robin share.\n\
         --retry N  retry link failures up to N times with backoff \
         (default 4) — safe because enqueueing is idempotent: a retry \
         after a lost acknowledgement returns the existing campaign id\n\
         --backoff MS  base retry delay, doubled per attempt and jittered \
         (default 250, capped at 5000)",
        NAMED_CAMPAIGNS.join(" ")
    )
}

/// One row per cell. Results that carry their resolved axes get one
/// column per axis — a cross-product grid (e.g. threshold × vdd) would
/// otherwise print indistinguishable duplicate `(value, fraction)`
/// rows; hand-assembled results fall back to the legacy coordinate
/// pair. When the producing spec is available and carries a defense or
/// detector axis, each row additionally reports the defense overhead
/// and the dummy-neuron detection outcome (hit / miss / quiet).
pub(crate) fn sweep_table(name: &str, sweep: &SweepResult, spec: Option<&CampaignSpec>) -> Table {
    let title = format!("Sweep `{name}` — attack {}", sweep.kind.paper_id());
    if sweep.axes.is_empty() {
        let mut table = Table::new(title, &["value", "fraction", "accuracy", "vs baseline"]);
        for cell in &sweep.cells {
            table.push_row(&[
                format!("{:+.3}", cell.rel_change),
                format!("{:.0}%", cell.fraction * 100.0),
                format!("{:.1}%", cell.accuracy * 100.0),
                format!("{:+.2}%", cell.relative_change_percent),
            ]);
        }
        table.push_note(format!(
            "baseline accuracy {:.2}%",
            sweep.baseline_accuracy * 100.0
        ));
        return table;
    }
    // Countermeasure reporting is derived, never measured: overhead and
    // detection are pure functions of each planned attack, so the cells'
    // bytes stay identical whether or not these columns print.
    let countermeasures = spec.and_then(|spec| {
        let armed = spec
            .scenario
            .axes
            .iter()
            .any(|a| matches!(a.kind, AxisKind::Defense | AxisKind::Detector));
        if !armed {
            return None;
        }
        let transfer = spec.scenario.transfer_table().ok().flatten();
        Some(
            spec.plan()
                .jobs
                .iter()
                .map(|job| cell_countermeasures(&job.attack, transfer.as_ref()))
                .collect::<Vec<_>>(),
        )
    });
    let mut headers: Vec<String> = sweep.axes.iter().map(|a| a.kind.to_string()).collect();
    headers.push("accuracy".into());
    headers.push("vs baseline".into());
    if countermeasures.is_some() {
        headers.push("overhead".into());
        headers.push("detection".into());
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(title, &header_refs);
    for (flat, cell) in sweep.cells.iter().enumerate() {
        let indices = sweep
            .axis_indices(flat)
            .expect("every assembled cell decomposes into axis indices");
        let mut row: Vec<String> = sweep
            .axes
            .iter()
            .zip(&indices)
            .map(|(axis, &i)| axis.value_label(i).unwrap_or_default())
            .collect();
        row.push(format!("{:.1}%", cell.accuracy * 100.0));
        row.push(format!("{:+.2}%", cell.relative_change_percent));
        if let Some(cms) = countermeasures.as_ref().and_then(|cms| cms.get(flat)) {
            row.push(
                if cms.power_overhead_percent == 0.0 && cms.area_overhead_percent == 0.0 {
                    "—".into()
                } else {
                    format!(
                        "+{}% pwr, +{}% area",
                        cms.power_overhead_percent, cms.area_overhead_percent
                    )
                },
            );
            row.push(match cms.detection {
                Some(outcome) => outcome.label().to_string(),
                None => "—".into(),
            });
        }
        table.push_row(&row);
    }
    table.push_note(format!(
        "baseline accuracy {:.2}%",
        sweep.baseline_accuracy * 100.0
    ));
    table
}

/// Bit-level comparison of two sweep results — the golden-merge check
/// behind `--verify-serial`. Pure so the divergence detection itself is
/// testable without training runs.
pub fn diff_sweeps(serial: &SweepResult, merged: &SweepResult) -> Result<(), String> {
    if serial.baseline_accuracy.to_bits() != merged.baseline_accuracy.to_bits() {
        return Err(format!(
            "baseline accuracy diverged: serial {:?} vs distributed {:?}",
            serial.baseline_accuracy, merged.baseline_accuracy
        ));
    }
    if serial.cells.len() != merged.cells.len() {
        return Err(format!(
            "cell count diverged: serial {} vs distributed {}",
            serial.cells.len(),
            merged.cells.len()
        ));
    }
    for (i, (s, d)) in serial.cells.iter().zip(&merged.cells).enumerate() {
        if s.accuracy.to_bits() != d.accuracy.to_bits()
            || s.rel_change.to_bits() != d.rel_change.to_bits()
            || s.fraction.to_bits() != d.fraction.to_bits()
            || s.relative_change_percent.to_bits() != d.relative_change_percent.to_bits()
        {
            return Err(format!(
                "cell {i} diverged: serial {s:?} vs distributed {d:?}"
            ));
        }
    }
    Ok(())
}

/// Re-runs a merged campaign serially and demands bit identity. Works
/// for bind-time *and* live-submitted campaigns: the [`CampaignSweep`]
/// carries the spec that produced it.
fn verify_against_serial(sweep: &CampaignSweep) -> Result<(), String> {
    let serial = sweep
        .spec
        .run_serial()
        .map_err(|e| format!("serial reference run failed: {e}"))?;
    diff_sweeps(&serial, &sweep.result)
}

fn report_sweep(
    sweep: &CampaignSweep,
    many: bool,
    out_dir: Option<&PathBuf>,
) -> Result<(), String> {
    let table = sweep_table(&sweep.name, &sweep.result, Some(&sweep.spec));
    println!("{}", table.to_markdown());
    // The zero-hit format is frozen: CI greps the exact
    // `... N computed)` suffix on runs without a store.
    let hits = if sweep.store_hit_cells > 0 {
        format!(", {} store hits", sweep.store_hit_cells)
    } else {
        String::new()
    };
    println!(
        "_campaign `{}`: merged {} cells ({} resumed from checkpoint, {} computed{hits})_\n",
        sweep.name, sweep.total_cells, sweep.resumed_cells, sweep.computed_cells
    );
    if let Some(dir) = out_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create output directory {}: {e}", dir.display()))?;
        let file = if many {
            format!("distributed_sweep.{}.csv", sweep.name)
        } else {
            "distributed_sweep.csv".into()
        };
        let path = dir.join(file);
        std::fs::write(&path, table.to_csv())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    Ok(())
}

/// `repro coordinate ...`: queue one or more named campaign grids on a
/// single coordinator/fleet, merge each, report.
pub fn coordinate_main(args: &[String]) -> ExitCode {
    let mut grids: Vec<String> = Vec::new();
    let mut spec_files: Vec<PathBuf> = Vec::new();
    let mut workers = 0usize;
    let mut workers_given = false;
    let mut bind: Option<String> = None;
    let mut journal: Option<PathBuf> = None;
    let mut store: Option<PathBuf> = None;
    let mut policy = PolicyKind::Fifo;
    let mut weights: Vec<(String, u32)> = Vec::new();
    let mut verify_serial = false;
    let mut idle_timeout = Duration::from_secs(60);
    let mut worker_max_cells: Option<usize> = None;
    let mut out_dir: Option<PathBuf> = None;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut take = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--grid" => match take("--grid") {
                Ok(v) => grids.push(v),
                Err(e) => return usage_error(&e, &coordinate_usage()),
            },
            "--spec" => match take("--spec") {
                Ok(v) => spec_files.push(PathBuf::from(v)),
                Err(e) => return usage_error(&e, &coordinate_usage()),
            },
            "--workers" => match take("--workers").and_then(|v| {
                v.parse::<usize>()
                    .map_err(|_| format!("bad worker count `{v}`"))
            }) {
                Ok(v) => {
                    workers = v;
                    workers_given = true;
                }
                Err(e) => return usage_error(&e, &coordinate_usage()),
            },
            "--bind" => match take("--bind") {
                Ok(v) => bind = Some(v),
                Err(e) => return usage_error(&e, &coordinate_usage()),
            },
            "--journal" => match take("--journal") {
                Ok(v) => journal = Some(PathBuf::from(v)),
                Err(e) => return usage_error(&e, &coordinate_usage()),
            },
            "--store" => match take("--store") {
                Ok(v) => store = Some(PathBuf::from(v)),
                Err(e) => return usage_error(&e, &coordinate_usage()),
            },
            "--idle-timeout" => match take("--idle-timeout")
                .and_then(|v| v.parse::<u64>().map_err(|_| format!("bad timeout `{v}`")))
            {
                Ok(v) => idle_timeout = Duration::from_secs(v),
                Err(e) => return usage_error(&e, &coordinate_usage()),
            },
            "--worker-max-cells" => match take("--worker-max-cells").and_then(|v| {
                v.parse::<usize>()
                    .map_err(|_| format!("bad cell budget `{v}`"))
            }) {
                Ok(v) => worker_max_cells = Some(v),
                Err(e) => return usage_error(&e, &coordinate_usage()),
            },
            "--out" => match take("--out") {
                Ok(v) => out_dir = Some(PathBuf::from(v)),
                Err(e) => return usage_error(&e, &coordinate_usage()),
            },
            "--fair" => policy = PolicyKind::WeightedRoundRobin,
            "--weight" => match take("--weight").and_then(|v| parse_weight(&v)) {
                Ok(pair) => weights.push(pair),
                Err(e) => return usage_error(&e, &coordinate_usage()),
            },
            "--verify-serial" => verify_serial = true,
            "--help" | "-h" => {
                println!("{}", coordinate_usage());
                return ExitCode::SUCCESS;
            }
            other => {
                return usage_error(&format!("unknown argument `{other}`"), &coordinate_usage())
            }
        }
    }
    if !workers_given && bind.is_none() {
        // Bare `repro coordinate` would wait forever for peers that were
        // never launched; default to a self-contained two-worker cluster.
        workers = 2;
    }
    if grids.is_empty() && spec_files.is_empty() {
        grids.push("fig8-reduced".into());
    }

    let campaigns = match build_campaigns(&grids, &spec_files, &weights) {
        Ok(campaigns) => campaigns,
        Err(e) => return usage_error(&e, &coordinate_usage()),
    };

    let names: Vec<&str> = campaigns.iter().map(|c| c.name.as_str()).collect();
    let total_cells: usize = campaigns.iter().map(|c| c.spec.plan().jobs.len()).sum();
    eprintln!(
        "coordinate: {} campaign(s) [{}] ({total_cells} cells), {} scheduling, {} local worker(s){}",
        campaigns.len(),
        names.join(", "),
        match policy {
            PolicyKind::Fifo => "fifo",
            PolicyKind::WeightedRoundRobin => "fair (weighted round-robin)",
        },
        workers,
        match &journal {
            Some(p) => format!(", journal base {}", p.display()),
            None => String::new(),
        }
    );

    let run = if workers > 0 {
        let mut config = LocalClusterConfig::multi(campaigns.clone(), workers);
        if let Some(bind) = bind {
            config.bind = bind;
        }
        config.journal = journal;
        config.store = store;
        config.policy = policy;
        config.idle_timeout = idle_timeout;
        config.worker_max_cells = worker_max_cells;
        config.worker_parallelism = Parallelism::Auto;
        run_local_cluster(&config).map(|report| {
            for (i, worker) in report.workers.iter().enumerate() {
                match worker {
                    Ok(summary) => eprintln!(
                        "worker {i}: {} cell(s), {}",
                        summary.cells_executed,
                        if summary.finished {
                            "finished"
                        } else {
                            "left early"
                        }
                    ),
                    Err(e) => eprintln!("worker {i}: failed after merge completed: {e}"),
                }
            }
            report.run
        })
    } else {
        let Some(bind) = bind else {
            return usage_error(
                "--workers 0 needs --bind (there would be nobody to serve)",
                &coordinate_usage(),
            );
        };
        let mut config = CoordinatorConfig::with_campaigns(bind.clone(), campaigns.clone());
        config.journal = journal;
        config.store = store;
        config.policy = policy;
        config.idle_timeout = idle_timeout;
        Coordinator::bind(config).and_then(|coordinator| {
            eprintln!(
                "coordinate: listening on {} — start workers with \
                 `repro work --connect HOST:PORT`",
                coordinator
                    .local_addr()
                    .map(|a| a.to_string())
                    .unwrap_or(bind)
            );
            coordinator.serve()
        })
    };

    let run = match run {
        Ok(run) => run,
        Err(e) => {
            eprintln!("coordinate FAILED: {e}");
            return ExitCode::FAILURE;
        }
    };
    let many = run.campaigns.len() > 1;
    for sweep in &run.campaigns {
        if let Err(e) = report_sweep(sweep, many, out_dir.as_ref()) {
            eprintln!("coordinate FAILED: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!("_{} worker(s) served the fleet_\n", run.workers_seen);
    if verify_serial {
        // Every merged campaign is verified — including ones submitted
        // to the running coordinator after bind (the merge carries its
        // spec).
        for sweep in &run.campaigns {
            eprintln!(
                "verify: re-running campaign `{}` serially for the golden comparison...",
                sweep.name
            );
            match verify_against_serial(sweep) {
                Ok(()) => println!(
                    "_verify-serial `{}`: distributed merge is bit-identical to the \
                     serial engine_",
                    sweep.name
                ),
                Err(e) => {
                    eprintln!("coordinate FAILED verification for `{}`: {e}", sweep.name);
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    ExitCode::SUCCESS
}

/// `repro work ...`: join a campaign as a worker.
pub fn work_main(args: &[String]) -> ExitCode {
    let mut connect: Option<String> = None;
    let mut parallelism = Parallelism::Auto;
    let mut max_cells: Option<usize> = None;
    let mut batch: Option<usize> = None;
    let mut ack_window: Option<usize> = None;
    let mut retries: Option<u32> = None;
    let mut backoff: Option<u64> = None;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut take = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--connect" => match take("--connect") {
                Ok(v) => connect = Some(v),
                Err(e) => return usage_error(&e, work_usage()),
            },
            "--threads" => match take("--threads").and_then(|v| {
                v.parse::<usize>()
                    .map_err(|_| format!("bad thread count `{v}`"))
            }) {
                Ok(v) => parallelism = Parallelism::Threads(v),
                Err(e) => return usage_error(&e, work_usage()),
            },
            "--max-cells" => match take("--max-cells").and_then(|v| {
                v.parse::<usize>()
                    .map_err(|_| format!("bad cell budget `{v}`"))
            }) {
                Ok(v) => max_cells = Some(v),
                Err(e) => return usage_error(&e, work_usage()),
            },
            "--batch" => match take("--batch").and_then(|v| {
                v.parse::<usize>()
                    .map_err(|_| format!("bad batch size `{v}`"))
            }) {
                Ok(v) => batch = Some(v),
                Err(e) => return usage_error(&e, work_usage()),
            },
            "--ack-window" => match take("--ack-window").and_then(|v| {
                v.parse::<usize>()
                    .map_err(|_| format!("bad ack window `{v}`"))
            }) {
                Ok(v) => ack_window = Some(v),
                Err(e) => return usage_error(&e, work_usage()),
            },
            "--retry" => match take("--retry").and_then(|v| {
                v.parse::<u32>()
                    .map_err(|_| format!("bad retry count `{v}`"))
            }) {
                Ok(v) => retries = Some(v),
                Err(e) => return usage_error(&e, work_usage()),
            },
            "--backoff" => match take("--backoff")
                .and_then(|v| v.parse::<u64>().map_err(|_| format!("bad backoff `{v}`")))
            {
                Ok(v) => backoff = Some(v),
                Err(e) => return usage_error(&e, work_usage()),
            },
            "--help" | "-h" => {
                println!("{}", work_usage());
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`"), work_usage()),
        }
    }
    let Some(connect) = connect else {
        return usage_error("--connect is required", work_usage());
    };

    let mut config = WorkerConfig::new(connect);
    config.parallelism = parallelism;
    config.max_cells = max_cells;
    config.batch = batch;
    if let Some(window) = ack_window {
        config.ack_window = window;
    }
    if let Some(retries) = retries {
        config.retry.max_retries = retries;
    }
    if let Some(backoff) = backoff {
        config.retry.backoff = Duration::from_millis(backoff);
    }
    // Per-process jitter seed so a fleet restarted together does not
    // redial in lockstep.
    config.retry.seed ^= u64::from(std::process::id());
    eprintln!(
        "work: connecting to {} with {} thread(s)...",
        config.connect,
        parallelism.worker_count()
    );
    match run_worker(&config) {
        Ok(summary) => {
            eprintln!(
                "work: executed {} cell(s); {}",
                summary.cells_executed,
                if summary.finished {
                    "campaign finished"
                } else {
                    "cell budget reached, left campaign"
                }
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("work FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Resolves `--grid` presets and `--spec` files into the campaign
/// queue, applying `--weight` overrides — shared by `repro coordinate`
/// and `repro serve`.
fn build_campaigns(
    grids: &[String],
    spec_files: &[PathBuf],
    weights: &[(String, u32)],
) -> Result<Vec<NamedCampaign>, String> {
    let mut campaigns: Vec<NamedCampaign> = Vec::with_capacity(grids.len() + spec_files.len());
    for grid in grids {
        let Some(spec) = named_campaign(grid) else {
            return Err(format!("unknown grid `{grid}`"));
        };
        if campaigns.iter().any(|c| &c.name == grid) {
            return Err(format!("grid `{grid}` queued twice"));
        }
        campaigns.push(NamedCampaign::new(grid.clone(), spec));
    }
    for path in spec_files {
        let spec_arg = crate::scenario_cli::SpecArgs {
            spec_file: Some(path.clone()),
            ..Default::default()
        };
        let campaign = spec_arg.build("spec")?;
        if campaigns.iter().any(|c| c.name == campaign.name) {
            return Err(format!("campaign `{}` queued twice", campaign.name));
        }
        campaigns.push(campaign);
    }
    for campaign in &mut campaigns {
        if let Some(&(_, w)) = weights.iter().find(|(name, _)| name == &campaign.name) {
            campaign.weight = w;
        }
    }
    for (name, _) in weights {
        if !campaigns.iter().any(|c| &c.name == name) {
            return Err(format!("--weight names unqueued grid `{name}`"));
        }
    }
    Ok(campaigns)
}

/// Parses a `--weight GRID=W` argument.
fn parse_weight(value: &str) -> Result<(String, u32), String> {
    let (name, weight) = value
        .split_once('=')
        .ok_or_else(|| format!("bad weight `{value}` (expected GRID=W)"))?;
    let weight: u32 = weight
        .parse()
        .map_err(|_| format!("bad weight `{value}` (W must be a positive integer)"))?;
    if name.is_empty() || weight == 0 {
        return Err(format!(
            "bad weight `{value}` (grid name and a weight >= 1 required)"
        ));
    }
    Ok((name.to_string(), weight))
}

/// `repro submit ...`: enqueue a scenario — catalog preset, spec file,
/// or inline axis grammar — on a running coordinator.
pub fn submit_main(args: &[String]) -> ExitCode {
    let mut spec_args = crate::scenario_cli::SpecArgs::default();
    let mut to: Option<String> = None;
    let mut weight: Option<u32> = None;
    let mut queue_name: Option<String> = None;
    let mut retry = RetryPolicy::default();
    retry.seed ^= u64::from(std::process::id());

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut take = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--to" => match take("--to") {
                Ok(v) => to = Some(v),
                Err(e) => return usage_error(&e, &submit_usage()),
            },
            "--weight" => match take("--weight")
                .and_then(|v| v.parse::<u32>().map_err(|_| format!("bad weight `{v}`")))
            {
                Ok(v) if v >= 1 => weight = Some(v),
                Ok(_) => return usage_error("--weight must be >= 1", &submit_usage()),
                Err(e) => return usage_error(&e, &submit_usage()),
            },
            "--name" => match take("--name") {
                Ok(v) => queue_name = Some(v),
                Err(e) => return usage_error(&e, &submit_usage()),
            },
            "--retry" => match take("--retry").and_then(|v| {
                v.parse::<u32>()
                    .map_err(|_| format!("bad retry count `{v}`"))
            }) {
                Ok(v) => retry.max_retries = v,
                Err(e) => return usage_error(&e, &submit_usage()),
            },
            "--backoff" => match take("--backoff")
                .and_then(|v| v.parse::<u64>().map_err(|_| format!("bad backoff `{v}`")))
            {
                Ok(v) => retry.backoff = Duration::from_millis(v),
                Err(e) => return usage_error(&e, &submit_usage()),
            },
            "--help" | "-h" => {
                println!("{}", submit_usage());
                return ExitCode::SUCCESS;
            }
            other => match spec_args.take_arg(other, || take(other)) {
                Ok(true) => {}
                Ok(false) => {
                    return usage_error(&format!("unknown argument `{other}`"), &submit_usage())
                }
                Err(e) => return usage_error(&e, &submit_usage()),
            },
        }
    }
    let Some(to) = to else {
        return usage_error("--to is required", &submit_usage());
    };
    let mut campaign = match spec_args.build("submitted") {
        Ok(campaign) => campaign,
        Err(e) => return usage_error(&e, &submit_usage()),
    };
    if let Some(name) = queue_name {
        campaign.name = name;
    }
    if let Some(weight) = weight {
        campaign.weight = weight;
    }
    let name = campaign.name.clone();
    eprintln!(
        "submit: enqueueing {} (weight {}) on {to}...",
        crate::scenario_cli::describe_campaign(&campaign),
        campaign.weight
    );
    match submit_campaign_retrying(&to, &campaign, &retry) {
        Ok(id) => {
            println!("submitted campaign `{name}` as id {id}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("submit FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `repro serve ...`: a persistent coordinator. Unlike `coordinate`, it
/// never exits when the queue drains — it keeps serving workers and
/// accepting `repro submit` campaigns until killed. Merged results live
/// in the journals and (with `--store`) the content-addressed store;
/// progress is observable with `repro status`.
pub fn serve_main(args: &[String]) -> ExitCode {
    let mut grids: Vec<String> = Vec::new();
    let mut spec_files: Vec<PathBuf> = Vec::new();
    let mut bind: Option<String> = None;
    let mut journal: Option<PathBuf> = None;
    let mut store: Option<PathBuf> = None;
    let mut policy = PolicyKind::Fifo;
    let mut weights: Vec<(String, u32)> = Vec::new();

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut take = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--grid" => match take("--grid") {
                Ok(v) => grids.push(v),
                Err(e) => return usage_error(&e, &serve_usage()),
            },
            "--spec" => match take("--spec") {
                Ok(v) => spec_files.push(PathBuf::from(v)),
                Err(e) => return usage_error(&e, &serve_usage()),
            },
            "--bind" => match take("--bind") {
                Ok(v) => bind = Some(v),
                Err(e) => return usage_error(&e, &serve_usage()),
            },
            "--journal" => match take("--journal") {
                Ok(v) => journal = Some(PathBuf::from(v)),
                Err(e) => return usage_error(&e, &serve_usage()),
            },
            "--store" => match take("--store") {
                Ok(v) => store = Some(PathBuf::from(v)),
                Err(e) => return usage_error(&e, &serve_usage()),
            },
            "--fair" => policy = PolicyKind::WeightedRoundRobin,
            "--weight" => match take("--weight").and_then(|v| parse_weight(&v)) {
                Ok(pair) => weights.push(pair),
                Err(e) => return usage_error(&e, &serve_usage()),
            },
            "--help" | "-h" => {
                println!("{}", serve_usage());
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`"), &serve_usage()),
        }
    }
    let Some(bind) = bind else {
        return usage_error(
            "--bind is required (the service exists to be dialled)",
            &serve_usage(),
        );
    };
    let campaigns = match build_campaigns(&grids, &spec_files, &weights) {
        Ok(campaigns) => campaigns,
        Err(e) => return usage_error(&e, &serve_usage()),
    };

    let mut config = CoordinatorConfig::with_campaigns(bind.clone(), campaigns);
    config.journal = journal;
    config.store = store.clone();
    config.policy = policy;
    config.persistent = true;
    let result = Coordinator::bind(config).and_then(|coordinator| {
        eprintln!(
            "serve: listening on {}{} — `repro submit --to` enqueues, `repro status --to` \
             polls, `repro work --connect` computes; runs until killed",
            coordinator
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or(bind),
            match &store {
                Some(p) => format!(", store {}", p.display()),
                None => String::new(),
            }
        );
        coordinator.serve()
    });
    // A persistent coordinator only returns on a service-level failure
    // (bind error, unusable journal/store) — drained queues keep it
    // alive, so Ok is unreachable short of an internal invariant break.
    match result {
        Ok(_) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `repro status ...`: one progress snapshot from a running
/// coordinator, per campaign in queue order.
pub fn status_main(args: &[String]) -> ExitCode {
    let mut to: Option<String> = None;
    let mut filter: Option<String> = None;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut take = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--to" => match take("--to") {
                Ok(v) => to = Some(v),
                Err(e) => return usage_error(&e, status_usage()),
            },
            "--campaign" => match take("--campaign") {
                Ok(v) => filter = Some(v),
                Err(e) => return usage_error(&e, status_usage()),
            },
            "--help" | "-h" => {
                println!("{}", status_usage());
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`"), status_usage()),
        }
    }
    let Some(to) = to else {
        return usage_error("--to is required", status_usage());
    };

    let campaigns = match query_status(&to) {
        Ok(campaigns) => campaigns,
        Err(e) => {
            eprintln!("status FAILED: {e}");
            return ExitCode::FAILURE;
        }
    };
    let shown: Vec<&CampaignProgress> = match &filter {
        Some(name) => {
            let picked: Vec<&CampaignProgress> =
                campaigns.iter().filter(|c| &c.name == name).collect();
            if picked.is_empty() {
                eprintln!("status FAILED: coordinator at {to} has no campaign `{name}`");
                return ExitCode::FAILURE;
            }
            picked
        }
        None => campaigns.iter().collect(),
    };
    if shown.is_empty() {
        println!("_coordinator at {to}: no campaigns queued yet_");
        return ExitCode::SUCCESS;
    }

    let mut table = Table::new(
        format!("Coordinator status — {to}"),
        &[
            "campaign",
            "queued",
            "running",
            "done",
            "resumed",
            "store hits",
            "detected",
            "missed",
            "total",
            "state",
        ],
    );
    let mut any_failed = false;
    for c in &shown {
        any_failed |= c.failed;
        table.push_row(&[
            c.name.clone(),
            c.queued.to_string(),
            c.running.to_string(),
            c.done.to_string(),
            c.resumed.to_string(),
            c.store_hits.to_string(),
            c.detected.to_string(),
            c.missed.to_string(),
            c.total.to_string(),
            if c.failed {
                "FAILED".into()
            } else if c.done == c.total {
                "done".to_string()
            } else {
                "active".to_string()
            },
        ]);
    }
    println!("{}", table.to_markdown());
    // One grep-friendly line per campaign for scripts and CI.
    for c in &shown {
        // The detection counters ride *after* "store hits" so existing
        // substring greps on the prefix keep matching.
        println!(
            "_campaign `{}`: {}/{} done, {} queued, {} running, {} resumed, {} store hits, \
             {} detected, {} missed{}_",
            c.name,
            c.done,
            c.total,
            c.queued,
            c.running,
            c.resumed,
            c.store_hits,
            c.detected,
            c.missed,
            if c.failed { ", FAILED" } else { "" }
        );
    }
    if any_failed {
        eprintln!("status: at least one campaign has failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `repro store <stat|compact> ...`: offline maintenance of a
/// content-addressed result store — no coordinator involved.
pub fn store_main(args: &[String]) -> ExitCode {
    let Some(verb) = args.first().map(String::as_str) else {
        return usage_error("a subcommand (stat or compact) is required", store_usage());
    };
    if matches!(verb, "--help" | "-h") {
        println!("{}", store_usage());
        return ExitCode::SUCCESS;
    }
    if !matches!(verb, "stat" | "compact") {
        return usage_error(&format!("unknown store subcommand `{verb}`"), store_usage());
    }

    let mut path: Option<PathBuf> = None;
    let mut policy = EvictionPolicy::default();
    let mut iter = args[1..].iter();
    while let Some(arg) = iter.next() {
        let mut take = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--store" => match take("--store") {
                Ok(v) => path = Some(PathBuf::from(v)),
                Err(e) => return usage_error(&e, store_usage()),
            },
            "--max-records" => match take("--max-records").and_then(|v| {
                v.parse::<usize>()
                    .map_err(|_| format!("bad record cap `{v}`"))
            }) {
                Ok(v) => policy.max_records = Some(v),
                Err(e) => return usage_error(&e, store_usage()),
            },
            "--max-age-days" => match take("--max-age-days")
                .and_then(|v| v.parse::<u64>().map_err(|_| format!("bad age cap `{v}`")))
            {
                Ok(v) => policy.max_age_secs = Some(v * 86_400),
                Err(e) => return usage_error(&e, store_usage()),
            },
            "--help" | "-h" => {
                println!("{}", store_usage());
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`"), store_usage()),
        }
    }
    let Some(path) = path else {
        return usage_error("--store is required", store_usage());
    };

    let mut store = match Store::open(&path) {
        Ok(store) => store,
        Err(e) => {
            eprintln!("store FAILED: {e}");
            return ExitCode::FAILURE;
        }
    };
    if verb == "stat" {
        let stats = match store.stat() {
            Ok(stats) => stats,
            Err(e) => {
                eprintln!("store stat FAILED: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "store {}: {} cell(s), {} baseline(s), {} bytes on disk",
            path.display(),
            stats.cells,
            stats.baselines,
            stats.file_bytes
        );
        match (stats.oldest_stamp, stats.newest_stamp) {
            (Some(oldest), Some(newest)) => {
                println!("stamps: oldest {oldest}, newest {newest} (unix seconds)");
            }
            _ => println!("store is empty"),
        }
        return ExitCode::SUCCESS;
    }
    let now = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    match store.compact(&policy, now) {
        Ok(report) => {
            println!(
                "store {}: kept {} record(s), evicted {}, {} -> {} bytes",
                path.display(),
                report.kept,
                report.evicted,
                report.bytes_before,
                report.bytes_after
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("store compact FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage_error(message: &str, usage: &str) -> ExitCode {
    eprintln!("{message}\n{usage}");
    ExitCode::FAILURE
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurofi_core::{AttackKind, SweepCell};

    fn result(baseline: f64, accuracies: &[f64]) -> SweepResult {
        SweepResult {
            kind: AttackKind::InhibitoryThreshold,
            baseline_accuracy: baseline,
            cells: accuracies
                .iter()
                .enumerate()
                .map(|(i, &accuracy)| SweepCell {
                    rel_change: -0.2,
                    fraction: i as f64 * 0.5,
                    accuracy,
                    relative_change_percent: (accuracy - baseline) / baseline * 100.0,
                })
                .collect(),
            axes: Vec::new(),
        }
    }

    #[test]
    fn diff_accepts_bit_identical_sweeps() {
        let a = result(0.55, &[0.5, 0.3]);
        let b = result(0.55, &[0.5, 0.3]);
        assert!(diff_sweeps(&a, &b).is_ok());
    }

    #[test]
    fn diff_catches_every_divergence_axis() {
        let golden = result(0.55, &[0.5, 0.3]);
        // One-ULP baseline drift.
        let mut bad = result(0.55, &[0.5, 0.3]);
        bad.baseline_accuracy = f64::from_bits(bad.baseline_accuracy.to_bits() + 1);
        assert!(diff_sweeps(&golden, &bad).unwrap_err().contains("baseline"));
        // Missing cell.
        let bad = result(0.55, &[0.5]);
        assert!(diff_sweeps(&golden, &bad).unwrap_err().contains("count"));
        // One-ULP cell drift.
        let mut bad = result(0.55, &[0.5, 0.3]);
        bad.cells[1].accuracy = f64::from_bits(bad.cells[1].accuracy.to_bits() + 1);
        assert!(diff_sweeps(&golden, &bad).unwrap_err().contains("cell 1"));
        // Swapped slots (same multiset of values, wrong order).
        let bad = result(0.55, &[0.3, 0.5]);
        assert!(diff_sweeps(&golden, &bad).is_err());
    }

    #[test]
    fn sweep_table_has_one_row_per_cell() {
        let table = sweep_table("tiny", &result(0.55, &[0.5, 0.3, 0.1]), None);
        assert_eq!(table.len(), 3);
        assert!(table.to_markdown().contains("baseline accuracy"));
        assert!(table.to_markdown().contains("`tiny`"));
    }

    #[test]
    fn sweep_table_reports_countermeasures_for_armed_specs() {
        use neurofi_core::scenario::{Axis, DefenseSel, DetectorSel};
        use neurofi_core::{PowerTransferTable, ScenarioSpec};
        use neurofi_dist::SetupSpec;

        let mut scenario =
            ScenarioSpec::vdd(&[0.8, 1.0], &PowerTransferTable::paper_nominal(), &[42]);
        scenario.axes.push(Axis::defenses(vec![
            DefenseSel::None,
            DefenseSel::BandgapThreshold,
        ]));
        scenario
            .axes
            .push(Axis::detectors(vec![DetectorSel::DummyNeuron]));
        let spec = CampaignSpec {
            setup: SetupSpec::bench(42),
            scenario,
        };
        spec.validate().unwrap();
        let plan = spec.plan();
        let sweep = SweepResult {
            kind: AttackKind::GlobalVdd,
            baseline_accuracy: 0.55,
            cells: plan
                .jobs
                .iter()
                .map(|_| SweepCell {
                    rel_change: 0.8,
                    fraction: 1.0,
                    accuracy: 0.4,
                    relative_change_percent: -27.0,
                })
                .collect(),
            axes: plan.axes.clone(),
        };
        let rendered = sweep_table("shield", &sweep, Some(&spec)).to_markdown();
        assert!(rendered.contains("overhead"), "{rendered}");
        assert!(rendered.contains("detection"), "{rendered}");
        assert!(rendered.contains("+65% area"), "{rendered}");
        assert!(rendered.contains("hit"), "{rendered}");
        assert!(rendered.contains("quiet"), "{rendered}");
        // The same result without the spec falls back to the plain
        // axis columns.
        let plain = sweep_table("shield", &sweep, None).to_markdown();
        assert!(!plain.contains("overhead"), "{plain}");
    }
}
