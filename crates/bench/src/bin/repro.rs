//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro all [--quick] [--out DIR]
//! repro fig8b fig9a [--quick] [--out DIR]
//! repro sweep --attack threshold-inhibitory --axis "rel_change=-20%,20%" ...
//! repro bench [--out DIR]
//! repro coordinate [--grid NAME]... [--spec FILE]... [--workers N] [--fair] [--store PATH]
//! repro work --connect HOST:PORT [--threads N] [--retry N] [--backoff MS]
//! repro submit (--grid NAME | --spec FILE | --attack ... --axis ...) --to HOST:PORT
//! repro serve --bind ADDR [--store PATH] [--journal PATH]
//! repro status --to HOST:PORT [--campaign NAME]
//! repro store <stat|compact> --store PATH [--max-records N] [--max-age-days D]
//! repro list
//! ```
//!
//! Each experiment prints a markdown table (measured values next to the
//! paper's reported numbers) and, with `--out`, writes a CSV per
//! experiment. `sweep` runs an arbitrary declarative N-axis scenario
//! (attack family × typed axes — see `repro sweep --help` for the
//! grammar) locally through the same engine. `bench` runs the
//! performance suite (parallel sweep engine at 1/2/4/8 threads plus the
//! SNN and SPICE kernels) and writes the machine-readable
//! `BENCH_sweep.json`. `coordinate`/`work` shard sweep campaigns across
//! workers over TCP with checkpoint/resume (see `neurofi-dist`); repeat
//! `--grid`/`--spec` to queue several campaigns on one worker fleet,
//! `submit` enqueues another scenario — catalog preset or arbitrary
//! custom grid — on a *running* coordinator, and `--fair` interleaves
//! campaigns by weighted round-robin instead of FIFO. Workers reconnect
//! through link losses with capped jittered backoff (`--retry`/
//! `--backoff`), and submission is idempotent, so retries are safe on
//! both sides. Every merged result is bit-identical to a serial run
//! regardless of scheduling or faults. `serve` runs the coordinator as
//! a long-lived service that outlives queue drain, `status` polls its
//! per-campaign progress, and `--store` plugs in the content-addressed
//! result store so overlapping campaigns dedup to store hits instead of
//! recomputing (`store stat`/`store compact` maintain it offline).

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use neurofi_bench::{run_experiment, ExperimentId, Fidelity};

fn usage() -> &'static str {
    "usage: repro <all|list|bench|sweep|coordinate|work|submit|serve|status|store|EXPERIMENT...> [--quick] [--out DIR]\n\
     experiments: fig3 fig4 fig5b fig5c fig6a fig6b fig6c fig7b fig8a fig8b \
     fig8c fig9a fig9b fig9c fig10c defenses overheads ext-glitch ext-weightfaults\n\
     sweep: run a declarative N-axis scenario locally (see `repro sweep --help`)\n\
     bench: performance suite (sweep engine + kernels) -> BENCH_sweep.json\n\
     coordinate/work/submit: distributed sweep campaigns with live \
     submission of arbitrary scenarios (see `repro coordinate --help`, \
     `repro submit --help`)\n\
     serve/status: always-on coordinator service + progress queries \
     (see `repro serve --help`)\n\
     store: content-addressed result store maintenance \
     (see `repro store --help`)"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }

    // The scenario and distributed subcommands own their argument
    // lists entirely.
    match args[0].as_str() {
        "sweep" => return neurofi_bench::scenario_cli::sweep_main(&args[1..]),
        "coordinate" => return neurofi_bench::orchestrate::coordinate_main(&args[1..]),
        "work" => return neurofi_bench::orchestrate::work_main(&args[1..]),
        "submit" => return neurofi_bench::orchestrate::submit_main(&args[1..]),
        "serve" => return neurofi_bench::orchestrate::serve_main(&args[1..]),
        "status" => return neurofi_bench::orchestrate::status_main(&args[1..]),
        "store" => return neurofi_bench::orchestrate::store_main(&args[1..]),
        _ => {}
    }

    let mut fidelity = Fidelity::Full;
    let mut out_dir: Option<PathBuf> = None;
    let mut selected: Vec<ExperimentId> = Vec::new();
    let mut run_bench = false;
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => fidelity = Fidelity::Quick,
            "--full" => fidelity = Fidelity::Full,
            "bench" => run_bench = true,
            "--out" => match iter.next() {
                Some(dir) => out_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--out needs a directory\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "all" => selected = ExperimentId::all(),
            "list" => {
                for id in ExperimentId::all() {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => match ExperimentId::parse(other) {
                Some(id) => selected.push(id),
                None => {
                    eprintln!("unknown experiment '{other}'\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
        }
    }
    if selected.is_empty() && !run_bench {
        eprintln!("no experiments selected\n{}", usage());
        return ExitCode::FAILURE;
    }

    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create output directory {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }

    if run_bench {
        let started = Instant::now();
        let report = neurofi_bench::run_perf_suite();
        let path = out_dir
            .clone()
            .unwrap_or_else(|| PathBuf::from("."))
            .join("BENCH_sweep.json");
        let json = report.to_json();
        println!("{json}");
        if let Err(e) = std::fs::write(&path, format!("{json}\n")) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "_bench completed in {:.1?}; wrote {}_\n",
            started.elapsed(),
            path.display()
        );
        if selected.is_empty() {
            return ExitCode::SUCCESS;
        }
    }

    println!(
        "# neurofi reproduction — fidelity: {}\n",
        match fidelity {
            Fidelity::Quick => "quick (reduced grids; use --full for paper grids)",
            Fidelity::Full => "full (paper grids)",
        }
    );

    let mut failures = 0usize;
    for id in selected {
        let started = Instant::now();
        match run_experiment(id, fidelity) {
            Ok(table) => {
                println!("{}", table.to_markdown());
                println!("_{} completed in {:.1?}_\n", id, started.elapsed());
                if let Some(dir) = &out_dir {
                    let path = dir.join(format!("{id}.csv"));
                    if let Err(e) = std::fs::write(&path, table.to_csv()) {
                        eprintln!("cannot write {}: {e}", path.display());
                        failures += 1;
                    }
                }
            }
            Err(e) => {
                eprintln!("{id} FAILED: {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} experiment(s) failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
