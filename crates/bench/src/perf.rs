//! Machine-readable performance measurements of the sweep engine and the
//! two hot kernels (behavioural SNN step, SPICE transient).
//!
//! The `repro bench` subcommand drives [`run_perf_suite`] and dumps the
//! report as `BENCH_sweep.json`, so speedups can be tracked across
//! commits without parsing human-oriented criterion output. The sweep
//! measurement runs the paper's Fig. 8 grid *shape* (4 threshold changes
//! × 6 fractions) at a reduced training scale so the whole suite finishes
//! in tens of seconds; the parallel speedup is a property of the engine,
//! not of the per-cell cost.

use std::time::Instant;

use neurofi_analog::{Engine, LayerNetlist};
use neurofi_core::attacks::ExperimentSetup;
use neurofi_core::scenario::ScenarioSpec;
use neurofi_core::sweep::{threshold_sweep_cached, BaselineCache, Parallelism, SweepConfig};
use neurofi_core::TargetLayer;
use neurofi_data::SynthDigits;
use neurofi_dist::{named_campaign, run_local_cluster, LocalClusterConfig, NamedCampaign};
use neurofi_snn::diehl_cook::{DiehlCook2015, DiehlCookConfig};
use neurofi_snn::PoissonEncoder;
use neurofi_spice::{Netlist, TranSpec, Waveform};

/// Wall-clock timing of one sweep configuration.
#[derive(Debug, Clone, Copy)]
pub struct SweepTiming {
    /// Worker threads used (0 encodes the dedicated serial path).
    pub threads: usize,
    /// Wall-clock seconds for the full grid.
    pub seconds: f64,
    /// Serial wall-clock divided by this configuration's wall-clock.
    pub speedup_vs_serial: f64,
}

/// The resolved scenario a sweep measurement ran: the attack family
/// and every axis with its values, so benchmark rows are attributable
/// to the exact grid that produced them (schema v3).
#[derive(Debug, Clone)]
pub struct ScenarioMeta {
    /// Attack-family name (e.g. `threshold-inhibitory`).
    pub attack: String,
    /// `(axis name, value tokens)` pairs, in sweep order. Tokens are
    /// the grammar's lossless labels, already JSON-ready: reals and
    /// seeds as bare literals, layers as quoted strings.
    pub axes: Vec<(String, Vec<String>)>,
    /// Seeds each cell averaged over.
    pub seeds: Vec<u64>,
}

impl ScenarioMeta {
    /// Captures the resolved axes of a scenario spec, losslessly: real
    /// values in shortest round-trippable form, seeds as full 64-bit
    /// integers, layers by name.
    pub fn capture(spec: &ScenarioSpec) -> ScenarioMeta {
        use neurofi_core::scenario::AxisValues;
        ScenarioMeta {
            attack: spec.family.name().to_string(),
            axes: spec
                .axes
                .iter()
                .map(|axis| {
                    let quoted = matches!(
                        axis.values,
                        AxisValues::Layer(_) | AxisValues::Defense(_) | AxisValues::Detector(_)
                    );
                    let values = (0..axis.values.len())
                        .map(|i| {
                            let label = axis.value_label(i).expect("index is in range");
                            if quoted {
                                format!("\"{label}\"")
                            } else {
                                label
                            }
                        })
                        .collect();
                    (axis.kind.name().to_string(), values)
                })
                .collect(),
            seeds: spec.baseline_seeds().to_vec(),
        }
    }

    fn to_json(&self, out: &mut String) {
        out.push_str("  \"sweep_scenario\": {\n");
        out.push_str(&format!("    \"attack\": \"{}\",\n", self.attack));
        out.push_str("    \"axes\": [\n");
        for (i, (name, values)) in self.axes.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"name\": \"{name}\", \"values\": [{}]}}{}\n",
                values.join(", "),
                if i + 1 < self.axes.len() { "," } else { "" }
            ));
        }
        out.push_str("    ],\n");
        let seeds: Vec<String> = self.seeds.iter().map(|s| s.to_string()).collect();
        out.push_str(&format!("    \"seeds\": [{}]\n", seeds.join(", ")));
        out.push_str("  },\n");
    }
}

/// Content-addressed result-store dedup counters (schema v4): the
/// `tiny` catalog grid is run twice against a fresh store — a cold pass
/// (every cell a store miss, computed by workers) and a warm pass under
/// a different campaign name (every cell a store hit, zero cells
/// executed).
#[derive(Debug, Clone, Copy)]
pub struct StoreDedup {
    /// Warm-pass cells satisfied from the store without execution.
    pub store_hits: u64,
    /// Cold-pass cells that missed the store and were computed.
    pub store_misses: u64,
    /// Warm-pass hits over warm-pass total — 1.0 means the second
    /// submission of an identical spec executed nothing.
    pub dedup_ratio: f64,
    /// Wall-clock seconds of the cold (computing) pass.
    pub cold_seconds: f64,
    /// Wall-clock seconds of the warm (all-hits) pass.
    pub warm_seconds: f64,
}

/// Dense-vs-sparse engine timing on the whole-layer netlist (schema
/// v6): one fixed-step transient of a 200-neuron Axon Hillock layer per
/// engine, plus the sparse engine's structural counters. The dense run
/// refactors an `unknowns`² matrix every Newton iteration; the sparse
/// run refactors only the `lu_nnz` stored entries, which is where the
/// whole-layer workload's speedup comes from.
#[derive(Debug, Clone, Copy)]
pub struct SolverBench {
    /// Neurons in the benchmarked layer.
    pub neurons: usize,
    /// MNA unknowns of the compiled layer circuit.
    pub unknowns: usize,
    /// Structural nonzeros in the frozen sparse pattern.
    pub nnz: usize,
    /// Nonzeros in the L+U factors (`lu_nnz - nnz` is the fill-in).
    pub lu_nnz: usize,
    /// Newton iterations across the sparse transient.
    pub newton_iterations: u64,
    /// Step attempts rejected during the sparse transient.
    pub rejected_steps: u64,
    /// Wall-clock seconds of the dense-engine transient.
    pub dense_seconds: f64,
    /// Wall-clock seconds of the sparse-engine transient.
    pub sparse_seconds: f64,
    /// `dense_seconds / sparse_seconds`.
    pub speedup: f64,
}

/// The full performance report emitted as `BENCH_sweep.json`.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Report schema version (bumped when keys change meaning).
    pub schema_version: u32,
    /// Hardware threads the machine reports.
    pub available_parallelism: usize,
    /// The sweep-pool width this runner is configured for: the
    /// `NEUROFI_BENCH_WORKERS` override when set (CI runners pinned
    /// below their hardware width report truthfully), otherwise the
    /// `Auto` resolution. Perf numbers from heterogeneous runners are
    /// only comparable when the configured width travels with them.
    pub worker_count: usize,
    /// `git rev-parse --short=12 HEAD` of the measured tree, when the
    /// binary runs inside a git checkout (`None` → JSON `null`).
    pub git_rev: Option<String>,
    /// Number of cells in the measured grid.
    pub grid_cells: usize,
    /// The resolved scenario (attack family, axes, seeds) the sweep
    /// timings measured.
    pub sweep_scenario: ScenarioMeta,
    /// Serial-path wall-clock seconds for the grid.
    pub sweep_serial_seconds: f64,
    /// Parallel-path timings at 1, 2, 4, 8 threads.
    pub sweep_parallel: Vec<SweepTiming>,
    /// Mean nanoseconds per Diehl&Cook network step (784→100→100).
    pub diehl_cook_step_ns: f64,
    /// Mean milliseconds per 100 ms training sample presentation.
    pub run_sample_train_ms: f64,
    /// Mean milliseconds per 1000-step RC transient analysis.
    pub spice_tran_ms: f64,
    /// Result-store hit/miss counters and dedup ratio from the
    /// cold+warm store pass.
    pub result_store: StoreDedup,
    /// Dense-vs-sparse engine timing on the 200-neuron layer netlist.
    pub solver: SolverBench,
}

impl PerfReport {
    /// Serialises the report as a stable, dependency-free JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema_version\": {},\n", self.schema_version));
        out.push_str(&format!(
            "  \"available_parallelism\": {},\n",
            self.available_parallelism
        ));
        out.push_str(&format!("  \"worker_count\": {},\n", self.worker_count));
        out.push_str(&format!(
            "  \"git_rev\": {},\n",
            match &self.git_rev {
                // The rev is a hex string from `git rev-parse`; no JSON
                // escaping can be needed.
                Some(rev) => format!("\"{rev}\""),
                None => "null".into(),
            }
        ));
        out.push_str(&format!("  \"grid_cells\": {},\n", self.grid_cells));
        self.sweep_scenario.to_json(&mut out);
        out.push_str(&format!(
            "  \"sweep_serial_seconds\": {:.6},\n",
            self.sweep_serial_seconds
        ));
        out.push_str("  \"sweep_parallel\": [\n");
        for (i, t) in self.sweep_parallel.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"threads\": {}, \"seconds\": {:.6}, \"speedup_vs_serial\": {:.3}}}{}\n",
                t.threads,
                t.seconds,
                t.speedup_vs_serial,
                if i + 1 < self.sweep_parallel.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"diehl_cook_step_ns\": {:.1},\n",
            self.diehl_cook_step_ns
        ));
        out.push_str(&format!(
            "  \"run_sample_train_ms\": {:.3},\n",
            self.run_sample_train_ms
        ));
        out.push_str(&format!(
            "  \"spice_tran_ms\": {:.3},\n",
            self.spice_tran_ms
        ));
        out.push_str("  \"result_store\": {\n");
        out.push_str(&format!(
            "    \"store_hits\": {},\n",
            self.result_store.store_hits
        ));
        out.push_str(&format!(
            "    \"store_misses\": {},\n",
            self.result_store.store_misses
        ));
        out.push_str(&format!(
            "    \"dedup_ratio\": {:.3},\n",
            self.result_store.dedup_ratio
        ));
        out.push_str(&format!(
            "    \"cold_seconds\": {:.6},\n",
            self.result_store.cold_seconds
        ));
        out.push_str(&format!(
            "    \"warm_seconds\": {:.6}\n",
            self.result_store.warm_seconds
        ));
        out.push_str("  },\n");
        out.push_str("  \"solver\": {\n");
        out.push_str(&format!("    \"neurons\": {},\n", self.solver.neurons));
        out.push_str(&format!("    \"unknowns\": {},\n", self.solver.unknowns));
        out.push_str(&format!("    \"nnz\": {},\n", self.solver.nnz));
        out.push_str(&format!("    \"lu_nnz\": {},\n", self.solver.lu_nnz));
        out.push_str(&format!(
            "    \"newton_iterations\": {},\n",
            self.solver.newton_iterations
        ));
        out.push_str(&format!(
            "    \"rejected_steps\": {},\n",
            self.solver.rejected_steps
        ));
        out.push_str(&format!(
            "    \"dense_seconds\": {:.6},\n",
            self.solver.dense_seconds
        ));
        out.push_str(&format!(
            "    \"sparse_seconds\": {:.6},\n",
            self.solver.sparse_seconds
        ));
        out.push_str(&format!("    \"speedup\": {:.3}\n", self.solver.speedup));
        out.push_str("  }\n");
        out.push('}');
        out
    }
}

/// The current [`PerfReport`] schema version.
///
/// v3 added `sweep_scenario` — the resolved attack family, axes, and
/// seeds of the measured grid. v4 added `result_store` — the
/// content-addressed store's hit/miss counters and dedup ratio from a
/// cold+warm pass of the `tiny` grid. v5: `sweep_scenario` axes can now
/// carry the §V countermeasure grid (`defense` / `detector` values,
/// quoted like layer names). v6 added `solver` — dense-vs-sparse engine
/// timing and structural counters (nnz, fill-in, Newton iterations,
/// rejected steps) from a 200-neuron layer-netlist transient; the
/// `sweep_scenario` axes can also carry `neurons` values.
pub const PERF_SCHEMA_VERSION: u32 = 6;

/// The sweep-pool width this runner is configured for:
/// `NEUROFI_BENCH_WORKERS` when set to a positive integer, otherwise
/// what [`Parallelism::Auto`] resolves to.
pub fn configured_worker_count() -> usize {
    std::env::var("NEUROFI_BENCH_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| Parallelism::Auto.worker_count())
}

/// The short git revision of the working tree, if this process runs in
/// a git checkout with `git` on the PATH. Attribution metadata only —
/// failures degrade to `None`, never to an error.
pub fn current_git_rev() -> Option<String> {
    let output = std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()?;
    if !output.status.success() {
        return None;
    }
    let rev = String::from_utf8(output.stdout).ok()?;
    let rev = rev.trim();
    (!rev.is_empty() && rev.chars().all(|c| c.is_ascii_hexdigit())).then(|| rev.to_string())
}

/// The reduced-scale setup used for sweep timing: the paper grid's shape
/// with abbreviated training, so relative timings are meaningful while
/// the suite stays fast.
pub fn bench_setup() -> ExperimentSetup {
    let mut setup = ExperimentSetup::quick(42);
    setup.n_train = 40;
    setup.n_test = 20;
    setup.network.sample_time_ms = 40.0;
    setup.train_options.assignment_window = None;
    setup
}

/// The paper-shaped grid (4 rel-changes × 6 fractions, 1 seed) used for
/// sweep timing.
pub fn bench_grid() -> SweepConfig {
    SweepConfig {
        rel_changes: SweepConfig::paper_grid().rel_changes,
        fractions: SweepConfig::paper_grid().fractions,
        seeds: vec![42],
    }
}

fn time_sweep(setup: &ExperimentSetup, config: &SweepConfig, parallelism: Parallelism) -> f64 {
    let setup = setup.clone().with_parallelism(parallelism);
    let start = Instant::now();
    // A fresh cache per measurement: the timing covers baselines plus
    // cells, exactly as it always has.
    let result = threshold_sweep_cached(
        &BaselineCache::new(&setup),
        Some(TargetLayer::Inhibitory),
        config,
    )
    .expect("bench sweep cannot fail");
    assert_eq!(
        result.cells.len(),
        config.rel_changes.len() * config.fractions.len()
    );
    start.elapsed().as_secs_f64()
}

fn time_diehl_cook_step_ns() -> f64 {
    let image = SynthDigits::default().generate(1, 3);
    let mut net = DiehlCook2015::new(DiehlCookConfig::default(), 7);
    let mut encoder = PoissonEncoder::new(128.0, 1.0, 1);
    let mut buffer = vec![0.0f32; 784];
    // Warm up trained-ish state so sparsity is realistic.
    for _ in 0..200 {
        encoder.encode_step_into(image.image(0), &mut buffer);
        net.step(&buffer);
    }
    let iters = 3000u32;
    let start = Instant::now();
    for _ in 0..iters {
        encoder.encode_step_into(image.image(0), &mut buffer);
        net.step(&buffer);
    }
    start.elapsed().as_nanos() as f64 / f64::from(iters)
}

fn time_run_sample_train_ms() -> f64 {
    let image = SynthDigits::default().generate(1, 3);
    let config = DiehlCookConfig {
        sample_time_ms: 100.0,
        ..Default::default()
    };
    let mut net = DiehlCook2015::new(config, 7);
    net.run_sample(image.image(0), true); // warm-up
    let iters = 20u32;
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(net.run_sample(image.image(0), true));
    }
    start.elapsed().as_secs_f64() * 1.0e3 / f64::from(iters)
}

fn time_spice_tran_ms() -> f64 {
    let mut net = Netlist::new();
    let vin = net.node("in");
    let out = net.node("out");
    net.vsource("V1", vin, Netlist::GROUND, Waveform::Dc(1.0))
        .unwrap();
    net.resistor("R1", vin, out, 1.0e3).unwrap();
    net.capacitor("C1", out, Netlist::GROUND, 1.0e-9).unwrap();
    let circuit = net.compile().unwrap();
    let spec = TranSpec::new(1.0e-6, 1.0e-9).with_uic();
    circuit.tran(&spec).unwrap(); // warm-up
    let iters = 10u32;
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(circuit.tran(&spec).unwrap().len());
    }
    start.elapsed().as_secs_f64() * 1.0e3 / f64::from(iters)
}

fn measure_layer_solvers() -> SolverBench {
    let layer = LayerNetlist::paper_layer(200);
    let unknowns = layer.unknowns();
    // A short window is enough: the gap is per-Newton-iteration (dense
    // O(n³) refactor vs sparse O(lu_nnz)), so a handful of steps
    // already shows the asymptotics without a multi-second dense run.
    let (tstop, dt) = (200.0e-9, 20.0e-9);
    let time = |engine: Engine| {
        let start = Instant::now();
        let response = layer
            .clone()
            .simulate(engine, tstop, dt)
            .expect("bench layer cannot fail");
        (start.elapsed().as_secs_f64(), response)
    };
    let (dense_seconds, _) = time(Engine::Dense);
    let (sparse_seconds, sparse) = time(Engine::Sparse);
    let stats = sparse.stats;
    SolverBench {
        neurons: layer.neurons,
        unknowns,
        nnz: stats.solver.nnz,
        lu_nnz: stats.solver.lu_nnz,
        newton_iterations: stats.newton_iterations,
        rejected_steps: stats.rejected_steps,
        dense_seconds,
        sparse_seconds,
        speedup: dense_seconds / sparse_seconds.max(f64::MIN_POSITIVE),
    }
}

fn measure_store_dedup() -> StoreDedup {
    let store_path =
        std::env::temp_dir().join(format!("neurofi-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_file(&store_path);
    let run = |name: &str| {
        let spec = named_campaign("tiny").expect("tiny is a catalog grid");
        let campaign = NamedCampaign::new(name.to_string(), spec);
        let mut config = LocalClusterConfig::multi(vec![campaign], 2);
        config.store = Some(store_path.clone());
        let start = Instant::now();
        let report = run_local_cluster(&config).expect("bench dedup cluster cannot fail");
        (start.elapsed().as_secs_f64(), report)
    };
    let (cold_seconds, cold) = run("bench-cold");
    // A different campaign name proves the key is the cell content, not
    // the campaign: the warm pass must fill entirely from the store.
    let (warm_seconds, warm) = run("bench-warm");
    let _ = std::fs::remove_file(&store_path);
    let store_misses = cold.run.campaigns[0].computed_cells as u64;
    let store_hits = warm.run.campaigns[0].store_hit_cells as u64;
    let warm_total = warm.run.campaigns[0].total_cells as u64;
    StoreDedup {
        store_hits,
        store_misses,
        dedup_ratio: store_hits as f64 / warm_total.max(1) as f64,
        cold_seconds,
        warm_seconds,
    }
}

/// Runs the full measurement suite: the sweep grid serially and at 1, 2,
/// 4, 8 worker threads, plus the two kernel timings.
pub fn run_perf_suite() -> PerfReport {
    let setup = bench_setup();
    let config = bench_grid();
    eprintln!("bench: sweep grid, serial...");
    let sweep_serial_seconds = time_sweep(&setup, &config, Parallelism::Serial);
    let mut sweep_parallel = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        eprintln!("bench: sweep grid, {threads} thread(s)...");
        let seconds = time_sweep(&setup, &config, Parallelism::Threads(threads));
        sweep_parallel.push(SweepTiming {
            threads,
            seconds,
            speedup_vs_serial: sweep_serial_seconds / seconds,
        });
    }
    eprintln!("bench: diehl_cook_step kernel...");
    let diehl_cook_step_ns = time_diehl_cook_step_ns();
    eprintln!("bench: run_sample(100ms, train) kernel...");
    let run_sample_train_ms = time_run_sample_train_ms();
    eprintln!("bench: spice RC transient...");
    let spice_tran_ms = time_spice_tran_ms();
    eprintln!("bench: result-store dedup (cold + warm pass)...");
    let result_store = measure_store_dedup();
    eprintln!("bench: 200-neuron layer netlist, dense vs sparse...");
    let solver = measure_layer_solvers();
    PerfReport {
        schema_version: PERF_SCHEMA_VERSION,
        available_parallelism: Parallelism::Auto.worker_count(),
        worker_count: configured_worker_count(),
        git_rev: current_git_rev(),
        grid_cells: config.rel_changes.len() * config.fractions.len(),
        sweep_scenario: ScenarioMeta::capture(&ScenarioSpec::threshold(
            Some(TargetLayer::Inhibitory),
            &config,
        )),
        sweep_serial_seconds,
        sweep_parallel,
        diehl_cook_step_ns,
        run_sample_train_ms,
        spice_tran_ms,
        result_store,
        solver,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_scenario_meta() -> ScenarioMeta {
        ScenarioMeta {
            attack: "threshold-inhibitory".into(),
            axes: vec![
                ("rel_change".into(), vec!["-0.2".into(), "0.2".into()]),
                ("fraction".into(), vec!["0".into(), "1".into()]),
            ],
            seeds: vec![42],
        }
    }

    #[test]
    fn json_report_is_well_formed() {
        let report = PerfReport {
            schema_version: PERF_SCHEMA_VERSION,
            available_parallelism: 4,
            worker_count: 4,
            git_rev: Some("0123456789ab".into()),
            grid_cells: 24,
            sweep_scenario: test_scenario_meta(),
            sweep_serial_seconds: 10.0,
            sweep_parallel: vec![
                SweepTiming {
                    threads: 1,
                    seconds: 10.1,
                    speedup_vs_serial: 0.99,
                },
                SweepTiming {
                    threads: 4,
                    seconds: 2.6,
                    speedup_vs_serial: 3.85,
                },
            ],
            diehl_cook_step_ns: 12345.6,
            run_sample_train_ms: 1.5,
            spice_tran_ms: 2.25,
            result_store: StoreDedup {
                store_hits: 6,
                store_misses: 6,
                dedup_ratio: 1.0,
                cold_seconds: 4.2,
                warm_seconds: 0.01,
            },
            solver: SolverBench {
                neurons: 200,
                unknowns: 1004,
                nnz: 8000,
                lu_nnz: 9500,
                newton_iterations: 30,
                rejected_steps: 0,
                dense_seconds: 2.5,
                sparse_seconds: 0.01,
                speedup: 250.0,
            },
        };
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"schema_version\": 6"));
        assert!(json.contains("\"result_store\": {"));
        assert!(json.contains("\"store_hits\": 6"));
        assert!(json.contains("\"store_misses\": 6"));
        assert!(json.contains("\"dedup_ratio\": 1.000"));
        assert!(json.contains("\"worker_count\": 4"));
        assert!(json.contains("\"git_rev\": \"0123456789ab\""));
        // The grid is attributable: attack family, axes, seeds.
        assert!(json.contains("\"attack\": \"threshold-inhibitory\""));
        assert!(json.contains("{\"name\": \"rel_change\", \"values\": [-0.2, 0.2]},"));
        assert!(json.contains("{\"name\": \"fraction\", \"values\": [0, 1]}"));
        assert!(json.contains("\"seeds\": [42]"));
        assert!(json.contains("\"sweep_parallel\": ["));
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("\"speedup_vs_serial\": 3.850"));
        // The v6 solver row: structural counters and the engine race.
        assert!(json.contains("\"solver\": {"));
        assert!(json.contains("\"neurons\": 200"));
        assert!(json.contains("\"lu_nnz\": 9500"));
        assert!(json.contains("\"dense_seconds\": 2.500000"));
        assert!(json.contains("\"speedup\": 250.000"));
        // Exactly one trailing comma structure: parses as JSON by eye;
        // cheap structural checks below.
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn worker_count_env_override() {
        std::env::set_var("NEUROFI_BENCH_WORKERS", "3");
        assert_eq!(configured_worker_count(), 3);
        // Zero and garbage fall back to the Auto resolution.
        std::env::set_var("NEUROFI_BENCH_WORKERS", "0");
        assert!(configured_worker_count() >= 1);
        std::env::set_var("NEUROFI_BENCH_WORKERS", "lots");
        assert!(configured_worker_count() >= 1);
        std::env::remove_var("NEUROFI_BENCH_WORKERS");
        assert!(configured_worker_count() >= 1);
    }

    #[test]
    fn missing_git_rev_serialises_as_null() {
        let report = PerfReport {
            schema_version: PERF_SCHEMA_VERSION,
            available_parallelism: 1,
            worker_count: 1,
            git_rev: None,
            grid_cells: 4,
            sweep_scenario: test_scenario_meta(),
            sweep_serial_seconds: 1.0,
            sweep_parallel: vec![],
            diehl_cook_step_ns: 1.0,
            run_sample_train_ms: 1.0,
            spice_tran_ms: 1.0,
            result_store: StoreDedup {
                store_hits: 0,
                store_misses: 0,
                dedup_ratio: 0.0,
                cold_seconds: 0.0,
                warm_seconds: 0.0,
            },
            solver: SolverBench {
                neurons: 1,
                unknowns: 9,
                nnz: 30,
                lu_nnz: 30,
                newton_iterations: 1,
                rejected_steps: 0,
                dense_seconds: 0.0,
                sparse_seconds: 0.0,
                speedup: 0.0,
            },
        };
        assert!(report.to_json().contains("\"git_rev\": null"));
    }

    #[test]
    fn bench_grid_is_paper_shaped() {
        let g = bench_grid();
        assert_eq!(g.rel_changes.len() * g.fractions.len(), 24);
    }
}
