//! Network-level figure reproductions (Figs. 7b, 8a–c, 9a and the §V
//! defense-effectiveness comparison), built on `neurofi-core`.

use std::sync::OnceLock;

use neurofi_analog::{NeuronKind, PowerTransferTable};
use neurofi_core::attacks::ExperimentSetup;
use neurofi_core::defense::{
    defended_vdd_attack_with_baseline, undefended_vdd_attack_with_baseline, Defense,
};
use neurofi_core::sweep::{
    theta_sweep_cached, threshold_sweep_cached, vdd_sweep_cached, BaselineCache, SweepConfig,
    SweepResult,
};
use neurofi_core::{Error, Table, TargetLayer};

use super::Fidelity;

fn setup(fidelity: Fidelity) -> ExperimentSetup {
    match fidelity {
        Fidelity::Quick => ExperimentSetup::quick(42),
        Fidelity::Full => ExperimentSetup::paper(42),
    }
}

/// Per-fidelity baseline cache shared by every sweep experiment in this
/// process: `repro all` trains each per-seed fault-free baseline once
/// instead of once per figure.
fn shared_cache(fidelity: Fidelity) -> &'static BaselineCache {
    static QUICK: OnceLock<BaselineCache> = OnceLock::new();
    static FULL: OnceLock<BaselineCache> = OnceLock::new();
    match fidelity {
        Fidelity::Quick => QUICK.get_or_init(|| BaselineCache::new(&setup(Fidelity::Quick))),
        Fidelity::Full => FULL.get_or_init(|| BaselineCache::new(&setup(Fidelity::Full))),
    }
}

fn sweep_config(fidelity: Fidelity) -> SweepConfig {
    match fidelity {
        Fidelity::Quick => SweepConfig::quick_grid(),
        Fidelity::Full => SweepConfig::paper_grid(),
    }
}

fn push_sweep_rows(table: &mut Table, result: &SweepResult, paper_worst: &str) {
    for cell in &result.cells {
        table.push_row(&[
            format!("{:+.0}%", cell.rel_change * 100.0),
            format!("{:.0}%", cell.fraction * 100.0),
            format!("{:.1}%", cell.accuracy * 100.0),
            format!("{:+.2}%", cell.relative_change_percent),
        ]);
    }
    table.push_note(format!(
        "baseline accuracy {:.2}% (paper: 75.92%); paper worst case: {}",
        result.baseline_accuracy * 100.0,
        paper_worst
    ));
}

/// Fig. 7b: Attack 1 — accuracy versus theta (input-drive) change.
pub fn fig7b(fidelity: Fidelity) -> Result<Table, Error> {
    let thetas: Vec<f64> = match fidelity {
        Fidelity::Quick => vec![-0.20, 0.20],
        Fidelity::Full => vec![-0.20, -0.10, -0.05, 0.05, 0.10, 0.20],
    };
    let result = theta_sweep_cached(shared_cache(fidelity), &thetas, &[42])?;
    let mut table = Table::new(
        "Fig. 7b — Attack 1: current-driver (theta) corruption vs accuracy",
        &["theta change", "fraction", "accuracy", "vs baseline"],
    );
    push_sweep_rows(
        &mut table,
        &result,
        "−1.5% at −20% theta (accuracy stays within ±2%)",
    );
    Ok(table)
}

fn threshold_figure(
    fidelity: Fidelity,
    layer: Option<TargetLayer>,
    title: &str,
    paper_worst: &str,
) -> Result<Table, Error> {
    let config = sweep_config(fidelity);
    let result = threshold_sweep_cached(shared_cache(fidelity), layer, &config)?;
    let mut table = Table::new(
        title,
        &["threshold change", "fraction", "accuracy", "vs baseline"],
    );
    push_sweep_rows(&mut table, &result, paper_worst);
    Ok(table)
}

/// Fig. 8a: Attack 2 — excitatory-layer threshold × fraction surface.
pub fn fig8a(fidelity: Fidelity) -> Result<Table, Error> {
    threshold_figure(
        fidelity,
        Some(TargetLayer::Excitatory),
        "Fig. 8a — Attack 2: excitatory-layer threshold manipulation",
        "−7.32% at (−20%, 100%); ≈baseline for ≤90% affected",
    )
}

/// Fig. 8b: Attack 3 — inhibitory-layer threshold × fraction surface.
pub fn fig8b(fidelity: Fidelity) -> Result<Table, Error> {
    threshold_figure(
        fidelity,
        Some(TargetLayer::Inhibitory),
        "Fig. 8b — Attack 3: inhibitory-layer threshold manipulation",
        "−84.52% at (−20%, 100%); degrades in 3 of 4 threshold cases",
    )
}

/// Fig. 8c: Attack 4 — both layers at 100%.
pub fn fig8c(fidelity: Fidelity) -> Result<Table, Error> {
    threshold_figure(
        fidelity,
        None,
        "Fig. 8c — Attack 4: both-layer threshold manipulation (100%)",
        "−85.65% at −20% threshold",
    )
}

/// Fig. 9a: Attack 5 — global VDD sweep over the whole system.
pub fn fig9a(fidelity: Fidelity) -> Result<Table, Error> {
    let vdds = fidelity.vdd_grid();
    // Full fidelity uses the transfer table measured from our own
    // transistor-level characterisation; quick uses the paper's endpoints.
    let transfer = match fidelity {
        Fidelity::Quick => PowerTransferTable::paper_nominal(),
        Fidelity::Full => {
            neurofi_analog::characterize::measured_transfer_table(&[0.8, 0.9, 1.0, 1.1, 1.2])?
        }
    };
    let result = vdd_sweep_cached(shared_cache(fidelity), &vdds, &transfer, &[42])?;
    let mut table = Table::new(
        "Fig. 9a — Attack 5: global VDD manipulation (black box)",
        &["vdd (V)", "accuracy", "vs baseline", "paper"],
    );
    for cell in &result.cells {
        let paper = if (cell.rel_change - 0.8).abs() < 1e-9 {
            "−84.93% (worst case)"
        } else if (cell.rel_change - 1.0).abs() < 1e-9 {
            "baseline"
        } else {
            "—"
        };
        table.push_row(&[
            format!("{:.1}", cell.rel_change),
            format!("{:.1}%", cell.accuracy * 100.0),
            format!("{:+.2}%", cell.relative_change_percent),
            paper.into(),
        ]);
    }
    table.push_note(format!(
        "baseline accuracy {:.2}% (paper: 75.92%); {} transfer table",
        result.baseline_accuracy * 100.0,
        match fidelity {
            Fidelity::Quick => "paper-nominal",
            Fidelity::Full => "circuit-measured",
        }
    ));
    Ok(table)
}

/// §V defense effectiveness: Attack 5 at VDD = 0.8 V with and without
/// the paper's defenses.
pub fn defenses(fidelity: Fidelity) -> Result<Table, Error> {
    let setup = setup(fidelity);
    let transfer = PowerTransferTable::paper_nominal();
    let vdd = 0.8;
    // The fault-free baseline is shared with the sweep figures (seed 42):
    // one training run serves all four defense configurations too.
    let baseline = shared_cache(fidelity).get(setup.network_seed);

    let mut table = Table::new(
        "§V — defense effectiveness against Attack 5 (VDD = 0.8 V)",
        &["configuration", "accuracy", "vs baseline", "paper"],
    );

    let undefended = undefended_vdd_attack_with_baseline(
        &setup,
        vdd,
        &transfer,
        NeuronKind::VoltageAmplifierIf,
        baseline,
    )?;
    table.push_row(&[
        "undefended (I&F flavor)".into(),
        format!("{:.1}%", undefended.attacked_accuracy * 100.0),
        format!("{:+.2}%", undefended.relative_change_percent()),
        "−84.93%".into(),
    ]);

    let bandgap = defended_vdd_attack_with_baseline(
        &setup,
        vdd,
        &transfer,
        &[Defense::RobustDriver, Defense::BandgapThreshold],
        NeuronKind::VoltageAmplifierIf,
        baseline,
    )?;
    table.push_row(&[
        "robust driver + bandgap Vthr".into(),
        format!("{:.1}%", bandgap.attacked_accuracy * 100.0),
        format!("{:+.2}%", bandgap.relative_change_percent()),
        "≈0% degradation".into(),
    ]);

    let sized = defended_vdd_attack_with_baseline(
        &setup,
        vdd,
        &transfer,
        &[Defense::RobustDriver, Defense::sized_neuron_paper()],
        NeuronKind::AxonHillock,
        baseline,
    )?;
    table.push_row(&[
        "robust driver + sized AH (32:1)".into(),
        format!("{:.1}%", sized.attacked_accuracy * 100.0),
        format!("{:+.2}%", sized.relative_change_percent()),
        "−3.49% degradation".into(),
    ]);

    let comparator = defended_vdd_attack_with_baseline(
        &setup,
        vdd,
        &transfer,
        &[Defense::RobustDriver, Defense::ComparatorFirstStage],
        NeuronKind::AxonHillock,
        baseline,
    )?;
    table.push_row(&[
        "robust driver + comparator AH".into(),
        format!("{:.1}%", comparator.attacked_accuracy * 100.0),
        format!("{:+.2}%", comparator.relative_change_percent()),
        "≈0% degradation".into(),
    ]);

    table.push_note(format!(
        "baseline accuracy {:.2}%; defenses harden the VDD→parameter transfer table",
        undefended.baseline_accuracy * 100.0
    ));
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurofi_core::sweep::threshold_sweep_cached;

    // Full network sweeps are minutes-long; these tests exercise the
    // table plumbing at a deliberately tiny scale.

    fn tiny(fidelity: Fidelity) -> ExperimentSetup {
        let mut s = setup(fidelity);
        s.n_train = 80;
        s.n_test = 40;
        s.network.sample_time_ms = 60.0;
        s
    }

    #[test]
    fn sweep_tables_have_expected_shape() {
        let s = tiny(Fidelity::Quick);
        let result = threshold_sweep_cached(
            &BaselineCache::new(&s),
            Some(TargetLayer::Inhibitory),
            &SweepConfig {
                rel_changes: vec![-0.2],
                fractions: vec![0.0, 1.0],
                seeds: vec![1],
            },
        )
        .unwrap();
        let mut table = Table::new("t", &["a", "b", "c", "d"]);
        push_sweep_rows(&mut table, &result, "x");
        assert_eq!(table.len(), 2);
        assert!(table.to_markdown().contains("baseline accuracy"));
    }
}
