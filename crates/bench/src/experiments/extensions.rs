//! Beyond-paper extension experiments (§IV-E's "attacks not covered"),
//! run with the same protocol as the paper figures. These tables have no
//! paper reference column — they extend the study.

use neurofi_core::attacks::ExperimentSetup;
use neurofi_core::extensions::{glitch_duty_sweep, WeightFaultAttack, WeightFaultKind};
use neurofi_core::{Error, Table};

use super::Fidelity;

fn setup(fidelity: Fidelity) -> ExperimentSetup {
    match fidelity {
        Fidelity::Quick => ExperimentSetup::quick(42),
        Fidelity::Full => ExperimentSetup::paper(42),
    }
}

/// Extension: transient-glitch duty sweep — how long must a VDD = 0.8 V
/// glitch last (as a fraction of training) to do Attack-5 damage?
pub fn glitch(fidelity: Fidelity) -> Result<Table, Error> {
    let setup = setup(fidelity);
    let duties: Vec<f64> = match fidelity {
        Fidelity::Quick => vec![0.0, 0.5, 1.0],
        Fidelity::Full => vec![0.0, 0.1, 0.25, 0.5, 0.75, 1.0],
    };
    let rows = glitch_duty_sweep(&setup, 0.8, &duties)?;
    let baseline = rows[0].1;
    let mut table = Table::new(
        "Extension — transient VDD glitch (0.8 V) duty vs accuracy",
        &["glitch duty", "accuracy", "vs baseline"],
    );
    for (duty, accuracy) in rows {
        table.push_row(&[
            format!("{:.0}%", duty * 100.0),
            format!("{:.1}%", accuracy * 100.0),
            format!(
                "{:+.1}%",
                if baseline > 0.0 {
                    (accuracy - baseline) / baseline * 100.0
                } else {
                    0.0
                }
            ),
        ]);
    }
    table.push_note(
        "beyond the paper (§IV-E lists transient faults as future work): the glitch \
         is active from the start of training for the given fraction of samples, \
         then the supply recovers",
    );
    Ok(table)
}

/// Extension: post-training synaptic-weight faults (§IV-E(b)).
pub fn weight_faults(fidelity: Fidelity) -> Result<Table, Error> {
    let setup = setup(fidelity);
    let fractions: Vec<f64> = match fidelity {
        Fidelity::Quick => vec![0.05, 0.5],
        Fidelity::Full => vec![0.01, 0.05, 0.10, 0.25, 0.50],
    };
    let mut table = Table::new(
        "Extension — synaptic-weight fault injection (post-training)",
        &["fault", "fraction", "accuracy", "vs clean"],
    );
    for &fraction in &fractions {
        for (label, kind) in [
            (
                "stuck-at-zero",
                WeightFaultKind::StuckAtZero { fraction, seed: 7 },
            ),
            (
                "stuck-at-max",
                WeightFaultKind::StuckAtMax { fraction, seed: 7 },
            ),
        ] {
            let outcome = WeightFaultAttack::new(kind).run(&setup)?;
            table.push_row(&[
                label.into(),
                format!("{:.0}%", fraction * 100.0),
                format!("{:.1}%", outcome.attacked_accuracy * 100.0),
                format!("{:+.1}%", outcome.relative_change_percent()),
            ]);
        }
    }
    table.push_note(
        "beyond the paper (§IV-E(b)): the network is trained cleanly, then the \
         stored input→excitatory weights are corrupted before evaluation",
    );
    Ok(table)
}
