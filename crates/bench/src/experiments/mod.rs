//! Experiment registry and dispatch.

pub mod circuits;
pub mod extensions;
pub mod network;

use neurofi_core::{Error, Table};

/// Reproduction fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Reduced grids and abbreviated training — minutes for `all`.
    Quick,
    /// The paper's full grids and protocol.
    Full,
}

impl Fidelity {
    /// The VDD sweep grid at this fidelity.
    pub fn vdd_grid(self) -> Vec<f64> {
        match self {
            Fidelity::Quick => vec![0.8, 1.0, 1.2],
            Fidelity::Full => vec![0.8, 0.9, 1.0, 1.1, 1.2],
        }
    }

    /// The input-amplitude grid (Fig. 5c) at this fidelity.
    pub fn amplitude_grid(self) -> Vec<f64> {
        match self {
            Fidelity::Quick => vec![136.0e-9, 200.0e-9, 264.0e-9],
            Fidelity::Full => neurofi_analog::characterize::paper_amplitude_grid(),
        }
    }
}

/// Identifier of one reproducible paper artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum ExperimentId {
    Fig3,
    Fig4,
    Fig5b,
    Fig5c,
    Fig6a,
    Fig6b,
    Fig6c,
    Fig7b,
    Fig8a,
    Fig8b,
    Fig8c,
    Fig9a,
    Fig9b,
    Fig9c,
    Fig10c,
    Defenses,
    Overheads,
    ExtGlitch,
    ExtWeightFaults,
}

impl ExperimentId {
    /// Every experiment, in paper order (extensions last).
    pub fn all() -> Vec<ExperimentId> {
        use ExperimentId::*;
        vec![
            Fig3,
            Fig4,
            Fig5b,
            Fig5c,
            Fig6a,
            Fig6b,
            Fig6c,
            Fig7b,
            Fig8a,
            Fig8b,
            Fig8c,
            Fig9a,
            Fig9b,
            Fig9c,
            Fig10c,
            Defenses,
            Overheads,
            ExtGlitch,
            ExtWeightFaults,
        ]
    }

    /// CLI name (`fig8b`, `overheads`, ...).
    pub fn name(self) -> &'static str {
        use ExperimentId::*;
        match self {
            Fig3 => "fig3",
            Fig4 => "fig4",
            Fig5b => "fig5b",
            Fig5c => "fig5c",
            Fig6a => "fig6a",
            Fig6b => "fig6b",
            Fig6c => "fig6c",
            Fig7b => "fig7b",
            Fig8a => "fig8a",
            Fig8b => "fig8b",
            Fig8c => "fig8c",
            Fig9a => "fig9a",
            Fig9b => "fig9b",
            Fig9c => "fig9c",
            Fig10c => "fig10c",
            Defenses => "defenses",
            Overheads => "overheads",
            ExtGlitch => "ext-glitch",
            ExtWeightFaults => "ext-weightfaults",
        }
    }

    /// Parses a CLI name.
    pub fn parse(text: &str) -> Option<ExperimentId> {
        ExperimentId::all()
            .into_iter()
            .find(|id| id.name().eq_ignore_ascii_case(text))
    }
}

impl std::fmt::Display for ExperimentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Runs one experiment at the given fidelity.
///
/// # Errors
/// Propagates circuit-solver or experiment-configuration failures.
pub fn run_experiment(id: ExperimentId, fidelity: Fidelity) -> Result<Table, Error> {
    use ExperimentId::*;
    match id {
        Fig3 => circuits::fig3(fidelity),
        Fig4 => circuits::fig4(fidelity),
        Fig5b => circuits::fig5b(fidelity),
        Fig5c => circuits::fig5c(fidelity),
        Fig6a => circuits::fig6a(fidelity),
        Fig6b => circuits::fig6b(fidelity),
        Fig6c => circuits::fig6c(fidelity),
        Fig7b => network::fig7b(fidelity),
        Fig8a => network::fig8a(fidelity),
        Fig8b => network::fig8b(fidelity),
        Fig8c => network::fig8c(fidelity),
        Fig9a => network::fig9a(fidelity),
        Fig9b => circuits::fig9b(fidelity),
        Fig9c => circuits::fig9c(fidelity),
        Fig10c => circuits::fig10c(fidelity),
        Defenses => network::defenses(fidelity),
        Overheads => circuits::overheads(fidelity),
        ExtGlitch => extensions::glitch(fidelity),
        ExtWeightFaults => extensions::weight_faults(fidelity),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for id in ExperimentId::all() {
            assert_eq!(ExperimentId::parse(id.name()), Some(id));
        }
        assert_eq!(ExperimentId::parse("FIG8B"), Some(ExperimentId::Fig8b));
        assert_eq!(ExperimentId::parse("nope"), None);
    }

    #[test]
    fn registry_is_complete() {
        assert_eq!(ExperimentId::all().len(), 19);
    }

    #[test]
    fn fidelity_grids() {
        assert_eq!(Fidelity::Quick.vdd_grid().len(), 3);
        assert_eq!(Fidelity::Full.vdd_grid().len(), 5);
        assert!(Fidelity::Full
            .amplitude_grid()
            .iter()
            .any(|&a| (a - 200.0e-9).abs() < 1e-15));
    }
}
