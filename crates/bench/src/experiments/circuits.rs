//! Circuit-level figure reproductions (Figs. 3–6, 9b, 9c, 10c and the §V
//! overhead numbers), built on `neurofi-analog`.

use neurofi_analog::axon_hillock::{AxonHillock, InputSpec};
use neurofi_analog::bandgap::BandgapOverhead;
use neurofi_analog::characterize::{
    ah_period_vs_amplitude, ah_period_vs_vdd, ah_threshold_vs_vdd, driver_amplitude_vs_vdd,
    dummy_rate_vs_vdd, if_period_vs_amplitude, if_period_vs_vdd, if_threshold_vs_vdd,
    neuron_average_power, robust_driver_amplitude_vs_vdd, sizing_threshold_sweep,
    to_percent_change,
};
use neurofi_analog::driver::{CurrentDriver, RobustCurrentDriver};
use neurofi_analog::vamp_if::VoltageAmplifierIf;
use neurofi_analog::{BandgapReference, NeuronKind};
use neurofi_core::{Error, Table};

use super::Fidelity;

fn fmt_na(value: f64) -> String {
    format!("{:.1}", value * 1.0e9)
}

fn fmt_us(value: f64) -> String {
    format!("{:.3}", value * 1.0e6)
}

/// Fig. 3: Axon Hillock spike generation waveforms (downsampled) plus the
/// measured firing period.
pub fn fig3(fidelity: Fidelity) -> Result<Table, Error> {
    let neuron = AxonHillock::default();
    let tstop = match fidelity {
        Fidelity::Quick => 25.0e-6,
        Fidelity::Full => 45.0e-6,
    };
    let wave = neuron.simulate(1.0, &InputSpec::paper_axon_hillock(), tstop, 20.0e-9)?;
    let mut table = Table::new(
        "Fig. 3 — Axon Hillock spike generation (Vmem, Vout)",
        &["t (us)", "vmem (V)", "vout (V)"],
    );
    let stride = (wave.times.len() / 240).max(1);
    for i in (0..wave.times.len()).step_by(stride) {
        table.push_row(&[
            fmt_us(wave.times[i]),
            format!("{:.4}", wave.vmem[i]),
            format!("{:.4}", wave.vout[i]),
        ]);
    }
    let spikes = wave.output_spike_times();
    table.push_note(format!(
        "measured: {} output spikes, period {}",
        spikes.len(),
        wave.mean_output_period()
            .map(|p| format!("{:.2} us", p * 1.0e6))
            .unwrap_or_else(|| "n/a".into())
    ));
    table.push_note(
        "paper shows sawtooth Vmem with regenerative kick and rail-to-rail Vout pulses; \
         input 200 nA at 40 MHz (we use 50% duty, see InputSpec docs)",
    );
    Ok(table)
}

/// Fig. 4: voltage-amplifier I&F waveforms.
pub fn fig4(fidelity: Fidelity) -> Result<Table, Error> {
    let neuron = VoltageAmplifierIf::default();
    let (tstop, dc) = match fidelity {
        Fidelity::Quick => (450.0e-6, true),
        Fidelity::Full => (700.0e-6, false),
    };
    let wave = neuron.simulate(1.0, &InputSpec::paper_vamp_if(), tstop, 50.0e-9, dc)?;
    let mut table = Table::new(
        "Fig. 4 — Voltage-amplifier I&F spike generation (Vmem)",
        &["t (us)", "vmem (V)", "amp out (V)"],
    );
    let stride = (wave.times.len() / 240).max(1);
    for i in (0..wave.times.len()).step_by(stride) {
        table.push_row(&[
            fmt_us(wave.times[i]),
            format!("{:.4}", wave.vmem[i]),
            format!("{:.4}", wave.vout[i]),
        ]);
    }
    let spikes = neurofi_spice::measure::spike_times(&wave.times, &wave.vmem, 0.45);
    table.push_note(format!(
        "measured: {} membrane spikes; linear ramp to Vthr=0.5 V, pull-up to VDD, \
         reset + explicit refractory (Ck discharge)",
        spikes.len()
    ));
    Ok(table)
}

/// Fig. 5b: current-driver output amplitude versus VDD.
pub fn fig5b(fidelity: Fidelity) -> Result<Table, Error> {
    let driver = CurrentDriver::default();
    let series = driver_amplitude_vs_vdd(&driver, &fidelity.vdd_grid())?;
    let pct = to_percent_change(&series, 1.0);
    let mut table = Table::new(
        "Fig. 5b — driver output spike amplitude vs VDD",
        &["vdd (V)", "amplitude (nA)", "change", "paper"],
    );
    for ((vdd, amp), (_, change)) in series.iter().zip(&pct) {
        let paper = match *vdd {
            v if (v - 0.8).abs() < 1e-9 => "136 nA (−32%)",
            v if (v - 1.0).abs() < 1e-9 => "200 nA",
            v if (v - 1.2).abs() < 1e-9 => "264 nA (+32%)",
            _ => "—",
        };
        table.push_row(&[
            format!("{vdd:.1}"),
            fmt_na(*amp),
            format!("{change:+.1}%"),
            paper.into(),
        ]);
    }
    Ok(table)
}

/// Fig. 5c: firing-period change versus input amplitude for both neurons.
pub fn fig5c(fidelity: Fidelity) -> Result<Table, Error> {
    let amplitudes = fidelity.amplitude_grid();
    let ah = ah_period_vs_amplitude(&AxonHillock::default(), &amplitudes)?;
    let vif = if_period_vs_amplitude(&VoltageAmplifierIf::default(), &amplitudes)?;
    let ah_pct = to_percent_change(&ah, 200.0e-9);
    let if_pct = to_percent_change(&vif, 200.0e-9);
    let mut table = Table::new(
        "Fig. 5c — time-to-spike change vs input amplitude",
        &[
            "amplitude (nA)",
            "AH period (us)",
            "AH change",
            "IF period (us)",
            "IF change",
            "paper (AH / IF)",
        ],
    );
    for i in 0..amplitudes.len() {
        let paper = match amplitudes[i] {
            a if (a - 136.0e-9).abs() < 1e-12 => "+53.7% / +14.5%",
            a if (a - 264.0e-9).abs() < 1e-12 => "−24.7% / −6.7%",
            a if (a - 200.0e-9).abs() < 1e-12 => "0 / 0",
            _ => "—",
        };
        table.push_row(&[
            fmt_na(amplitudes[i]),
            fmt_us(ah[i].1),
            format!("{:+.1}%", ah_pct[i].1),
            fmt_us(vif[i].1),
            format!("{:+.1}%", if_pct[i].1),
            paper.into(),
        ]);
    }
    table.push_note(
        "the I&F neuron's fixed refractory period dilutes its amplitude sensitivity, \
         matching the paper's asymmetry",
    );
    Ok(table)
}

/// Fig. 6a: membrane threshold versus VDD for both neurons.
pub fn fig6a(fidelity: Fidelity) -> Result<Table, Error> {
    let grid = fidelity.vdd_grid();
    let ah = ah_threshold_vs_vdd(&AxonHillock::default(), &grid)?;
    let vif = if_threshold_vs_vdd(&VoltageAmplifierIf::default(), &grid)?;
    let ah_pct = to_percent_change(&ah, 1.0);
    let if_pct = to_percent_change(&vif, 1.0);
    let mut table = Table::new(
        "Fig. 6a — membrane threshold vs VDD",
        &[
            "vdd (V)",
            "AH thr (V)",
            "AH change",
            "IF thr (V)",
            "IF change",
            "paper (AH / IF)",
        ],
    );
    for i in 0..grid.len() {
        let paper = match grid[i] {
            v if (v - 0.8).abs() < 1e-9 => "−17.91% / −18.01%",
            v if (v - 1.2).abs() < 1e-9 => "+16.76% / +17.14%",
            v if (v - 1.0).abs() < 1e-9 => "0 / 0",
            _ => "—",
        };
        table.push_row(&[
            format!("{:.1}", grid[i]),
            format!("{:.4}", ah[i].1),
            format!("{:+.1}%", ah_pct[i].1),
            format!("{:.4}", vif[i].1),
            format!("{:+.1}%", if_pct[i].1),
            paper.into(),
        ]);
    }
    Ok(table)
}

/// Fig. 6b: Axon Hillock firing period versus VDD.
pub fn fig6b(fidelity: Fidelity) -> Result<Table, Error> {
    let series = ah_period_vs_vdd(&AxonHillock::default(), &fidelity.vdd_grid())?;
    let pct = to_percent_change(&series, 1.0);
    let mut table = Table::new(
        "Fig. 6b — Axon Hillock time-to-spike vs VDD",
        &["vdd (V)", "period (us)", "change", "paper"],
    );
    for ((vdd, period), (_, change)) in series.iter().zip(&pct) {
        let paper = match *vdd {
            v if (v - 0.8).abs() < 1e-9 => "−17.91% (faster)",
            v if (v - 1.2).abs() < 1e-9 => "+16.76% (slower)",
            v if (v - 1.0).abs() < 1e-9 => "0",
            _ => "—",
        };
        table.push_row(&[
            format!("{vdd:.1}"),
            fmt_us(*period),
            format!("{change:+.1}%"),
            paper.into(),
        ]);
    }
    Ok(table)
}

/// Fig. 6c: voltage-amplifier I&F firing period versus VDD.
pub fn fig6c(fidelity: Fidelity) -> Result<Table, Error> {
    let series = if_period_vs_vdd(&VoltageAmplifierIf::default(), &fidelity.vdd_grid())?;
    let pct = to_percent_change(&series, 1.0);
    let mut table = Table::new(
        "Fig. 6c — voltage-amplifier I&F time-to-spike vs VDD",
        &["vdd (V)", "period (us)", "change", "paper"],
    );
    for ((vdd, period), (_, change)) in series.iter().zip(&pct) {
        let paper = match *vdd {
            v if (v - 0.8).abs() < 1e-9 => "−17.05% (faster)",
            v if (v - 1.2).abs() < 1e-9 => "+23.53% (slower)",
            v if (v - 1.0).abs() < 1e-9 => "0",
            _ => "—",
        };
        table.push_row(&[
            format!("{vdd:.1}"),
            fmt_us(*period),
            format!("{change:+.1}%"),
            paper.into(),
        ]);
    }
    table.push_note(
        "both the threshold (integration phase) and the Ck refractory swing scale \
         with VDD, so the period tracks VDD more strongly than in Fig. 5c",
    );
    Ok(table)
}

/// Fig. 9b: robust-driver output amplitude versus VDD (defense check).
pub fn fig9b(fidelity: Fidelity) -> Result<Table, Error> {
    let robust = RobustCurrentDriver::default();
    let unsec = CurrentDriver::default();
    let grid = fidelity.vdd_grid();
    let r = robust_driver_amplitude_vs_vdd(&robust, &grid)?;
    let u = driver_amplitude_vs_vdd(&unsec, &grid)?;
    let r_pct = to_percent_change(&r, 1.0);
    let u_pct = to_percent_change(&u, 1.0);
    let mut table = Table::new(
        "Fig. 9b — robust current driver: amplitude vs VDD",
        &[
            "vdd (V)",
            "unsecured (nA)",
            "unsecured change",
            "robust (nA)",
            "robust change",
        ],
    );
    for i in 0..grid.len() {
        table.push_row(&[
            format!("{:.1}", grid[i]),
            fmt_na(u[i].1),
            format!("{:+.1}%", u_pct[i].1),
            fmt_na(r[i].1),
            format!("{:+.2}%", r_pct[i].1),
        ]);
    }
    table.push_note("paper: the robust driver holds a constant output spike amplitude");
    Ok(table)
}

/// Fig. 9c: first-stage sizing versus threshold sensitivity.
pub fn fig9c(fidelity: Fidelity) -> Result<Table, Error> {
    let (ratios, vdds): (Vec<f64>, Vec<f64>) = match fidelity {
        Fidelity::Quick => (vec![1.0, 8.0, 32.0], vec![0.8]),
        Fidelity::Full => (vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0], vec![0.8, 1.2]),
    };
    let rows = sizing_threshold_sweep(&ratios, &vdds)?;
    let mut table = Table::new(
        "Fig. 9c — AH first-stage sizing vs threshold change under VDD attack",
        &[
            "N:P ratio",
            "vdd (V)",
            "threshold (V)",
            "change vs own nominal",
            "paper",
        ],
    );
    for row in rows {
        let paper = if (row.ratio - 32.0).abs() < 1e-9 && (row.vdd - 0.8).abs() < 1e-9 {
            "−5.23%"
        } else if (row.ratio - 32.0).abs() < 1e-9 && (row.vdd - 1.2).abs() < 1e-9 {
            "+3.2%"
        } else if (row.ratio - 1.0).abs() < 1e-9 && (row.vdd - 0.8).abs() < 1e-9 {
            "−18.01%"
        } else {
            "—"
        };
        table.push_row(&[
            format!("{:.0}:1", row.ratio),
            format!("{:.1}", row.vdd),
            format!("{:.4}", row.threshold),
            format!("{:+.1}%", row.change_percent),
            paper.into(),
        ]);
    }
    table.push_note(
        "known deviation: our EKV model's moderate-inversion blur limits the pinning \
         to ≈−12..−15% at 32:1 (paper's HSPICE reports −5.23%); direction and \
         monotonicity are preserved — see EXPERIMENTS.md",
    );
    Ok(table)
}

/// Fig. 10c: dummy-neuron spike count versus VDD, with the ≥10% detector.
pub fn fig10c(fidelity: Fidelity) -> Result<Table, Error> {
    let window = 0.1; // the paper's 100 ms sampling period
    let grid = fidelity.vdd_grid();
    let kinds: Vec<NeuronKind> = match fidelity {
        Fidelity::Quick => vec![NeuronKind::AxonHillock],
        Fidelity::Full => vec![NeuronKind::AxonHillock, NeuronKind::VoltageAmplifierIf],
    };
    let mut table = Table::new(
        "Fig. 10c — dummy-neuron output spikes (100 ms window) vs VDD",
        &["neuron", "vdd (V)", "count", "deviation", "detected"],
    );
    for kind in kinds {
        let rates = dummy_rate_vs_vdd(kind, &grid)?;
        let counts: Vec<(f64, f64)> = rates.iter().map(|&(v, r)| (v, r * window)).collect();
        let detector = neurofi_core::DummyNeuronDetector::from_characterisation(&counts, 1.0)?;
        for row in neurofi_core::detection::evaluate_series(&detector, &counts) {
            table.push_row(&[
                kind.to_string(),
                format!("{:.1}", row.vdd),
                format!("{:.0}", row.count),
                format!("{:+.1}%", row.deviation_percent),
                if row.flagged {
                    "YES".into()
                } else {
                    "no".into()
                },
            ]);
        }
    }
    table.push_note(
        "paper: spike counts deviate ≥10% from baseline under VDD attack; counts here \
         are steady-state rate × window (100 ms of transistor-level transient is \
         infeasible; the relative rule is unchanged)",
    );
    Ok(table)
}

/// §V overheads: power/area of each defense, measured where possible.
pub fn overheads(fidelity: Fidelity) -> Result<Table, Error> {
    let mut table = Table::new(
        "§V — defense overheads (measured vs paper)",
        &["defense", "metric", "measured", "paper"],
    );

    // Robust driver power overhead.
    let unsec = CurrentDriver::default().supply_power(1.0)?;
    let robust = RobustCurrentDriver::default().supply_power(1.0)?;
    table.push_row(&[
        "robust current driver".into(),
        "power".into(),
        format!("{:+.1}%", (robust - unsec) / unsec * 100.0),
        "+3%".into(),
    ]);

    // Bandgap threshold: residual Vthr variation and area at 200 neurons.
    let bandgap = BandgapReference::new(0.5);
    table.push_row(&[
        "bandgap Vthr (I&F)".into(),
        "Vthr variation".into(),
        format!(
            "±{:.2}%",
            bandgap.worst_case_relative_deviation(0.8, 1.2) * 100.0
        ),
        "±0.56%".into(),
    ]);
    table.push_row(&[
        "bandgap Vthr (I&F)".into(),
        "area @200 neurons".into(),
        format!(
            "+{:.0}%",
            BandgapOverhead::default().area_overhead(200) * 100.0
        ),
        "+65%".into(),
    ]);

    if fidelity == Fidelity::Full {
        // Sized AH neuron power (steady-state firing).
        let stock = neuron_average_power(
            NeuronKind::AxonHillock,
            &AxonHillock::default(),
            &VoltageAmplifierIf::default(),
            1.0,
        )?;
        let sized = neuron_average_power(
            NeuronKind::AxonHillock,
            &AxonHillock::default().with_first_inverter_ratio(32.0),
            &VoltageAmplifierIf::default(),
            1.0,
        )?;
        table.push_row(&[
            "sized AH neuron (32:1)".into(),
            "power".into(),
            format!("{:+.1}%", (sized - stock) / stock * 100.0),
            "+25%".into(),
        ]);
        let comparator = neuron_average_power(
            NeuronKind::AxonHillock,
            &AxonHillock::default().with_comparator_stage(),
            &VoltageAmplifierIf::default(),
            1.0,
        )?;
        table.push_row(&[
            "comparator AH stage".into(),
            "power".into(),
            format!("{:+.1}%", (comparator - stock) / stock * 100.0),
            "+11%".into(),
        ]);
    }

    // Dummy-neuron detector: one dummy cell per 100-neuron layer.
    table.push_row(&[
        "dummy-neuron detector".into(),
        "power & area".into(),
        format!("+{:.0}%", 1.0 / 100.0 * 100.0),
        "~1%".into(),
    ]);
    table.push_note("sized/comparator rows require --full (transient power measurement)");
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Circuit experiments are exercised end-to-end here at quick fidelity;
    // the expensive ones are covered by the repro binary and integration
    // tests.

    #[test]
    fn fig5b_reproduces_amplitude_swing() {
        let table = fig5b(Fidelity::Quick).unwrap();
        assert_eq!(table.len(), 3);
        // Parse the change column of the VDD=0.8 row.
        let low_change: f64 = table.rows[0][2].trim_end_matches('%').parse().unwrap();
        assert!(low_change < -20.0, "low change {low_change}");
    }

    #[test]
    fn fig6a_reproduces_threshold_swing() {
        let table = fig6a(Fidelity::Quick).unwrap();
        let low_ah: f64 = table.rows[0][2].trim_end_matches('%').parse().unwrap();
        let high_if: f64 = table.rows[2][4].trim_end_matches('%').parse().unwrap();
        assert!(low_ah < -10.0, "AH at 0.8 V: {low_ah}%");
        assert!(high_if > 10.0, "IF at 1.2 V: {high_if}%");
    }

    #[test]
    fn fig9b_robust_driver_is_flat() {
        let table = fig9b(Fidelity::Quick).unwrap();
        for row in &table.rows {
            let robust_change: f64 = row[4].trim_end_matches('%').parse().unwrap();
            assert!(robust_change.abs() < 2.0, "robust change {robust_change}");
        }
    }

    #[test]
    fn overheads_table_has_paper_columns() {
        let table = overheads(Fidelity::Quick).unwrap();
        assert!(table.len() >= 4);
        assert!(table.to_markdown().contains("+3%"));
        assert!(table.to_markdown().contains("±0.56%"));
    }
}
