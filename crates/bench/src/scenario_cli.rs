//! `repro sweep` — run a declarative N-axis scenario locally — and the
//! shared spec-building flags (`--preset` / `--spec FILE` /
//! `--attack … --axis …`) that `repro submit` reuses to enqueue the
//! same scenarios on a running coordinator.
//!
//! Three equivalent ways to say *what* to sweep:
//!
//! ```text
//! repro sweep --preset tiny
//! repro sweep --spec cross.scenario
//! repro sweep --attack threshold-inhibitory \
//!     --axis "rel_change=-20%..20%/5" --axis "vdd=0.9,1.0" --seeds 42
//! ```
//!
//! All three expand to the same [`CampaignSpec`]; the engine sees one
//! planner regardless of how the scenario was written down.

use std::path::PathBuf;
use std::process::ExitCode;

use neurofi_core::scenario::{
    parse_seed_values, parse_transfer, AttackFamily, Axis, AxisKind, ScenarioSpec,
};
use neurofi_core::sweep::scenario_sweep_cached;
use neurofi_core::{BaselineCache, Parallelism};
use neurofi_dist::{
    named_campaign, parse_campaign_text, CampaignSpec, NamedCampaign, SetupSpec, NAMED_CAMPAIGNS,
};

/// The scenario-selecting flags shared by `repro sweep` and
/// `repro submit`: exactly one of a catalog preset, a spec file, or an
/// inline `--attack`/`--axis` description.
#[derive(Debug, Default)]
pub struct SpecArgs {
    /// `--preset NAME` (also `--grid NAME` for `submit` compatibility).
    pub preset: Option<String>,
    /// `--spec FILE` — a campaign file in the scenario grammar.
    pub spec_file: Option<PathBuf>,
    /// `--attack NAME` — inline form.
    pub attack: Option<String>,
    /// Repeated `--axis NAME=VALUES` lines — inline form.
    pub axes: Vec<String>,
    /// `--seeds LIST` (default `42`).
    pub seeds: Option<String>,
    /// `--setup bench|quick|paper` (default `bench`).
    pub setup: Option<String>,
    /// `--setup-seed N` (default 42).
    pub setup_seed: Option<u64>,
    /// `--transfer paper|POINTS`. Defaults to `paper` when the scenario
    /// has a `vdd` axis and no table was given (CLI convenience only —
    /// spec files and the API stay explicit).
    pub transfer: Option<String>,
}

impl SpecArgs {
    /// True when none of the selecting flags was given.
    pub fn is_empty(&self) -> bool {
        self.preset.is_none() && self.spec_file.is_none() && self.attack.is_none()
    }

    /// Tries to consume one CLI argument pair. Returns `Ok(true)` when
    /// the flag belonged to the spec grammar, `Ok(false)` when the
    /// caller should handle it.
    pub fn take_arg(
        &mut self,
        arg: &str,
        mut next: impl FnMut() -> Result<String, String>,
    ) -> Result<bool, String> {
        match arg {
            "--preset" | "--grid" => self.preset = Some(next()?),
            "--spec" => self.spec_file = Some(PathBuf::from(next()?)),
            "--attack" => self.attack = Some(next()?),
            "--axis" => self.axes.push(next()?),
            "--seeds" => self.seeds = Some(next()?),
            "--setup" => self.setup = Some(next()?),
            "--setup-seed" => {
                let v = next()?;
                self.setup_seed = Some(v.parse().map_err(|_| format!("bad setup seed `{v}`"))?);
            }
            "--transfer" => self.transfer = Some(next()?),
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Expands the flags into a validated queue entry, named `fallback`
    /// unless the preset/spec file names it.
    ///
    /// # Errors
    /// Returns a usage-style message for conflicting or malformed
    /// flags, unknown presets, and invalid scenarios.
    pub fn build(&self, fallback: &str) -> Result<NamedCampaign, String> {
        let inline = self.attack.is_some() || !self.axes.is_empty();
        // The modifier flags only shape the inline form; silently
        // ignoring them next to a preset/spec file would hand the
        // operator a different fidelity or seed set than they asked
        // for.
        if !inline {
            let ignored = [
                (self.seeds.is_some(), "--seeds"),
                (self.setup.is_some(), "--setup"),
                (self.setup_seed.is_some(), "--setup-seed"),
                (self.transfer.is_some(), "--transfer"),
            ];
            if let Some(&(_, flag)) = ignored.iter().find(|(set, _)| *set) {
                return Err(format!(
                    "{flag} only applies to the inline --attack/--axis form; presets and \
                     spec files define their own (edit the spec file, or spell the \
                     scenario out inline)"
                ));
            }
        }
        match (&self.preset, &self.spec_file, inline) {
            (Some(_), Some(_), _) | (Some(_), _, true) | (_, Some(_), true) => Err(
                "pick one scenario source: --preset NAME, --spec FILE, or --attack/--axis".into(),
            ),
            (Some(preset), None, false) => {
                let Some(spec) = named_campaign(preset) else {
                    return Err(format!(
                        "unknown preset `{preset}` (presets: {})",
                        NAMED_CAMPAIGNS.join(" ")
                    ));
                };
                Ok(NamedCampaign::new(preset.clone(), spec))
            }
            (None, Some(path), false) => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
                let parsed =
                    parse_campaign_text(&text).map_err(|e| format!("{}: {e}", path.display()))?;
                let stem = path
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .unwrap_or(fallback)
                    .to_string();
                Ok(parsed.into_named(&stem))
            }
            (None, None, true) => self.build_inline(fallback),
            (None, None, false) => {
                Err("no scenario given (use --preset NAME, --spec FILE, or --attack/--axis)".into())
            }
        }
    }

    fn build_inline(&self, fallback: &str) -> Result<NamedCampaign, String> {
        let Some(attack) = &self.attack else {
            return Err("--axis needs an --attack family".into());
        };
        let family = AttackFamily::parse(attack).map_err(|e| e.to_string())?;
        if self.axes.is_empty() {
            return Err("--attack needs at least one --axis NAME=VALUES".into());
        }
        let axes = self
            .axes
            .iter()
            .map(|text| Axis::parse(text).map_err(|e| e.to_string()))
            .collect::<Result<Vec<_>, _>>()?;
        let has_seed_axis = axes.iter().any(|a| a.kind == AxisKind::Seed);
        let seeds = match (&self.seeds, has_seed_axis) {
            (Some(text), _) => parse_seed_values(text).map_err(|e| e.to_string())?,
            (None, true) => Vec::new(),
            (None, false) => vec![42],
        };
        let has_vdd = axes.iter().any(|a| a.kind == AxisKind::Vdd);
        let transfer = match &self.transfer {
            Some(text) => Some(parse_transfer(text).map_err(|e| e.to_string())?),
            // CLI convenience: a vdd axis without an explicit table
            // gets the paper-nominal characterisation.
            None if has_vdd => Some(parse_transfer("paper").expect("paper table parses")),
            None => None,
        };
        let scenario = ScenarioSpec {
            family,
            axes,
            seeds,
            transfer,
        };
        let base = self.setup.as_deref().unwrap_or("bench");
        let seed = self.setup_seed.unwrap_or(42);
        let Some(setup) = SetupSpec::named(base, seed) else {
            return Err(format!(
                "unknown setup `{base}` (setups: bench quick paper)"
            ));
        };
        let spec = CampaignSpec { setup, scenario };
        spec.validate().map_err(|e| e.to_string())?;
        Ok(NamedCampaign::new(fallback, spec))
    }
}

/// One line describing the resolved scenario — printed by `sweep` and
/// `submit` so the operator sees exactly which grid the flags expanded
/// to.
pub fn describe_campaign(campaign: &NamedCampaign) -> String {
    let scenario = &campaign.spec.scenario;
    let axes: Vec<String> = scenario
        .axes
        .iter()
        .map(|a| format!("{}[{}]", a.kind, a.values.len()))
        .collect();
    format!(
        "campaign `{}`: attack {}, axes {} ({} cells), {} seed(s)",
        campaign.name,
        scenario.family,
        axes.join(" × "),
        scenario.n_cells(),
        scenario.baseline_seeds().len(),
    )
}

fn sweep_usage() -> String {
    format!(
        "usage: repro sweep (--preset NAME | --spec FILE | --attack FAMILY --axis \
         NAME=VALUES...) [--seeds LIST] [--setup bench|quick|paper] [--setup-seed N] \
         [--transfer paper|POINTS] [--serial] [--out DIR]\n\
         presets: {}\n\
         attacks: {}\n\
         axes: rel_change fraction theta_change vdd layer polarity seed defense detector\n\
         values: a comma list (-0.2,0.2 — reals take a % suffix), a linear range \
         (start..end/count), or for seed an inclusive integer range (1..8)\n\
         Runs the scenario locally on the in-process pool; --serial forces the \
         single-thread path. A vdd axis without --transfer uses the paper-nominal \
         table.",
        NAMED_CAMPAIGNS.join(" "),
        AttackFamily::ALL.map(AttackFamily::name).join(" "),
    )
}

/// `repro sweep ...`: expand the scenario flags and run the grid
/// locally, printing the table (and a CSV with `--out`).
pub fn sweep_main(args: &[String]) -> ExitCode {
    let mut spec_args = SpecArgs::default();
    let mut serial = false;
    let mut out_dir: Option<PathBuf> = None;
    let mut name: Option<String> = None;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut take = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--serial" => serial = true,
            "--out" => match take("--out") {
                Ok(v) => out_dir = Some(PathBuf::from(v)),
                Err(e) => return usage_error(&e),
            },
            "--name" => match take("--name") {
                Ok(v) => name = Some(v),
                Err(e) => return usage_error(&e),
            },
            "--help" | "-h" => {
                println!("{}", sweep_usage());
                return ExitCode::SUCCESS;
            }
            other => {
                let result = spec_args.take_arg(other, || take(other));
                match result {
                    Ok(true) => {}
                    Ok(false) => return usage_error(&format!("unknown argument `{other}`")),
                    Err(e) => return usage_error(&e),
                }
            }
        }
    }

    let mut campaign = match spec_args.build("sweep") {
        Ok(campaign) => campaign,
        Err(e) => return usage_error(&e),
    };
    if let Some(name) = name {
        campaign.name = name;
    }
    eprintln!("sweep: {}", describe_campaign(&campaign));

    let parallelism = if serial {
        Parallelism::Serial
    } else {
        Parallelism::Auto
    };
    let setup = campaign.spec.materialize().with_parallelism(parallelism);
    let cache = BaselineCache::new(&setup);
    let result = match scenario_sweep_cached(&cache, &campaign.spec.scenario) {
        Ok(result) => result,
        Err(e) => {
            eprintln!("sweep FAILED: {e}");
            return ExitCode::FAILURE;
        }
    };
    let table = crate::orchestrate::sweep_table(&campaign.name, &result, Some(&campaign.spec));
    println!("{}", table.to_markdown());
    if let Some(worst) = result.worst_case() {
        println!(
            "_worst case: {:+.2}% at ({:+.3}, {:.0}%)_\n",
            worst.relative_change_percent,
            worst.rel_change,
            worst.fraction * 100.0
        );
    }
    if let Some(dir) = out_dir {
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("cannot create output directory {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        let path = dir.join(format!("sweep.{}.csv", campaign.name));
        if let Err(e) = std::fs::write(&path, table.to_csv()) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("sweep: wrote {}", path.display());
    }
    ExitCode::SUCCESS
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("{message}\n{}", sweep_usage());
    ExitCode::FAILURE
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(args: &[(&str, &str)]) -> Result<NamedCampaign, String> {
        let mut spec_args = SpecArgs::default();
        for &(flag, value) in args {
            let mut value = Some(value.to_string());
            let taken = spec_args
                .take_arg(flag, || Ok(value.take().expect("one value per flag")))
                .expect("flag parses");
            assert!(taken, "{flag} must belong to the spec grammar");
        }
        spec_args.build("fallback")
    }

    #[test]
    fn presets_inline_axes_and_conflicts() {
        let preset = build(&[("--preset", "tiny")]).unwrap();
        assert_eq!(preset.name, "tiny");
        assert_eq!(preset.spec, named_campaign("tiny").unwrap());

        let inline = build(&[
            ("--attack", "threshold-inhibitory"),
            ("--axis", "rel_change=-20%,20%"),
            ("--axis", "vdd=0.9,1.0"),
        ])
        .unwrap();
        assert_eq!(inline.name, "fallback");
        assert_eq!(inline.spec.scenario.seeds, vec![42], "default seed");
        assert!(
            inline.spec.scenario.transfer.is_some(),
            "vdd axis defaults to the paper table"
        );
        assert_eq!(inline.spec.plan().jobs.len(), 4);

        assert!(build(&[("--preset", "tiny"), ("--attack", "theta")]).is_err());
        assert!(build(&[("--preset", "nope")]).is_err());
        // Modifier flags next to a preset/spec file must error, not be
        // silently dropped (the operator would get a different
        // fidelity/seed set than they asked for).
        let err = build(&[("--preset", "fig8"), ("--setup", "paper")]).unwrap_err();
        assert!(err.contains("--setup"), "diagnostic: {err}");
        assert!(build(&[("--preset", "tiny"), ("--seeds", "1..4")]).is_err());
        assert!(
            build(&[("--axis", "vdd=1.0")]).is_err(),
            "axis without attack"
        );
        assert!(build(&[]).is_err(), "no scenario at all");
        assert!(build(&[
            ("--attack", "theta"),
            ("--axis", "theta_change=0.1"),
            ("--setup", "huge")
        ])
        .is_err());
    }

    #[test]
    fn describe_names_the_resolved_grid() {
        let campaign = build(&[
            ("--attack", "threshold-inhibitory"),
            ("--axis", "rel_change=-0.2,0.2"),
            ("--axis", "fraction=0..1/3"),
        ])
        .unwrap();
        let text = describe_campaign(&campaign);
        assert!(text.contains("threshold-inhibitory"), "{text}");
        assert!(text.contains("rel_change[2] × fraction[3]"), "{text}");
        assert!(text.contains("(6 cells)"), "{text}");
    }
}
