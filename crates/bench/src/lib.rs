//! # neurofi-bench
//!
//! The reproduction harness: one experiment per table/figure of the
//! paper's evaluation, each returning a [`neurofi_core::Table`] with
//! measured values next to the paper's reported numbers. The `repro`
//! binary drives them from the command line:
//!
//! ```text
//! repro all --quick            # smoke reproduction of every figure
//! repro fig8b                  # full-fidelity Attack-3 surface
//! repro overheads --out out/   # defense overhead table + CSV dump
//! repro bench                  # perf suite -> BENCH_sweep.json
//! ```
//!
//! | experiment | paper artifact | content |
//! |---|---|---|
//! | `fig3` | Fig. 3 | Axon Hillock spike waveforms |
//! | `fig4` | Fig. 4 | voltage-amplifier I&F waveforms |
//! | `fig5b` | Fig. 5b | driver amplitude vs VDD |
//! | `fig5c` | Fig. 5c | time-to-spike vs input amplitude |
//! | `fig6a` | Fig. 6a | membrane threshold vs VDD |
//! | `fig6b` | Fig. 6b | AH time-to-spike vs VDD |
//! | `fig6c` | Fig. 6c | VAIF time-to-spike vs VDD |
//! | `fig7b` | Fig. 7b | Attack 1: accuracy vs theta |
//! | `fig8a` | Fig. 8a | Attack 2: EL threshold × fraction |
//! | `fig8b` | Fig. 8b | Attack 3: IL threshold × fraction |
//! | `fig8c` | Fig. 8c | Attack 4: both layers |
//! | `fig9a` | Fig. 9a | Attack 5: global VDD sweep |
//! | `fig9b` | Fig. 9b | robust driver amplitude vs VDD |
//! | `fig9c` | Fig. 9c | AH sizing vs threshold sensitivity |
//! | `fig10c` | Fig. 10c | dummy-neuron counts vs VDD + detection |
//! | `defenses` | §V | defended vs undefended Attack-5 accuracy |
//! | `overheads` | §V | defense power/area overheads |

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod experiments;
pub mod orchestrate;
pub mod perf;
pub mod scenario_cli;

pub use experiments::{run_experiment, ExperimentId, Fidelity};
pub use perf::{run_perf_suite, PerfReport};
