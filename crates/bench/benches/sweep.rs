//! Performance benchmarks of the parallel sweep engine.
//!
//! Times the paper-shaped Fig. 8 grid (4 threshold changes × 6 fractions)
//! at reduced training scale: once through the serial path, then on the
//! work-stealing pool at 1/2/4/8 worker threads. The machine-readable
//! companion is `repro bench`, which emits `BENCH_sweep.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use neurofi_bench::perf::{bench_grid, bench_setup};
use neurofi_core::sweep::{threshold_sweep_cached, BaselineCache, Parallelism};
use neurofi_core::TargetLayer;
use std::hint::black_box;

fn bench_sweep_engine(c: &mut Criterion) {
    let setup = bench_setup();
    let config = bench_grid();
    let mut group = c.benchmark_group("threshold_sweep_24cells");
    group.sample_size(2);
    group.bench_function("serial", |b| {
        let s = setup.clone().with_parallelism(Parallelism::Serial);
        b.iter(|| {
            black_box(
                threshold_sweep_cached(
                    &BaselineCache::new(&s),
                    Some(TargetLayer::Inhibitory),
                    &config,
                )
                .unwrap(),
            )
        })
    });
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(&format!("{threads}_threads"), |b| {
            let s = setup
                .clone()
                .with_parallelism(Parallelism::Threads(threads));
            b.iter(|| {
                black_box(
                    threshold_sweep_cached(
                        &BaselineCache::new(&s),
                        Some(TargetLayer::Inhibitory),
                        &config,
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_baseline_cache(c: &mut Criterion) {
    let setup = bench_setup();
    let mut group = c.benchmark_group("baseline_cache");
    group.sample_size(2);
    group.bench_function("fresh_baseline", |b| b.iter(|| black_box(setup.baseline())));
    group.bench_function("memoised_lookup", |b| {
        let cache = BaselineCache::new(&setup);
        cache.prime(&[42]);
        b.iter(|| black_box(cache.get(42)))
    });
    group.finish();
}

criterion_group!(benches, bench_sweep_engine, bench_baseline_cache);
criterion_main!(benches);
