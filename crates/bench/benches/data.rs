//! Performance benchmarks of the dataset substrate.

use criterion::{criterion_group, criterion_main, Criterion};
use neurofi_data::SynthDigits;
use std::hint::black_box;

fn bench_digit_render(c: &mut Criterion) {
    let generator = SynthDigits::default();
    c.bench_function("synth_digit_batch_10", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            black_box(generator.generate(10, seed))
        })
    });
}

fn bench_dataset_1000(c: &mut Criterion) {
    let generator = SynthDigits::default();
    let mut group = c.benchmark_group("dataset");
    group.sample_size(10);
    group.bench_function("synth_digits_1000", |b| {
        b.iter(|| black_box(generator.generate(1000, 42)))
    });
    group.finish();
}

criterion_group!(benches, bench_digit_render, bench_dataset_1000);
criterion_main!(benches);
