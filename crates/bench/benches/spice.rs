//! Performance benchmarks of the circuit-simulation substrate.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use neurofi_analog::axon_hillock::{AxonHillock, InputSpec};
use neurofi_spice::device::MosModel;
use neurofi_spice::mna::DenseMatrix;
use neurofi_spice::{Netlist, TranSpec, Waveform};
use std::hint::black_box;

fn bench_mosfet_eval(c: &mut Criterion) {
    let model = MosModel::ptm65_nmos();
    c.bench_function("mosfet_ekv_eval", |b| {
        b.iter(|| {
            model.eval(
                black_box(1.0e-6),
                black_box(65.0e-9),
                black_box(0.6),
                black_box(0.9),
                black_box(0.0),
                black_box(0.0),
            )
        })
    });
}

#[allow(clippy::needless_range_loop)] // index pairs build the matrix
fn bench_lu_solve(c: &mut Criterion) {
    let n = 16;
    let build = || {
        let mut m = DenseMatrix::new(n);
        let mut rhs = vec![0.0f64; n];
        let mut state = 0xdead_beefu64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for i in 0..n {
            let mut sum = 0.0;
            for j in 0..n {
                if i != j {
                    let v = next();
                    m.set(i, j, v);
                    sum += v.abs();
                }
            }
            m.set(i, i, sum + 1.0);
            rhs[i] = next();
        }
        (m, rhs)
    };
    c.bench_function("lu_solve_16x16", |b| {
        b.iter_batched(
            build,
            |(mut m, mut rhs)| m.solve_in_place(black_box(&mut rhs)).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

fn bench_rc_transient(c: &mut Criterion) {
    c.bench_function("rc_transient_1000_steps", |b| {
        b.iter(|| {
            let mut net = Netlist::new();
            let vin = net.node("in");
            let out = net.node("out");
            net.vsource("V1", vin, Netlist::GROUND, Waveform::Dc(1.0))
                .unwrap();
            net.resistor("R1", vin, out, 1.0e3).unwrap();
            net.capacitor("C1", out, Netlist::GROUND, 1.0e-9).unwrap();
            let res = net
                .compile()
                .unwrap()
                .tran(&TranSpec::new(1.0e-6, 1.0e-9).with_uic())
                .unwrap();
            black_box(res.len())
        })
    });
}

fn bench_axon_hillock_period(c: &mut Criterion) {
    let mut group = c.benchmark_group("neuron_sim");
    group.sample_size(10);
    group.bench_function("axon_hillock_15us", |b| {
        let neuron = AxonHillock::default();
        let input = InputSpec::paper_axon_hillock();
        b.iter(|| {
            let wave = neuron.simulate(1.0, &input, 15.0e-6, 20.0e-9).unwrap();
            black_box(wave.vmem.len())
        })
    });
    group.finish();
}

fn bench_threshold_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("characterisation");
    group.sample_size(10);
    group.bench_function("ah_threshold_dc_sweep", |b| {
        let neuron = AxonHillock::default();
        b.iter(|| black_box(neuron.threshold(1.0).unwrap()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_mosfet_eval,
    bench_lu_solve,
    bench_rc_transient,
    bench_axon_hillock_period,
    bench_threshold_extraction
);
criterion_main!(benches);
