//! Performance benchmarks of the behavioural SNN substrate.

use criterion::{criterion_group, criterion_main, Criterion};
use neurofi_data::SynthDigits;
use neurofi_snn::diehl_cook::{DiehlCook2015, DiehlCookConfig};
use neurofi_snn::PoissonEncoder;
use std::hint::black_box;

fn bench_poisson_encoding(c: &mut Criterion) {
    let image = SynthDigits::default().generate(1, 3);
    let mut encoder = PoissonEncoder::new(128.0, 1.0, 1);
    let mut buffer = vec![0.0f32; 784];
    c.bench_function("poisson_encode_784px_step", |b| {
        b.iter(|| {
            encoder.encode_step_into(black_box(image.image(0)), &mut buffer);
            black_box(buffer[0])
        })
    });
}

fn bench_network_step(c: &mut Criterion) {
    let image = SynthDigits::default().generate(1, 3);
    let mut net = DiehlCook2015::new(DiehlCookConfig::default(), 7);
    let mut encoder = PoissonEncoder::new(128.0, 1.0, 1);
    let mut buffer = vec![0.0f32; 784];
    c.bench_function("diehl_cook_step", |b| {
        b.iter(|| {
            encoder.encode_step_into(image.image(0), &mut buffer);
            net.step(black_box(&buffer));
        })
    });
}

fn bench_run_sample(c: &mut Criterion) {
    let image = SynthDigits::default().generate(1, 3);
    let config = DiehlCookConfig {
        sample_time_ms: 100.0,
        ..Default::default()
    };
    let mut group = c.benchmark_group("training");
    group.sample_size(20);
    group.bench_function("run_sample_100ms_train", |b| {
        let mut net = DiehlCook2015::new(config.clone(), 7);
        b.iter(|| black_box(net.run_sample(image.image(0), true)))
    });
    group.bench_function("run_sample_100ms_eval", |b| {
        let mut net = DiehlCook2015::new(config.clone(), 7);
        b.iter(|| black_box(net.run_sample(image.image(0), false)))
    });
    group.finish();
}

fn bench_normalization(c: &mut Criterion) {
    let mut net = DiehlCook2015::new(DiehlCookConfig::default(), 7);
    c.bench_function("weight_normalization_784x100", |b| {
        b.iter(|| {
            net.input_to_exc.normalize();
            black_box(net.input_to_exc.w.get(0, 0))
        })
    });
}

criterion_group!(
    benches,
    bench_poisson_encoding,
    bench_network_step,
    bench_run_sample,
    bench_normalization
);
criterion_main!(benches);
