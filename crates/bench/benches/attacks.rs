//! Performance benchmarks of the attack machinery: fault-plan
//! application must be cheap enough to never perturb the experiment
//! protocol, and a full quick-scale attack experiment is timed as the
//! end-to-end workload.

use criterion::{criterion_group, criterion_main, Criterion};
use neurofi_core::attacks::{Attack, ExperimentSetup, ThresholdAttack};
use neurofi_core::{FaultPlan, PowerTransferTable, TargetLayer};
use neurofi_snn::diehl_cook::{DiehlCook2015, DiehlCookConfig};
use std::hint::black_box;

fn bench_fault_plan_apply(c: &mut Criterion) {
    let mut net = DiehlCook2015::new(DiehlCookConfig::default(), 3);
    let plan = FaultPlan::layer_threshold(TargetLayer::Inhibitory, -0.2, 0.6);
    c.bench_function("fault_plan_apply", |b| {
        b.iter(|| {
            net.clear_faults();
            plan.apply(black_box(&mut net));
        })
    });
}

fn bench_transfer_sampling(c: &mut Criterion) {
    let table = PowerTransferTable::paper_nominal();
    c.bench_function("transfer_table_sample", |b| {
        b.iter(|| black_box(table.sample(black_box(0.87))))
    });
}

fn bench_vdd_plan(c: &mut Criterion) {
    let table = PowerTransferTable::paper_nominal();
    c.bench_function("fault_plan_from_vdd", |b| {
        b.iter(|| black_box(FaultPlan::from_vdd(black_box(0.8), &table)))
    });
}

fn bench_tiny_attack_experiment(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.bench_function("attack3_tiny_experiment", |b| {
        let mut setup = ExperimentSetup::quick(42);
        setup.n_train = 40;
        setup.n_test = 20;
        setup.network.sample_time_ms = 50.0;
        b.iter(|| {
            let outcome = ThresholdAttack::inhibitory(-0.2, 1.0).run(&setup).unwrap();
            black_box(outcome.attacked_accuracy)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fault_plan_apply,
    bench_transfer_sampling,
    bench_vdd_plan,
    bench_tiny_attack_experiment
);
criterion_main!(benches);
